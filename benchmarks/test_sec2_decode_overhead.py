"""Bench S2 — §2: IPT full-decode slowdown on the SPEC-like suite.

Paper: geometric mean ~230x, 8/12 benchmarks above 500x.  Asserted
shape: decoding is two orders of magnitude above execution for every
benchmark and vastly above the tracing cost.
"""

from conftest import run_once

from repro.experiments import sec2_decode


def test_decode_overhead(benchmark):
    result = run_once(benchmark, sec2_decode.run, scale=1)
    print("\n" + sec2_decode.format_table(result))

    assert result.geomean_x > 50, "decoding must be ~100x+ execution"
    assert result.above_100x >= 8, "most benchmarks far above 100x"
    # Decode/trace asymmetry: the §3.1 obstacle in one number.
    assert result.geomean_x > 1000 * result.trace_geomean
