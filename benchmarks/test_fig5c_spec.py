"""Bench F5c — Figure 5c: the SPEC-like suite under FlowGuard.

Paper shape asserted: low single-digit geomean (paper 3.79%), most
benchmarks under 10%, h264ref the outlier with by far the densest trace
(its indirect-call-heavy core loop), lbm/milc/mcf near-free.
"""

from conftest import run_once

from repro.experiments import fig5c


def test_fig5c_spec_overhead(benchmark):
    result = run_once(benchmark, fig5c.run, scale=1)
    print("\n" + fig5c.format_table(result))

    assert len(result.rows) == 12
    assert result.geomean_overhead < 0.10

    h264 = result.row("h264ref")
    others = [r for r in result.rows if r.benchmark != "h264ref"]
    # h264ref generates far more trace than anything else (paper: ~90%
    # more traces at runtime).
    assert h264.trace_bytes_per_kinsn == max(
        r.trace_bytes_per_kinsn for r in result.rows
    )
    assert h264.overhead > 2 * result.geomean_overhead
    # The arithmetic kernels are nearly free.
    for name in ("lbm", "milc", "mcf"):
        assert result.row(name).overhead < 0.02
    # Most benchmarks stay below 10% (paper's claim verbatim).
    below_10 = sum(1 for r in result.rows if r.overhead < 0.10)
    assert below_10 >= 10
