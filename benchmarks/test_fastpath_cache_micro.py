"""Bench C1 — fast-path caching micro-benchmark.

Measures the repeated-snapshot decode over a captured nginx ToPA trace
with the segment cache off vs on, and asserts the zero-copy contract:
``fast_decode_parallel`` hands each segment to the decoder as a
``memoryview`` slice over the original buffer — no per-segment copy of
the full snapshot (the allocation behaviour the cache's hash-probe cost
model assumes).
"""

import time

from conftest import run_once

from repro import costs
from repro.experiments import micro
from repro.ipt import fast_decoder
from repro.ipt.segment_cache import SegmentDecodeCache

SNAPSHOTS = 20
REPEATS = 3


def _cuts(data, count=SNAPSHOTS):
    step = max(256, len(data) // count)
    return list(range(step, len(data), step)) + [len(data)]


def _decode_series(data, cache):
    cycles = 0.0
    for cut in _cuts(data):
        cycles += fast_decoder.fast_decode_parallel(
            data[:cut], cache=cache
        ).cycles
    return cycles


def _measure():
    _, _, data = micro.capture_trace()
    # Warm-up + cycle accounting, once per mode.
    plain_cycles = _decode_series(data, cache=None)
    cache = SegmentDecodeCache(512)
    cached_cycles = _decode_series(data, cache=cache)

    best_plain = best_cached = float("inf")
    for _ in range(REPEATS):
        start = time.perf_counter()
        _decode_series(data, cache=None)
        best_plain = min(best_plain, time.perf_counter() - start)
        start = time.perf_counter()
        _decode_series(data, cache=cache)
        best_cached = min(best_cached, time.perf_counter() - start)
    return {
        "trace_bytes": len(data),
        "plain_cycles": plain_cycles,
        "cached_cycles": cached_cycles,
        "plain_wall_s": best_plain,
        "cached_wall_s": best_cached,
        "cache": cache.stats(),
    }


def test_cached_decode_cheaper(benchmark):
    row = run_once(benchmark, _measure)
    print(
        f"\nrepeated-snapshot decode ({row['trace_bytes']} trace bytes, "
        f"{SNAPSHOTS} snapshots): "
        f"{row['plain_cycles']:.0f} -> {row['cached_cycles']:.0f} cycles, "
        f"{row['plain_wall_s'] * 1e3:.2f} -> "
        f"{row['cached_wall_s'] * 1e3:.2f} ms, "
        f"hit rate {row['cache']['hit_rate']:.2f}"
    )
    assert row["cache"]["hits"] > 0
    # Hits charge the hash-probe model instead of per-byte decode,
    # which is strictly cheaper for any segment longer than a probe.
    assert row["cached_cycles"] < row["plain_cycles"]
    assert (
        costs.SEGMENT_CACHE_HASH_CYCLES_PER_BYTE
        < costs.FAST_DECODE_CYCLES_PER_BYTE
    )


def test_parallel_decode_never_copies_segments(monkeypatch):
    """Every segment reaching fast_decode is a memoryview slice over
    the snapshot buffer — no full-buffer copy per segment."""
    _, _, data = micro.capture_trace()
    seen = []
    real = fast_decoder.fast_decode

    def spy(segment, *args, **kwargs):
        seen.append(segment)
        return real(segment, *args, **kwargs)

    monkeypatch.setattr(fast_decoder, "fast_decode", spy)
    fast_decoder.fast_decode_parallel(data)
    assert len(seen) > 1  # multiple PSB segments
    for segment in seen:
        assert isinstance(segment, memoryview)
        assert segment.obj is data
        assert len(segment) < len(data)  # a slice, never the whole buffer
