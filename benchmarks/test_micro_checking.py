"""Bench M1 — §7.2.2: fast-path vs slow-path checking time.

Paper: the context-sensitive slow path over 100 TIP packets takes
~0.23 ms, ~60x the fast path.  Asserted shape: the fast path is at
least an order of magnitude cheaper; the measured ratio here is larger
than the paper's (see EXPERIMENTS.md for the calibration note).
"""

from conftest import run_once

from repro.experiments import micro


def test_micro_fast_vs_slow(benchmark):
    result = run_once(benchmark, micro.run, tip_window=100)
    print("\n" + micro.format_table(result))

    assert result.tips_checked >= 50
    assert result.insns_decoded > result.tips_checked  # full decode walks
    assert result.slowdown > 10, "slow path must dwarf the fast path"
    assert result.fast_cycles > 0
