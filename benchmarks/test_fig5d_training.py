"""Bench F5d — Figure 5d: fuzzing-training benefit.

Paper shape asserted: as the corpus grows, the runtime high-credit hit
ratio rises monotonically (modulo small prefixes) and ends high — the
paper reaches >97% after long campaigns; the miniature campaign must
clear 90%.
"""

from conftest import run_once

from repro.experiments import fig5d


def test_fig5d_training_curve(benchmark):
    result = run_once(benchmark, fig5d.run, fuzz_budget=200, sessions=5)
    print("\n" + fig5d.format_table(result))

    assert len(result.points) >= 3
    ratios = [p.cred_ratio for p in result.points]
    # The curve grows with the corpus...
    assert ratios[0] < ratios[-1]
    assert all(b >= a - 1e-9 for a, b in zip(ratios, ratios[1:]))
    # ...and the full corpus trains the benchmark path thoroughly.
    assert result.final_cred_ratio > 0.90
