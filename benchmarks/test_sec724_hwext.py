"""Bench H1 — §7.2.4: benefits from the suggested hardware extensions.

Paper shape asserted: decoding contributes more than 30% of the server
monitoring overhead, so the dedicated hardware decoder removes most of
it; the combined extensions cut the geomean overhead by more than half.
"""

from conftest import run_once

from repro.experiments import hwext_breakdown


def test_hwext_projection(benchmark):
    result = run_once(benchmark, hwext_breakdown.run, sessions=8)
    print("\n" + hwext_breakdown.format_table(result))

    assert len(result.rows) == 4
    for row in result.rows:
        # "decoding contributes to a large fraction of the overhead
        # (more than 30% for server applications)".
        assert row.decode_share > 0.30
        assert row.hw_decoder_overhead < row.software_overhead
        assert row.all_ext_overhead < row.hw_decoder_overhead
    assert result.geomean_hw_decoder < 0.6 * result.geomean_software
