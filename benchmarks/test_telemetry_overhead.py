"""Bench T1 — telemetry's disabled-path overhead contract.

The instrumented ``FastPathChecker.check`` differs from the raw check
loop (``_check``) by exactly one enabled-flag test when telemetry is
off.  This micro-benchmark measures both over the same captured nginx
ToPA snapshot and asserts the wrapper costs < 5% wall-clock — the
near-zero-overhead acceptance criterion for the telemetry subsystem.
"""

import time

from conftest import run_once

from repro import telemetry
from repro.experiments import micro
from repro.itccfg.searchindex import FlowSearchIndex
from repro.monitor.fastpath import FastPathChecker

ITERATIONS = 30
REPEATS = 5


def _best_of(fn, *args):
    """Best-of-REPEATS mean seconds per call — robust to scheduler noise."""
    best = float("inf")
    for _ in range(REPEATS):
        start = time.perf_counter()
        for _ in range(ITERATIONS):
            fn(*args)
        best = min(best, (time.perf_counter() - start) / ITERATIONS)
    return best


def _measure():
    pipeline, proc, data = micro.capture_trace()
    index = FlowSearchIndex(pipeline.labeled)
    checker = FastPathChecker(
        index, proc.image, pkt_count=30,
        require_cross_module=False, require_executable=False,
    )
    tel = telemetry.get_telemetry()
    was_enabled = tel.enabled
    tel.disable()  # the contract under test is the *disabled* path
    try:
        # Warm both paths before timing.
        checker._check(data)
        checker.check(data)
        raw = _best_of(checker._check, data)
        wrapped = _best_of(checker.check, data)
    finally:
        if was_enabled:
            tel.enable()
    return raw, wrapped


def test_disabled_telemetry_overhead(benchmark):
    raw, wrapped = run_once(benchmark, _measure)
    overhead = wrapped / raw - 1.0
    print(
        f"\nfast-path check: raw {raw * 1e6:.1f} µs, "
        f"instrumented(disabled) {wrapped * 1e6:.1f} µs, "
        f"overhead {overhead * 100:+.2f}%"
    )
    assert wrapped < raw * 1.05, (
        f"disabled telemetry costs {overhead * 100:.2f}% (>5%)"
    )
