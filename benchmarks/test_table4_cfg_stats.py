"""Bench T4 — Table 4: CFG statistics and AIA across the servers.

Paper shape asserted per server: AIA(ITC w/o TNT) >= AIA(O-CFG) (the
Figure 4 derogation), TNT labelling recovers (close to) the O-CFG
precision, and the deployed FlowGuard AIA beats the O-CFG baseline.
"""

from conftest import run_once

from repro.experiments import table4


def test_table4_cfg_statistics(benchmark):
    result = run_once(benchmark, table4.run)
    print("\n" + table4.format_table(result))

    assert len(result.rows) == 4
    for row in result.rows:
        assert row.exec_blocks > 0 and row.lib_blocks > 0
        assert row.itc_nodes > 0 and row.itc_edges > 0
        # The ITC-CFG is a node-minor of the O-CFG.
        assert row.itc_nodes <= row.exec_blocks + row.lib_blocks
        # Figure 4 derogation: dropping direct forks can only widen AIA.
        assert row.itc_aia >= row.ocfg_aia - 1e-9
        # TNT labels recover precision: the parenthesised figure is at
        # or below the plain ITC number and near the O-CFG level.
        assert row.itc_aia_with_tnt <= row.itc_aia + 1e-9
        # The deployed configuration beats the O-CFG baseline.
        assert row.flowguard_aia <= row.ocfg_aia + 1e-9
    assert result.average_flowguard_aia < result.average_ocfg_aia
