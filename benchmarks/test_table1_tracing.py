"""Bench T1 — Table 1: hardware tracing-mechanism comparison.

Paper shape asserted: BTS tracing is tens-of-x, LBR under 1%, IPT a few
percent; only IPT pays a (large) decoding cost.
"""

from conftest import run_once

from repro.experiments import table1


def test_table1_tracing_comparison(benchmark):
    result = run_once(benchmark, table1.run, scale=1)
    print("\n" + table1.format_table(result))

    bts, lbr, ipt = result.rows
    assert bts.name == "BTS" and lbr.name == "LBR" and ipt.name == "IPT"
    # BTS tracing is orders of magnitude above IPT (paper: ~50x vs ~3%).
    assert bts.trace_overhead > 10
    assert bts.trace_overhead > 100 * ipt.trace_overhead
    # LBR tracing is essentially free (<1%).
    assert lbr.trace_overhead < 0.01
    # IPT tracing is low single-digit percent.
    assert ipt.trace_overhead < 0.10
    # Only IPT needs decoding, and it is expensive.
    assert bts.decode_overhead == 0 and lbr.decode_overhead == 0
    assert ipt.decode_overhead > 10
