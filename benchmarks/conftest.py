"""Benchmark-suite configuration.

Every benchmark regenerates one of the paper's tables or figures: it
runs the experiment once under pytest-benchmark (the interesting number
is the *result*, not the harness wall-clock), prints the rendered
table, and asserts the paper's shape claims.
"""

import pytest


def run_once(benchmark, fn, *args, **kwargs):
    """Run an experiment exactly once under the benchmark fixture."""
    return benchmark.pedantic(
        fn, args=args, kwargs=kwargs, rounds=1, iterations=1,
        warmup_rounds=0,
    )
