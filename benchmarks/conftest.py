"""Benchmark-suite configuration.

Every benchmark regenerates one of the paper's tables or figures: it
runs the experiment once under pytest-benchmark (the interesting number
is the *result*, not the harness wall-clock), prints the rendered
table, and asserts the paper's shape claims.

The whole suite runs with telemetry enabled so each benchmark's spans,
metrics, and cycle profile are captured; the session writes a
machine-readable ``BENCH_telemetry.json`` summary next to the repo
root so results can be diffed across runs without scraping stdout.
"""

import json

import pytest

from repro import telemetry

#: per-benchmark records collected by run_once, flushed at session end.
_BENCH_RECORDS = []


@pytest.fixture(scope="session", autouse=True)
def _telemetry_enabled():
    """Benchmarks exercise the instrumented paths with telemetry on."""
    tel = telemetry.get_telemetry()
    tel.reset()
    tel.enable()
    yield tel
    tel.disable()
    tel.reset()


def run_once(benchmark, fn, *args, **kwargs):
    """Run an experiment exactly once under the benchmark fixture."""
    tel = telemetry.get_telemetry()
    with tel.tracer.span(f"bench.{benchmark.name}") as span:
        result = benchmark.pedantic(
            fn, args=args, kwargs=kwargs, rounds=1, iterations=1,
            warmup_rounds=0,
        )
    tel.metrics.histogram("bench.duration_s").observe(
        span.duration_s, bench=benchmark.name
    )
    _BENCH_RECORDS.append(
        {"bench": benchmark.name, "duration_s": span.duration_s}
    )
    return result


def pytest_sessionfinish(session, exitstatus):
    """Write the machine-readable benchmark summary (BENCH_*.json)."""
    if not _BENCH_RECORDS:
        return
    tel = telemetry.get_telemetry()
    payload = {
        "exitstatus": int(exitstatus),
        "benchmarks": _BENCH_RECORDS,
        "telemetry": tel.snapshot(),
    }
    out = session.config.rootpath / "BENCH_telemetry.json"
    out.write_text(json.dumps(payload, indent=2, default=str) + "\n")
