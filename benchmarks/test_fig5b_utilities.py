"""Bench F5b — Figure 5b: Linux utilities via fork/ptrace/execve.

Paper shape asserted: utility overheads are small (geomean 0.82% in the
paper), with dd among the lowest — few branch instructions and few
syscalls per byte moved.
"""

from conftest import run_once

from repro.experiments import fig5b


def test_fig5b_utility_overhead(benchmark):
    result = run_once(benchmark, fig5b.run)
    print("\n" + fig5b.format_table(result))

    rows = {row.utility: row for row in result.rows}
    assert set(rows) == {"tar", "dd", "make", "scp"}
    for row in result.rows:
        assert row.overhead < 0.60
        assert row.checks >= 1  # endpoints did fire through the harness
    # dd is the cheapest workload to protect (paper's stand-out point).
    assert rows["dd"].overhead == min(r.overhead for r in result.rows)
    assert rows["dd"].overhead < 0.05
    assert result.geomean_overhead < 0.25
