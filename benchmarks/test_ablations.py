"""Bench AB — ablations over FlowGuard's design knobs.

Asserts the qualitative trade-offs the paper argues:

- larger checked windows (pkt_count) cost more per check,
- the §7.1.1 cred_ratio formula crosses below the O-CFG AIA well
  before ratio 1.0,
- finer PSB periods shift cost from decoding to tracing,
- the decode engines (columnar vs objects) are cost-neutral at every
  PSB period — they differ in wall-clock only,
- PSB-parallel decode shortens the critical path,
- the path-sensitive extension strengthens the fast path at the price
  of more slow-path checking.
"""

import pytest
from conftest import run_once

from repro.experiments import ablations


def test_pkt_count_costs_grow(benchmark):
    points = run_once(benchmark, ablations.sweep_pkt_count,
                      counts=(5, 30, 60), sessions=5)
    overheads = [p.overhead for p in points]
    # Bigger windows never get cheaper; 60-packet checks cost more
    # than 5-packet checks.
    assert overheads[-1] > overheads[0]


def test_cred_ratio_crossover(benchmark):
    curve = run_once(benchmark, ablations.sweep_cred_ratio)
    print("\ncred_ratio AIA curve:",
          [f"{v:.2f}" for v in curve.aia_values],
          "O-CFG", f"{curve.aia_ocfg:.2f}")
    # Monotone improvement with training coverage...
    assert all(b <= a + 1e-9 for a, b in
               zip(curve.aia_values, curve.aia_values[1:]))
    # ...and the deployed mix beats plain O-CFG before full coverage
    # (the paper's 70% observation; the exact ratio depends on the
    # CFG's fine/ITC spread).
    assert curve.crossover_ratio < 1.0
    assert curve.aia_values[-1] < curve.aia_ocfg


def test_psb_period_tradeoff(benchmark):
    points = run_once(benchmark, ablations.sweep_psb_period,
                      periods=(128, 1024), sessions=5)
    fine, coarse = points
    # Finer sync points -> more trace bytes; coarser -> bigger decode
    # windows per check.
    assert fine.trace_share > coarse.trace_share
    assert coarse.decode_share > fine.decode_share


def test_psb_engine_grid(benchmark):
    points = run_once(benchmark, ablations.sweep_psb_engine,
                      periods=(128, 1024), sessions=3)
    by_period = {}
    for p in points:
        by_period.setdefault(p.psb_period, {})[p.engine] = p
    for period, engines in by_period.items():
        col, obj = engines["columnar"], engines["objects"]
        # The engines differ in wall-clock only: identical verdict
        # surface means identical checks and charged cycles.
        assert col.checks == obj.checks
        assert col.overhead == pytest.approx(obj.overhead, rel=1e-9)
        assert col.trace_share == pytest.approx(obj.trace_share, rel=1e-9)
    # The psb_period axis still shows the tracing/decoding tradeoff
    # within each engine.
    for engine in ("columnar", "objects"):
        assert by_period[128][engine].trace_share > \
            by_period[1024][engine].trace_share


def test_parallel_decode_speedup(benchmark):
    result = run_once(benchmark, ablations.measure_parallel_decode,
                      sessions=6)
    print(f"\nparallel decode: {result.segments} segments, "
          f"{result.speedup:.1f}x")
    assert result.segments > 2
    assert result.speedup > 1.5


def test_path_sensitivity_tradeoff(benchmark):
    result = run_once(benchmark, ablations.measure_path_sensitivity,
                      sessions=6)
    print(f"\nslow-path rate: edges {result.edge_slow_rate * 100:.1f}% "
          f"-> paths {result.path_slow_rate * 100:.1f}%")
    assert result.trained_grams > 0
    # "it may introduce larger number of slow path checking".
    assert result.path_slow_rate >= result.edge_slow_rate
