"""Bench F5a — Figure 5a: server macro-benchmark with phase breakdown.

Paper shape asserted: small overheads with zero false positives and a
rare slow path; decoding the dominant monitor phase (the §7.2.4 setup).
Absolute numbers run higher than the paper's 4.37% geomean because the
simulated requests are orders of magnitude shorter than real ones, so
the fixed per-check cost weighs more — see EXPERIMENTS.md.
"""

from conftest import run_once

from repro.experiments import fig5a


def test_fig5a_server_overhead(benchmark):
    result = run_once(benchmark, fig5a.run, sessions=8)
    print("\n" + fig5a.format_table(result))

    assert len(result.rows) == 4
    for row in result.rows:
        assert row.checks > 0
        # Thanks to training + caching, the slow path is rare (§7.2.1:
        # "less than 1%"); allow a little slack at this scale.
        assert row.slow_path_rate < 0.10
        # Tracing is a small slice (paper: "overall tracing overhead is
        # small").
        assert row.trace < 0.08
        # No false positives on benign traffic (asserted inside the
        # driver as well).
        assert row.overhead < 1.0
        # Decode dominates the monitoring cost (>30%, §7.2.4).
        monitor_total = row.trace + row.decode + row.check + row.other
        assert row.decode / monitor_total > 0.30
    assert result.geomean_overhead < 0.5
