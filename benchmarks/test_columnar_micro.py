"""Bench C2 — columnar decode engine micro-benchmark.

Measures the uncached Fig. 5 decode+check loop over a captured nginx
ToPA trace with the object engine vs the columnar engine, and asserts
the engine contracts: the columnar loop is materially faster in
wall-clock while verdicts and charged decode/search cycles are
identical, and every segment reaches ``columnar_scan`` as a zero-copy
``memoryview`` slice over the snapshot buffer.

The full acceptance gate (>=2x uncached, plus fleet/ledger identity) is
``experiments/columnar.py``; the ratio asserted here is deliberately
looser because CI machines are noisy.
"""

import time

from conftest import run_once

from repro.experiments import micro
from repro.ipt import columnar
from repro.ipt.segment_cache import SegmentDecodeCache
from repro.itccfg import FlowSearchIndex
from repro.monitor.fastpath import FastPathChecker

SNAPSHOTS = 20
REPEATS = 3
#: loose wall-clock floor for CI (the experiment gates the real 2x).
MIN_SPEEDUP = 1.2


def _cuts(data, count=SNAPSHOTS):
    step = max(256, len(data) // count)
    return list(range(step, len(data), step)) + [len(data)]


def _fingerprint(result):
    return (
        result.verdict.value,
        result.checked_pairs,
        tuple(result.low_credit_pairs),
        result.violation_edge,
        result.window_offset,
        tuple(
            (r.ip, r.tnt_before, r.offset, r.after_far)
            for r in result.window
        ),
    )


def _make_checker(pipeline, proc, engine):
    return FastPathChecker(
        FlowSearchIndex(pipeline.labeled), proc.image, pkt_count=60,
        require_cross_module=False, require_executable=False,
        engine=engine,
    )


def _check_series(checker, data):
    results = []
    for cut in _cuts(data):
        results.append(checker.check(data[:cut]))
    return results


def _measure():
    pipeline, proc, data = micro.capture_trace()
    # Parity pass: fingerprints + charged cycles per engine.
    rows = {}
    for engine in ("objects", "columnar"):
        results = _check_series(_make_checker(pipeline, proc, engine), data)
        rows[engine] = {
            "fingerprints": [_fingerprint(r) for r in results],
            "decode_cycles": sum(r.decode_cycles for r in results),
            "search_cycles": sum(r.search_cycles for r in results),
        }
    # Timing passes: fresh checker per repeat, best-of.
    for engine in ("objects", "columnar"):
        best = float("inf")
        for _ in range(REPEATS):
            checker = _make_checker(pipeline, proc, engine)
            start = time.perf_counter()
            _check_series(checker, data)
            best = min(best, time.perf_counter() - start)
        rows[engine]["wall_s"] = best
    return {"trace_bytes": len(data), **rows}


def test_columnar_engine_faster_same_verdicts(benchmark):
    row = run_once(benchmark, _measure)
    objects, columnar_row = row["objects"], row["columnar"]
    speedup = objects["wall_s"] / columnar_row["wall_s"]
    print(
        f"\ndecode+check loop ({row['trace_bytes']} trace bytes, "
        f"{SNAPSHOTS} snapshots): "
        f"{objects['wall_s'] * 1e3:.2f} ms objects -> "
        f"{columnar_row['wall_s'] * 1e3:.2f} ms columnar "
        f"({speedup:.2f}x)"
    )
    assert columnar_row["fingerprints"] == objects["fingerprints"]
    assert columnar_row["decode_cycles"] == objects["decode_cycles"]
    assert columnar_row["search_cycles"] == objects["search_cycles"]
    assert speedup >= MIN_SPEEDUP


def test_columnar_parallel_never_copies_segments(monkeypatch):
    """Every segment reaching columnar_scan is a memoryview slice over
    the snapshot buffer — no per-segment copy."""
    _, _, data = micro.capture_trace()
    seen = []
    real = columnar.columnar_scan

    def spy(segment, *args, **kwargs):
        seen.append(segment)
        return real(segment, *args, **kwargs)

    monkeypatch.setattr(columnar, "columnar_scan", spy)
    columnar.columnar_decode_parallel(data)
    assert len(seen) > 1  # multiple PSB segments
    for segment in seen:
        assert isinstance(segment, memoryview)
        assert segment.obj is data
        assert len(segment) < len(data)


def test_cached_columnar_segments_rebase_zero_copy():
    """The dual-shape cache stores columnar segments once and rebases
    by carrying the base — the stored columns stay backed by the first
    probe's buffer, never copied per hit."""
    _, _, data = micro.capture_trace()
    cache = SegmentDecodeCache(512)
    first = columnar.columnar_decode_parallel(data, cache=cache)
    hits_before = cache.hits
    second = columnar.columnar_decode_parallel(data, cache=cache)
    assert cache.hits > hits_before
    for (seg_a, base_a), (seg_b, base_b) in zip(
        first.columns, second.columns
    ):
        if not seg_a.truncated:
            assert seg_b is seg_a  # the resident object, not a copy
        assert base_a == base_b
