"""Bench A1 — §7.1.2: attack detection across defenses.

Paper shape asserted: FlowGuard detects all four attacks (ROP, SROP,
return-to-lib, history flushing); the LBR-window heuristics miss at
least one of them (window pollution / flushing), which is exactly the
gap FlowGuard's 30+-TIP ITC check closes.
"""

from conftest import run_once

from repro.experiments import security


def test_security_matrix(benchmark):
    result = run_once(benchmark, security.run)
    print("\n" + security.format_table(result))

    for attack in security.ATTACKS:
        assert result.detected[attack]["flowguard"], (
            f"FlowGuard missed {attack}"
        )
    # The small-window baselines cannot match full coverage.
    lbr_defenses = ("kbouncer", "ropecker", "patharmor")
    missed = sum(
        1
        for attack in security.ATTACKS
        for defense in lbr_defenses
        if not result.detected[attack][defense]
    )
    assert missed >= 1, "LBR-window heuristics should show gaps"
