"""Bench T5 — Table 5: ITC-CFG memory and generation time.

Paper shape asserted: memory in the tens-of-KB-to-MB range scaling with
application complexity, generation dominated by the shared libraries
(the >90%-on-libc observation motivating per-library CFG caching).
"""

from conftest import run_once

from repro.experiments import table5


def test_table5_memory_and_time(benchmark):
    result = run_once(benchmark, table5.run)
    print("\n" + table5.format_table(result))

    assert len(result.rows) == 4
    for row in result.rows:
        assert row.memory_kib > 1.0
        assert row.generation_seconds < 60
        # Libraries dominate the analysed code (paper: >90% of time on
        # libraries; here the shared libsim is a large block share).
        assert row.library_fraction > 0.4
    assert result.topa_kib_per_core == 16.0
