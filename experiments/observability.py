#!/usr/bin/env python3
"""Run the observability-plane scenarios, write ``BENCH_observability.json``.

Usage::

    PYTHONPATH=src python experiments/observability.py [--quick] \
        [--out BENCH_observability.json]

``--quick`` shrinks the workload for CI smoke runs; the JSON shape is
identical.  Exits non-zero if any acceptance gate fails:

- attaching the plane leaves both the clean and the fault-injected run
  bit-identical to their uninstrumented references (verdict digests),
- the clean run meets every stock SLO; the fault-injected run burns
  error budget and captures a flight-recorder dump (the VIOLATION
  auto-dump) while its planted ROP attack is quarantined,
- every ledger — fleet cycle accounting, degradation ledger, profiler,
  and the plane's own sampler/flight reconciliation — is exact, and
- the psb_period × engine ablation grid shows the engines charging
  identical cycles at every period.

The written JSON is also a ``repro report`` input::

    PYTHONPATH=src python -m repro report BENCH_observability.json
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.experiments import observability  # noqa: E402


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="smaller workload for CI smoke runs")
    parser.add_argument("--out", default="BENCH_observability.json",
                        help="output JSON path")
    args = parser.parse_args(argv)

    results = observability.run(quick=args.quick)
    print(observability.format_table(results))

    out = Path(args.out)
    out.write_text(json.dumps(results, indent=2, sort_keys=True) + "\n")
    print(f"\n[wrote {out}]")

    failures = observability.gates_passed(results)
    for name in failures:
        print(f"FAIL: gate {name}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
