#!/usr/bin/env python3
"""Run the columnar decode engine benchmark and write
``BENCH_columnar.json``.

Usage::

    PYTHONPATH=src python experiments/columnar.py [--quick] \
        [--out BENCH_columnar.json]

``--quick`` shrinks the workloads for CI smoke runs; the JSON shape is
identical.  Exits non-zero if any gate fails: the columnar engine must
cut the uncached Fig. 5 decode+check wall-clock by at least 2x while
producing bit-identical verdicts, exactly equal charged decode/search
cycles, identical ``ipt.fast_decode.*`` telemetry, and (on the fleet
workloads, clean and faulted) identical verdict sequences, monitor
cycles, and degradation ledgers with exact reconciliation.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.experiments import columnar  # noqa: E402


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="smaller workloads for CI smoke runs")
    parser.add_argument("--out", default="BENCH_columnar.json",
                        help="output JSON path")
    args = parser.parse_args(argv)

    results = columnar.run(quick=args.quick)
    print(columnar.format_table(results))

    out = Path(args.out)
    out.write_text(json.dumps(results, indent=2, sort_keys=True) + "\n")
    print(f"\n[wrote {out}]")

    failures = [
        f"gate {name} failed"
        for name, ok in results["gates"].items()
        if not ok
    ]
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
