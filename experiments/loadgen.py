#!/usr/bin/env python3
"""Run the load-generation bench scenarios, write ``BENCH_loadgen.json``.

Usage::

    PYTHONPATH=src python experiments/loadgen.py [--quick] \
        [--out BENCH_loadgen.json]

``--quick`` shrinks the sweep for CI smoke runs; the JSON shape is
identical.  Exits non-zero if any acceptance gate fails:

- closed-loop throughput grows monotonically up to the saturation knee,
- the max-throughput-under-SLO bisection converges within its probe
  budget and two independently seeded searches agree on the answer,
- planted ROP exploits at the saturation point are all quarantined
  with zero false quarantines, and two identical saturated runs are
  bit-identical (outcome digests),
- the fault-injected lossy-ring load point reconciles both cycle and
  degradation ledgers exactly, as does every clean sweep point.

The written JSON is also a ``repro report`` input::

    PYTHONPATH=src python -m repro report BENCH_loadgen.json
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.experiments import loadgen  # noqa: E402


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="smaller sweep for CI smoke runs")
    parser.add_argument("--out", default="BENCH_loadgen.json",
                        help="output JSON path")
    args = parser.parse_args(argv)

    results = loadgen.run(quick=args.quick)
    print(loadgen.format_table(results))

    out = Path(args.out)
    out.write_text(json.dumps(results, indent=2, sort_keys=True) + "\n")
    print(f"\n[wrote {out}]")

    failures = loadgen.gates_passed(results)
    for name in failures:
        print(f"FAIL: gate {name}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
