#!/usr/bin/env python3
"""Run the fleet scaling sweeps and write ``BENCH_fleet.json``.

Usage::

    PYTHONPATH=src python experiments/fleet_scaling.py [--quick] \
        [--out BENCH_fleet.json]
    PYTHONPATH=src python experiments/fleet_scaling.py --scale \
        [--max-processes N] [--out BENCH_fleet_scale.json]

``--quick`` shrinks the sweeps for CI smoke runs; the JSON shape is
identical.  Exits non-zero if any sweep's cycle accounting fails to
reconcile, if the 8-process worker sweep's p99 check lag is not
monotonically decreasing from 1 to 4 workers, or if stall-mode overhead
does not exceed lossy-mode overhead under ring pressure.

``--scale`` runs the 100x sweep instead (shared-memory segments,
process-pool decode, work stealing, sharded index) and gates on:
sublinear lag_p99 growth, bit-identical thread/process parity,
bit-identical flat/sharded index parity, steals observed under ring
pressure, zero leaked shm blocks, exact cycle accounting everywhere,
and the committed loadgen knee staying at or above the trajectory
floor.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.experiments import fleet_scaling  # noqa: E402


#: the loadgen knee floor the scale run must not regress (committed
#: BENCH_loadgen.json; mirrors experiments/trajectory.py KNEE_FLOOR).
KNEE_FLOOR = 75.5


def _scale_failures(results: dict) -> list:
    """The 100x acceptance gates over a ``run_scale`` result."""
    failures = []
    if not results["lag_sublinear"]:
        failures.append(
            "lag_p99 grew superlinearly with fleet size: "
            f"{results['lag_growth']}"
        )
    if not results["parity"]["identical"]:
        failures.append(
            "process-pool decode diverged from threaded: "
            f"{results['parity']}"
        )
    if not results["shard_parity"]["identical"]:
        failures.append(
            "sharded index diverged from flat: "
            f"{results['shard_parity']}"
        )
    if not results["steals_observed"]:
        failures.append("no steals under ring pressure")
    if results["leaked_blocks"]:
        failures.append(
            f"leaked shm blocks: {results['leaked_blocks']}"
        )
    if not results["accounting_exact"]:
        failures.append("cycle ledger drift in the scale sweep")
    knee_path = Path(__file__).resolve().parent.parent / (
        "BENCH_loadgen.json"
    )
    if knee_path.exists():
        knee = json.loads(knee_path.read_text())["knee"]["throughput"]
        results["knee_floor"] = {
            "floor": KNEE_FLOOR, "committed": knee,
            "holds": knee >= KNEE_FLOOR,
        }
        if knee < KNEE_FLOOR:
            failures.append(
                f"committed loadgen knee {knee:.2f} fell below the "
                f"floor {KNEE_FLOOR}"
            )
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="smaller sweeps for CI smoke runs")
    parser.add_argument("--scale", action="store_true",
                        help="run the 100x scale sweep instead")
    parser.add_argument("--max-processes", type=int, default=100,
                        help="largest fleet in the --scale sweep")
    parser.add_argument("--out", default=None,
                        help="output JSON path")
    args = parser.parse_args(argv)

    if args.scale:
        results = fleet_scaling.run_scale(
            max_processes=args.max_processes
        )
        failures = _scale_failures(results)
        print(fleet_scaling.format_scale_table(results))
        out = Path(args.out or "BENCH_fleet_scale.json")
        out.write_text(
            json.dumps(results, indent=2, sort_keys=True) + "\n"
        )
        print(f"\n[wrote {out}]")
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1 if failures else 0

    results = fleet_scaling.run(quick=args.quick)
    print(fleet_scaling.format_table(results))

    out = Path(args.out or "BENCH_fleet.json")
    out.write_text(json.dumps(results, indent=2, sort_keys=True) + "\n")
    print(f"\n[wrote {out}]")

    failures = []
    for section in ("worker_sweep", "process_sweep", "policy_pressure"):
        for row in results[section]:
            if not row["accounting_exact"]:
                failures.append(
                    f"{section}: cycle ledger drift at "
                    f"{row['processes']}p/{row['workers']}w"
                )
    sweep = results["worker_sweep"]
    p99s = [row["lag_p99"] for row in sweep]
    if any(b >= a for a, b in zip(p99s, p99s[1:])):
        failures.append(f"p99 lag not monotone over workers: {p99s}")
    stall, lossy = results["policy_pressure"]
    if stall["overhead"] <= lossy["overhead"]:
        failures.append(
            "stall overhead did not exceed lossy under ring pressure: "
            f"{stall['overhead']:.4f} <= {lossy['overhead']:.4f}"
        )
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
