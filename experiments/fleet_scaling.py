#!/usr/bin/env python3
"""Run the fleet scaling sweeps and write ``BENCH_fleet.json``.

Usage::

    PYTHONPATH=src python experiments/fleet_scaling.py [--quick] \
        [--out BENCH_fleet.json]

``--quick`` shrinks the sweeps for CI smoke runs; the JSON shape is
identical.  Exits non-zero if any sweep's cycle accounting fails to
reconcile, if the 8-process worker sweep's p99 check lag is not
monotonically decreasing from 1 to 4 workers, or if stall-mode overhead
does not exceed lossy-mode overhead under ring pressure.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.experiments import fleet_scaling  # noqa: E402


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="smaller sweeps for CI smoke runs")
    parser.add_argument("--out", default="BENCH_fleet.json",
                        help="output JSON path")
    args = parser.parse_args(argv)

    results = fleet_scaling.run(quick=args.quick)
    print(fleet_scaling.format_table(results))

    out = Path(args.out)
    out.write_text(json.dumps(results, indent=2, sort_keys=True) + "\n")
    print(f"\n[wrote {out}]")

    failures = []
    for section in ("worker_sweep", "process_sweep", "policy_pressure"):
        for row in results[section]:
            if not row["accounting_exact"]:
                failures.append(
                    f"{section}: cycle ledger drift at "
                    f"{row['processes']}p/{row['workers']}w"
                )
    sweep = results["worker_sweep"]
    p99s = [row["lag_p99"] for row in sweep]
    if any(b >= a for a, b in zip(p99s, p99s[1:])):
        failures.append(f"p99 lag not monotone over workers: {p99s}")
    stall, lossy = results["policy_pressure"]
    if stall["overhead"] <= lossy["overhead"]:
        failures.append(
            "stall overhead did not exceed lossy under ring pressure: "
            f"{stall['overhead']:.4f} <= {lossy['overhead']:.4f}"
        )
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
