#!/usr/bin/env python3
"""Run the multi-tenant serving bench, write ``BENCH_service.json``.

Usage::

    PYTHONPATH=src python experiments/service.py [--quick] \
        [--out BENCH_service.json] [--loadgen BENCH_loadgen.json]

Exits non-zero if any acceptance gate fails:

- a clean tenant served next to a noisy (lossy, fault-injected,
  quota-throttled) neighbor is *bit-identical* to its solo run —
  verdict digest and latency percentiles — and none of the neighbor's
  degradation kinds appear in its ledger,
- a hot O-CFG/ITC-CFG reload mid-run drops zero in-flight checks,
  retires the displaced version after drain, and repeats
  bit-identically,
- a graceful drain applies every submitted check before stopping and
  the books still reconcile,
- the full duo run under the observability plane reconciles every
  tenant's cycle and degradation ledgers exactly, plus the plane's
  own audit,
- admission control sheds exactly the sessions over budget (ledger
  events, never silent) and the recorded loadgen knee stays at or
  above the trajectory floor.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.experiments import service  # noqa: E402


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="CI smoke mode (same gates, same shapes)")
    parser.add_argument("--out", default="BENCH_service.json",
                        help="output JSON path")
    parser.add_argument("--loadgen", default="BENCH_loadgen.json",
                        help="loadgen payload for the knee gate")
    args = parser.parse_args(argv)

    results = service.run(quick=args.quick, loadgen_path=args.loadgen)
    print(service.format_table(results))

    out = Path(args.out)
    out.write_text(json.dumps(results, indent=2, sort_keys=True) + "\n")
    print(f"\n[wrote {out}]")

    failures = service.gates_passed(results)
    for name in failures:
        print(f"FAIL: gate {name}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
