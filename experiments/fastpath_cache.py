#!/usr/bin/env python3
"""Run the fast-path caching benchmark and write
``BENCH_fastpath_cache.json``.

Usage::

    PYTHONPATH=src python experiments/fastpath_cache.py [--quick] \
        [--out BENCH_fastpath_cache.json]

``--quick`` shrinks the workloads for CI smoke runs; the JSON shape is
identical.  Exits non-zero if any gate fails: the cached runs must cut
decoded bytes and wall-clock decode time by at least 2x on the
repeated-snapshot workloads, produce bit-identical verdicts to the
uncached path, actually hit the shared cache across the fleet, and keep
the cycle ledger reconciling exactly through ``CycleProfiler``.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.experiments import fastpath_cache  # noqa: E402


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="smaller workloads for CI smoke runs")
    parser.add_argument("--out", default="BENCH_fastpath_cache.json",
                        help="output JSON path")
    args = parser.parse_args(argv)

    results = fastpath_cache.run(quick=args.quick)
    print(fastpath_cache.format_table(results))

    out = Path(args.out)
    out.write_text(json.dumps(results, indent=2, sort_keys=True) + "\n")
    print(f"\n[wrote {out}]")

    failures = [
        f"gate {name} failed"
        for name, ok in results["gates"].items()
        if not ok
    ]
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
