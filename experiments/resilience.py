#!/usr/bin/env python3
"""Run the resilience scenarios and write ``BENCH_resilience.json``.

Usage::

    PYTHONPATH=src python experiments/resilience.py [--quick] \
        [--out BENCH_resilience.json]

``--quick`` shrinks the workload for CI smoke runs; the JSON shape is
identical.  Exits non-zero if any acceptance gate fails:

- every injected ROP attack is detected and quarantined under the
  standard fault mix (100% detection, zero false positives),
- a check whose every retry is killed is dead-lettered and handled
  fail-closed (quarantine, not a silent drop — and never a wedge),
- faulted p99 verdict lag stays within the bound over the fault-free
  baseline, and
- every ledger (fleet cycle accounting, degradation ledger vs its
  telemetry mirror, profiler) reconciles exactly.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.experiments import resilience  # noqa: E402


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="smaller workload for CI smoke runs")
    parser.add_argument("--out", default="BENCH_resilience.json",
                        help="output JSON path")
    args = parser.parse_args(argv)

    results = resilience.run(quick=args.quick)
    print(resilience.format_table(results))

    out = Path(args.out)
    out.write_text(json.dumps(results, indent=2, sort_keys=True) + "\n")
    print(f"\n[wrote {out}]")

    gates = results["gates"]
    failures = []
    if gates["detection_rate"] < 1.0:
        missed = [row["seed"] for row in results["detection"]
                  if not row["detected"]]
        failures.append(
            f"injected ROP missed under fault seeds {missed} "
            f"(detection rate {gates['detection_rate']:.0%})"
        )
    if gates["false_positives"]:
        failures.append(
            f"{gates['false_positives']} clean process(es) quarantined "
            "or flagged under fault injection"
        )
    if not gates["dead_letters_quarantined"]:
        failures.append(
            "dead-lettered check was not handled fail-closed "
            f"(dead letters {results['dead_letter']['dead_letters']}, "
            f"quarantined {results['dead_letter']['quarantined']})"
        )
    if not gates["never_wedged"]:
        failures.append("a faulted fleet failed to finish (wedged)")
    if not gates["lag_within_bound"]:
        failures.append(
            f"faulted p99 lag ratio {gates['lag_p99_ratio']:.2f} "
            f"exceeds bound {gates['lag_bound']:.1f}"
        )
    if not gates["ledgers_exact"]:
        failures.append("a ledger failed to reconcile exactly")
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
