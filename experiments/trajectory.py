#!/usr/bin/env python3
"""Record this PR's knee into the append-only ``BENCH_trajectory.json``.

Usage::

    PYTHONPATH=src python experiments/trajectory.py --label pr8 \
        [--loadgen BENCH_loadgen.json] [--out BENCH_trajectory.json]
    PYTHONPATH=src python experiments/trajectory.py --check

Reads the knee / max-throughput-under-SLO already measured by
``experiments/loadgen.py`` and appends one labelled entry to the
trajectory file — so perf PRs show the curve across PRs, not just this
PR's point.  Existing entries are never rewritten (re-recording the
same label replaces only that label's entry).

``--check`` validates the committed trajectory without appending —
the CI mode.  Exits non-zero if any gate fails:

- the newest entry's knee throughput clears the recorded floor
  (75.5 req/Mcycle, the PR 7 baseline),
- the newest full-run entry does not regress below the first entry,
- every recorded entry ran with all of its loadgen gates green.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.experiments import trajectory  # noqa: E402


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--label", default=None,
                        help="entry label for this PR (e.g. pr8)")
    parser.add_argument("--loadgen", default="BENCH_loadgen.json",
                        help="loadgen results to distil the entry from")
    parser.add_argument("--out", default="BENCH_trajectory.json",
                        help="trajectory JSON path (appended to)")
    parser.add_argument("--check", action="store_true",
                        help="validate the existing trajectory only")
    args = parser.parse_args(argv)

    if args.check:
        doc = trajectory.load_trajectory(args.out)
    else:
        if args.label is None:
            parser.error("--label is required unless --check is given")
        doc = trajectory.record(args.loadgen, args.out, args.label)
        print(f"[recorded {args.label!r} into {args.out}]\n")

    print(trajectory.format_table(doc))

    failures = trajectory.gates_passed(doc)
    for name in failures:
        print(f"FAIL: gate {name}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
