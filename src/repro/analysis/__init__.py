"""Static binary analysis: conservative O-CFG construction (§4.1).

Mirrors the paper's Dyninst-plugin pipeline:

- per-module disassembly into basic blocks,
- intra-module direct edges (jumps, conditional branches, calls,
  fall-throughs),
- TypeArmor-style arity matching to restrict indirect-call targets,
- call/return matching (returns target the addresses right after call
  sites), with tail-call closure propagation,
- inter-module edges through PLT indirect jumps and VDSO precedence,
- the AIA (Average Indirect targets Allowed) metric.

The CFG is *conservative*: every target set over-approximates runtime
behaviour, so checking against it can never yield a false positive.
"""

from repro.analysis.cfg import BasicBlock, ControlFlowGraph, Edge, EdgeKind
from repro.analysis.build import CFGBuilder, build_ocfg
from repro.analysis.discover import (
    DiscoveredFunctions,
    discover_functions,
    verify_against_ground_truth,
)
from repro.analysis.metrics import (
    aia_fine,
    aia_itc,
    aia_itc_with_tnt,
    aia_ocfg,
    flowguard_aia,
)

__all__ = [
    "BasicBlock",
    "CFGBuilder",
    "ControlFlowGraph",
    "DiscoveredFunctions",
    "Edge",
    "EdgeKind",
    "aia_fine",
    "aia_itc",
    "aia_itc_with_tnt",
    "aia_ocfg",
    "build_ocfg",
    "discover_functions",
    "flowguard_aia",
    "verify_against_ground_truth",
]
