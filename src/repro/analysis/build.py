"""O-CFG construction from a loaded image.

The pipeline mirrors §4.1:

1. disassemble each module independently and split functions into basic
   blocks (intra-module CFGs),
2. resolve indirect calls with a TypeArmor-style use-def/liveness arity
   match over address-taken functions,
3. resolve indirect jumps: PLT stubs have exactly one (GOT-resolved)
   target; jump tables are bounded by relocation targets inside the
   enclosing function, falling back to a conservative module-wide set,
4. connect returns by call/return matching, propagating return sites
   through the tail-call closure (a function reached by an
   inter-procedural jump returns on behalf of its jumper — this is also
   what stitches caller modules to callee returns across the PLT),
5. syscalls and non-terminated blocks get fall-through edges.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from repro.telemetry import get_telemetry
from repro.analysis.cfg import BasicBlock, ControlFlowGraph, Edge, EdgeKind
from repro.binary.loader import Image, LoadedModule
from repro.isa.encoding import decode_at
from repro.isa.instructions import Insn, Op

_ARG_REGS = (1, 2, 3, 4, 5)
_UNKNOWN_ARITY = 5


def _instruction_reads(insn: Insn) -> List[int]:
    """Registers read by an instruction (for the liveness pass)."""
    op = insn.op
    if op in (Op.MOV_RI, Op.LEA, Op.POP, Op.NOP, Op.HALT, Op.RET,
              Op.JMP, Op.JCC, Op.CALL):
        return []
    if op is Op.MOV_RR:
        return [insn.rs]
    if op in (Op.LOAD, Op.LOADB):
        return [insn.rb]
    if op in (Op.STORE, Op.STOREB):
        return [insn.rb, insn.rs]
    if op is Op.PUSH:
        return [insn.rs]
    if op in (Op.JMPR, Op.CALLR):
        return [insn.rs]
    if op is Op.SYSCALL:
        # Syscalls consume r0..r5 by convention.
        return [0, 1, 2, 3, 4, 5]
    if op in (Op.ADDI, Op.SUBI, Op.CMPI, Op.MULI, Op.ANDI):
        return [insn.rd]
    # Two-operand ALU ops read both.
    return [insn.rd, insn.rs]


def _instruction_writes(insn: Insn) -> List[int]:
    op = insn.op
    if op in (Op.MOV_RI, Op.MOV_RR, Op.LEA, Op.LOAD, Op.LOADB, Op.POP):
        return [insn.rd]
    if op in (Op.ADD, Op.SUB, Op.MUL, Op.DIV, Op.MOD, Op.AND, Op.OR,
              Op.XOR, Op.SHL, Op.SHR, Op.ADDI, Op.SUBI, Op.MULI, Op.ANDI):
        return [insn.rd]
    if op is Op.SYSCALL:
        return [0]
    return []


class _Function:
    """Disassembled view of one function (or PLT stub)."""

    def __init__(self, name: str, module: LoadedModule,
                 start: int, end: int) -> None:
        self.name = name
        self.module = module
        self.start = start
        self.end = end
        self.insns: List[Tuple[int, Insn, int]] = []
        self.is_plt = False
        self.plt_import: Optional[str] = None


def build_ocfg(image: Image, use_discovery: bool = False
               ) -> ControlFlowGraph:
    """Convenience wrapper around :class:`CFGBuilder`."""
    return CFGBuilder(image, use_discovery=use_discovery).build()


class CFGBuilder:
    """Builds the conservative O-CFG for a loaded image.

    With ``use_discovery=True`` function boundaries are *recovered* from
    the raw code bytes (the Dyninst-on-COTS-binaries scenario, see
    :mod:`repro.analysis.discover`) instead of read from the module's
    recorded ranges.
    """

    def __init__(self, image: Image, use_discovery: bool = False) -> None:
        self.image = image
        self.use_discovery = use_discovery
        self.cfg = ControlFlowGraph()
        self._functions: List[_Function] = []
        self._entry_to_function: Dict[int, _Function] = {}
        #: callee entry -> set of return-site addresses
        self._return_sites: Dict[int, Set[int]] = {}
        #: function entry -> entries it tail-jumps to
        self._tail_jumps: Dict[int, Set[int]] = {}
        #: module name -> code addresses referenced from data relocations
        self._reloc_code_targets: Dict[str, Set[int]] = {}

    # -- phase 1: disassembly ------------------------------------------------

    def _function_ranges(self, module) -> dict:
        if not self.use_discovery:
            return module.function_ranges
        from repro.analysis.discover import discover_functions

        recovered = discover_functions(module).as_function_ranges()
        # PLT stubs are synthesised separately below.
        return {
            name: span for name, span in recovered.items()
            if not name.endswith("@plt")
        }

    def _disassemble(self) -> None:
        for lm in self.image.all_modules():
            module = lm.module
            for name, (start, end) in sorted(
                self._function_ranges(module).items(),
                key=lambda kv: kv[1][0],
            ):
                fn = _Function(name, lm, lm.base + start, lm.base + end)
                self._decode_range(fn, module.code, start, end)
                self._functions.append(fn)
                self._entry_to_function[fn.start] = fn
            # PLT stubs live after the last function; each is a
            # pseudo-function of its own.
            plt_sorted = sorted(module.plt.items(), key=lambda kv: kv[1])
            for index, (import_name, offset) in enumerate(plt_sorted):
                stub_end = (
                    plt_sorted[index + 1][1]
                    if index + 1 < len(plt_sorted)
                    else len(module.code)
                )
                fn = _Function(
                    f"{import_name}@plt", lm,
                    lm.base + offset, lm.base + stub_end,
                )
                fn.is_plt = True
                fn.plt_import = import_name
                self._decode_range(fn, module.code, offset, stub_end)
                self._functions.append(fn)
                self._entry_to_function[fn.start] = fn

    def _decode_range(self, fn: _Function, code: bytes,
                      start: int, end: int) -> None:
        pos = start
        while pos < end:
            insn, length = decode_at(code, pos)
            fn.insns.append((fn.module.base + pos, insn, length))
            pos += length

    # -- phase 2: address-taken & relocation analysis -----------------------------

    def _collect_address_taken(self) -> None:
        taken = self.cfg.address_taken
        # LEA references to function entries.
        for fn in self._functions:
            for addr, insn, length in fn.insns:
                if insn.op is Op.LEA:
                    target = addr + length + insn.rel
                    if target in self._entry_to_function:
                        taken.add(target)
        # Data relocations (function-pointer tables, vtables).
        for lm in self.image.all_modules():
            targets: Set[int] = set()
            for reloc in lm.module.relocations:
                value = self.image.memory.read_u64(
                    lm.data_base + reloc.data_offset
                )
                targets.add(value)
                if value in self._entry_to_function:
                    taken.add(value)
            self._reloc_code_targets[lm.name] = targets
        # Exported functions are conservatively considered address-taken
        # (dlsym-style lookups are invisible to static analysis).
        for lm in self.image.all_modules():
            for sym in lm.module.symbols.values():
                if sym.is_function:
                    taken.add(lm.base + sym.offset)

    # -- phase 3: TypeArmor arity analysis ------------------------------------------

    def _function_arity(self, fn: _Function) -> int:
        """Argument registers consumed: read before written (linear scan)."""
        written: Set[int] = set()
        consumed: Set[int] = set()
        for _, insn, _ in fn.insns:
            if insn.op is Op.SYSCALL:
                # Syscall argument consumption is not caller-visible.
                written.update(range(6))
                continue
            for reg in _instruction_reads(insn):
                if reg in _ARG_REGS and reg not in written:
                    consumed.add(reg)
            for reg in _instruction_writes(insn):
                written.add(reg)
        return max(consumed) if consumed else 0

    @staticmethod
    def _callsite_arity(fn: _Function, call_index: int) -> int:
        """Argument registers prepared before an indirect call."""
        prepared: Set[int] = set()
        index = call_index - 1
        scanned = 0
        while index >= 0 and scanned < 16:
            _, insn, _ = fn.insns[index]
            if insn.op in (Op.CALL, Op.CALLR, Op.SYSCALL, Op.RET):
                break
            for reg in _instruction_writes(insn):
                if reg in _ARG_REGS:
                    prepared.add(reg)
            index -= 1
            scanned += 1
        return max(prepared) if prepared else _UNKNOWN_ARITY

    # -- phase 4: blocks and edges -----------------------------------------------------

    _TERMINATORS = frozenset(
        {Op.JMP, Op.JCC, Op.JMPR, Op.CALL, Op.CALLR, Op.RET, Op.SYSCALL,
         Op.HALT}
    )

    def _split_blocks(self, fn: _Function) -> List[BasicBlock]:
        leaders: Set[int] = {fn.start}
        for addr, insn, length in fn.insns:
            if insn.op in (Op.JMP, Op.JCC):
                target = addr + length + insn.rel
                if fn.start <= target < fn.end:
                    leaders.add(target)
            if insn.op in self._TERMINATORS and addr + length < fn.end:
                leaders.add(addr + length)
        blocks: List[BasicBlock] = []
        current_start: Optional[int] = None
        terminator: Optional[int] = None
        for addr, insn, length in fn.insns:
            if addr in leaders and current_start is not None:
                blocks.append(
                    BasicBlock(current_start, addr, fn.module.name,
                               fn.name, terminator)
                )
                current_start = None
            if current_start is None:
                current_start = addr
                terminator = None
            if insn.op in self._TERMINATORS:
                terminator = addr
                blocks.append(
                    BasicBlock(current_start, addr + length,
                               fn.module.name, fn.name, terminator)
                )
                current_start = None
        if current_start is not None:
            blocks.append(
                BasicBlock(current_start, fn.end, fn.module.name,
                           fn.name, None)
            )
        return blocks

    def _got_target(self, fn: _Function) -> Optional[int]:
        """The resolved target of a PLT stub (read through the GOT)."""
        if not fn.is_plt or fn.plt_import is None:
            return None
        lm = fn.module
        got_offset = lm.module.got[fn.plt_import]
        return self.image.memory.read_u64(lm.data_base + got_offset)

    def build(self) -> ControlFlowGraph:
        tel = get_telemetry()
        with tel.tracer.span("ocfg.disassemble"):
            self._disassemble()
        with tel.tracer.span("ocfg.address_taken"):
            self._collect_address_taken()
        with tel.tracer.span("ocfg.arity"):
            for fn in self._functions:
                self.cfg.function_arity[fn.name] = self._function_arity(fn)

        with tel.tracer.span("ocfg.blocks_edges"):
            # Candidate indirect-call targets: address-taken function
            # entries keyed by arity for the TypeArmor match.
            taken_functions = [
                (entry,
                 self.cfg.function_arity[self._entry_to_function[entry].name])
                for entry in sorted(self.cfg.address_taken)
                if entry in self._entry_to_function
            ]

            all_blocks: Dict[int, BasicBlock] = {}
            for fn in self._functions:
                for block in self._split_blocks(fn):
                    all_blocks[block.start] = block
                    self.cfg.add_block(block)

            deferred_rets: List[Tuple[_Function, int]] = []  # (fn, ret addr)

            for fn in self._functions:
                index_of = {
                    addr: i for i, (addr, _, _) in enumerate(fn.insns)
                }
                for block in (
                    b for b in all_blocks.values()
                    if b.function == fn.name and b.module == fn.module.name
                    and fn.start <= b.start < fn.end
                ):
                    self._block_edges(
                        fn, block, all_blocks, taken_functions,
                        index_of, deferred_rets,
                    )

        with tel.tracer.span("ocfg.returns"):
            self._propagate_tail_calls()
            self._connect_returns(deferred_rets, all_blocks)
        if tel.enabled:
            tel.metrics.counter("ocfg.builds").inc()
            tel.metrics.counter("ocfg.functions_disassembled").inc(
                len(self._functions)
            )
        return self.cfg

    def _block_edges(
        self,
        fn: _Function,
        block: BasicBlock,
        all_blocks: Dict[int, BasicBlock],
        taken_functions: List[Tuple[int, int]],
        index_of: Dict[int, int],
        deferred_rets: List[Tuple["_Function", int]],
    ) -> None:
        cfg = self.cfg
        if block.terminator is None:
            # Straight-line block flowing into the next leader.
            if block.end in all_blocks:
                cfg.add_edge(
                    Edge(block.start, block.end, EdgeKind.FALLTHROUGH,
                         block.end)
                )
            return
        term_index = index_of[block.terminator]
        addr, insn, length = fn.insns[term_index]
        next_addr = addr + length
        op = insn.op

        if op is Op.HALT:
            return
        if op is Op.JMP:
            target = next_addr + insn.rel
            cfg.add_edge(Edge(block.start, target, EdgeKind.DIRECT_JMP, addr))
            target_fn = self._entry_to_function.get(target)
            if target_fn is not None and target != fn.start:
                # Inter-procedural jump: a tail call (§4.1).
                self._tail_jumps.setdefault(fn.start, set()).add(target)
            return
        if op is Op.JCC:
            target = next_addr + insn.rel
            cfg.add_edge(Edge(block.start, target, EdgeKind.COND_TAKEN, addr))
            if next_addr in all_blocks:
                cfg.add_edge(
                    Edge(block.start, next_addr, EdgeKind.FALLTHROUGH, addr)
                )
            return
        if op is Op.SYSCALL:
            if next_addr in all_blocks:
                cfg.add_edge(
                    Edge(block.start, next_addr, EdgeKind.FALLTHROUGH, addr)
                )
            return
        if op is Op.CALL:
            target = next_addr + insn.rel
            cfg.add_edge(Edge(block.start, target, EdgeKind.DIRECT_CALL, addr))
            callee = self._effective_callee(target)
            self._return_sites.setdefault(callee, set()).add(next_addr)
            return
        if op is Op.CALLR:
            site_arity = self._callsite_arity(fn, term_index)
            cfg.indirect_targets.setdefault(addr, set())
            for entry, arity in taken_functions:
                if arity <= site_arity:
                    cfg.add_edge(
                        Edge(block.start, entry, EdgeKind.INDIRECT_CALL, addr)
                    )
                    callee = self._effective_callee(entry)
                    self._return_sites.setdefault(callee, set()).add(
                        next_addr
                    )
            return
        if op is Op.JMPR:
            cfg.indirect_targets.setdefault(addr, set())
            got_target = self._got_target(fn)
            if got_target is not None:
                cfg.add_edge(
                    Edge(block.start, got_target, EdgeKind.INDIRECT_JMP, addr)
                )
                # The stub tail-jumps into the resolved function; returns
                # from it serve the original caller.
                self._tail_jumps.setdefault(fn.start, set()).add(got_target)
                return
            targets = self._jump_table_targets(fn)
            for target in targets:
                cfg.add_edge(
                    Edge(block.start, target, EdgeKind.INDIRECT_JMP, addr)
                )
            return
        if op is Op.RET:
            deferred_rets.append((fn, addr))
            return

    def _effective_callee(self, entry: int) -> int:
        """Resolve a call target through a PLT stub to the real callee."""
        fn = self._entry_to_function.get(entry)
        if fn is not None and fn.is_plt:
            resolved = self._got_target(fn)
            if resolved is not None:
                return resolved
        return entry

    def _jump_table_targets(self, fn: _Function) -> Set[int]:
        """Conservative indirect-jump target resolution (non-PLT)."""
        module_targets = self._reloc_code_targets.get(fn.module.name, set())
        in_function = {
            t for t in module_targets if fn.start <= t < fn.end
        }
        if in_function:
            return in_function
        conservative = {
            t for t in module_targets
            if self.image.module_of(t) is not None
        }
        conservative.update(
            entry for entry in self.cfg.address_taken
            if self._entry_to_function.get(entry) is not None
            and self._entry_to_function[entry].module is fn.module
        )
        return conservative

    def _propagate_tail_calls(self) -> None:
        """Return sites flow through the tail-call closure.

        If F tail-jumps to G (directly or transitively), G's returns may
        land at F's return sites.
        """
        changed = True
        while changed:
            changed = False
            for src_entry, targets in self._tail_jumps.items():
                sites = self._return_sites.get(src_entry)
                if not sites:
                    continue
                for target in targets:
                    resolved = self._effective_callee(target)
                    bucket = self._return_sites.setdefault(resolved, set())
                    before = len(bucket)
                    bucket.update(sites)
                    if len(bucket) != before:
                        changed = True

    def _connect_returns(
        self,
        deferred_rets: List[Tuple[_Function, int]],
        all_blocks: Dict[int, BasicBlock],
    ) -> None:
        cfg = self.cfg
        for fn, ret_addr in deferred_rets:
            cfg.indirect_targets.setdefault(ret_addr, set())
            block = cfg.block_at(ret_addr)
            if block is None:  # pragma: no cover - defensive
                continue
            for site in self._return_sites.get(fn.start, ()):  # noqa: B020
                target_block = cfg.block_at(site)
                if target_block is not None:
                    cfg.add_edge(
                        Edge(block.start, target_block.start,
                             EdgeKind.RET, ret_addr)
                    )
