"""Control-flow-graph data structures (the O-CFG of the paper)."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Set, Tuple


class EdgeKind(enum.Enum):
    """Edge classification; the ITC construction only cares about the
    direct/indirect split, finer kinds feed the slow-path policies."""

    DIRECT_JMP = "direct_jmp"
    COND_TAKEN = "cond_taken"
    FALLTHROUGH = "fallthrough"
    DIRECT_CALL = "direct_call"
    INDIRECT_JMP = "indirect_jmp"
    INDIRECT_CALL = "indirect_call"
    RET = "ret"

    @property
    def is_indirect(self) -> bool:
        return self in (
            EdgeKind.INDIRECT_JMP,
            EdgeKind.INDIRECT_CALL,
            EdgeKind.RET,
        )


@dataclass(frozen=True)
class Edge:
    """A CFG edge from the exit of one basic block to the entry of
    another.  ``branch_addr`` is the transferring instruction."""

    src: int  # entry address of the source basic block
    dst: int  # entry address of the target basic block
    kind: EdgeKind
    branch_addr: int

    @property
    def is_indirect(self) -> bool:
        return self.kind.is_indirect


@dataclass
class BasicBlock:
    """A maximal straight-line code region."""

    start: int
    end: int  # exclusive
    module: str
    function: Optional[str] = None
    #: address of the terminating CoFI, if the block ends in one.
    terminator: Optional[int] = None

    def __contains__(self, addr: int) -> bool:
        return self.start <= addr < self.end


@dataclass
class ControlFlowGraph:
    """The conservative O-CFG over a whole loaded image."""

    blocks: Dict[int, BasicBlock] = field(default_factory=dict)
    edges: List[Edge] = field(default_factory=list)
    #: indirect branch instruction address -> allowed target block entries
    indirect_targets: Dict[int, Set[int]] = field(default_factory=dict)
    #: per-function computed arity (consumed argument registers)
    function_arity: Dict[str, int] = field(default_factory=dict)
    #: address-taken function entry addresses
    address_taken: Set[int] = field(default_factory=set)

    _out: Dict[int, List[Edge]] = field(default_factory=dict)
    _in: Dict[int, List[Edge]] = field(default_factory=dict)
    _sorted_starts: List[int] = field(default_factory=list)

    # -- construction ------------------------------------------------------

    def add_block(self, block: BasicBlock) -> None:
        self.blocks[block.start] = block
        self._sorted_starts = []

    def add_edge(self, edge: Edge) -> None:
        self.edges.append(edge)
        self._out.setdefault(edge.src, []).append(edge)
        self._in.setdefault(edge.dst, []).append(edge)
        if edge.is_indirect:
            self.indirect_targets.setdefault(edge.branch_addr, set()).add(
                edge.dst
            )

    # -- queries ---------------------------------------------------------------

    def successors(self, block_start: int) -> List[Edge]:
        return self._out.get(block_start, [])

    def predecessors(self, block_start: int) -> List[Edge]:
        return self._in.get(block_start, [])

    def block_at(self, addr: int) -> Optional[BasicBlock]:
        """The block whose range contains ``addr`` (binary search)."""
        import bisect

        if not self._sorted_starts:
            self._sorted_starts = sorted(self.blocks)
        starts = self._sorted_starts
        index = bisect.bisect_right(starts, addr) - 1
        if index < 0:
            return None
        block = self.blocks[starts[index]]
        return block if addr in block else None

    def indirect_target_blocks(self) -> Set[int]:
        """Entries of blocks targeted by at least one indirect edge —
        the IT-BBs of §4.2."""
        out: Set[int] = set()
        for edge in self.edges:
            if edge.is_indirect:
                out.add(edge.dst)
        return out

    def indirect_branch_count(self) -> int:
        return len(self.indirect_targets)

    def stats(self) -> Dict[str, int]:
        """|V| and |E| split by module class (Table 4 columns)."""
        exec_blocks = lib_blocks = 0
        for block in self.blocks.values():
            if block.module.endswith(".so") or block.module == "vdso":
                lib_blocks += 1
            else:
                exec_blocks += 1
        exec_edges = lib_edges = 0
        for edge in self.edges:
            block = self.blocks.get(edge.src)
            if block is not None and (
                block.module.endswith(".so") or block.module == "vdso"
            ):
                lib_edges += 1
            else:
                exec_edges += 1
        return {
            "exec_blocks": exec_blocks,
            "lib_blocks": lib_blocks,
            "exec_edges": exec_edges,
            "lib_edges": lib_edges,
            "blocks": len(self.blocks),
            "edges": len(self.edges),
        }
