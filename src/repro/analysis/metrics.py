"""CFI strength metrics: AIA (Average Indirect targets Allowed), §4.3.

AIA = (1/n) * sum(|T_i|) over the n indirect branch instructions, where
T_i is the allowed target set of branch i.  Smaller is stronger.

Four variants appear in the paper's Table 4:

- ``aia_ocfg``: over the conservative O-CFG,
- ``aia_itc``: over the reconstructed ITC-CFG (coarser: direct-fork
  information is lost, Figure 4's derogation),
- ``aia_itc_with_tnt``: the parenthesised Table 4 column — with TNT
  information attached to edges the direct forks are recovered and the
  effective AIA returns to the O-CFG level,
- ``flowguard_aia``: the deployed strength, combining the slow path's
  fine-grained analysis with the ITC fallback by the trained credit
  ratio (the §7.1.1 formula).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.analysis.cfg import ControlFlowGraph, EdgeKind

if TYPE_CHECKING:  # pragma: no cover
    from repro.itccfg.construct import ITCCFG


def aia_ocfg(cfg: ControlFlowGraph) -> float:
    """AIA over the conservative O-CFG's indirect branch instructions."""
    if not cfg.indirect_targets:
        return 0.0
    total = sum(len(targets) for targets in cfg.indirect_targets.values())
    return total / len(cfg.indirect_targets)


def aia_fine(cfg: ControlFlowGraph) -> float:
    """AIA under the slow path's fine-grained policy.

    Backward edges are enforced by a shadow stack (single-target
    returns); forward edges keep the TypeArmor-restricted sets.
    """
    if not cfg.indirect_targets:
        return 0.0
    ret_branches = {
        edge.branch_addr
        for edge in cfg.edges
        if edge.kind is EdgeKind.RET
    }
    total = 0.0
    for branch, targets in cfg.indirect_targets.items():
        if branch in ret_branches:
            total += 1.0 if targets else 0.0
        else:
            total += len(targets)
    return total / len(cfg.indirect_targets)


def aia_itc(itc: "ITCCFG") -> float:
    """AIA over the ITC-CFG: average out-degree of the IT-BB nodes."""
    if not itc.nodes:
        return 0.0
    total = sum(len(itc.successors(node)) for node in itc.nodes)
    return total / len(itc.nodes)


def aia_itc_with_tnt(itc: "ITCCFG") -> float:
    """Effective AIA when edges carry TNT information.

    With the TNT string recorded on an edge, the direct-branch forks
    between two IT-BBs are pinned down: given a node and an observed TNT
    sequence, only the targets of the *one* underlying indirect branch
    selected by that sequence remain reachable.  The average therefore
    reverts to the per-branch target count, computed here by grouping
    each node's out-edges by their underlying branch instruction.
    """
    groups = {}
    for edge in itc.edges:
        groups.setdefault((edge.src, edge.branch_addr), set()).add(edge.dst)
    if not groups:
        return 0.0
    total = sum(len(targets) for targets in groups.values())
    return total / len(groups)


def flowguard_aia(cred_ratio: float, fine: float, itc: float) -> float:
    """The §7.1.1 combination formula.

    ``AIA_ratio = ratio * AIA_fine + (1 - ratio) * AIA_itc``
    """
    if not 0.0 <= cred_ratio <= 1.0:
        raise ValueError("cred_ratio must be within [0, 1]")
    return cred_ratio * fine + (1.0 - cred_ratio) * itc
