"""Function-boundary discovery from raw code bytes.

The paper's static analysis runs on stripped-ish COTS binaries through
Dyninst, which *discovers* function boundaries rather than trusting
compiler metadata.  This module reproduces that step: given only a
module's code bytes, exported symbols and relocations, it recovers the
function map that :mod:`repro.analysis.build` consumes.

Entry points come from three sources (exactly Dyninst's seeds):

1. exported function symbols,
2. direct ``call`` targets found by linear sweep,
3. address-taken code locations (``lea`` targets and data relocations).

Boundaries are the next entry point (the toolchain packs functions
contiguously, as linkers do); a verification sweep confirms each range
decodes cleanly.  ``verify_against_ground_truth`` lets tests check the
recovered map against the builder's recorded ranges.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.binary.module import Module
from repro.isa.encoding import DecodeError, decode_at
from repro.isa.instructions import Op


@dataclass
class DiscoveredFunctions:
    """The recovered function map of one module."""

    #: sorted entry offset -> (end offset, name or synthetic label)
    ranges: Dict[int, Tuple[int, str]] = field(default_factory=dict)
    #: entries that failed the decode sweep (data mistaken for code).
    rejected: List[int] = field(default_factory=list)

    def function_at(self, offset: int) -> Optional[str]:
        for start, (end, name) in self.ranges.items():
            if start <= offset < end:
                return name
        return None

    def as_function_ranges(self) -> Dict[str, Tuple[int, int]]:
        return {
            name: (start, end)
            for start, (end, name) in self.ranges.items()
        }


def _linear_sweep_targets(code: bytes) -> Tuple[Set[int], Set[int]]:
    """(direct call targets, lea targets) from a whole-code sweep."""
    calls: Set[int] = set()
    leas: Set[int] = set()
    pos = 0
    while pos < len(code):
        try:
            insn, length = decode_at(code, pos)
        except DecodeError:
            pos += 1
            continue
        if insn.op is Op.CALL:
            target = pos + length + insn.rel
            if 0 <= target < len(code):
                calls.add(target)
        elif insn.op is Op.LEA:
            target = pos + length + insn.rel
            if 0 <= target < len(code):
                leas.add(target)
        pos += length
    return calls, leas


def _sweep_decodes(code: bytes, start: int, end: int) -> bool:
    pos = start
    while pos < end:
        try:
            _, length = decode_at(code, pos)
        except DecodeError:
            return False
        pos += length
    return pos == end


def discover_functions(module: Module) -> DiscoveredFunctions:
    """Recover function boundaries from the module image alone."""
    code = module.code
    named: Dict[int, str] = {}

    # Seed 1: exported function symbols.
    for sym in module.symbols.values():
        if sym.is_function:
            named[sym.offset] = sym.name
    # PLT stubs are exported linkage structure, not symbols.
    for import_name, offset in module.plt.items():
        named.setdefault(offset, f"{import_name}@plt")

    calls, leas = _linear_sweep_targets(code)
    entries: Set[int] = set(named)
    entries.update(calls)

    # Seed 3: address-taken code via relocations.  Relocation symbols
    # resolve through local_symbols; only offsets inside the code
    # section count (data-object relocations are not entries).
    reloc_offsets = set()
    for reloc in module.relocations:
        local = module.local_symbols.get(reloc.symbol)
        if local is not None and 0 <= local < len(code):
            reloc_offsets.add(local)
    # LEA targets and reloc targets are *potential* entries; keep only
    # those not inside an already-seeded function body (jump-table case
    # labels point mid-function and must not split it).
    candidate_entries = sorted(entries)

    def inside_existing(offset: int) -> bool:
        import bisect

        index = bisect.bisect_right(candidate_entries, offset) - 1
        if index < 0:
            return False
        return candidate_entries[index] != offset

    for taken in sorted(leas | reloc_offsets):
        if not inside_existing(taken):
            entries.add(taken)
            candidate_entries = sorted(entries)

    discovered = DiscoveredFunctions()
    ordered = sorted(entries)
    for index, start in enumerate(ordered):
        end = ordered[index + 1] if index + 1 < len(ordered) else len(code)
        if not _sweep_decodes(code, start, end):
            discovered.rejected.append(start)
            continue
        name = named.get(start, f"sub_{start:x}")
        discovered.ranges[start] = (end, name)
    return discovered


def verify_against_ground_truth(
    module: Module, discovered: DiscoveredFunctions
) -> List[str]:
    """Differences between recovery and the builder's recorded ranges.

    Returns human-readable discrepancy strings (empty = perfect match
    on entries; discovery may legitimately split a recorded function at
    an internal address-taken label, so containment — every recorded
    entry recovered with a consistent name — is what is verified).
    """
    problems: List[str] = []
    for name, (start, end) in module.function_ranges.items():
        entry = discovered.ranges.get(start)
        if entry is None:
            problems.append(f"missed function {name!r} at {start:#x}")
            continue
        got_end, got_name = entry
        if got_name != name and not got_name.startswith("sub_"):
            problems.append(
                f"{name!r} at {start:#x} recovered as {got_name!r}"
            )
        if got_end > end:
            problems.append(
                f"{name!r} range overruns: {got_end:#x} > {end:#x}"
            )
    return problems
