"""Hot O-CFG/ITC-CFG reload: versioned pipelines, drain-then-retire.

A "binary version" in the simulator is one
:class:`~repro.pipeline.FlowGuardPipeline` build: the trained O-CFG,
ITC-CFG, credit labels and path index for a program.  A reload builds
a *fresh* pipeline (bypassing the shared ``server_pipeline`` cache —
a genuinely new version object, retrained from the same corpus) and
atomically swaps every affected
:class:`~repro.monitor.flowguard.ProtectedProcess` onto it between
scheduler rounds via :meth:`FlowGuardMonitor.rebind`.

Verdicts are computed eagerly at ``dispatcher.submit()`` and only
*applied* at task completion, so the swap can never change or drop a
check in flight — the registry records how many checks were in flight
at swap time and marks the old version retired only once every one of
them has completed (the "old index retired after drain" contract).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional


@dataclass
class PipelineVersion:
    """One live (or retired) pipeline version for a program."""

    version: int
    program: str
    #: tenant clock when this version was activated.
    activated_at: float
    #: pids swapped onto this version.
    pids: List[int] = field(default_factory=list)
    #: checks in flight (submitted, not yet due) at activation — the
    #: predecessor version must outlive all of them.
    inflight_at_swap: int = 0
    #: tenant clock when the *predecessor* finished draining and this
    #: version's predecessor was retired (None while still draining).
    retired_at: Optional[float] = None

    def to_dict(self) -> dict:
        return {
            "version": self.version,
            "program": self.program,
            "activated_at": self.activated_at,
            "pids": list(self.pids),
            "inflight_at_swap": self.inflight_at_swap,
            "retired_at": self.retired_at,
        }


def fresh_pipeline(program: str):
    """A newly built pipeline version (cache bypassed on purpose)."""
    from repro.experiments.common import server_pipeline

    return server_pipeline.__wrapped__(program)


class ReloadRegistry:
    """Per-tenant version bookkeeping for hot reloads."""

    def __init__(self) -> None:
        #: program -> current version number (v1 is the initial build).
        self._current: Dict[str, int] = {}
        self.versions: List[PipelineVersion] = []
        #: versions whose predecessor still has checks draining:
        #: version -> task ids in flight at swap time.
        self._draining: Dict[int, List[int]] = {}
        self._seq = 0

    def activate(
        self,
        program: str,
        now: float,
        pids: List[int],
        inflight_task_ids: List[int],
    ) -> PipelineVersion:
        """Record a swap to a freshly built version of ``program``."""
        self._seq += 1
        self._current[program] = self._current.get(program, 1) + 1
        version = PipelineVersion(
            version=self._current[program],
            program=program,
            activated_at=now,
            pids=list(pids),
            inflight_at_swap=len(inflight_task_ids),
        )
        self.versions.append(version)
        self._draining[self._seq] = list(inflight_task_ids)
        version._key = self._seq  # type: ignore[attr-defined]
        return version

    def retire_drained(self, dispatcher, now: float) -> int:
        """Retire predecessors whose in-flight checks have all landed.

        Returns how many versions finished draining this call.  A
        version drains when every check that was in flight at its swap
        has a completion time at or before ``now`` — exactly the "old
        index retired after drain" semantics, checked against the
        dispatcher's task table rather than trusted.
        """
        by_id = {task.task_id: task for task in dispatcher.tasks}
        retired = 0
        for version in self.versions:
            if version.retired_at is not None:
                continue
            pending = self._draining.get(
                getattr(version, "_key", -1), []
            )
            if all(
                task_id in by_id
                and by_id[task_id].finished_at <= now
                for task_id in pending
            ):
                version.retired_at = now
                retired += 1
        return retired

    @property
    def undrained(self) -> int:
        """Versions whose predecessor is still draining."""
        return sum(1 for v in self.versions if v.retired_at is None)

    def to_dict(self) -> dict:
        return {
            "reloads": len(self.versions),
            "undrained": self.undrained,
            "versions": [v.to_dict() for v in self.versions],
        }
