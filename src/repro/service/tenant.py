"""One tenant at runtime: an isolated fleet stack driven round-by-round.

Isolation is structural, not cooperative: every tenant owns a complete
fleet — kernel, monitor, dispatcher, worker pool, scheduler, clock,
fault injector, and a tenant-scoped
:class:`~repro.resilience.ledger.DegradationLedger` — built by the same
:func:`~repro.loadgen.engine.build_load_service` the bench harness
uses.  Nothing is shared between tenants except the process-wide
telemetry registry (where every series carries the tenant label) and
the admission layer above.  A noisy tenant's corrupt rings, retries and
quarantines therefore *cannot* appear in a clean tenant's books, and a
clean tenant's schedule is bit-identical to a solo run.
"""

from __future__ import annotations

from typing import Dict, List

from repro.loadgen.engine import build_load_service, summarize_load_point
from repro.telemetry import get_telemetry

from repro.service.config import TenantSpec
from repro.service.quota import TokenBucket
from repro.service.reload import PipelineVersion, ReloadRegistry, fresh_pipeline


class TenantRuntime:
    """A tenant's fleet, quota bucket, version registry, and results."""

    def __init__(self, spec: TenantSpec) -> None:
        spec.validate()
        self.spec = spec
        self.name = spec.name
        self.scenario = spec.resolve()
        self.fleet, self.tracker, self.attacked = build_load_service(
            self.scenario,
            spec.connections,
            workers=spec.workers,
            seed=spec.seed,
            tenant=spec.name,
            max_sessions=spec.max_sessions,
        )
        self.bucket = TokenBucket(spec.quota_rate, spec.quota_burst)
        self.registry = ReloadRegistry()
        self.finished = False
        self._reloaded = False
        self._verdict_frontier = 0
        self._result = None
        self._summary = None

    # -- driving -------------------------------------------------------------

    @property
    def clock(self):
        return self.fleet.clock

    def step(self) -> bool:
        """One scheduler round + quota charge; False when drained.

        The quota charge and throttle stall depend only on this
        tenant's own clock and config, so an unthrottled tenant's
        schedule (and digest) is untouched by this wrapper.
        """
        if self.finished:
            return False
        sched = self.fleet.scheduler
        if (
            self.spec.reload_at_round
            and not self._reloaded
            and sched.rounds >= self.spec.reload_at_round
        ):
            self.reload()
        before = self.clock.now
        more = sched.step_round()
        spent = self.clock.now - before
        stall = self.bucket.charge(spent)
        tel = get_telemetry()
        if stall > 0:
            self.clock.advance_to(self.clock.now + stall)
            # Throttle stalls waste no checker cycles (cycles=0 keeps
            # the wasted-cycle ledger balanced); the stall length lives
            # in the detail and the service.throttle_cycles counter.
            self.fleet.monitor.degradations.record(
                "throttle",
                detail=f"stall {stall:.1f} cycles",
                at=self.clock.now,
            )
            if tel.enabled:
                tel.metrics.counter("service.throttle_cycles").inc(
                    stall, tenant=self.name
                )
        if tel.enabled:
            tel.metrics.counter("service.rounds").inc(tenant=self.name)
        self.registry.retire_drained(self.fleet.dispatcher, self.clock.now)
        if not more:
            sched.finalize()
            self.registry.retire_drained(
                self.fleet.dispatcher, self.clock.now
            )
            self.finished = True
        return more

    def run_to_completion(self) -> None:
        """Drive the tenant synchronously (tests / solo baselines)."""
        while self.step():
            pass

    # -- hot reload ----------------------------------------------------------

    def reload(self) -> List[PipelineVersion]:
        """Swap every live process onto a freshly built pipeline.

        Called between rounds only; in-flight checks keep their
        already-computed verdicts, and each displaced version is
        retired once those checks have drained.
        """
        self._reloaded = True
        now = self.clock.now
        dispatcher = self.fleet.dispatcher
        inflight = [
            task.task_id
            for task in dispatcher.tasks
            if task.finished_at > now
        ]
        programs: List[str] = []
        for entry in self.fleet.scheduler.entries:
            if not entry.done and entry.proc.name not in programs:
                programs.append(entry.proc.name)
        versions: List[PipelineVersion] = []
        for program in programs:
            pipeline = fresh_pipeline(program)
            pids: List[int] = []
            for entry in self.fleet.scheduler.entries:
                if entry.done or entry.proc.name != program:
                    continue
                self.fleet.monitor.rebind(
                    entry.pp,
                    pipeline.labeled,
                    pipeline.ocfg,
                    path_index=pipeline.path_index,
                )
                pids.append(entry.proc.pid)
            versions.append(
                self.registry.activate(program, now, pids, inflight)
            )
        tel = get_telemetry()
        if tel.enabled:
            tel.metrics.counter("service.reloads").inc(
                len(versions), tenant=self.name
            )
        return versions

    # -- streaming -----------------------------------------------------------

    def due_events(self) -> List[dict]:
        """Verdict/quarantine events newly due on this tenant's clock."""
        now = self.clock.now
        tasks = self.fleet.dispatcher.tasks
        events: List[dict] = []
        while self._verdict_frontier < len(tasks):
            task = tasks[self._verdict_frontier]
            if task.finished_at > now and not self.finished:
                break
            events.append(
                {
                    "type": "verdict",
                    "tenant": self.name,
                    "task_id": task.task_id,
                    "pid": task.pid,
                    "kind": task.kind,
                    "verdict": task.verdict,
                    "at": task.finished_at,
                }
            )
            self._verdict_frontier += 1
        return events

    # -- results -------------------------------------------------------------

    def result(self):
        """The tenant's FleetResult (memoized; finalizes the fleet)."""
        if self._result is None:
            if not self.finished:
                self.run_to_completion()
            if self.fleet.decoder is not None:
                self.fleet.decoder.close()
            self._result = self.fleet._build_result()
        return self._result

    def summary(self):
        """The tenant's LoadPointResult distilled from its run."""
        if self._summary is None:
            self._summary = summarize_load_point(
                self.scenario,
                self.spec.connections,
                self.fleet,
                self.tracker,
                self.attacked,
                self.result(),
            )
        return self._summary

    def report(self) -> dict:
        """This tenant's entry in the StatsReport v4 ``tenants``
        section: verdict counts, latency percentiles, quota/shed
        counters, error-budget burn, and the exactness verdicts."""
        summary = self.summary()
        result = self.result()
        ledger = self.fleet.monitor.degradations
        verdicts: Dict[str, int] = {}
        for task in self.fleet.dispatcher.tasks:
            verdicts[task.verdict] = verdicts.get(task.verdict, 0) + 1
        checks = len(self.fleet.dispatcher.tasks)
        events = len(ledger)
        return {
            "scenario": self.scenario.name,
            "connections": self.spec.connections,
            "offered": summary.offered,
            "completed": summary.completed,
            "shed": ledger.count("shed-load"),
            # Achieved/offered ratio: under closed loops this is 1.0
            # minus sheds (completions gate arrivals); under open-loop
            # schedules it measures how much of the tenant's scheduled
            # demand the service absorbed.  The service-level fairness
            # spread is the max-min gap of these ratios.
            "fairness": {
                "offered": summary.offered,
                "achieved": summary.completed,
                "ratio": (
                    summary.completed / summary.offered
                    if summary.offered
                    else 1.0
                ),
            },
            "throughput": summary.throughput,
            "latency": dict(summary.latency),
            "verdicts": {k: verdicts[k] for k in sorted(verdicts)},
            "checks": checks,
            "dropped_checks": self.fleet.dispatcher.dropped_checks,
            "quota": self.bucket.to_dict(),
            "quarantines": len(self.fleet.dispatcher.quarantines),
            "detections": result.detections,
            "degradations": ledger.counts(),
            "error_budget": {
                "events": events,
                "burn": events / max(1, checks),
            },
            "reloads": {
                "count": len(self.registry.versions),
                "undrained": self.registry.undrained,
            },
            "makespan": summary.makespan,
            "accounting_exact": summary.accounting_exact,
            "ledger_exact": summary.ledger_exact,
            "digest": summary.digest,
        }
