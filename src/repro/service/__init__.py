"""Multi-tenant async serving front-end over the fleet simulator.

``repro.service`` turns the single-run fleet harness into a serving
system: named tenants, each an isolated fault domain with its own
admission quota, driven concurrently on an asyncio event loop with
streaming verdicts, hot O-CFG/ITC-CFG reload, and graceful drain.
See :mod:`repro.service.service` for the front-end itself.
"""

from repro.service.config import (
    BUILTIN_SERVE_CONFIGS,
    SERVE_SCHEMA_VERSION,
    ServeConfig,
    TenantSpec,
    builtin_serve_config,
    resolve_serve_config,
)
from repro.service.quota import TokenBucket
from repro.service.reload import (
    PipelineVersion,
    ReloadRegistry,
    fresh_pipeline,
)
from repro.service.service import (
    ServiceResult,
    TraceCheckService,
    run_service,
)
from repro.service.tenant import TenantRuntime

__all__ = [
    "BUILTIN_SERVE_CONFIGS",
    "SERVE_SCHEMA_VERSION",
    "ServeConfig",
    "TenantSpec",
    "builtin_serve_config",
    "resolve_serve_config",
    "TokenBucket",
    "PipelineVersion",
    "ReloadRegistry",
    "fresh_pipeline",
    "ServiceResult",
    "TraceCheckService",
    "run_service",
    "TenantRuntime",
]
