"""Per-tenant quota: a token bucket over the tenant's own virtual cycles.

The serving quota is the cgroup-CPU-bandwidth idiom ported onto the
simulator: a tenant whose ``rate`` is below 1.0 may consume at most
that fraction of its own virtual timeline.  Each scheduler round
spends the cycles it executed and refills ``rate`` tokens per cycle;
when the bucket goes negative the tenant owes a *throttle stall* long
enough to earn the deficit back (``deficit / rate`` cycles of idle),
which dilates its timeline by exactly ``1 / rate`` in steady state.

Crucially the charge is a pure function of the tenant's **own** config
and schedule — neighbors never appear in the formula — so an
unthrottled tenant (``rate >= 1.0``) takes the untouched code path and
runs bit-identical to a solo fleet, which is the isolation invariant
the service bench gates on.
"""

from __future__ import annotations


class TokenBucket:
    """Deterministic cycle-denominated token bucket."""

    def __init__(self, rate: float = 1.0, burst: float = 0.0) -> None:
        if rate <= 0:
            raise ValueError("quota rate must be positive")
        if burst < 0:
            raise ValueError("quota burst must be >= 0")
        self.rate = float(rate)
        self.burst = float(burst)
        self.tokens = float(burst)
        #: total stall cycles charged so far.
        self.throttle_cycles = 0.0
        #: number of rounds that ended in a throttle stall.
        self.throttles = 0

    @property
    def armed(self) -> bool:
        """Whether this bucket can ever throttle (rate below parity)."""
        return self.rate < 1.0

    def charge(self, spent: float) -> float:
        """Account ``spent`` own-cycles; the stall owed (0 if none).

        The bucket refills while the tenant runs (``rate * spent``)
        and during the stall it pays out (``rate * stall`` covers the
        deficit exactly), so after a charged stall the bucket sits at
        zero — steady-state utilisation converges to ``rate``.
        """
        if not self.armed or spent <= 0:
            return 0.0
        self.tokens += (self.rate - 1.0) * spent
        if self.tokens >= 0:
            return 0.0
        stall = -self.tokens / self.rate
        self.tokens = 0.0
        self.throttles += 1
        self.throttle_cycles += stall
        return stall

    def to_dict(self) -> dict:
        return {
            "rate": self.rate,
            "burst": self.burst,
            "throttles": self.throttles,
            "throttle_cycles": self.throttle_cycles,
        }
