"""The multi-tenant async serving front-end (``repro service``).

:class:`TraceCheckService` admits trace-check work from multiple named
tenants and drives each tenant's isolated fleet as its own asyncio
task.  The event loop's FIFO ready queue interleaves tenants
round-robin in config order, one scheduler round per turn — fully
deterministic, so the whole service run is reproducible byte-for-byte
(each tenant's verdict digest is a pure function of its own spec).

Per tenant the service provides:

* **admission control** — a session cap shed at admission (``shed-load``
  ledger events, never silent) and a token-bucket quota over the
  tenant's own virtual cycles (:mod:`repro.service.quota`);
* **a fault domain** — its own :class:`FaultPlan` injector and
  tenant-labelled :class:`DegradationLedger`; a noisy neighbor's
  retries and quarantines cannot appear in another tenant's books;
* **hot reload** — a fresh O-CFG/ITC-CFG pipeline version swapped in
  between rounds without dropping in-flight checks, the old version
  retired after drain (:mod:`repro.service.reload`);
* **a verdict stream** — an :class:`asyncio.Queue` of verdict events
  as they come due on the tenant's clock, ending with a ``done`` (or
  ``drained``) marker.

``run_service`` is the synchronous entry point: it runs the event
loop, collects every stream, and returns a :class:`ServiceResult`
whose ``tenants`` mapping is exactly the StatsReport v4 ``tenants``
section.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.telemetry import get_telemetry

from repro.service.config import ServeConfig
from repro.service.tenant import TenantRuntime


@dataclass
class ServiceResult:
    """Everything one serving run produced, per tenant."""

    name: str
    #: the StatsReport v4 ``tenants`` section: tenant -> report dict.
    tenants: Dict[str, dict] = field(default_factory=dict)
    #: every streamed event, per tenant, in stream order.
    events: Dict[str, List[dict]] = field(default_factory=dict)
    #: True when the run ended via graceful drain rather than natural
    #: completion (in-flight work still finished either way).
    drained: bool = False

    @property
    def makespan(self) -> float:
        return max(
            (t["makespan"] for t in self.tenants.values()), default=0.0
        )

    def fairness(self) -> dict:
        """Cross-tenant fairness: each tenant's achieved/offered ratio
        and the max-min spread between them (0.0 = perfectly fair —
        every tenant got the same fraction of its demand absorbed)."""
        ratios = {
            name: report["fairness"]["ratio"]
            for name, report in self.tenants.items()
            if "fairness" in report
        }
        spread = (
            max(ratios.values()) - min(ratios.values()) if ratios else 0.0
        )
        return {"ratios": ratios, "spread": spread}

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "drained": self.drained,
            "makespan": self.makespan,
            "fairness": self.fairness(),
            "tenants": {k: dict(v) for k, v in self.tenants.items()},
        }


class TraceCheckService:
    """Asyncio front-end over per-tenant fleet stacks."""

    def __init__(self, config: ServeConfig, plane=None) -> None:
        config.validate()
        self.config = config
        self.plane = plane
        self.runtimes: List[TenantRuntime] = [
            TenantRuntime(spec) for spec in config.tenants
        ]
        #: tenant -> live verdict stream (filled while serving).
        self.streams: Dict[str, asyncio.Queue] = {}
        self._drain_requested = False
        self._served = False

    # -- introspection -------------------------------------------------------

    def runtime(self, name: str) -> TenantRuntime:
        for rt in self.runtimes:
            if rt.name == name:
                return rt
        raise KeyError(f"no such tenant: {name!r}")

    @property
    def now(self) -> float:
        """The service frontier: the furthest tenant clock."""
        return max((rt.clock.now for rt in self.runtimes), default=0.0)

    # -- drain / shutdown ----------------------------------------------------

    def request_drain(self) -> None:
        """Graceful shutdown: stop starting new scheduler rounds once
        every in-flight check has been applied; already-admitted
        sessions whose checks are pending still complete (no verdict
        is ever dropped), later rounds are abandoned."""
        self._drain_requested = True

    # -- serving -------------------------------------------------------------

    async def serve(
        self, on_event: Optional[Callable[[dict], None]] = None
    ) -> ServiceResult:
        """Drive every tenant to completion (or through a drain)."""
        if self._served:
            raise RuntimeError("a TraceCheckService serves exactly once")
        self._served = True
        for rt in self.runtimes:
            self.streams[rt.name] = asyncio.Queue()
        tel = get_telemetry()
        if tel.enabled:
            tel.metrics.counter("service.tenants").inc(
                len(self.runtimes)
            )
        workers = [
            asyncio.create_task(self._run_tenant(rt))
            for rt in self.runtimes
        ]
        await asyncio.gather(*workers)
        if self.plane is not None:
            # Refresh every tenant's MonitorStats first (that is what
            # writes the cumulative trace-cycle cells into the
            # profiler), then close the sample ring at the service
            # frontier — tenant clocks are never bound to the plane,
            # so the default finalize would stamp t=0.
            for rt in self.runtimes:
                rt.fleet.monitor.all_stats()
            self.plane.finalize(self.now)
        result = ServiceResult(
            name=self.config.name, drained=self._drain_requested
        )
        for rt in self.runtimes:
            events: List[dict] = []
            queue = self.streams[rt.name]
            while not queue.empty():
                event = queue.get_nowait()
                events.append(event)
                if on_event is not None:
                    on_event(event)
            result.events[rt.name] = events
            result.tenants[rt.name] = rt.report()
        return result

    async def _run_tenant(self, rt: TenantRuntime) -> None:
        queue = self.streams[rt.name]
        more = True
        while more and not self._drain_requested:
            more = rt.step()
            for event in rt.due_events():
                queue.put_nowait(event)
            if self.plane is not None:
                self.plane.maybe_sample(self.now)
            # Yield to the loop's FIFO ready queue: tenants interleave
            # round-robin in config order, deterministically.
            await asyncio.sleep(0)
        if more and self._drain_requested:
            # Drain: apply every already-submitted check before
            # stopping — verdicts are computed at submit, so none can
            # be dropped; we simply run the rounds out.
            rt.fleet.scheduler.finalize()
            rt.finished = True
        for event in rt.due_events():
            queue.put_nowait(event)
        queue.put_nowait(
            {
                "type": "drained" if self._drain_requested else "done",
                "tenant": rt.name,
                "at": rt.clock.now,
            }
        )


def run_service(
    config: ServeConfig,
    plane=None,
    on_event: Optional[Callable[[dict], None]] = None,
) -> ServiceResult:
    """Run a serving config to completion on a private event loop."""
    service = TraceCheckService(config, plane=plane)
    return asyncio.run(service.serve(on_event=on_event))
