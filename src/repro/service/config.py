"""Versioned serving configs: one JSON document per tenant mix.

A :class:`ServeConfig` describes everything the multi-tenant serving
front-end needs — the named tenants, each with its workload scenario,
admission quota, fault domain, and optional hot-reload point — and
round-trips through JSON exactly like
:class:`~repro.loadgen.scenario.LoadScenario` (unknown keys rejected,
``load``/``save``/``default``), plus the explicit
``schema_version`` field the v4 reporting API introduced (newer
documents are rejected by older readers).

Builtin configs live in :data:`BUILTIN_SERVE_CONFIGS`; the bundled
copies under ``examples/tenants/`` are generated from the same
factories (a test keeps them in sync).  ``resolve_serve_config``
accepts either a builtin name or a JSON file path — the ``repro
service --config`` contract.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, fields, replace
from typing import Callable, Dict, Optional, Tuple

from repro.loadgen.scenario import LoadScenario, resolve_scenario
from repro.resilience import FaultPlan, RetryPolicy

#: serve-config document revision (independent of the StatsReport
#: schema): bump on any breaking reshape of TenantSpec/ServeConfig.
SERVE_SCHEMA_VERSION = 1


@dataclass
class TenantSpec:
    """One tenant: a named fault domain with its own workload, quota,
    and admission policy."""

    name: str
    #: workload: a builtin :class:`LoadScenario` name or a JSON path.
    scenario: str = "smoke"
    #: concurrent connections this tenant drives (its fleet width).
    connections: int = 2
    #: checker workers (None = the scenario's own setting).
    workers: Optional[int] = None
    #: token-bucket refill rate in own-cycles per own-cycle executed:
    #: 1.0 (or more) = unthrottled; 0.5 = the tenant may consume at
    #: most half of its own virtual timeline, the rest is throttle
    #: stall.  The quota is a pure function of this tenant's config
    #: and schedule, so an unthrottled tenant runs bit-identical to a
    #: solo run no matter what its neighbors do.
    quota_rate: float = 1.0
    #: burst allowance in cycles before the bucket starts charging.
    quota_burst: float = 0.0
    #: admission cap: total sessions admitted across connections
    #: (0 = unlimited).  Excess sessions are shed at admission with a
    #: ``shed-load`` ledger event each — never silently dropped.
    max_sessions: int = 0
    #: per-tenant fault domain (None = the scenario's own plan).
    faults: Optional[FaultPlan] = None
    #: per-tenant retry policy (None = the scenario's own policy).
    retry: Optional[RetryPolicy] = None
    #: per-tenant seed override (None = the scenario's own seed).
    seed: Optional[int] = None
    #: hot reload: after this many scheduler rounds, rebuild the
    #: tenant's pipelines and atomically swap the new O-CFG/ITC-CFG
    #: version in (0 = never reload).
    reload_at_round: int = 0

    # -- validation ----------------------------------------------------------

    def validate(self) -> None:
        if not self.name or not self.name.replace("-", "").replace(
            "_", ""
        ).isalnum():
            raise ValueError(
                f"tenant name {self.name!r} must be a non-empty "
                "alphanumeric/dash/underscore token"
            )
        if self.connections < 1:
            raise ValueError("connections must be >= 1")
        if self.quota_rate <= 0:
            raise ValueError("quota_rate must be positive")
        if self.quota_burst < 0:
            raise ValueError("quota_burst must be >= 0")
        if self.max_sessions < 0:
            raise ValueError("max_sessions must be >= 0")
        if self.reload_at_round < 0:
            raise ValueError("reload_at_round must be >= 0")
        if self.workers is not None and self.workers < 1:
            raise ValueError("workers must be >= 1")

    def resolve(self) -> LoadScenario:
        """The tenant's scenario with its per-tenant overrides applied."""
        scenario = resolve_scenario(self.scenario)
        if self.seed is not None:
            scenario = scenario.with_seed(self.seed)
        if self.faults is not None:
            scenario = replace(scenario, faults=self.faults)
        if self.retry is not None:
            scenario = replace(scenario, retry=self.retry)
        scenario.validate()
        return scenario

    # -- serialisation -------------------------------------------------------

    def to_dict(self) -> dict:
        out = {f.name: getattr(self, f.name) for f in fields(self)}
        out["faults"] = (
            self.faults.to_dict() if self.faults is not None else None
        )
        out["retry"] = (
            self.retry.to_dict() if self.retry is not None else None
        )
        return out

    @classmethod
    def from_dict(cls, data: dict) -> "TenantSpec":
        known = {f.name for f in fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ValueError(
                f"unknown TenantSpec keys: {', '.join(sorted(unknown))}"
            )
        kwargs = dict(data)
        if kwargs.get("faults") is not None and not isinstance(
            kwargs["faults"], FaultPlan
        ):
            kwargs["faults"] = FaultPlan.from_dict(kwargs["faults"])
        if kwargs.get("retry") is not None and not isinstance(
            kwargs["retry"], RetryPolicy
        ):
            kwargs["retry"] = RetryPolicy.from_dict(kwargs["retry"])
        spec = cls(**kwargs)
        spec.validate()
        return spec


@dataclass
class ServeConfig:
    """Everything one multi-tenant serving run needs, as data."""

    name: str = "service"
    tenants: Tuple[TenantSpec, ...] = ()
    schema_version: int = SERVE_SCHEMA_VERSION

    # -- validation ----------------------------------------------------------

    def validate(self) -> None:
        if not self.tenants:
            raise ValueError("serve config needs at least one tenant")
        names = [t.name for t in self.tenants]
        dupes = {n for n in names if names.count(n) > 1}
        if dupes:
            raise ValueError(
                f"duplicate tenant names: {', '.join(sorted(dupes))}"
            )
        for tenant in self.tenants:
            tenant.validate()

    # -- serialisation -------------------------------------------------------

    def to_dict(self) -> dict:
        return {
            "schema_version": self.schema_version,
            "name": self.name,
            "tenants": [t.to_dict() for t in self.tenants],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ServeConfig":
        known = {f.name for f in fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ValueError(
                f"unknown ServeConfig keys: {', '.join(sorted(unknown))}"
            )
        version = data.get("schema_version", SERVE_SCHEMA_VERSION)
        if version > SERVE_SCHEMA_VERSION:
            raise ValueError(
                f"ServeConfig schema_version {version} is newer than "
                f"this reader ({SERVE_SCHEMA_VERSION})"
            )
        tenants = tuple(
            spec if isinstance(spec, TenantSpec)
            else TenantSpec.from_dict(spec)
            for spec in data.get("tenants", ())
        )
        config = cls(
            name=data.get("name", "service"),
            tenants=tenants,
            schema_version=version,
        )
        config.validate()
        return config

    def save(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(self.to_dict(), fh, indent=2, sort_keys=True)
            fh.write("\n")

    @classmethod
    def load(cls, path: str) -> "ServeConfig":
        with open(path, "r", encoding="utf-8") as fh:
            return cls.from_dict(json.load(fh))

    @classmethod
    def default(cls) -> "ServeConfig":
        return builtin_serve_config("duo-isolation")


# -- builtin registry --------------------------------------------------------


def _smoke() -> ServeConfig:
    """One clean tenant, tiny — the CI smoke config."""
    return ServeConfig(
        name="smoke",
        tenants=(
            TenantSpec(name="acme", scenario="smoke", connections=2),
        ),
    )


def _duo_isolation() -> ServeConfig:
    """The isolation acceptance shape: a clean tenant next to a noisy
    neighbor running the lossy faulted scenario under a tight quota.
    The clean tenant's verdict digest must be bit-identical to its
    solo run, and the noisy tenant's faults must burn only its own
    error budget."""
    return ServeConfig(
        name="duo-isolation",
        tenants=(
            TenantSpec(name="clean", scenario="smoke", connections=2),
            TenantSpec(
                name="noisy",
                scenario="faulted-closed",
                connections=2,
                quota_rate=0.5,
                quota_burst=4_000.0,
            ),
        ),
    )


def _quota_shed() -> ServeConfig:
    """Admission-control shape: a throttled tenant with a session cap,
    next to an uncapped one — sheds and throttle stalls must show up
    in the capped tenant's ledger only."""
    return ServeConfig(
        name="quota-shed",
        tenants=(
            TenantSpec(name="uncapped", scenario="smoke", connections=2),
            TenantSpec(
                name="capped",
                scenario="smoke",
                connections=2,
                quota_rate=0.25,
                max_sessions=3,
            ),
        ),
    )


def _reload() -> ServeConfig:
    """Hot-reload shape: one tenant that swaps in a freshly built
    O-CFG/ITC-CFG version mid-run without dropping in-flight checks."""
    return ServeConfig(
        name="reload",
        tenants=(
            TenantSpec(
                name="rolling",
                scenario="smoke",
                connections=2,
                reload_at_round=4,
            ),
        ),
    )


def _open_mix() -> ServeConfig:
    """Open-loop arrival shape: two tenants driven by fixed-rate
    arrival schedules instead of closed-loop think time — steady
    Poisson-like arrivals next to clustered bursts.  Offered load is
    set by the schedule, not by completions, so each tenant's
    achieved/offered ratio (the v4 ``fairness`` entry) measures how
    much of its demand the service actually absorbed, and the
    cross-tenant ratio spread measures fairness between them."""
    return ServeConfig(
        name="open-mix",
        tenants=(
            TenantSpec(
                name="steady", scenario="mixed-open", connections=2
            ),
            TenantSpec(
                name="bursty", scenario="bursty-open", connections=2
            ),
        ),
    )


BUILTIN_SERVE_CONFIGS: Dict[str, Callable[[], ServeConfig]] = {
    "smoke": _smoke,
    "duo-isolation": _duo_isolation,
    "quota-shed": _quota_shed,
    "reload": _reload,
    "open-mix": _open_mix,
}


def builtin_serve_config(name: str) -> ServeConfig:
    try:
        factory = BUILTIN_SERVE_CONFIGS[name]
    except KeyError:
        raise KeyError(
            f"unknown builtin serve config {name!r} "
            f"(have: {', '.join(sorted(BUILTIN_SERVE_CONFIGS))})"
        ) from None
    config = factory()
    config.validate()
    return config


def resolve_serve_config(ref: str) -> ServeConfig:
    """A serve config from a builtin name or a JSON file path."""
    if ref in BUILTIN_SERVE_CONFIGS:
        return builtin_serve_config(ref)
    if os.path.exists(ref):
        return ServeConfig.load(ref)
    raise ValueError(
        f"no such serve config: {ref!r} is neither a builtin "
        f"({', '.join(sorted(BUILTIN_SERVE_CONFIGS))}) nor a file"
    )
