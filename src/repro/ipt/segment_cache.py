"""Content-addressed segment decode cache.

PSB packets reset IP compression, so a PSB-delimited segment decodes to
the same packets wherever it appears — in a later snapshot of the same
ring, or in a different process's ring altogether.  The cache keys each
segment by a short content hash and stores its decode (packets, TIP
records, trailing stitch state) in a bounded LRU, so byte-identical
segments across a fleet decode exactly once.

Cycle model (honest accounting, reconciled by ``CycleProfiler``): every
probe streams the segment through the hash engine
(``SEGMENT_CACHE_HASH_CYCLES_PER_BYTE``) and pays one store probe.  A
hit charges only that; a miss additionally pays the full per-byte fast
decode.  Cached results are rebased on demand to the segment's offset in
the enclosing stream, with a small per-entry memo of popular bases so
steady-state hits skip the rebase loop too.

Truncated (mid-packet) segments are **never** cached: a segment cut by
the snapshot boundary will decode differently once the ring fills in the
missing bytes, so its hash must not pin the partial decode.
"""

from __future__ import annotations

import hashlib
from collections import OrderedDict
from typing import Dict, List, Optional, Tuple

from repro import costs
from repro.telemetry import get_telemetry
from repro.ipt.columnar import ColumnarSegment, columnar_scan
from repro.ipt.fast_decoder import (
    FastDecodeResult,
    SegmentDecode,
    TipRecord,
    fast_decode,
)
from repro.ipt.packets import DecodedPacket

#: rebased views memoized per entry; beyond this, hits rebase afresh.
_REBASE_MEMO_LIMIT = 8


class _SegmentEntry:
    """One cached segment decode, segment-relative, plus rebase memos."""

    __slots__ = ("result", "records", "trailing_tnt", "trailing_far",
                 "rebased")

    def __init__(
        self,
        result: FastDecodeResult,
        records: List[TipRecord],
        trailing_tnt: Tuple[bool, ...],
        trailing_far: bool,
    ) -> None:
        self.result = result
        self.records = records
        self.trailing_tnt = trailing_tnt
        self.trailing_far = trailing_far
        self.rebased: Dict[int, Tuple[list, list]] = {}

    def at_base(self, base: int) -> Tuple[list, list]:
        """(packets, records) rebased to stream offset ``base``.

        The returned lists are shared across hits — callers must not
        mutate them (list concatenation, as the tail decoder does, is
        fine).
        """
        memo = self.rebased.get(base)
        if memo is None:
            if base == 0:
                memo = (self.result.packets, self.records)
            else:
                memo = (
                    [
                        DecodedPacket(p.kind, p.offset + base,
                                      bits=p.bits, ip=p.ip)
                        for p in self.result.packets
                    ],
                    [
                        TipRecord(r.ip, r.tnt_before, r.offset + base,
                                  r.after_far)
                        for r in self.records
                    ],
                )
            if len(self.rebased) < _REBASE_MEMO_LIMIT:
                self.rebased[base] = memo
        return memo


class _CacheEntry:
    """One cache slot, holding up to two shapes of the same segment's
    decode: the legacy object shape and/or the columnar shape.  A probe
    that finds the key but not the requested shape is an honest miss —
    that engine's decode work really does run."""

    __slots__ = ("objects", "columnar")

    def __init__(self) -> None:
        self.objects: Optional[_SegmentEntry] = None
        self.columnar: Optional[ColumnarSegment] = None


class SegmentDecodeCache:
    """Bounded LRU of segment decodes, keyed by segment content hash."""

    def __init__(self, entries: int = 256) -> None:
        if entries < 1:
            raise ValueError("segment cache needs at least one entry")
        self.entries = entries
        self._store: "OrderedDict[bytes, _CacheEntry]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        #: bytes actually run through the fast decoder (misses).
        self.bytes_decoded = 0
        #: bytes served from cache instead of decoding (hits).
        self.bytes_served = 0

    def __len__(self) -> int:
        return len(self._store)

    @property
    def hit_rate(self) -> float:
        probes = self.hits + self.misses
        return self.hits / probes if probes else 0.0

    def stats(self) -> dict:
        return {
            "entries": self.entries,
            "resident": len(self._store),
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "hit_rate": self.hit_rate,
            "bytes_decoded": self.bytes_decoded,
            "bytes_served": self.bytes_served,
        }

    # -- decoding ------------------------------------------------------------

    def decode_segment(self, segment, base: int = 0) -> SegmentDecode:
        """Decode one PSB segment through the cache.

        ``segment`` is the segment's bytes (a ``memoryview`` slice keeps
        it zero-copy); ``base`` is its offset in the enclosing stream,
        applied to packet/record offsets in the returned view.
        """
        size = len(segment)
        key = hashlib.blake2b(segment, digest_size=16).digest()
        tel = get_telemetry()
        slot = self._store.get(key)
        if slot is not None and slot.objects is not None:
            entry = slot.objects
            self._store.move_to_end(key)
            self.hits += 1
            self.bytes_served += size
            if tel.enabled:
                tel.metrics.counter("ipt.segment_cache.hits").inc()
            packets, records = entry.at_base(base)
            return SegmentDecode(
                packets,
                records,
                entry.trailing_tnt,
                entry.trailing_far,
                self._hit_cycles(size),
                False,
            )

        self.misses += 1
        if tel.enabled:
            tel.metrics.counter("ipt.segment_cache.misses").inc()
        result = fast_decode(segment)
        self.bytes_decoded += size
        records, trailing_tnt, trailing_far = result.tip_records_with_state()
        cycles = size * costs.SEGMENT_CACHE_HASH_CYCLES_PER_BYTE + result.cycles
        if result.truncated:
            # Mid-packet segments will decode differently once the
            # missing bytes arrive — never pin them in the store.
            rebased = result.rebased(base)
            if base:
                records = [
                    TipRecord(r.ip, r.tnt_before, r.offset + base,
                              r.after_far)
                    for r in records
                ]
            return SegmentDecode(
                rebased.packets, records, trailing_tnt, trailing_far,
                cycles, True,
            )

        entry = _SegmentEntry(result, records, trailing_tnt, trailing_far)
        slot = self._fill(key, tel)
        slot.objects = entry
        packets, records = entry.at_base(base)
        return SegmentDecode(
            packets, records, trailing_tnt, trailing_far, cycles, False,
        )

    def decode_segment_columnar(
        self, segment
    ) -> Tuple[ColumnarSegment, float]:
        """Columnar twin of :meth:`decode_segment`.

        Returns ``(segment_columns, charged_cycles)``; the columns stay
        segment-relative (callers rebase by carrying the base, never by
        copying — the zero-copy contract).  The cycle model is byte-wise
        identical to the object path: hash + probe on a hit, hash +
        per-byte decode on a miss, truncated segments never stored.
        """
        size = len(segment)
        key = hashlib.blake2b(segment, digest_size=16).digest()
        tel = get_telemetry()
        slot = self._store.get(key)
        if slot is not None and slot.columnar is not None:
            self._store.move_to_end(key)
            self.hits += 1
            self.bytes_served += size
            if tel.enabled:
                tel.metrics.counter("ipt.segment_cache.hits").inc()
            return slot.columnar, self._hit_cycles(size)

        self.misses += 1
        if tel.enabled:
            tel.metrics.counter("ipt.segment_cache.misses").inc()
        seg = columnar_scan(segment)
        self.bytes_decoded += size
        cycles = size * costs.SEGMENT_CACHE_HASH_CYCLES_PER_BYTE + seg.cycles
        if seg.truncated:
            return seg, cycles
        slot = self._fill(key, tel)
        slot.columnar = seg
        return seg, cycles

    def _fill(self, key: bytes, tel) -> _CacheEntry:
        """The cache slot for ``key``, freshly inserted (with LRU
        eviction) or refreshed if the other shape already resides."""
        slot = self._store.get(key)
        if slot is None:
            slot = _CacheEntry()
            self._store[key] = slot
            if tel.enabled and tel.plane is not None:
                # Cache state transitions feed the flight recorder.
                tel.plane.on_cache_event(
                    "cache-insert", detail=f"resident={len(self._store)}"
                )
            if len(self._store) > self.entries:
                self._store.popitem(last=False)
                self.evictions += 1
                if tel.enabled:
                    tel.metrics.counter("ipt.segment_cache.evictions").inc()
                    if tel.plane is not None:
                        tel.plane.on_cache_event(
                            "cache-evict", detail=f"evictions={self.evictions}"
                        )
        else:
            self._store.move_to_end(key)
        return slot

    def decode(self, segment, base: int = 0) -> FastDecodeResult:
        """`fast_decode`-shaped interface for ``fast_decode_parallel``."""
        seg = self.decode_segment(segment, base=base)
        return FastDecodeResult(
            seg.packets,
            seg.cycles,
            synced_offset=base,
            truncated=seg.truncated,
        )

    def _hit_cycles(self, size: int) -> float:
        return (
            size * costs.SEGMENT_CACHE_HASH_CYCLES_PER_BYTE
            + costs.SEGMENT_CACHE_PROBE_CYCLES
        )
