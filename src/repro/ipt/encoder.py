"""The per-core IPT packetizer.

Subscribes to the CPU's CoFI event bus and emits compressed packets into
a ToPA buffer according to Table 3:

- direct jumps/calls: no output,
- conditional branches: one TNT bit, flushed 6 to a packet,
- indirect jumps/calls/returns: TIP,
- far transfers (syscalls): FUP(source) + TIP.PGD, then TIP.PGE(resume)
  when user-only filtering blanks the kernel excursion.

A PSB+ group (PSB, FUP with the current IP, PSBEND) is inserted every
``psb_period`` output bytes so decoders can synchronise mid-stream.

Tracing cost is charged per emitted byte (:data:`repro.costs`), the
source of IPT's ~3% tracing overhead versus BTS's per-record stalls.
"""

from __future__ import annotations

from typing import Callable, List, Optional

from repro import costs
from repro.cpu.events import BranchEvent, CoFIKind
from repro.ipt.msr import IPTConfig
from repro.ipt.packets import (
    FUP_HEADER,
    MAX_TNT_BITS,
    PSBEND_BYTE,
    PSB_PATTERN,
    TIP_HEADER,
    TIP_PGD_HEADER,
    TIP_PGE_HEADER,
    encode_ip_packet,
    encode_tnt,
)
from repro.ipt.topa import ToPA


class IPTEncoder:
    """One core's trace unit: config + packet generation state."""

    def __init__(
        self,
        config: IPTConfig,
        output: Optional[ToPA] = None,
        current_cr3: Optional[Callable[[], Optional[int]]] = None,
    ) -> None:
        self.config = config
        self.output = output if output is not None else ToPA.flowguard_default()
        #: Callable returning the CR3 of the currently running context;
        #: the kernel wires this to the scheduled process.
        self.current_cr3 = current_cr3 or (lambda: None)
        self._tnt_buffer: List[bool] = []
        self._last_ip = 0
        self._bytes_since_psb = 0
        self._started = False
        self.cycles = 0.0
        self.packets_emitted = 0

    # -- plumbing ---------------------------------------------------------

    def _write(self, data: bytes) -> None:
        self.output.write(data)
        self.cycles += len(data) * costs.IPT_TRACE_CYCLES_PER_BYTE
        self._bytes_since_psb += len(data)
        self.packets_emitted += 1

    def _emit_psb_group(self, current_ip: int) -> None:
        self._flush_tnt()
        self.output.write(PSB_PATTERN)
        self.cycles += len(PSB_PATTERN) * costs.IPT_TRACE_CYCLES_PER_BYTE
        # PSB resets IP compression state on both sides.
        self._last_ip = 0
        data, self._last_ip = encode_ip_packet(
            FUP_HEADER, current_ip, self._last_ip
        )
        self.output.write(data)
        self.output.write(bytes([PSBEND_BYTE]))
        self.cycles += (len(data) + 1) * costs.IPT_TRACE_CYCLES_PER_BYTE
        self._bytes_since_psb = 0
        self.packets_emitted += 3

    def _maybe_psb(self, current_ip: int) -> None:
        if not self._started or self._bytes_since_psb >= self.config.psb_period:
            self._emit_psb_group(current_ip)
            self._started = True

    def _flush_tnt(self) -> None:
        while self._tnt_buffer:
            chunk = tuple(self._tnt_buffer[:MAX_TNT_BITS])
            del self._tnt_buffer[:MAX_TNT_BITS]
            self._write(encode_tnt(chunk))

    def _emit_ip(self, header: int, target: Optional[int]) -> None:
        data, self._last_ip = encode_ip_packet(header, target, self._last_ip)
        self._write(data)

    # -- event sink ----------------------------------------------------------

    def on_branch(self, event: BranchEvent) -> None:
        """CoFI retirement hook (CPU event-bus listener)."""
        if not (self.config.trace_enabled and self.config.branch_enabled):
            return
        if not self.config.accepts_cr3(self.current_cr3()):
            return

        kind = event.kind
        if kind in (CoFIKind.DIRECT_JMP, CoFIKind.DIRECT_CALL):
            return  # no output (Table 3)

        self._maybe_psb(event.src)

        if kind is CoFIKind.COND_BRANCH:
            self._tnt_buffer.append(event.taken)
            if len(self._tnt_buffer) >= MAX_TNT_BITS:
                self._flush_tnt()
            return

        # Indirect branches and far transfers force TNT flush so packet
        # order matches retirement order.
        self._flush_tnt()
        if kind in (
            CoFIKind.INDIRECT_JMP,
            CoFIKind.INDIRECT_CALL,
            CoFIKind.RET,
        ):
            self._emit_ip(TIP_HEADER, event.dst)
            return
        if kind is CoFIKind.FAR_TRANSFER:
            # User-only tracing: publish the source, mark the excursion
            # into the kernel (IP suppressed), resume at the destination.
            self._emit_ip(FUP_HEADER, event.src)
            self._emit_ip(TIP_PGD_HEADER, None)
            self._emit_ip(TIP_PGE_HEADER, event.dst)
            return

    def flush(self) -> None:
        """Flush buffered TNT bits (monitor is about to read the trace)."""
        self._flush_tnt()
