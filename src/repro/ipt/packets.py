"""IPT packet byte formats.

The wire format is modelled on real Intel PT with simplified headers:

==========  =========================  =====================================
packet      encoding                   meaning
==========  =========================  =====================================
PAD         ``00``                     padding
TNT         ``02 PP``                  up to 6 taken/not-taken bits in PP;
                                       the highest set bit of PP is a stop
                                       marker, bits below it are branch
                                       outcomes, oldest in the MSB position
TIP         ``0D NN <NN bytes>``       target IP of an indirect branch or
                                       near return; NN low-order IP bytes,
                                       upper bytes inherited from the
                                       last IP (IP compression)
TIP.PGE     ``11 NN <NN bytes>``       tracing (re-)enabled at IP
TIP.PGD     ``21 NN <NN bytes>``       tracing disabled (NN may be 0:
                                       "IP suppressed")
FUP         ``1D NN <NN bytes>``       source IP of an asynchronous event,
                                       also emitted after PSB to publish
                                       the current IP
PSB         ``82 02`` x4               stream synchronisation boundary;
                                       resets IP compression state
PSBEND      ``23``                     end of PSB+ context packets
OVF         ``F3``                     output buffer overflow
==========  =========================  =====================================

Like the real encoding, *the packet stream never says what kind of
instruction produced a TIP* — a ret, an indirect call and an indirect
jump are indistinguishable at the packet layer (§3.1).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional, Tuple

PAD_BYTE = 0x00
TNT_HEADER = 0x02
TIP_HEADER = 0x0D
TIP_PGE_HEADER = 0x11
TIP_PGD_HEADER = 0x21
FUP_HEADER = 0x1D
PSBEND_BYTE = 0x23
OVF_BYTE = 0xF3

#: PSB sync pattern.  Real IPT uses a 16-byte alternating pattern so that
#: payload bytes cannot alias a full boundary; 8 bytes keeps the same
#: property at our packet sizes.
PSB_PATTERN = bytes([0x82, 0x02] * 4)

#: Allowed IP payload widths (bytes), mirroring IPBytes compression.
IP_WIDTHS = (0, 1, 2, 4, 6, 8)

MAX_TNT_BITS = 6


class PacketError(Exception):
    """Malformed packet stream."""


class PacketKind(enum.Enum):
    TNT = "tnt"
    TIP = "tip"
    TIP_PGE = "tip.pge"
    TIP_PGD = "tip.pgd"
    FUP = "fup"
    PSB = "psb"
    PSBEND = "psbend"
    OVF = "ovf"
    PAD = "pad"


_IP_HEADERS = {
    TIP_HEADER: PacketKind.TIP,
    TIP_PGE_HEADER: PacketKind.TIP_PGE,
    TIP_PGD_HEADER: PacketKind.TIP_PGD,
    FUP_HEADER: PacketKind.FUP,
}


@dataclass(frozen=True)
class DecodedPacket:
    """One packet as seen by the fast (packet-layer) decoder."""

    kind: PacketKind
    offset: int
    #: TNT payload, oldest branch first.
    bits: Tuple[bool, ...] = ()
    #: Reconstructed IP for TIP/FUP-family packets (None if suppressed).
    ip: Optional[int] = None


def encode_tnt(bits: Tuple[bool, ...]) -> bytes:
    """Encode up to 6 TNT bits into a 2-byte TNT packet."""
    if not 0 < len(bits) <= MAX_TNT_BITS:
        raise PacketError(f"TNT packet must carry 1..6 bits, got {len(bits)}")
    payload = 1
    for bit in bits:
        payload = (payload << 1) | (1 if bit else 0)
    return bytes([TNT_HEADER, payload])


def decode_tnt_payload(payload: int) -> Tuple[bool, ...]:
    """Decode a TNT payload byte into branch bits, oldest first."""
    if payload <= 1 or payload > 0x7F:
        raise PacketError(f"invalid TNT payload {payload:#x}")
    bits = []
    marker_seen = False
    for position in range(7, -1, -1):
        bit = (payload >> position) & 1
        if not marker_seen:
            if bit:
                marker_seen = True
            continue
        bits.append(bool(bit))
    return tuple(bits)


def compress_ip(target: int, last_ip: int) -> Tuple[int, bytes]:
    """Choose the minimal IP payload width for ``target``.

    Returns ``(width, payload_bytes)`` such that patching the ``width``
    low-order bytes of ``last_ip`` with the payload reconstructs
    ``target`` — the IPBytes compression scheme.
    """
    for width in IP_WIDTHS[1:]:
        mask = (1 << (8 * width)) - 1
        if (last_ip & ~mask) == (target & ~mask):
            return width, (target & mask).to_bytes(width, "little")
    raise PacketError(f"cannot encode IP {target:#x}")  # pragma: no cover


def decompress_ip(payload: bytes, last_ip: int) -> int:
    """Inverse of :func:`compress_ip`."""
    width = len(payload)
    if width == 0:
        return last_ip
    mask = (1 << (8 * width)) - 1
    return (last_ip & ~mask) | int.from_bytes(payload, "little")


def encode_ip_packet(header: int, target: Optional[int],
                     last_ip: int) -> Tuple[bytes, int]:
    """Encode a TIP/FUP-family packet.

    Returns the bytes and the new ``last_ip``.  ``target=None`` emits an
    IP-suppressed packet (width 0), leaving ``last_ip`` unchanged.
    """
    if header not in _IP_HEADERS:
        raise PacketError(f"not an IP packet header: {header:#x}")
    if target is None:
        return bytes([header, 0]), last_ip
    width, payload = compress_ip(target, last_ip)
    return bytes([header, width]) + payload, target


def ip_header_kind(header: int) -> Optional[PacketKind]:
    return _IP_HEADERS.get(header)


# -- packed TNT signatures ---------------------------------------------------
#
# The columnar engine and the batched search index pass TNT runs around
# as *signatures*: a single int whose low bits are the branch outcomes
# (oldest first, MSB-side) under a leading 1 marker bit, exactly the TNT
# payload convention but without the 6-bit width cap.  The marker makes
# the empty run (sig == 1) distinct from a run of not-taken bits, and
# packing is injective, so signature equality == tuple equality.


def pack_tnt_sig(bits) -> int:
    """Pack branch bits (oldest first) into a 1-prefixed signature."""
    sig = 1
    for bit in bits:
        sig = (sig << 1) | (1 if bit else 0)
    return sig


def unpack_tnt_sig(sig: int) -> Tuple[bool, ...]:
    """Inverse of :func:`pack_tnt_sig`."""
    count = sig.bit_length() - 1
    return tuple(
        bool((sig >> position) & 1)
        for position in range(count - 1, -1, -1)
    )


def compose_tnt_sigs(front: int, back: int) -> int:
    """Concatenate two signatures: ``front``'s bits precede ``back``'s.

    This is how segment stitching prepends a segment's trailing TNT run
    onto the first TIP of the next segment without unpacking either.
    """
    width = back.bit_length() - 1
    return (front << width) | (back ^ (1 << width))


def _build_tnt_bits_table() -> tuple:
    """256-entry payload -> branch-bit tuple table (None = invalid).

    The byte-level slow-path cursor and the vectorised columnar scan
    decode TNT payloads by lookup instead of re-deriving the stop-marker
    split per packet; entries are exactly what
    :func:`decode_tnt_payload` returns.
    """
    table = []
    for payload in range(256):
        try:
            table.append(decode_tnt_payload(payload))
        except PacketError:
            table.append(None)
    return tuple(table)


#: payload byte -> TNT bit tuple (oldest first), ``None`` for invalid
#: payloads.
TNT_BITS_TABLE = _build_tnt_bits_table()
