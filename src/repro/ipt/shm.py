"""Shared-memory backing for columnar segments (fleet at 100×).

Every resident :class:`~repro.ipt.columnar.ColumnarSegment` column is a
buffer-protocol object — ``array('Q')`` record IPs/offsets, ``array('L')``
TNT bit bounds, the packed TNT bitstream, the far-transfer bitset, the
FUP address column.  This module packs them into **one**
``multiprocessing.shared_memory`` block per segment, so a segment
crosses a process boundary as a tiny picklable *descriptor* — block
name, per-column offsets/lengths, and a handful of scalars — with zero
pickling of column data.  The attaching side rebuilds the columns with
``array.frombytes`` straight out of the mapped block (one memcpy per
column, no object-graph traversal).

Three layers:

- :class:`ShmRegistry` — a per-process named-block registry with
  refcounted attach/detach and explicit ``close()``/``unlink()``
  lifecycle.  Every block this process creates or attaches is tracked,
  so a leak detector (or the fleet-shutdown assertion) can prove the
  run released everything it mapped.
- :func:`share_segment` / :func:`attach_segment` — the columnar segment
  codec over a registry block.
- graceful degradation — when shared memory is unavailable (no
  ``/dev/shm``, a sandboxed interpreter, a platform without the
  module), the registry hands out :class:`_HeapBlock`\\ s instead and
  descriptors carry their payload inline.  Everything still works and
  every result is identical; only the zero-copy property is lost.

The copy-on-attach design is deliberate: attach, ``frombytes``-copy the
columns out, detach.  The mapped view never outlives the attach call,
which is what makes the refcount/leak accounting exact and lets the
creator unlink as soon as every consumer has copied out.
"""

from __future__ import annotations

import secrets
from array import array
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.ipt.columnar import ColumnarSegment

try:  # pragma: no cover - import guard exercised via _force_heap in tests
    from multiprocessing import shared_memory as _shared_memory
except ImportError:  # pragma: no cover - platforms without shm
    _shared_memory = None

#: test/ops override: force the heap fallback even when shm imports.
_force_heap = False

#: the column order inside a segment block (documented layout; the
#: descriptor carries explicit offsets so readers never infer it).
SEGMENT_COLUMNS = (
    "data", "rec_ips", "rec_offsets", "rec_bit_start", "rec_bit_end",
    "tnt_bits", "far_mask", "fup_ips",
)


def shm_available() -> bool:
    """Whether real shared-memory blocks can be created here."""
    if _force_heap or _shared_memory is None:
        return False
    try:
        probe = _shared_memory.SharedMemory(create=True, size=16)
    except (OSError, ValueError):  # pragma: no cover - degraded host
        return False
    probe.close()
    probe.unlink()
    return True


class _HeapBlock:
    """Heap-backed stand-in for ``SharedMemory`` (graceful fallback).

    Same ``name``/``buf``/``close``/``unlink`` surface; the buffer is a
    private bytearray, so descriptors built over heap blocks must carry
    their payload inline to cross process boundaries (see
    :meth:`ShmRegistry.create`).
    """

    __slots__ = ("name", "buf")

    def __init__(self, name: str, size: int,
                 payload: Optional[bytes] = None) -> None:
        self.name = name
        self.buf = memoryview(
            bytearray(payload) if payload is not None
            else bytearray(size)
        )

    def close(self) -> None:
        pass

    def unlink(self) -> None:
        pass


@dataclass
class _BlockState:
    """Registry bookkeeping for one mapped block."""

    block: object
    refs: int = 1
    created: bool = False


class ShmRegistry:
    """Per-process registry of named shared-memory blocks.

    ``create`` makes a fresh block (real shm when available, heap
    otherwise); ``attach`` maps an existing one by name, refcounted so
    concurrent consumers share one mapping; ``detach`` drops a
    reference and closes the mapping at zero; ``unlink`` removes the
    backing object itself (create-side responsibility).

    The counters make leaks provable: a clean shutdown ends with
    ``live_blocks() == []`` — every attach detached, every created
    block unlinked.
    """

    def __init__(self) -> None:
        self._blocks: Dict[str, _BlockState] = {}
        #: heap-fallback store: name -> payload (process-local).
        self._heap: Dict[str, _HeapBlock] = {}
        self.created = 0
        self.attached = 0
        self.unlinked = 0
        self._use_shm: Optional[bool] = None

    # -- capability ----------------------------------------------------------

    @property
    def using_shm(self) -> bool:
        """Whether this registry hands out real shm blocks (probed once
        on first use, so a flaky host degrades before any block leaks)."""
        if self._use_shm is None or _force_heap:
            self._use_shm = shm_available()
        return self._use_shm

    # -- lifecycle -----------------------------------------------------------

    def create(self, payload: bytes) -> object:
        """A fresh named block holding ``payload``; returns the block
        (``.name`` goes into the descriptor).  The creator must
        eventually :meth:`unlink` it (after every consumer copied out)."""
        if self.using_shm:
            block = _shared_memory.SharedMemory(
                create=True, size=max(len(payload), 1)
            )
            block.buf[: len(payload)] = payload
        else:
            name = f"repro-heap-{secrets.token_hex(8)}"
            block = _HeapBlock(name, len(payload), payload)
            self._heap[name] = block
        self._blocks[block.name] = _BlockState(
            block, refs=1, created=True
        )
        self.created += 1
        return block

    def attach(self, name: str, payload: Optional[bytes] = None) -> object:
        """Map block ``name`` (refcounted).  ``payload`` is the inline
        fallback carried by heap descriptors: when the name is not
        locally mapped and real shm is off, the payload *is* the block."""
        state = self._blocks.get(name)
        if state is not None:
            state.refs += 1
            self.attached += 1
            return state.block
        if self.using_shm:
            block = _shared_memory.SharedMemory(name=name)
        else:
            block = self._heap.get(name)
            if block is None:
                if payload is None:
                    raise KeyError(
                        f"no heap block {name!r} and no inline payload"
                    )
                block = _HeapBlock(name, len(payload), payload)
                self._heap[name] = block
        self._blocks[name] = _BlockState(block, refs=1, created=False)
        self.attached += 1
        return block

    def detach(self, name: str) -> None:
        """Drop one reference; the mapping closes at zero."""
        state = self._blocks.get(name)
        if state is None:
            raise KeyError(f"detach of unmapped block {name!r}")
        state.refs -= 1
        if state.refs <= 0:
            state.block.close()
            del self._blocks[name]
            if not state.created:
                # heap fallback: an attach-from-inline copy is owned by
                # the attaching side; drop it with the last reference
                # (the creator's copy lives until its unlink).
                self._heap.pop(name, None)

    def unlink(self, name: str) -> None:
        """Remove the backing object (idempotent per name).  Detaches
        this process's mapping first if one is still live."""
        state = self._blocks.pop(name, None)
        if state is not None:
            state.block.close()
            block = state.block
        else:
            block = self._heap.get(name)
            if block is None and self.using_shm:
                block = _shared_memory.SharedMemory(name=name)
                block.close()
        if block is not None:
            block.unlink()
        self._heap.pop(name, None)
        self.unlinked += 1

    def publish(self, name: str) -> None:
        """Creator-side handoff after the descriptor has been sent:
        close the local mapping while keeping the named object alive
        for its consumer (real shm).  In heap-fallback mode the
        descriptor's inline payload *is* the handoff, so the local
        copy is dropped entirely — long-lived pool workers must not
        accumulate segment copies."""
        if self.using_shm:
            self.detach(name)
        else:
            self.unlink(name)

    # -- leak accounting -----------------------------------------------------

    def live_blocks(self) -> List[str]:
        """Names still mapped or heap-resident — must be empty after a
        clean fleet shutdown (the leak-detector contract)."""
        names = set(self._blocks)
        names.update(self._heap)
        return sorted(names)

    def stats(self) -> dict:
        return {
            "backend": "shm" if self.using_shm else "heap",
            "created": self.created,
            "attached": self.attached,
            "unlinked": self.unlinked,
            "live": len(self.live_blocks()),
        }


#: the default per-process registry (workers get their own via fork).
_registry = ShmRegistry()


def get_registry() -> ShmRegistry:
    return _registry


def reset_registry() -> ShmRegistry:
    """A fresh default registry (tests; re-probes shm availability)."""
    global _registry
    _registry = ShmRegistry()
    return _registry


# -- descriptors -------------------------------------------------------------


@dataclass(frozen=True)
class SegmentDescriptor:
    """A :class:`ColumnarSegment` as it crosses a process boundary.

    ``block`` names the shared block; ``layout`` is the per-column
    ``(offset, length)`` table in :data:`SEGMENT_COLUMNS` order.  The
    scalars ride along directly (they are a fixed handful of numbers).
    ``inline`` carries the packed payload only in heap-fallback mode —
    with real shm it stays ``None`` and nothing but this dataclass is
    pickled.
    """

    block: str
    layout: Tuple[Tuple[int, int], ...]
    sync: bool
    synced_offset: int
    pkt_count: int
    cycles: float
    truncated: bool
    total_bits: int
    pend_start: int
    trailing_far: bool
    record_count: int
    inline: Optional[bytes] = field(default=None, repr=False)


@dataclass(frozen=True)
class BytesDescriptor:
    """A raw byte buffer (a drained ring snapshot) behind a block."""

    block: str
    length: int
    inline: Optional[bytes] = field(default=None, repr=False)


def _pack_columns(chunks: List[bytes]) -> Tuple[bytes, Tuple[Tuple[int, int], ...]]:
    layout = []
    offset = 0
    for chunk in chunks:
        layout.append((offset, len(chunk)))
        offset += len(chunk)
    return b"".join(chunks), tuple(layout)


def share_segment(
    seg: ColumnarSegment, registry: Optional[ShmRegistry] = None
) -> SegmentDescriptor:
    """Pack ``seg``'s columns into one registry block; returns the
    descriptor.  The caller owns the block and must ``unlink`` it once
    every consumer has attached and copied out."""
    reg = registry if registry is not None else _registry
    records = len(seg.rec_ips)
    far_bytes = int(seg.far_mask).to_bytes(
        max(1, (records + 7) // 8), "little"
    )
    payload, layout = _pack_columns([
        bytes(seg.data),
        seg.rec_ips.tobytes(),
        seg.rec_offsets.tobytes(),
        seg.rec_bit_start.tobytes(),
        seg.rec_bit_end.tobytes(),
        bytes(seg.tnt_bits),
        far_bytes,
        array("Q", seg.fup_ips).tobytes(),
    ])
    block = reg.create(payload)
    return SegmentDescriptor(
        block=block.name,
        layout=layout,
        sync=seg.sync,
        synced_offset=seg.synced_offset,
        pkt_count=seg.pkt_count,
        cycles=seg.cycles,
        truncated=seg.truncated,
        total_bits=seg.total_bits,
        pend_start=seg.pend_start,
        trailing_far=seg.trailing_far,
        record_count=records,
        inline=None if reg.using_shm else payload,
    )


def _segment_from_block(buf, desc: SegmentDescriptor) -> ColumnarSegment:
    """Rebuild the segment columns out of a mapped block — one
    ``frombytes`` memcpy per column, no object-graph traversal."""

    def col(index: int) -> bytes:
        offset, length = desc.layout[index]
        return bytes(buf[offset : offset + length])

    rec_ips = array("Q")
    rec_ips.frombytes(col(1))
    rec_offsets = array("Q")
    rec_offsets.frombytes(col(2))
    rec_bit_start = array("L")
    rec_bit_start.frombytes(col(3))
    rec_bit_end = array("L")
    rec_bit_end.frombytes(col(4))
    fup_ips = array("Q")
    fup_ips.frombytes(col(7))
    return ColumnarSegment(
        col(0),
        desc.sync,
        desc.synced_offset,
        desc.pkt_count,
        desc.cycles,
        desc.truncated,
        rec_ips,
        rec_offsets,
        rec_bit_start,
        rec_bit_end,
        col(5),
        desc.total_bits,
        desc.pend_start,
        desc.trailing_far,
        int.from_bytes(col(6), "little"),
        fup_ips,
    )


def attach_segment(
    desc: SegmentDescriptor, registry: Optional[ShmRegistry] = None
) -> ColumnarSegment:
    """Rebuild the segment from its descriptor: attach, copy the
    columns out, detach.  The returned segment is fully resident and
    independent of the block (which stays alive for other consumers)."""
    reg = registry if registry is not None else _registry
    block = reg.attach(desc.block, payload=desc.inline)
    try:
        return _segment_from_block(block.buf, desc)
    finally:
        reg.detach(desc.block)


def consume_segment(
    desc: SegmentDescriptor, registry: Optional[ShmRegistry] = None
) -> ColumnarSegment:
    """Attach, rebuild, and **unlink** in one step — the receive side
    of a produce-once/consume-once handoff (a pool worker shared the
    segment, this process is its only reader)."""
    reg = registry if registry is not None else _registry
    block = reg.attach(desc.block, payload=desc.inline)
    try:
        return _segment_from_block(block.buf, desc)
    finally:
        reg.unlink(desc.block)


def share_bytes(
    data, registry: Optional[ShmRegistry] = None
) -> BytesDescriptor:
    """One raw buffer (a ToPA snapshot) behind a registry block."""
    reg = registry if registry is not None else _registry
    payload = bytes(data)
    block = reg.create(payload)
    return BytesDescriptor(
        block=block.name,
        length=len(payload),
        inline=None if reg.using_shm else payload,
    )


def attach_bytes(
    desc: BytesDescriptor,
    begin: int = 0,
    end: Optional[int] = None,
    registry: Optional[ShmRegistry] = None,
) -> bytes:
    """A span of the buffer behind a :class:`BytesDescriptor` (attach,
    copy, detach).  ``begin``/``end`` let a pool worker copy out only
    its PSB span instead of the whole snapshot."""
    reg = registry if registry is not None else _registry
    stop = desc.length if end is None else min(end, desc.length)
    block = reg.attach(desc.block, payload=desc.inline)
    try:
        return bytes(block.buf[begin:stop])
    finally:
        reg.detach(desc.block)


def release(descriptor, registry: Optional[ShmRegistry] = None) -> None:
    """Unlink the block behind a descriptor (creator-side cleanup)."""
    reg = registry if registry is not None else _registry
    reg.unlink(descriptor.block)


def segment_fingerprint(seg: ColumnarSegment) -> bytes:
    """A canonical byte string over every column and scalar of ``seg``
    — two segments decode identically iff their fingerprints match.
    Used by the thread-vs-process decode parity gates."""
    records = len(seg.rec_ips)
    parts = [
        b"seg",
        int(seg.sync).to_bytes(1, "little"),
        seg.synced_offset.to_bytes(8, "little"),
        seg.pkt_count.to_bytes(8, "little"),
        repr(seg.cycles).encode(),
        int(seg.truncated).to_bytes(1, "little"),
        seg.rec_ips.tobytes(),
        seg.rec_offsets.tobytes(),
        seg.rec_bit_start.tobytes(),
        seg.rec_bit_end.tobytes(),
        bytes(seg.tnt_bits),
        seg.total_bits.to_bytes(8, "little"),
        seg.pend_start.to_bytes(8, "little"),
        int(seg.trailing_far).to_bytes(1, "little"),
        int(seg.far_mask).to_bytes(max(1, (records + 7) // 8), "little"),
        array("Q", seg.fup_ips).tobytes(),
        bytes(seg.data),
    ]
    return b"|".join(parts)
