"""Build + load the optional C columnar-scan kernel.

``_scan_kernel.c`` is an exact C mirror of the pure-Python columnar
scan; this module owns the lifecycle around it:

- compile on first use with whatever host compiler is on ``PATH``
  (``cc``/``gcc``/``clang``), into a per-user temp directory keyed by a
  hash of the source so stale binaries never survive a source change,
- load it through :mod:`ctypes` with the fixed ``ipt_scan`` signature,
- degrade cleanly: any build/load failure is recorded (see
  :func:`build_error`) and the engine falls back to the pure-Python
  scan with bit-identical results.

Nothing here is imported at interpreter start beyond stdlib; the
compile happens at most once per source hash per machine, and the
attempt happens at most once per process.
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import shutil
import subprocess
import tempfile
from typing import Optional

_SOURCE_PATH = os.path.join(os.path.dirname(__file__), "_scan_kernel.c")

_lib: Optional[ctypes.CDLL] = None
_attempted = False
_error: Optional[str] = None


def _build() -> ctypes.CDLL:
    with open(_SOURCE_PATH, "rb") as fh:
        source = fh.read()
    digest = hashlib.blake2b(source, digest_size=8).hexdigest()
    compiler = (
        shutil.which("cc") or shutil.which("gcc") or shutil.which("clang")
    )
    if compiler is None:
        raise RuntimeError("no C compiler (cc/gcc/clang) on PATH")
    try:
        uid = os.getuid()
    except AttributeError:  # pragma: no cover - non-POSIX
        uid = 0
    cache_dir = os.path.join(
        tempfile.gettempdir(), f"repro-scan-kernel-{uid}"
    )
    so_path = os.path.join(cache_dir, f"scan-{digest}.so")
    if not os.path.exists(so_path):
        os.makedirs(cache_dir, exist_ok=True)
        tmp_path = f"{so_path}.tmp{os.getpid()}"
        cmd = [compiler, "-O2", "-fPIC", "-shared",
               "-o", tmp_path, _SOURCE_PATH]
        proc = subprocess.run(cmd, capture_output=True, text=True)
        if proc.returncode != 0:
            raise RuntimeError(
                f"scan kernel build failed "
                f"({' '.join(cmd)}): {proc.stderr.strip()[:400]}"
            )
        os.replace(tmp_path, so_path)
    lib = ctypes.CDLL(so_path)
    lib.ipt_scan.restype = ctypes.c_long
    return lib


def load() -> Optional[ctypes.CDLL]:
    """The kernel library, or None if it cannot be built/loaded.

    The build is attempted once per process; the outcome (library or
    error string) is cached.
    """
    global _lib, _attempted, _error
    if _attempted:
        return _lib
    _attempted = True
    try:
        _lib = _build()
    except Exception as exc:  # any failure means "unavailable"
        _error = f"{type(exc).__name__}: {exc}"
        _lib = None
    return _lib


def available() -> bool:
    return load() is not None


def build_error() -> Optional[str]:
    """Why the kernel is unavailable (None when it loaded fine)."""
    load()
    return _error


def _reset() -> None:
    """Forget the cached build attempt (tests only)."""
    global _lib, _attempted, _error
    _lib = None
    _attempted = False
    _error = None
