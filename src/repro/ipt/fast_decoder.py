"""Fast (packet-layer) decoding: the engine behind FlowGuard's fast path.

The fast decoder only parses packet *framing* — headers, TNT payloads,
compressed IPs.  It never touches program binaries, which is what makes
it orders of magnitude cheaper than the instruction-flow layer, at the
price of not knowing what instruction produced each packet.

PSB packets reset IP compression, so any PSB is a valid entry point:
``fast_decode_parallel`` splits the stream at PSBs and decodes segments
independently, modelling the parallel decode of §5.3; its
``critical_path_cycles`` is the wall-clock cost with enough workers.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro import costs
from repro.telemetry import get_telemetry
from repro.ipt.packets import (
    DecodedPacket,
    OVF_BYTE,
    PAD_BYTE,
    PSBEND_BYTE,
    PSB_PATTERN,
    PacketError,
    PacketKind,
    TNT_HEADER,
    decode_tnt_payload,
    decompress_ip,
    ip_header_kind,
)


@dataclass(frozen=True)
class TipRecord:
    """One plain TIP packet: an indirect-branch/return target.

    ``tnt_before`` holds the conditional-branch outcomes observed since
    the previous TIP-family packet — the information the credit-labelled
    ITC-CFG edges carry (§4.3).
    ``after_far`` marks the first TIP following a far-transfer resume.
    """

    ip: int
    tnt_before: Tuple[bool, ...]
    offset: int
    after_far: bool = False


@dataclass
class FastDecodeResult:
    """Output of a packet-layer scan."""

    packets: List[DecodedPacket]
    cycles: float
    synced_offset: int = 0
    truncated: bool = False
    #: memoised derivations (results are effectively immutable, so the
    #: first scan's output is simply kept).  ``compare=False`` keeps
    #: equality on the actual decode output.
    _tip_state: Optional[tuple] = field(
        default=None, init=False, repr=False, compare=False
    )
    _fup_ips: Optional[List[int]] = field(
        default=None, init=False, repr=False, compare=False
    )

    def tip_records(self) -> List[TipRecord]:
        """Plain-TIP targets with interleaved TNT context."""
        return self.tip_records_with_state()[0]

    def tip_records_with_state(
        self,
    ) -> Tuple[List[TipRecord], Tuple[bool, ...], bool]:
        """Like :meth:`tip_records`, plus the decoder state dangling at
        the end of the stream: ``(records, trailing_tnt, trailing_far)``.

        TNT bits and the far-transfer marker accumulate *across* PSB
        boundaries (a PSB resets IP compression, not branch context), so
        stitching independently decoded segments needs the trailing
        state of each segment to patch the first TIP of the next.

        The extraction runs once per result: repeat calls return the
        same (shared, must-not-mutate) lists.
        """
        if self._tip_state is not None:
            return self._tip_state
        records: List[TipRecord] = []
        pending_tnt: List[bool] = []
        after_far = False
        for packet in self.packets:
            if packet.kind is PacketKind.TNT:
                pending_tnt.extend(packet.bits)
            elif packet.kind is PacketKind.TIP:
                records.append(
                    TipRecord(
                        ip=packet.ip,
                        tnt_before=tuple(pending_tnt),
                        offset=packet.offset,
                        after_far=after_far,
                    )
                )
                pending_tnt = []
                after_far = False
            elif packet.kind is PacketKind.TIP_PGE:
                after_far = True
        self._tip_state = (records, tuple(pending_tnt), after_far)
        return self._tip_state

    def rebased(self, base: int) -> "FastDecodeResult":
        """A copy with packet offsets shifted into the enclosing stream
        (``base`` is the segment's offset there).  ``base=0`` returns
        ``self`` unchanged."""
        if base == 0:
            return self
        return FastDecodeResult(
            [
                DecodedPacket(p.kind, p.offset + base, bits=p.bits,
                              ip=p.ip)
                for p in self.packets
            ],
            self.cycles,
            synced_offset=self.synced_offset + base,
            truncated=self.truncated,
        )

    def fup_ips(self) -> List[int]:
        """All FUP source addresses (syscall sites + PSB context).

        Scanned once and memoised; the returned list is shared.
        """
        if self._fup_ips is None:
            self._fup_ips = [
                p.ip
                for p in self.packets
                if p.kind is PacketKind.FUP and p.ip is not None
            ]
        return self._fup_ips


@dataclass
class SegmentDecode:
    """One PSB segment as the fast path consumes it: stream-rebased
    packets and TIP records, plus the trailing decoder state needed to
    stitch this segment onto the one after it (see
    :meth:`FastDecodeResult.tip_records_with_state`).

    Consumers must treat ``packets`` and ``records`` as immutable — the
    segment cache hands the same lists to every hit.
    """

    packets: List[DecodedPacket]
    records: List[TipRecord]
    trailing_tnt: Tuple[bool, ...]
    trailing_far: bool
    cycles: float
    truncated: bool


def sync_to_psb(data: bytes, start: int = 0) -> int:
    """Offset of the first PSB at/after ``start``; -1 if none."""
    if isinstance(data, memoryview):  # views lack .find
        data = bytes(data)
    return data.find(PSB_PATTERN, start)


def psb_offsets(data: bytes, start: int = 0) -> List[int]:
    """All PSB packet offsets at/after ``start``, in stream order.

    The one shared PSB scan: tail decoding, segment splitting and slice
    accounting all derive their boundaries from it.

    A ``memoryview`` input (a fleet ring drain) is converted to
    ``bytes`` exactly once up front, so the whole scan runs on
    ``bytes.find`` — the previous per-probe conversion inside
    :func:`sync_to_psb` copied the remaining buffer for every PSB found.
    """
    if isinstance(data, memoryview):
        data = bytes(data)
    offsets: List[int] = []
    step = len(PSB_PATTERN)
    pos = data.find(PSB_PATTERN, start)
    while pos >= 0:
        offsets.append(pos)
        pos = data.find(PSB_PATTERN, pos + step)
    return offsets


def fast_decode(
    data: bytes,
    sync: bool = False,
    charge: bool = True,
    telemetry: bool = True,
) -> FastDecodeResult:
    """Scan a packet stream.

    With ``sync=True`` (required after a ToPA wrap) decoding starts at
    the first PSB.  A truncated final packet marks the result
    ``truncated`` instead of raising — a snapshot may end mid-packet
    only if the producer was interrupted, and real decoders tolerate it.

    ``data`` may be a ``memoryview`` over a larger buffer: segment
    decoding slices zero-copy (the scan indexes bytes either way).

    ``telemetry=False`` suppresses the ``ipt.fast_decode.*`` counters:
    the columnar engine uses this scan to lazily materialise legacy
    packet objects it already charged and counted at columnar-scan time,
    and double-counting would break telemetry parity between engines.
    """
    pos = 0
    if sync:
        pos = sync_to_psb(data)
        if pos < 0:
            return FastDecodeResult([], 0.0, synced_offset=len(data))
    synced = pos
    packets: List[DecodedPacket] = []
    last_ip = 0
    size = len(data)
    truncated = False

    while pos < size:
        header = data[pos]
        if header == PAD_BYTE:
            pos += 1
            continue
        if (
            header == PSB_PATTERN[0]
            and data[pos:pos + len(PSB_PATTERN)] == PSB_PATTERN
        ):
            packets.append(DecodedPacket(PacketKind.PSB, pos))
            last_ip = 0
            pos += len(PSB_PATTERN)
            continue
        if header == PSBEND_BYTE:
            packets.append(DecodedPacket(PacketKind.PSBEND, pos))
            pos += 1
            continue
        if header == OVF_BYTE:
            packets.append(DecodedPacket(PacketKind.OVF, pos))
            pos += 1
            continue
        if header == TNT_HEADER:
            if pos + 2 > size:
                truncated = True
                break
            packets.append(
                DecodedPacket(
                    PacketKind.TNT,
                    pos,
                    bits=decode_tnt_payload(data[pos + 1]),
                )
            )
            pos += 2
            continue
        kind = ip_header_kind(header)
        if kind is not None:
            if pos + 2 > size:
                truncated = True
                break
            width = data[pos + 1]
            if width > 8:
                # No IP compression mode emits more than 8 bytes: this
                # is corruption, not a snapshot that ended mid-packet —
                # be loud, or a garbage width would silently swallow the
                # rest of the segment as a fake truncation.
                raise PacketError(
                    f"desynchronised at offset {pos}: "
                    f"IP width {width} impossible"
                )
            if pos + 2 + width > size:
                truncated = True
                break
            if width == 0:
                ip: Optional[int] = None
            else:
                ip = decompress_ip(data[pos + 2 : pos + 2 + width], last_ip)
                last_ip = ip
            packets.append(DecodedPacket(kind, pos, ip=ip))
            pos += 2 + width
            continue
        if PSB_PATTERN[: size - pos] == data[pos:]:
            # The buffer ends inside a PSB pattern: a clean truncation,
            # not a desync.
            truncated = True
            break
        raise PacketError(
            f"desynchronised at offset {pos}: header {header:#04x}"
        )

    cycles = (
        (pos - synced) * costs.FAST_DECODE_CYCLES_PER_BYTE if charge else 0.0
    )
    if telemetry:
        tel = get_telemetry()
        if tel.enabled:
            m = tel.metrics
            m.counter("ipt.fast_decode.calls").inc()
            m.counter("ipt.fast_decode.bytes").inc(pos - synced)
            m.counter("ipt.fast_decode.packets").inc(len(packets))
    return FastDecodeResult(
        packets, cycles, synced_offset=synced, truncated=truncated
    )


@dataclass
class ParallelDecodeResult(FastDecodeResult):
    """Combined result of a PSB-parallel decode."""

    segments: int = 1
    critical_path_cycles: float = 0.0


def psb_boundaries(data: bytes, start: int = 0) -> List[int]:
    """PSB segment boundaries: ``[start, psb1, psb2, ..., len(data)]``.

    PSBs are found by :func:`psb_offsets` from one pattern-length past
    ``start`` (``start`` itself already opens the first segment).
    """
    return (
        [start]
        + psb_offsets(data, start + len(PSB_PATTERN))
        + [len(data)]
    )


def fast_decode_parallel(data: bytes, sync: bool = False,
                         executor=None,
                         cache=None) -> ParallelDecodeResult:
    """Split at PSB boundaries and decode segments independently.

    Total ``cycles`` is the work done; ``critical_path_cycles`` is the
    slowest segment — the latency with one worker per segment, the §5.3
    "can be done in parallel" acceleration.

    Segments are sliced as ``memoryview``s over ``data`` — no per-segment
    byte copy — except for non-thread executors, which pickle their
    arguments and therefore need real ``bytes``.

    ``executor`` optionally maps segment decoding onto a real
    ``concurrent.futures`` executor (the fleet's threaded checker mode);
    results are identical to the serial path, in the same order.

    ``cache`` optionally routes each segment through a
    :class:`repro.ipt.segment_cache.SegmentDecodeCache`, so
    byte-identical segments across snapshots and processes decode once;
    hits charge the cache's probe cost model instead of the per-byte
    decode cost (and are reported in ``cycles`` accordingly).
    """
    start = 0
    if sync:
        start = sync_to_psb(data)
        if start < 0:
            return ParallelDecodeResult([], 0.0, synced_offset=len(data))
    boundaries = psb_boundaries(data, start)

    spans = [
        (begin, end)
        for begin, end in zip(boundaries, boundaries[1:])
        if begin < end
    ]
    view = memoryview(data)

    if cache is not None:
        packets: List[DecodedPacket] = []
        total = 0.0
        critical = 0.0
        for begin, end in spans:
            segment = cache.decode(view[begin:end], base=begin)
            packets.extend(segment.packets)
            total += segment.cycles
            critical = max(critical, segment.cycles)
        return ParallelDecodeResult(
            packets,
            total,
            synced_offset=start,
            segments=max(len(spans), 1),
            critical_path_cycles=critical,
        )

    if executor is not None:
        zero_copy = isinstance(executor, ThreadPoolExecutor)
        segments = list(
            executor.map(
                fast_decode,
                [
                    view[b:e] if zero_copy else bytes(view[b:e])
                    for b, e in spans
                ],
            )
        )
    else:
        segments = [fast_decode(view[b:e]) for b, e in spans]

    packets = []
    total = 0.0
    critical = 0.0
    for (begin, _), segment in zip(spans, segments):
        # Re-base offsets to the full stream.
        packets.extend(
            DecodedPacket(p.kind, p.offset + begin, bits=p.bits, ip=p.ip)
            for p in segment.packets
        )
        total += segment.cycles
        critical = max(critical, segment.cycles)
    return ParallelDecodeResult(
        packets,
        total,
        synced_offset=start,
        segments=max(len(spans), 1),
        critical_path_cycles=critical,
    )
