/* Columnar packet-scan kernel.
 *
 * An exact C mirror of the pure-Python columnar scan loop in
 * repro/ipt/columnar.py: same wire format, same truncation rules, same
 * error conditions.  The Python wrapper (repro/ipt/scan_kernel.py)
 * compiles this file on demand with the host C compiler and calls
 * ipt_scan through ctypes; when no compiler is available the engine
 * falls back to the pure-Python scan with identical results.
 *
 * Column buffers are caller-allocated at worst-case sizes (every
 * record column entry is a u64 so the wrapper can frombytes() straight
 * into array('Q')/array('L') on LP64 platforms).  Outputs land in
 * out[]:
 *
 *   out[0]  final scan position            out[6]  trailing after_far
 *   out[1]  packet count                   out[7]  truncated flag
 *   out[2]  TIP record count               out[8]  FUP count
 *   out[3]  packed TNT byte count          out[9]  error offset
 *   out[4]  total TNT bits                 out[10] error value
 *   out[5]  pending-bit-run start
 *
 * Return value: 0 = clean scan, 1 = invalid TNT payload, 2 = impossible
 * IP width, 3 = unknown header (desync).  On error the wrapper raises
 * the byte-identical PacketError the Python scan raises.
 */

#include <string.h>

typedef unsigned long long u64;

#define NO_IP (~0ULL)

long ipt_scan(const unsigned char *data, long size, long start,
              u64 *rec_ips, u64 *rec_offsets,
              u64 *rec_bit_start, u64 *rec_bit_end,
              unsigned char *tnt_buf, u64 *fup_ips,
              unsigned char *far_bitmap, u64 *out)
{
    static const unsigned char psb[8] = {
        0x82, 0x02, 0x82, 0x02, 0x82, 0x02, 0x82, 0x02
    };
    long pos = start;
    u64 acc = 0;
    int acc_bits = 0;
    u64 total_bits = 0, pend_start = 0, pkt_count = 0;
    long nrec = 0, ntnt = 0, nfup = 0;
    int after_far = 0, truncated = 0;
    u64 last_ip = 0;

    while (pos < size) {
        unsigned char header = data[pos];
        if (header == 0x02) { /* TNT */
            unsigned char payload;
            int width;
            if (pos + 2 > size) { truncated = 1; break; }
            payload = data[pos + 1];
            if (payload <= 1 || payload > 0x7F) {
                out[9] = (u64)pos; out[10] = payload;
                return 1;
            }
            width = 31 - __builtin_clz(payload); /* bit_length - 1 */
            acc = (acc << width) | (payload ^ (1u << width));
            acc_bits += width;
            total_bits += (u64)width;
            while (acc_bits >= 8) {
                acc_bits -= 8;
                tnt_buf[ntnt++] = (unsigned char)((acc >> acc_bits) & 0xFF);
            }
            acc &= (1u << acc_bits) - 1;
            pkt_count++;
            pos += 2;
        } else if (header == 0x0D || header == 0x11 ||
                   header == 0x21 || header == 0x1D) {
            /* TIP / TIP.PGE / TIP.PGD / FUP */
            int width, suppressed, i;
            long end;
            u64 ip = 0;
            if (pos + 2 > size) { truncated = 1; break; }
            width = data[pos + 1];
            if (width > 8) {
                out[9] = (u64)pos; out[10] = (u64)width;
                return 2;
            }
            end = pos + 2 + width;
            if (end > size) { truncated = 1; break; }
            suppressed = (width == 0);
            if (!suppressed) {
                u64 mask = (width == 8)
                    ? NO_IP : ((1ULL << (8 * width)) - 1);
                u64 low = 0;
                for (i = width - 1; i >= 0; i--)
                    low = (low << 8) | data[pos + 2 + i];
                ip = (last_ip & ~mask) | low;
                last_ip = ip;
            }
            if (header == 0x0D) { /* TIP */
                if (after_far) {
                    far_bitmap[nrec >> 3] |=
                        (unsigned char)(1u << (nrec & 7));
                    after_far = 0;
                }
                rec_ips[nrec] = suppressed ? NO_IP : ip;
                rec_offsets[nrec] = (u64)pos;
                rec_bit_start[nrec] = pend_start;
                rec_bit_end[nrec] = total_bits;
                pend_start = total_bits;
                nrec++;
            } else if (header == 0x11) { /* TIP.PGE */
                after_far = 1;
            } else if (header == 0x1D && !suppressed) { /* FUP */
                fup_ips[nfup++] = ip;
            }
            pkt_count++;
            pos = end;
        } else if (header == 0x00) { /* PAD */
            pos++;
        } else if (header == 0x82 && pos + 8 <= size &&
                   memcmp(data + pos, psb, 8) == 0) {
            last_ip = 0;
            pkt_count++;
            pos += 8;
        } else if (header == 0x23 || header == 0xF3) { /* PSBEND / OVF */
            pkt_count++;
            pos++;
        } else {
            long rem = size - pos;
            if (rem < 8 && memcmp(data + pos, psb, (size_t)rem) == 0) {
                /* buffer ends inside a PSB pattern: clean truncation */
                truncated = 1;
                break;
            }
            out[9] = (u64)pos; out[10] = header;
            return 3;
        }
    }

    if (acc_bits)
        tnt_buf[ntnt++] = (unsigned char)((acc << (8 - acc_bits)) & 0xFF);

    out[0] = (u64)pos;
    out[1] = pkt_count;
    out[2] = (u64)nrec;
    out[3] = (u64)ntnt;
    out[4] = total_bits;
    out[5] = pend_start;
    out[6] = (u64)after_far;
    out[7] = (u64)truncated;
    out[8] = (u64)nfup;
    return 0;
}
