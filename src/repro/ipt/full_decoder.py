"""Full decode: the instruction-flow layer of abstraction.

Models Intel's reference decoder library: reconstructing the exact
execution flow requires parsing the *program binaries* instruction by
instruction and combining them with the packet stream — each conditional
branch consumes a TNT bit, each indirect branch consumes a TIP, each far
transfer consumes its FUP/PGD/PGE group.  Every instruction walked
charges :data:`repro.costs.FULL_DECODE_CYCLES_PER_INSN`, which is why
decoding is orders of magnitude slower than tracing (§2: ~230x on
SPECCPU).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple

from repro import costs
from repro.telemetry import get_telemetry
from repro.cpu.events import CoFIKind
from repro.cpu.memory import Memory, MemoryError_
from repro.isa.encoding import DecodeError, decode_at, instruction_length
from repro.isa.instructions import Insn, Op
from repro.ipt.packets import DecodedPacket, PacketKind


class TraceMismatch(Exception):
    """Packet stream and binaries disagree (decoder desync)."""


@dataclass(frozen=True)
class FlowEdge:
    """One reconstructed control transfer."""

    kind: CoFIKind
    src: int
    dst: int
    taken: bool = True


@dataclass
class FullDecodeResult:
    edges: List[FlowEdge]
    insn_count: int
    cycles: float
    end_ip: Optional[int] = None
    exhausted: bool = True  # packets fully consumed


class _PacketCursor:
    """Sequential packet consumption with PSB+ group skipping."""

    def __init__(self, packets: List[DecodedPacket]) -> None:
        self._packets = packets
        self._index = 0
        self._tnt_bits: List[bool] = []

    def _advance_raw(self) -> Optional[DecodedPacket]:
        if self._index >= len(self._packets):
            return None
        packet = self._packets[self._index]
        self._index += 1
        return packet

    def _skip_psb_group(self) -> None:
        """Consume context packets up to and including PSBEND."""
        while self._index < len(self._packets):
            packet = self._packets[self._index]
            self._index += 1
            if packet.kind is PacketKind.PSBEND:
                return

    def next_tnt_bit(self) -> Optional[bool]:
        """Next conditional-branch outcome, or None at stream end."""
        while not self._tnt_bits:
            packet = self._advance_raw()
            if packet is None:
                return None
            if packet.kind is PacketKind.PSB:
                self._skip_psb_group()
                continue
            if packet.kind is PacketKind.TNT:
                self._tnt_bits.extend(packet.bits)
                continue
            raise TraceMismatch(
                f"expected TNT, found {packet.kind.value} at "
                f"offset {packet.offset}"
            )
        return self._tnt_bits.pop(0)

    def next_tip(self) -> Optional[int]:
        """Next plain-TIP target, or None at stream end."""
        if self._tnt_bits:
            raise TraceMismatch("unconsumed TNT bits before a TIP")
        while True:
            packet = self._advance_raw()
            if packet is None:
                return None
            if packet.kind is PacketKind.PSB:
                self._skip_psb_group()
                continue
            if packet.kind is PacketKind.TIP:
                return packet.ip
            raise TraceMismatch(
                f"expected TIP, found {packet.kind.value} at "
                f"offset {packet.offset}"
            )

    def next_far_resume(self, expected_src: int) -> Optional[int]:
        """Consume a FUP/TIP.PGD/TIP.PGE group; return the resume IP."""
        if self._tnt_bits:
            raise TraceMismatch("unconsumed TNT bits before a far transfer")
        while True:
            packet = self._advance_raw()
            if packet is None:
                return None
            if packet.kind is PacketKind.PSB:
                self._skip_psb_group()
                continue
            if packet.kind is not PacketKind.FUP:
                raise TraceMismatch(
                    f"expected FUP, found {packet.kind.value}"
                )
            if packet.ip != expected_src:
                raise TraceMismatch(
                    f"FUP {packet.ip:#x} does not match far-transfer "
                    f"source {expected_src:#x}"
                )
            break
        pgd = self._advance_raw()
        if pgd is None:
            return None
        if pgd.kind is not PacketKind.TIP_PGD:
            raise TraceMismatch(f"expected TIP.PGD, found {pgd.kind.value}")
        pge = self._advance_raw()
        if pge is None:
            return None
        if pge.kind is not PacketKind.TIP_PGE:
            raise TraceMismatch(f"expected TIP.PGE, found {pge.kind.value}")
        return pge.ip

    def initial_ip(self) -> Optional[int]:
        """Find the first PSB-context FUP or TIP.PGE to anchor decoding."""
        while self._index < len(self._packets):
            packet = self._packets[self._index]
            self._index += 1
            if packet.kind is PacketKind.PSB:
                # The FUP inside the PSB+ group carries the current IP.
                while self._index < len(self._packets):
                    ctx = self._packets[self._index]
                    self._index += 1
                    if ctx.kind is PacketKind.FUP and ctx.ip is not None:
                        # Consume the rest of the group.
                        while (
                            self._index < len(self._packets)
                            and self._packets[self._index].kind
                            is not PacketKind.PSBEND
                        ):
                            self._index += 1
                        if self._index < len(self._packets):
                            self._index += 1
                        return ctx.ip
                    if ctx.kind is PacketKind.PSBEND:
                        break
            elif packet.kind is PacketKind.TIP_PGE and packet.ip is not None:
                return packet.ip
        return None


class FullDecoder:
    """Reconstructs exact control flow from packets + binaries."""

    def __init__(self, memory: Memory, max_insns: int = 5_000_000) -> None:
        self.memory = memory
        self.max_insns = max_insns
        self._icache: Dict[int, Tuple[Insn, int]] = {}

    def _fetch(self, ip: int) -> Tuple[Insn, int]:
        cached = self._icache.get(ip)
        if cached is not None:
            return cached
        try:
            header = self.memory.read_raw(ip, 1)
            length = instruction_length(Op(header[0]))
            raw = self.memory.read_raw(ip, length)
            insn, _ = decode_at(raw, 0)
        except (MemoryError_, DecodeError, ValueError) as exc:
            raise TraceMismatch(
                f"cannot disassemble at {ip:#x}: {exc}"
            ) from exc
        self._icache[ip] = (insn, length)
        return insn, length

    def decode(
        self,
        packets: List[DecodedPacket],
        start_ip: Optional[int] = None,
    ) -> FullDecodeResult:
        """Walk the binaries under the guidance of the packet stream.

        Decoding anchors at ``start_ip`` or at the first PSB-context
        FUP / TIP.PGE in the stream, and ends when packets run out.

        ``packets`` is either a ``DecodedPacket`` list or any object
        with a ``cursor()`` hook (``repro.ipt.columnar``'s
        ``ColumnarSlowSource``) yielding a packet-cursor-compatible
        walker — the degraded lane uses the latter to replay raw
        segment bytes without materialising packet objects.
        """
        own_cursor = getattr(packets, "cursor", None)
        cursor = own_cursor() if own_cursor is not None else _PacketCursor(packets)
        ip = start_ip if start_ip is not None else cursor.initial_ip()
        edges: List[FlowEdge] = []
        insn_count = 0
        if ip is None:
            return FullDecodeResult(edges, 0, 0.0, exhausted=True)

        while insn_count < self.max_insns:
            insn, length = self._fetch(ip)
            insn_count += 1
            op = insn.op
            next_ip = ip + length

            if op is Op.HALT:
                return self._finish(edges, insn_count, ip, True)
            if op is Op.JMP:
                target = next_ip + insn.rel
                edges.append(FlowEdge(CoFIKind.DIRECT_JMP, ip, target))
                ip = target
                continue
            if op is Op.CALL:
                target = next_ip + insn.rel
                edges.append(FlowEdge(CoFIKind.DIRECT_CALL, ip, target))
                ip = target
                continue
            if op is Op.JCC:
                bit = cursor.next_tnt_bit()
                if bit is None:
                    return self._finish(edges, insn_count, ip, True)
                target = next_ip + insn.rel if bit else next_ip
                edges.append(
                    FlowEdge(CoFIKind.COND_BRANCH, ip, target, taken=bit)
                )
                ip = target
                continue
            if op in (Op.JMPR, Op.CALLR, Op.RET):
                target = cursor.next_tip()
                if target is None:
                    return self._finish(edges, insn_count, ip, True)
                kind = {
                    Op.JMPR: CoFIKind.INDIRECT_JMP,
                    Op.CALLR: CoFIKind.INDIRECT_CALL,
                    Op.RET: CoFIKind.RET,
                }[op]
                edges.append(FlowEdge(kind, ip, target))
                ip = target
                continue
            if op is Op.SYSCALL:
                resume = cursor.next_far_resume(ip)
                if resume is None:
                    return self._finish(edges, insn_count, ip, True)
                edges.append(FlowEdge(CoFIKind.FAR_TRANSFER, ip, resume))
                ip = resume
                continue
            ip = next_ip

        # Fell out on the instruction budget (or HALT): packets may remain.
        return self._finish(edges, insn_count, ip, False)

    def _finish(
        self, edges: List[FlowEdge], insn_count: int, ip: int, exhausted: bool
    ) -> FullDecodeResult:
        tel = get_telemetry()
        if tel.enabled:
            m = tel.metrics
            m.counter("ipt.full_decode.calls").inc()
            m.counter("ipt.full_decode.insns").inc(insn_count)
            m.counter("ipt.full_decode.edges").inc(len(edges))
        return FullDecodeResult(
            edges=edges,
            insn_count=insn_count,
            cycles=insn_count * costs.FULL_DECODE_CYCLES_PER_INSN,
            end_ip=ip,
            exhausted=exhausted,
        )
