"""Columnar decode engine: table-driven packet scan, no per-packet objects.

The object engine (:func:`repro.ipt.fast_decoder.fast_decode`) allocates
a ``DecodedPacket`` dataclass per packet; after the PR-3 caches, that
allocation — not the cycle-model work — dominates fast-path wall-clock.
This module is a second engine over the same wire format that emits
*columns* instead:

======================  ====================================================
column                  contents
======================  ====================================================
``rec_ips``             ``array('Q')`` — one entry per plain TIP packet;
                        ``NO_IP`` (2**64-1) marks an IP-suppressed TIP
``rec_offsets``         ``array('Q')`` — stream offset of each TIP,
                        segment-relative (rebasing is integer addition at
                        materialisation time, never a copy)
``tnt_bits``            packed TNT bitstream (``bytes``, oldest branch
                        first, MSB-first within each byte)
``rec_bit_start/end``   ``array('L')`` — each TIP's slice of ``tnt_bits``
                        (the TNT run observed since the previous TIP)
``far_mask``            int bitset — bit *i* set iff record *i* is the
                        first TIP after a far-transfer resume
``fup_ips``             ``array('Q')`` — FUP source addresses
======================  ====================================================

Three interchangeable scanners produce these columns, all
verdict-bit-identical:

- :func:`columnar_scan_reference` — the original per-byte walk over the
  256-entry :data:`DISPATCH` / :data:`TNT_WIDTH` tables (the oracle the
  property tests compare against);
- the vectorised pure-Python scan — PAD runs and TNT packet runs are
  consumed per *run* (regex pre-classification + ``bytes.translate``
  width lookup + one bulk bit flush), PSB sync uses ``bytes.find``;
- the optional C kernel (:mod:`repro.ipt.scan_kernel`) — the same loop
  compiled with the host C compiler, gated on build availability with
  the pure-Python scan as fallback.  ``REPRO_SCAN_KERNEL`` /
  :func:`set_scan_kernel` pick ``auto`` (default), ``on`` or ``off``.

**Contracts** (the columnar experiment gates all three):

- *verdict-bit-identical*: every TIP record, trailing stitch state,
  truncation flag and ``PacketError`` is byte-for-byte what the object
  engine produces;
- *charged-cycle-identical*: the cycle model is the paper's measurement
  instrument — the scan charges the identical
  ``bytes * FAST_DECODE_CYCLES_PER_BYTE`` expression, and consumers
  accumulate in the identical order, so only wall-clock improves;
- *lazy materialisation*: legacy ``DecodedPacket`` lists are rebuilt on
  demand by running the object engine over the retained segment bytes
  (``charge=False, telemetry=False`` — the columnar scan already
  charged and counted them), while the degraded lane
  (:class:`ColumnarSlowSource` + the byte cursor) re-verifies
  SUSPICIOUS windows straight off the raw bytes without materialising
  packet objects at all.
"""

from __future__ import annotations

import ctypes
import os
import re
from array import array
from concurrent.futures import ThreadPoolExecutor
from typing import List, Optional, Tuple

from repro import costs
from repro.telemetry import get_telemetry
from repro.ipt import scan_kernel
from repro.ipt.fast_decoder import (
    TipRecord,
    fast_decode,
    psb_boundaries,
    sync_to_psb,
)
from repro.ipt.full_decoder import TraceMismatch
from repro.ipt.packets import (
    FUP_HEADER,
    OVF_BYTE,
    PAD_BYTE,
    PSBEND_BYTE,
    PSB_PATTERN,
    PacketError,
    TIP_HEADER,
    TIP_PGD_HEADER,
    TIP_PGE_HEADER,
    TNT_BITS_TABLE,
    TNT_HEADER,
    compose_tnt_sigs,
    unpack_tnt_sig,
)

#: sentinel for an IP-suppressed TIP in the ``rec_ips`` column
#: (``array('Q')`` cannot hold ``None``; no simulated address is ever
#: 2**64-1).
NO_IP = (1 << 64) - 1

# Dispatch action codes.  TNT first and the IP family contiguous right
# after it, so the scan loop resolves the two hot cases with at most
# two comparisons.
_A_TNT = 0
_A_TIP = 1
_A_PGE = 2
_A_PGD = 3
_A_FUP = 4
_A_PAD = 5
_A_PSB = 6
_A_PSBEND = 7
_A_OVF = 8
_A_BAD = 9

#: action code -> the ``PacketKind.value`` string the object cursor
#: reports in ``TraceMismatch`` messages.
_ACTION_KIND = (
    "tnt", "tip", "tip.pge", "tip.pgd", "fup", "pad", "psb", "psbend",
    "ovf", "?",
)

_END = -1  # byte-cursor stream end

#: bounded per-base record-materialisation memo (matches the object
#: cache's rebase memo limit).
_MEMO_LIMIT = 8


def _build_dispatch() -> bytes:
    table = bytearray([_A_BAD]) * 256
    table[PAD_BYTE] = _A_PAD
    table[TNT_HEADER] = _A_TNT
    table[TIP_HEADER] = _A_TIP
    table[TIP_PGE_HEADER] = _A_PGE
    table[TIP_PGD_HEADER] = _A_PGD
    table[FUP_HEADER] = _A_FUP
    table[PSB_PATTERN[0]] = _A_PSB
    table[PSBEND_BYTE] = _A_PSBEND
    table[OVF_BYTE] = _A_OVF
    return bytes(table)


def _build_tnt_width() -> bytes:
    """Payload byte -> bit count below the stop marker; 255 = invalid
    (same validity rule as :func:`repro.ipt.packets.decode_tnt_payload`)."""
    table = bytearray(256)
    for payload in range(256):
        if payload <= 1 or payload > 0x7F:
            table[payload] = 255
        else:
            table[payload] = payload.bit_length() - 1
    return bytes(table)


#: 256-entry header dispatch table.
DISPATCH = _build_dispatch()
#: 256-entry TNT payload width table.
TNT_WIDTH = _build_tnt_width()

#: a maximal run of PAD bytes.
_PAD_RUN = re.compile(rb"\x00+")
#: a maximal run of complete, *valid* TNT packets — the character class
#: is exactly the valid payload range, so a non-match at a TNT header
#: is either truncation or an invalid payload (resolved scalar-side
#: with the byte-identical error).
_TNT_RUN = re.compile(rb"(?:\x02[\x02-\x7f])+")

# -- scan-kernel gating ------------------------------------------------------

_KERNEL_MODES = ("auto", "on", "off")

#: the C kernel needs LP64 column arrays (it fills u64 buffers the
#: wrapper adopts verbatim with ``array.frombytes``).
_KERNEL_ABI_OK = array("L").itemsize == 8

_kernel_mode = os.environ.get("REPRO_SCAN_KERNEL", "auto")
if _kernel_mode not in _KERNEL_MODES:
    _kernel_mode = "auto"


def set_scan_kernel(mode: str) -> str:
    """Set the process-wide scan-kernel mode; returns the previous one.

    ``auto`` uses the C kernel when it builds, ``off`` forces the
    pure-Python scan, ``on`` requires the kernel (the first scan raises
    ``RuntimeError`` if it cannot be built).  The ``REPRO_SCAN_KERNEL``
    environment variable provides the initial value.
    """
    global _kernel_mode
    if mode not in _KERNEL_MODES:
        raise ValueError(
            f"unknown scan-kernel mode {mode!r}; pick one of {_KERNEL_MODES}"
        )
    previous = _kernel_mode
    _kernel_mode = mode
    return previous


def scan_kernel_mode() -> str:
    return _kernel_mode


def scan_kernel_active() -> bool:
    """Whether the next ``columnar_scan`` will run the C kernel."""
    return (
        _kernel_mode != "off"
        and _KERNEL_ABI_OK
        and scan_kernel.available()
    )


def _bits_sig(buf, start: int, end: int) -> int:
    """Signature of bitstream slice ``[start, end)`` (1-prefixed).

    One ``int.from_bytes`` over the covering byte range instead of a
    per-bit loop — the window-materialisation hot spot before the memo
    columns existed, still used to build them.
    """
    if start >= end:
        return 1
    width = end - start
    first = start >> 3
    last = (end + 7) >> 3
    chunk = int.from_bytes(buf[first:last], "big") >> ((last << 3) - end)
    return (1 << width) | (chunk & ((1 << width) - 1))


class ColumnarSegment:
    """One scanned stream (usually a PSB segment) in columnar form.

    Offsets in the columns are relative to ``data``; consumers carry the
    segment's stream base separately and add it at materialisation time,
    which is what makes cached segments rebase zero-copy.

    Materialised *window* shapes are memoised on the segment
    (``sig_column``/``ip_column``/``tnt_column``/``records_at``), so a
    cache-resident segment pays the unpack cost once and every warm hit
    serves list slices.
    """

    __slots__ = (
        "data", "sync", "synced_offset", "pkt_count", "cycles",
        "truncated", "rec_ips", "rec_offsets", "rec_bit_start",
        "rec_bit_end", "tnt_bits", "total_bits", "pend_start",
        "trailing_far", "far_mask", "fup_ips", "_packets",
        "_sigs", "_ips", "_tnts", "_recmemo",
    )

    def __init__(
        self,
        data,
        sync: bool,
        synced_offset: int,
        pkt_count: int,
        cycles: float,
        truncated: bool,
        rec_ips,
        rec_offsets,
        rec_bit_start,
        rec_bit_end,
        tnt_bits: bytes,
        total_bits: int,
        pend_start: int,
        trailing_far: bool,
        far_mask: int,
        fup_ips,
    ) -> None:
        self.data = data
        self.sync = sync
        self.synced_offset = synced_offset
        self.pkt_count = pkt_count
        self.cycles = cycles
        self.truncated = truncated
        self.rec_ips = rec_ips
        self.rec_offsets = rec_offsets
        self.rec_bit_start = rec_bit_start
        self.rec_bit_end = rec_bit_end
        self.tnt_bits = tnt_bits
        self.total_bits = total_bits
        self.pend_start = pend_start
        self.trailing_far = trailing_far
        self.far_mask = far_mask
        self.fup_ips = fup_ips
        self._packets: Optional[list] = None
        self._sigs: Optional[list] = None
        self._ips: Optional[list] = None
        self._tnts: Optional[list] = None
        self._recmemo: Optional[dict] = None

    # -- columnar access -----------------------------------------------------

    @property
    def record_count(self) -> int:
        return len(self.rec_ips)

    def record_sig(self, index: int) -> int:
        """Packed TNT signature of record ``index``."""
        return _bits_sig(
            self.tnt_bits, self.rec_bit_start[index],
            self.rec_bit_end[index],
        )

    def trailing_sig(self) -> int:
        """Signature of the TNT run dangling past the last record."""
        return _bits_sig(self.tnt_bits, self.pend_start, self.total_bits)

    def record_ip(self, index: int) -> Optional[int]:
        raw = self.rec_ips[index]
        return None if raw == NO_IP else raw

    # -- memoised window columns ---------------------------------------------

    def sig_column(self) -> list:
        """Packed signature per record (shared memo — do not mutate)."""
        sigs = self._sigs
        if sigs is None:
            tnt = self.tnt_bits
            starts = self.rec_bit_start
            ends = self.rec_bit_end
            sigs = [
                _bits_sig(tnt, starts[i], ends[i])
                for i in range(len(starts))
            ]
            self._sigs = sigs
        return sigs

    def ip_column(self) -> list:
        """IP-or-None per record (shared memo — do not mutate)."""
        ips = self._ips
        if ips is None:
            ips = [None if raw == NO_IP else raw for raw in self.rec_ips]
            self._ips = ips
        return ips

    def tnt_column(self) -> list:
        """TNT bit tuple per record (shared memo — do not mutate)."""
        tnts = self._tnts
        if tnts is None:
            tnts = [unpack_tnt_sig(sig) for sig in self.sig_column()]
            self._tnts = tnts
        return tnts

    def records_at(self, base: int) -> list:
        """Unpatched :class:`TipRecord` list rebased to ``base``,
        memoised per base (shared — callers slice, never mutate)."""
        memo = self._recmemo
        if memo is None:
            memo = self._recmemo = {}
        records = memo.get(base)
        if records is None:
            ips = self.ip_column()
            tnts = self.tnt_column()
            offsets = self.rec_offsets
            far_mask = self.far_mask
            records = [
                TipRecord(
                    ips[i], tnts[i], offsets[i] + base,
                    bool((far_mask >> i) & 1),
                )
                for i in range(len(ips))
            ]
            if len(memo) < _MEMO_LIMIT:
                memo[base] = records
        return records

    # -- legacy materialisation ----------------------------------------------

    def tip_records_with_state(
        self, base: int = 0
    ) -> Tuple[List[TipRecord], Tuple[bool, ...], bool]:
        """Materialise the full legacy record list + trailing state."""
        return (
            list(self.records_at(base)),
            unpack_tnt_sig(self.trailing_sig()),
            self.trailing_far,
        )

    def tip_records(self, base: int = 0) -> List[TipRecord]:
        return self.tip_records_with_state(base)[0]

    def materialise_record(self, index: int, base: int = 0) -> TipRecord:
        raw = self.rec_ips[index]
        return TipRecord(
            None if raw == NO_IP else raw,
            unpack_tnt_sig(self.record_sig(index)),
            self.rec_offsets[index] + base,
            bool((self.far_mask >> index) & 1),
        )

    def fup_addresses(self) -> List[int]:
        return list(self.fup_ips)

    def packets(self) -> list:
        """Legacy ``DecodedPacket`` list, segment-relative offsets.

        Materialised on first request by running the object engine over
        the retained bytes with charging and telemetry off (this work
        was already charged and counted by the columnar scan); cached
        because slow-path hand-off and tests may ask repeatedly.  The
        returned list is shared — callers must not mutate it.
        """
        if self._packets is None:
            self._packets = fast_decode(
                self.data, sync=self.sync, charge=False, telemetry=False
            ).packets
        return self._packets

    def packets_at(self, base: int) -> list:
        """Packets rebased to stream offset ``base`` (fresh list if
        ``base`` is non-zero, the shared cached list otherwise)."""
        packets = self.packets()
        if base == 0:
            return packets
        return [
            type(p)(p.kind, p.offset + base, bits=p.bits, ip=p.ip)
            for p in packets
        ]


def _empty_segment(data, sync: bool) -> ColumnarSegment:
    return ColumnarSegment(
        data, sync, len(data), 0, 0.0, False,
        array("Q"), array("Q"), array("L"), array("L"),
        b"", 0, 0, False, 0, array("Q"),
    )


def _finish_segment(
    data, sync, synced, pos, pkt_count, charge, truncated,
    rec_ips, rec_offsets, rec_bit_start, rec_bit_end,
    tnt_bits, total_bits, pend_start, after_far, far_mask, fup_ips,
) -> ColumnarSegment:
    """Shared scan epilogue: the identical cycle charge and telemetry
    counters regardless of which scanner produced the columns."""
    cycles = (
        (pos - synced) * costs.FAST_DECODE_CYCLES_PER_BYTE if charge else 0.0
    )
    tel = get_telemetry()
    if tel.enabled:
        m = tel.metrics
        m.counter("ipt.fast_decode.calls").inc()
        m.counter("ipt.fast_decode.bytes").inc(pos - synced)
        m.counter("ipt.fast_decode.packets").inc(pkt_count)
    return ColumnarSegment(
        data, sync, synced, pkt_count, cycles, truncated,
        rec_ips, rec_offsets, rec_bit_start, rec_bit_end,
        tnt_bits, total_bits, pend_start, after_far,
        far_mask, fup_ips,
    )


def columnar_scan(
    data, sync: bool = False, charge: bool = True
) -> ColumnarSegment:
    """Scan a packet stream into columns.

    Mirrors :func:`repro.ipt.fast_decoder.fast_decode` exactly: same
    sync/truncation semantics, same ``PacketError`` messages, same
    charged cycles and the same ``ipt.fast_decode.*`` telemetry counters
    (the counters meter scan work, which is identical — only the output
    representation differs).

    Dispatches to the C kernel when the current mode allows it and the
    kernel built, otherwise to the vectorised pure-Python scan; both are
    column-identical to :func:`columnar_scan_reference`.
    """
    if _kernel_mode != "off":
        lib = scan_kernel.load() if _KERNEL_ABI_OK else None
        if lib is not None:
            return _scan_kernel_segment(lib, data, sync, charge)
        if _kernel_mode == "on":
            reason = (
                scan_kernel.build_error()
                if _KERNEL_ABI_OK else "array('L') is not 64-bit here"
            )
            raise RuntimeError(
                f"scan kernel forced on but unavailable: {reason}"
            )
    return _scan_python(data, sync, charge)


def _scan_python(data, sync: bool, charge: bool) -> ColumnarSegment:
    """The vectorised pure-Python scan.

    PAD and TNT packets — the overwhelming bulk of a real stream — are
    consumed per *run*: a regex pre-classification finds each maximal
    run, ``bytes.translate`` over :data:`TNT_WIDTH` yields every
    payload's width in one call, and the accumulated bits flush to the
    packed stream in one ``int.to_bytes``.  The IP family stays scalar
    (IP compression chains ``last_ip`` sequentially).  PSB sync is a
    single ``bytes.find``.
    """
    raw = data if isinstance(data, bytes) else bytes(data)
    pos = 0
    if sync:
        pos = raw.find(PSB_PATTERN)
        if pos < 0:
            return _empty_segment(data, sync)
    synced = pos
    size = len(raw)
    dispatch = DISPATCH
    tnt_width = TNT_WIDTH
    psb = PSB_PATTERN
    psb_len = len(psb)
    pad_run = _PAD_RUN.match
    tnt_run = _TNT_RUN.match

    rec_ips = array("Q")
    rec_offsets = array("Q")
    rec_bit_start = array("L")
    rec_bit_end = array("L")
    fup_ips = array("Q")
    add_ip = rec_ips.append
    add_offset = rec_offsets.append
    add_bit_start = rec_bit_start.append
    add_bit_end = rec_bit_end.append
    add_fup = fup_ips.append

    tnt_buf = bytearray()
    acc = 0  # bit accumulator, bulk-flushed per TNT run
    acc_bits = 0
    total_bits = 0
    pend_start = 0
    far_mask = 0
    after_far = False
    last_ip = 0
    pkt_count = 0
    truncated = False

    while pos < size:
        action = dispatch[raw[pos]]
        if action == _A_TNT:
            match = tnt_run(raw, pos)
            if match is None:
                if pos + 2 > size:
                    truncated = True
                    break
                raise PacketError(
                    f"invalid TNT payload {raw[pos + 1]:#x}"
                )
            end = match.end()
            payloads = raw[pos + 1:end:2]
            widths = payloads.translate(tnt_width)
            for payload, width in zip(payloads, widths):
                acc = (acc << width) | (payload ^ (1 << width))
            run_bits = sum(widths)
            acc_bits += run_bits
            total_bits += run_bits
            if acc_bits >= 8:
                rem = acc_bits & 7
                tnt_buf += (acc >> rem).to_bytes(acc_bits >> 3, "big")
                acc &= (1 << rem) - 1
                acc_bits = rem
            pkt_count += len(payloads)
            pos = end
        elif action <= _A_FUP:  # TIP / TIP.PGE / TIP.PGD / FUP
            if pos + 2 > size:
                truncated = True
                break
            width = raw[pos + 1]
            if width > 8:
                raise PacketError(
                    f"desynchronised at offset {pos}: "
                    f"IP width {width} impossible"
                )
            end = pos + 2 + width
            if end > size:
                truncated = True
                break
            if width == 0:
                ip: Optional[int] = None
            else:
                mask = (1 << (8 * width)) - 1
                ip = (last_ip & ~mask) | int.from_bytes(
                    raw[pos + 2:end], "little"
                )
                last_ip = ip
            if action == _A_TIP:
                if after_far:
                    far_mask |= 1 << len(rec_ips)
                    after_far = False
                add_ip(NO_IP if ip is None else ip)
                add_offset(pos)
                add_bit_start(pend_start)
                add_bit_end(total_bits)
                pend_start = total_bits
            elif action == _A_PGE:
                after_far = True
            elif action == _A_FUP and ip is not None:
                add_fup(ip)
            pkt_count += 1
            pos = end
        elif action == _A_PAD:
            pos = pad_run(raw, pos).end()
        elif action == _A_PSB and raw[pos:pos + psb_len] == psb:
            last_ip = 0
            pkt_count += 1
            pos += psb_len
        elif action == _A_PSBEND or action == _A_OVF:
            pkt_count += 1
            pos += 1
        elif psb[: size - pos] == raw[pos:]:
            # The buffer ends inside a PSB pattern (including a lead
            # 0x82 whose pattern was cut): clean truncation, not desync.
            truncated = True
            break
        else:
            raise PacketError(
                f"desynchronised at offset {pos}: header {raw[pos]:#04x}"
            )

    if acc_bits:
        tnt_buf.append((acc << (8 - acc_bits)) & 0xFF)

    return _finish_segment(
        data, sync, synced, pos, pkt_count, charge, truncated,
        rec_ips, rec_offsets, rec_bit_start, rec_bit_end,
        bytes(tnt_buf), total_bits, pend_start, after_far,
        far_mask, fup_ips,
    )


def _scan_kernel_segment(lib, data, sync: bool, charge: bool) -> ColumnarSegment:
    """Run the C kernel and adopt its buffers into the column arrays."""
    raw = data if isinstance(data, bytes) else bytes(data)
    pos = 0
    if sync:
        pos = raw.find(PSB_PATTERN)
        if pos < 0:
            return _empty_segment(data, sync)
    size = len(raw)
    span = size - pos
    # Worst-case capacities: every record-bearing packet is >= 2 bytes,
    # every TNT pair contributes <= 6 bits.
    max_rec = span // 2 + 1
    ips_buf = bytearray(8 * max_rec)
    offs_buf = bytearray(8 * max_rec)
    bit_start_buf = bytearray(8 * max_rec)
    bit_end_buf = bytearray(8 * max_rec)
    tnt_buf = bytearray((span * 3) // 8 + 2)
    fup_buf = bytearray(8 * max_rec)
    far_buf = bytearray(max_rec // 8 + 1)
    out = (ctypes.c_uint64 * 12)()

    def cbuf(buf):
        return (ctypes.c_char * len(buf)).from_buffer(buf)

    status = lib.ipt_scan(
        raw, ctypes.c_long(size), ctypes.c_long(pos),
        cbuf(ips_buf), cbuf(offs_buf), cbuf(bit_start_buf),
        cbuf(bit_end_buf), cbuf(tnt_buf), cbuf(fup_buf), cbuf(far_buf),
        out,
    )
    if status:
        err_offset = out[9]
        err_value = out[10]
        if status == 1:
            raise PacketError(f"invalid TNT payload {err_value:#x}")
        if status == 2:
            raise PacketError(
                f"desynchronised at offset {err_offset}: "
                f"IP width {err_value} impossible"
            )
        raise PacketError(
            f"desynchronised at offset {err_offset}: "
            f"header {err_value:#04x}"
        )
    end_pos = out[0]
    pkt_count = out[1]
    nrec = out[2]
    ntnt = out[3]
    nfup = out[8]
    rec_ips = array("Q")
    rec_ips.frombytes(memoryview(ips_buf)[: 8 * nrec])
    rec_offsets = array("Q")
    rec_offsets.frombytes(memoryview(offs_buf)[: 8 * nrec])
    rec_bit_start = array("L")
    rec_bit_start.frombytes(memoryview(bit_start_buf)[: 8 * nrec])
    rec_bit_end = array("L")
    rec_bit_end.frombytes(memoryview(bit_end_buf)[: 8 * nrec])
    fup_ips = array("Q")
    fup_ips.frombytes(memoryview(fup_buf)[: 8 * nfup])
    far_mask = (
        int.from_bytes(far_buf[: (nrec + 7) // 8], "little") if nrec else 0
    )
    return _finish_segment(
        data, sync, pos, end_pos, pkt_count, charge, bool(out[7]),
        rec_ips, rec_offsets, rec_bit_start, rec_bit_end,
        bytes(tnt_buf[:ntnt]), out[4], out[5], bool(out[6]),
        far_mask, fup_ips,
    )


def columnar_scan_reference(
    data, sync: bool = False, charge: bool = True
) -> ColumnarSegment:
    """The original per-byte dispatch walk, kept verbatim as the oracle
    the vectorised scan and the C kernel are property-tested against."""
    pos = 0
    if sync:
        pos = sync_to_psb(data)
        if pos < 0:
            return _empty_segment(data, sync)
    synced = pos
    size = len(data)
    dispatch = DISPATCH
    tnt_width = TNT_WIDTH
    psb = PSB_PATTERN
    psb_len = len(psb)

    rec_ips = array("Q")
    rec_offsets = array("Q")
    rec_bit_start = array("L")
    rec_bit_end = array("L")
    fup_ips = array("Q")
    add_ip = rec_ips.append
    add_offset = rec_offsets.append
    add_bit_start = rec_bit_start.append
    add_bit_end = rec_bit_end.append
    add_fup = fup_ips.append

    tnt_buf = bytearray()
    emit_byte = tnt_buf.append
    acc = 0  # bit accumulator, flushed every 8 bits
    acc_bits = 0
    total_bits = 0
    pend_start = 0
    far_mask = 0
    after_far = False
    last_ip = 0
    pkt_count = 0
    truncated = False

    while pos < size:
        action = dispatch[data[pos]]
        if action == _A_TNT:
            if pos + 2 > size:
                truncated = True
                break
            payload = data[pos + 1]
            width = tnt_width[payload]
            if width == 255:
                raise PacketError(f"invalid TNT payload {payload:#x}")
            acc = (acc << width) | (payload ^ (1 << width))
            acc_bits += width
            total_bits += width
            while acc_bits >= 8:
                acc_bits -= 8
                emit_byte((acc >> acc_bits) & 0xFF)
            acc &= (1 << acc_bits) - 1
            pkt_count += 1
            pos += 2
        elif action <= _A_FUP:  # TIP / TIP.PGE / TIP.PGD / FUP
            if pos + 2 > size:
                truncated = True
                break
            width = data[pos + 1]
            if width > 8:
                raise PacketError(
                    f"desynchronised at offset {pos}: "
                    f"IP width {width} impossible"
                )
            end = pos + 2 + width
            if end > size:
                truncated = True
                break
            if width == 0:
                ip: Optional[int] = None
            else:
                mask = (1 << (8 * width)) - 1
                ip = (last_ip & ~mask) | int.from_bytes(
                    data[pos + 2:end], "little"
                )
                last_ip = ip
            if action == _A_TIP:
                if after_far:
                    far_mask |= 1 << len(rec_ips)
                    after_far = False
                add_ip(NO_IP if ip is None else ip)
                add_offset(pos)
                add_bit_start(pend_start)
                add_bit_end(total_bits)
                pend_start = total_bits
            elif action == _A_PGE:
                after_far = True
            elif action == _A_FUP and ip is not None:
                add_fup(ip)
            pkt_count += 1
            pos = end
        elif action == _A_PAD:
            pos += 1
        elif action == _A_PSB and data[pos:pos + psb_len] == psb:
            last_ip = 0
            pkt_count += 1
            pos += psb_len
        elif action == _A_PSBEND or action == _A_OVF:
            pkt_count += 1
            pos += 1
        elif psb[: size - pos] == data[pos:]:
            # The buffer ends inside a PSB pattern (including a lead
            # 0x82 whose pattern was cut): clean truncation, not desync.
            truncated = True
            break
        else:
            raise PacketError(
                f"desynchronised at offset {pos}: header {data[pos]:#04x}"
            )

    if acc_bits:
        emit_byte((acc << (8 - acc_bits)) & 0xFF)

    return _finish_segment(
        data, sync, synced, pos, pkt_count, charge, truncated,
        rec_ips, rec_offsets, rec_bit_start, rec_bit_end,
        bytes(tnt_buf), total_bits, pend_start, after_far,
        far_mask, fup_ips,
    )


# -- tail accumulation (the fast-path consumer) ------------------------------


class _TailEntry:
    """One segment of a backward-accumulated tail, with the stitch patch
    that applies to its *first* record (trailing TNT/far state of every
    earlier segment folded in, composed without unpacking)."""

    __slots__ = ("seg", "base", "patch_sig", "patch_far")

    def __init__(self, seg: ColumnarSegment, base: int) -> None:
        self.seg = seg
        self.base = base
        self.patch_sig = 1
        self.patch_far = False


class LazyRecords:
    """A window's legacy :class:`TipRecord` sequence, built on demand.

    The batched fast path verdicts on the ip/sig columns alone, so the
    record objects a :class:`FastPathResult` carries are only needed on
    hand-off — slow-path replay, telemetry, fingerprints.  This defers
    their materialisation (slices of the owning segments' memoised
    record columns, head-stitch patch applied to the fresh copy) until
    something actually indexes, iterates or compares the window; a
    PASS verdict never pays for it.  ``parts`` are ``(entry, lo)``
    latest-first, exactly the slices :meth:`ColumnarTail.window` chose.
    """

    __slots__ = ("_parts", "_items")

    def __init__(self, parts) -> None:
        self._parts = parts
        self._items: Optional[list] = None

    def _force(self) -> list:
        items = self._items
        if items is None:
            items = []
            parts = self._parts
            for index in range(len(parts) - 1, -1, -1):
                entry, lo = parts[index]
                seg = entry.seg
                recs = seg.records_at(entry.base)[lo:]
                if lo == 0 and (entry.patch_sig != 1 or entry.patch_far):
                    head = recs[0]
                    tnt = head.tnt_before
                    if entry.patch_sig != 1:
                        tnt = unpack_tnt_sig(compose_tnt_sigs(
                            entry.patch_sig, seg.sig_column()[0]
                        ))
                    recs[0] = TipRecord(
                        head.ip, tnt, head.offset,
                        head.after_far or entry.patch_far,
                    )
                items.extend(recs)
            self._items = items
        return items

    def __len__(self) -> int:
        total = 0
        for entry, lo in self._parts:
            total += entry.seg.record_count - lo
        return total

    def __bool__(self) -> bool:
        return bool(self._parts)

    def __getitem__(self, index):
        return self._force()[index]

    def __iter__(self):
        return iter(self._force())

    def __eq__(self, other) -> bool:
        if isinstance(other, LazyRecords):
            return self._force() == other._force()
        if isinstance(other, (list, tuple)):
            return self._force() == list(other)
        return NotImplemented

    def __repr__(self) -> str:
        state = (
            f"{len(self._items)} records"
            if self._items is not None else "unmaterialised"
        )
        return f"LazyRecords({state})"


class ColumnarTail:
    """Backward-accumulated PSB segments, stored latest-first.

    The object engine's ``decode_tail`` prepends each earlier segment's
    records with a list concatenation and patches the head record in
    place.  Here prepending is an O(1) append of a :class:`_TailEntry`
    and the head patch is a signature composition — nothing materialises
    until a window is requested, and window materialisation itself
    serves slices of the segments' memo columns (so a warm segment cache
    means warm windows too).
    """

    __slots__ = ("entries", "count", "cycles", "start", "_head")

    def __init__(self) -> None:
        self.entries: List[_TailEntry] = []
        self.count = 0
        self.cycles = 0.0
        self.start = 0
        self._head: Optional[_TailEntry] = None

    def prepend(self, seg: ColumnarSegment, base: int) -> None:
        """Add the next-earlier segment (mirrors the object engine's
        record stitch: the segment's trailing TNT run and far marker
        fold onto the current head record, if any)."""
        if self.count:
            trailing = seg.trailing_sig()
            if trailing != 1 or seg.trailing_far:
                head = self._head
                head.patch_sig = compose_tnt_sigs(trailing, head.patch_sig)
                head.patch_far = head.patch_far or seg.trailing_far
        entry = _TailEntry(seg, base)
        self.entries.append(entry)
        if seg.record_count:
            self._head = entry
            self.count += seg.record_count

    # -- materialisation -----------------------------------------------------

    def _effective(self, entry: _TailEntry, index: int):
        """(ip_or_none, sig, offset, far) of one record, patch applied."""
        seg = entry.seg
        sig = seg.record_sig(index)
        far = bool((seg.far_mask >> index) & 1)
        if index == 0:
            # Patches were accumulated while this entry's first record
            # was the tail's head; they stay valid after earlier
            # record-bearing segments arrive (the object engine patches
            # the record in place with the same effect).
            if entry.patch_sig != 1:
                sig = compose_tnt_sigs(entry.patch_sig, sig)
            far = far or entry.patch_far
        raw = seg.rec_ips[index]
        return (
            None if raw == NO_IP else raw,
            sig,
            seg.rec_offsets[index] + entry.base,
            far,
        )

    def window(self, n: int):
        """Materialise the last ``n`` records.

        Returns ``(records, ips, sigs)``: the raw ip and packed-TNT
        columns the batched edge check consumes directly (slices of the
        segments' memo columns; a stitch patch lands on the fresh slice
        copy, never the memo), plus the legacy :class:`TipRecord`
        window as a :class:`LazyRecords` sequence — the verdict is
        computed from the columns alone, so the record objects only
        build when a consumer (slow-path hand-off, telemetry,
        fingerprinting) actually touches them.  A PASS check never
        pays for them.
        """
        rec_parts = []  # (entry, lo) latest-first
        ip_parts = []
        sig_parts = []
        need = n
        for entry in self.entries:
            seg = entry.seg
            record_count = seg.record_count
            if not record_count:
                continue
            take = record_count if record_count < need else need
            lo = record_count - take
            ips = seg.ip_column()[lo:]
            sigs = seg.sig_column()[lo:]
            if lo == 0 and entry.patch_sig != 1:
                sigs[0] = compose_tnt_sigs(entry.patch_sig, sigs[0])
            rec_parts.append((entry, lo))
            ip_parts.append(ips)
            sig_parts.append(sigs)
            need -= take
            if not need:
                break
        records = LazyRecords(tuple(rec_parts))
        if len(ip_parts) == 1:
            return records, ip_parts[0], sig_parts[0]
        ips_out: list = []
        sigs_out: list = []
        for index in range(len(ip_parts) - 1, -1, -1):
            ips_out.extend(ip_parts[index])
            sigs_out.extend(sig_parts[index])
        return records, ips_out, sigs_out

    def records(self) -> List[TipRecord]:
        """The full tail, materialised (legacy ``decode_tail`` shape)."""
        return self.window(self.count)[0] if self.count else []

    def last_ips(self, n: int) -> list:
        """IPs of the last ``n`` records (module-span requirement
        checks) without building records or signatures."""
        parts = []
        need = n
        for entry in self.entries:
            seg = entry.seg
            record_count = seg.record_count
            if not record_count:
                continue
            take = record_count if record_count < need else need
            parts.append(seg.ip_column()[record_count - take:])
            need -= take
            if not need:
                break
        if len(parts) == 1:
            return parts[0]
        parts.reverse()
        ips: list = []
        for part in parts:
            ips.extend(part)
        return ips

    def lazy_packets(self) -> "LazyPackets":
        return LazyPackets(tuple(self.entries))


class LazyPackets:
    """Sequence of legacy ``DecodedPacket`` objects, materialised only
    when the slow path or a test actually indexes/iterates/compares.

    The fast path threads this through ``FastPathResult.packets``
    untouched; a PASS verdict never pays for packet objects, and the
    degraded lane sidesteps materialisation entirely via
    :meth:`slow_source`.
    """

    __slots__ = ("_entries", "_items")

    def __init__(self, entries) -> None:
        self._entries = entries
        self._items: Optional[list] = None

    def _force(self) -> list:
        if self._items is None:
            items: list = []
            # entries are latest-first; packets go out in stream order.
            for entry in reversed(self._entries):
                items.extend(entry.seg.packets_at(entry.base))
            self._items = items
        return self._items

    def slow_source(
        self, window_start: Optional[int] = None
    ) -> "ColumnarSlowSource":
        """Object-free slow-path hand-off.

        Mirrors ``FastPathResult.slow_path_packets`` trimming — the
        segments from the PSB sync point nearest at-or-before
        ``window_start`` onward (all of them when ``window_start`` is
        None) — but hands the slow path raw segment bytes + bases
        instead of materialised packets.
        """
        entries = self._entries  # latest-first, strictly decreasing base
        if window_start is None:
            picked = list(entries)
        else:
            picked = []
            for entry in entries:
                picked.append(entry)
                if entry.base <= window_start:
                    break
        picked.reverse()
        return ColumnarSlowSource(
            [(entry.seg, entry.base) for entry in picked]
        )

    def __len__(self) -> int:
        return len(self._force())

    def __bool__(self) -> bool:
        if self._items is None and not self._entries:
            return False
        return bool(self._force())

    def __getitem__(self, index):
        return self._force()[index]

    def __iter__(self):
        return iter(self._force())

    def __eq__(self, other) -> bool:
        if isinstance(other, LazyPackets):
            return self._force() == other._force()
        if isinstance(other, (list, tuple)):
            return self._force() == list(other)
        return NotImplemented

    def __repr__(self) -> str:
        if self._items is None:
            return f"LazyPackets(<unmaterialised, {len(self._entries)} segments>)"
        return repr(self._items)


# -- the degraded lane: byte-level slow-path replay --------------------------


class ColumnarSlowSource:
    """Slow-path input that stays columnar: the suspicious window's
    segments as ``(ColumnarSegment, stream_base)`` pairs in stream
    order.  ``FullDecoder.decode`` recognises the :meth:`cursor` hook
    and walks the raw bytes directly — no ``DecodedPacket`` objects —
    with cycle charges and ``TraceMismatch`` behaviour identical to the
    packet-list path.
    """

    __slots__ = ("parts",)

    def __init__(self, parts) -> None:
        self.parts = parts

    def cursor(self) -> "_ByteCursor":
        return _ByteCursor(self.parts)


class _ByteCursor:
    """Byte-level mirror of ``full_decoder._PacketCursor``.

    Parses packets straight out of the retained segment bytes —
    maintaining IP compression state, skipping PAD silently (the object
    engine emits no PAD packets) and PSB+ groups on demand — so the
    degraded lane never allocates packet objects.  Consumption rules
    and every ``TraceMismatch`` message match the packet cursor
    exactly; ``PacketError`` conditions cannot arise on segments that
    already scanned cleanly, but are mirrored for parity anyway.
    """

    __slots__ = ("_parts", "_part", "_raw", "_size", "_pos", "_base",
                 "_last_ip", "_bits", "_offset", "_payload", "_ip")

    def __init__(self, parts) -> None:
        self._parts = parts
        self._part = -1
        self._raw = b""
        self._size = 0
        self._pos = 0
        self._base = 0
        self._last_ip = 0
        self._bits: list = []
        self._offset = 0
        self._payload = 0
        self._ip: Optional[int] = None

    def _advance(self) -> int:
        """Decode the next packet; returns its action code or ``_END``.

        Sets ``_offset`` (stream-absolute) for every packet, ``_ip``
        for the IP family (None = suppressed) and ``_payload`` for TNT.
        """
        while True:
            raw = self._raw
            size = self._size
            pos = self._pos
            while pos < size:
                action = DISPATCH[raw[pos]]
                if action == _A_PAD:
                    pos += 1
                    continue
                if action == _A_TNT:
                    if pos + 2 > size:  # truncated: stream ends
                        break
                    payload = raw[pos + 1]
                    if TNT_WIDTH[payload] == 255:
                        raise PacketError(
                            f"invalid TNT payload {payload:#x}"
                        )
                    self._offset = self._base + pos
                    self._payload = payload
                    self._pos = pos + 2
                    return _A_TNT
                if action <= _A_FUP:
                    if pos + 2 > size:
                        break
                    width = raw[pos + 1]
                    if width > 8:
                        raise PacketError(
                            f"desynchronised at offset {pos}: "
                            f"IP width {width} impossible"
                        )
                    end = pos + 2 + width
                    if end > size:
                        break
                    if width == 0:
                        self._ip = None
                    else:
                        mask = (1 << (8 * width)) - 1
                        ip = (self._last_ip & ~mask) | int.from_bytes(
                            raw[pos + 2:end], "little"
                        )
                        self._last_ip = ip
                        self._ip = ip
                    self._offset = self._base + pos
                    self._pos = end
                    return action
                if action == _A_PSB and raw[pos:pos + 8] == PSB_PATTERN:
                    self._last_ip = 0
                    self._offset = self._base + pos
                    self._pos = pos + 8
                    return _A_PSB
                if action == _A_PSBEND or action == _A_OVF:
                    self._offset = self._base + pos
                    self._pos = pos + 1
                    return action
                if PSB_PATTERN[: size - pos] == raw[pos:]:
                    break  # trailing PSB prefix: clean truncation
                raise PacketError(
                    f"desynchronised at offset {pos}: "
                    f"header {raw[pos]:#04x}"
                )
            # Part exhausted (or truncated): move to the next segment.
            self._pos = size
            if self._part + 1 >= len(self._parts):
                return _END
            self._part += 1
            seg, base = self._parts[self._part]
            data = seg.data
            self._raw = data if isinstance(data, bytes) else bytes(data)
            self._size = len(self._raw)
            self._base = base
            self._pos = seg.synced_offset if seg.sync else 0

    def _skip_psb_group(self) -> None:
        """Consume context packets up to and including PSBEND."""
        while True:
            action = self._advance()
            if action == _END or action == _A_PSBEND:
                return

    def next_tnt_bit(self) -> Optional[bool]:
        """Next conditional-branch outcome, or None at stream end."""
        bits = self._bits
        while not bits:
            action = self._advance()
            if action == _END:
                return None
            if action == _A_PSB:
                self._skip_psb_group()
                continue
            if action == _A_TNT:
                bits.extend(TNT_BITS_TABLE[self._payload])
                continue
            raise TraceMismatch(
                f"expected TNT, found {_ACTION_KIND[action]} at "
                f"offset {self._offset}"
            )
        return bits.pop(0)

    def next_tip(self) -> Optional[int]:
        """Next plain-TIP target, or None at stream end."""
        if self._bits:
            raise TraceMismatch("unconsumed TNT bits before a TIP")
        while True:
            action = self._advance()
            if action == _END:
                return None
            if action == _A_PSB:
                self._skip_psb_group()
                continue
            if action == _A_TIP:
                return self._ip
            raise TraceMismatch(
                f"expected TIP, found {_ACTION_KIND[action]} at "
                f"offset {self._offset}"
            )

    def next_far_resume(self, expected_src: int) -> Optional[int]:
        """Consume a FUP/TIP.PGD/TIP.PGE group; return the resume IP."""
        if self._bits:
            raise TraceMismatch("unconsumed TNT bits before a far transfer")
        while True:
            action = self._advance()
            if action == _END:
                return None
            if action == _A_PSB:
                self._skip_psb_group()
                continue
            if action != _A_FUP:
                raise TraceMismatch(
                    f"expected FUP, found {_ACTION_KIND[action]}"
                )
            if self._ip != expected_src:
                raise TraceMismatch(
                    f"FUP {self._ip:#x} does not match far-transfer "
                    f"source {expected_src:#x}"
                )
            break
        action = self._advance()
        if action == _END:
            return None
        if action != _A_PGD:
            raise TraceMismatch(
                f"expected TIP.PGD, found {_ACTION_KIND[action]}"
            )
        action = self._advance()
        if action == _END:
            return None
        if action != _A_PGE:
            raise TraceMismatch(
                f"expected TIP.PGE, found {_ACTION_KIND[action]}"
            )
        return self._ip

    def initial_ip(self) -> Optional[int]:
        """Find the first PSB-context FUP or TIP.PGE to anchor decoding."""
        while True:
            action = self._advance()
            if action == _END:
                return None
            if action == _A_PSB:
                while True:
                    ctx = self._advance()
                    if ctx == _END:
                        return None
                    if ctx == _A_FUP and self._ip is not None:
                        found = self._ip
                        # Consume the rest of the group.
                        while True:
                            rest = self._advance()
                            if rest == _END or rest == _A_PSBEND:
                                break
                        return found
                    if ctx == _A_PSBEND:
                        break
            elif action == _A_PGE and self._ip is not None:
                return self._ip


# -- PSB-parallel decode (fleet threaded mode) -------------------------------


class ColumnarParallelResult:
    """Columnar counterpart of ``ParallelDecodeResult``: per-segment
    columns (zero-copy bases) instead of one concatenated packet list."""

    __slots__ = ("columns", "cycles", "synced_offset", "segments",
                 "critical_path_cycles", "truncated", "_packets")

    def __init__(self, columns, cycles, synced_offset, segments,
                 critical_path_cycles) -> None:
        #: ``[(ColumnarSegment, stream_base), ...]`` in stream order.
        self.columns = columns
        self.cycles = cycles
        self.synced_offset = synced_offset
        self.segments = segments
        self.critical_path_cycles = critical_path_cycles
        self.truncated = bool(columns) and columns[-1][0].truncated
        self._packets: Optional[list] = None

    @property
    def packets(self) -> list:
        """Legacy packet list, lazily materialised and rebased."""
        if self._packets is None:
            items: list = []
            for seg, base in self.columns:
                items.extend(seg.packets_at(base))
            self._packets = items
        return self._packets


def columnar_decode_parallel(
    data, sync: bool = False, executor=None, cache=None
) -> ColumnarParallelResult:
    """Columnar mirror of ``fast_decode_parallel``: split at PSBs and
    scan segments independently (zero-copy ``memoryview`` slices), with
    the same executor and segment-cache hooks and the identical cycle
    accounting (total + critical path)."""
    start = 0
    if sync:
        start = sync_to_psb(data)
        if start < 0:
            return ColumnarParallelResult([], 0.0, len(data), 1, 0.0)
    boundaries = psb_boundaries(data, start)
    spans = [
        (begin, end)
        for begin, end in zip(boundaries, boundaries[1:])
        if begin < end
    ]
    view = memoryview(data)

    if cache is not None:
        columns = []
        total = 0.0
        critical = 0.0
        for begin, end in spans:
            seg, seg_cycles = cache.decode_segment_columnar(view[begin:end])
            columns.append((seg, begin))
            total += seg_cycles
            critical = max(critical, seg_cycles)
        return ColumnarParallelResult(
            columns, total, start, max(len(spans), 1), critical
        )

    if executor is not None:
        zero_copy = isinstance(executor, ThreadPoolExecutor)
        segments = list(
            executor.map(
                columnar_scan,
                [
                    view[b:e] if zero_copy else bytes(view[b:e])
                    for b, e in spans
                ],
            )
        )
    else:
        segments = [columnar_scan(view[b:e]) for b, e in spans]

    columns = []
    total = 0.0
    critical = 0.0
    for (begin, _), seg in zip(spans, segments):
        columns.append((seg, begin))
        total += seg.cycles
        critical = max(critical, seg.cycles)
    return ColumnarParallelResult(
        columns, total, start, max(len(spans), 1), critical
    )
