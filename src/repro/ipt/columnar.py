"""Columnar decode engine: table-driven packet scan, no per-packet objects.

The object engine (:func:`repro.ipt.fast_decoder.fast_decode`) allocates
a ``DecodedPacket`` dataclass per packet; after the PR-3 caches, that
allocation — not the cycle-model work — dominates fast-path wall-clock.
This module is a second engine over the same wire format that emits
*columns* instead:

======================  ====================================================
column                  contents
======================  ====================================================
``rec_ips``             ``array('Q')`` — one entry per plain TIP packet;
                        ``NO_IP`` (2**64-1) marks an IP-suppressed TIP
``rec_offsets``         ``array('Q')`` — stream offset of each TIP,
                        segment-relative (rebasing is integer addition at
                        materialisation time, never a copy)
``tnt_bits``            packed TNT bitstream (``bytes``, oldest branch
                        first, MSB-first within each byte)
``rec_bit_start/end``   ``array('L')`` — each TIP's slice of ``tnt_bits``
                        (the TNT run observed since the previous TIP)
``far_mask``            int bitset — bit *i* set iff record *i* is the
                        first TIP after a far-transfer resume
``fup_ips``             ``array('Q')`` — FUP source addresses
======================  ====================================================

The scanner dispatches on a precomputed 256-entry header table
(:data:`DISPATCH`) and a TNT width table (:data:`TNT_WIDTH`), so the hot
loop is index-compare-advance with no dataclass construction and no
enum dispatch.

**Contracts** (the columnar experiment gates all three):

- *verdict-bit-identical*: every TIP record, trailing stitch state,
  truncation flag and ``PacketError`` is byte-for-byte what the object
  engine produces;
- *charged-cycle-identical*: the cycle model is the paper's measurement
  instrument — the scan charges the identical
  ``bytes * FAST_DECODE_CYCLES_PER_BYTE`` expression, and consumers
  accumulate in the identical order, so only wall-clock improves;
- *lazy materialisation*: legacy ``DecodedPacket`` lists are rebuilt on
  demand by running the object engine over the retained segment bytes
  (``charge=False, telemetry=False`` — the columnar scan already
  charged and counted them), so the slow path and the tests see exactly
  the objects they always did while the fast path never pays for them.
"""

from __future__ import annotations

from array import array
from concurrent.futures import ThreadPoolExecutor
from typing import List, Optional, Tuple

from repro import costs
from repro.telemetry import get_telemetry
from repro.ipt.fast_decoder import (
    TipRecord,
    fast_decode,
    psb_boundaries,
    sync_to_psb,
)
from repro.ipt.packets import (
    FUP_HEADER,
    OVF_BYTE,
    PAD_BYTE,
    PSBEND_BYTE,
    PSB_PATTERN,
    PacketError,
    TIP_HEADER,
    TIP_PGD_HEADER,
    TIP_PGE_HEADER,
    TNT_HEADER,
    compose_tnt_sigs,
    unpack_tnt_sig,
)

#: sentinel for an IP-suppressed TIP in the ``rec_ips`` column
#: (``array('Q')`` cannot hold ``None``; no simulated address is ever
#: 2**64-1).
NO_IP = (1 << 64) - 1

# Dispatch action codes.  TNT first and the IP family contiguous right
# after it, so the scan loop resolves the two hot cases with at most
# two comparisons.
_A_TNT = 0
_A_TIP = 1
_A_PGE = 2
_A_PGD = 3
_A_FUP = 4
_A_PAD = 5
_A_PSB = 6
_A_PSBEND = 7
_A_OVF = 8
_A_BAD = 9


def _build_dispatch() -> bytes:
    table = bytearray([_A_BAD]) * 256
    table[PAD_BYTE] = _A_PAD
    table[TNT_HEADER] = _A_TNT
    table[TIP_HEADER] = _A_TIP
    table[TIP_PGE_HEADER] = _A_PGE
    table[TIP_PGD_HEADER] = _A_PGD
    table[FUP_HEADER] = _A_FUP
    table[PSB_PATTERN[0]] = _A_PSB
    table[PSBEND_BYTE] = _A_PSBEND
    table[OVF_BYTE] = _A_OVF
    return bytes(table)


def _build_tnt_width() -> bytes:
    """Payload byte -> bit count below the stop marker; 255 = invalid
    (same validity rule as :func:`repro.ipt.packets.decode_tnt_payload`)."""
    table = bytearray(256)
    for payload in range(256):
        if payload <= 1 or payload > 0x7F:
            table[payload] = 255
        else:
            table[payload] = payload.bit_length() - 1
    return bytes(table)


#: 256-entry header dispatch table.
DISPATCH = _build_dispatch()
#: 256-entry TNT payload width table.
TNT_WIDTH = _build_tnt_width()


def _bits_sig(buf, start: int, end: int) -> int:
    """Signature of bitstream slice ``[start, end)`` (1-prefixed)."""
    sig = 1
    for position in range(start, end):
        sig = (sig << 1) | ((buf[position >> 3] >> (7 - (position & 7))) & 1)
    return sig


class ColumnarSegment:
    """One scanned stream (usually a PSB segment) in columnar form.

    Offsets in the columns are relative to ``data``; consumers carry the
    segment's stream base separately and add it at materialisation time,
    which is what makes cached segments rebase zero-copy.
    """

    __slots__ = (
        "data", "sync", "synced_offset", "pkt_count", "cycles",
        "truncated", "rec_ips", "rec_offsets", "rec_bit_start",
        "rec_bit_end", "tnt_bits", "total_bits", "pend_start",
        "trailing_far", "far_mask", "fup_ips", "_packets",
    )

    def __init__(
        self,
        data,
        sync: bool,
        synced_offset: int,
        pkt_count: int,
        cycles: float,
        truncated: bool,
        rec_ips,
        rec_offsets,
        rec_bit_start,
        rec_bit_end,
        tnt_bits: bytes,
        total_bits: int,
        pend_start: int,
        trailing_far: bool,
        far_mask: int,
        fup_ips,
    ) -> None:
        self.data = data
        self.sync = sync
        self.synced_offset = synced_offset
        self.pkt_count = pkt_count
        self.cycles = cycles
        self.truncated = truncated
        self.rec_ips = rec_ips
        self.rec_offsets = rec_offsets
        self.rec_bit_start = rec_bit_start
        self.rec_bit_end = rec_bit_end
        self.tnt_bits = tnt_bits
        self.total_bits = total_bits
        self.pend_start = pend_start
        self.trailing_far = trailing_far
        self.far_mask = far_mask
        self.fup_ips = fup_ips
        self._packets: Optional[list] = None

    # -- columnar access -----------------------------------------------------

    @property
    def record_count(self) -> int:
        return len(self.rec_ips)

    def record_sig(self, index: int) -> int:
        """Packed TNT signature of record ``index``."""
        return _bits_sig(
            self.tnt_bits, self.rec_bit_start[index],
            self.rec_bit_end[index],
        )

    def trailing_sig(self) -> int:
        """Signature of the TNT run dangling past the last record."""
        return _bits_sig(self.tnt_bits, self.pend_start, self.total_bits)

    def record_ip(self, index: int) -> Optional[int]:
        raw = self.rec_ips[index]
        return None if raw == NO_IP else raw

    # -- legacy materialisation ----------------------------------------------

    def tip_records_with_state(
        self, base: int = 0
    ) -> Tuple[List[TipRecord], Tuple[bool, ...], bool]:
        """Materialise the full legacy record list + trailing state."""
        records = [
            self.materialise_record(index, base)
            for index in range(len(self.rec_ips))
        ]
        return records, unpack_tnt_sig(self.trailing_sig()), self.trailing_far

    def tip_records(self, base: int = 0) -> List[TipRecord]:
        return self.tip_records_with_state(base)[0]

    def materialise_record(self, index: int, base: int = 0) -> TipRecord:
        raw = self.rec_ips[index]
        return TipRecord(
            None if raw == NO_IP else raw,
            unpack_tnt_sig(self.record_sig(index)),
            self.rec_offsets[index] + base,
            bool((self.far_mask >> index) & 1),
        )

    def fup_addresses(self) -> List[int]:
        return list(self.fup_ips)

    def packets(self) -> list:
        """Legacy ``DecodedPacket`` list, segment-relative offsets.

        Materialised on first request by running the object engine over
        the retained bytes with charging and telemetry off (this work
        was already charged and counted by the columnar scan); cached
        because slow-path hand-off and tests may ask repeatedly.  The
        returned list is shared — callers must not mutate it.
        """
        if self._packets is None:
            self._packets = fast_decode(
                self.data, sync=self.sync, charge=False, telemetry=False
            ).packets
        return self._packets

    def packets_at(self, base: int) -> list:
        """Packets rebased to stream offset ``base`` (fresh list if
        ``base`` is non-zero, the shared cached list otherwise)."""
        packets = self.packets()
        if base == 0:
            return packets
        return [
            type(p)(p.kind, p.offset + base, bits=p.bits, ip=p.ip)
            for p in packets
        ]


def columnar_scan(
    data, sync: bool = False, charge: bool = True
) -> ColumnarSegment:
    """Scan a packet stream into columns.

    Mirrors :func:`repro.ipt.fast_decoder.fast_decode` exactly: same
    sync/truncation semantics, same ``PacketError`` messages, same
    charged cycles and the same ``ipt.fast_decode.*`` telemetry counters
    (the counters meter scan work, which is identical — only the output
    representation differs).
    """
    pos = 0
    if sync:
        pos = sync_to_psb(data)
        if pos < 0:
            return ColumnarSegment(
                data, sync, len(data), 0, 0.0, False,
                array("Q"), array("Q"), array("L"), array("L"),
                b"", 0, 0, False, 0, array("Q"),
            )
    synced = pos
    size = len(data)
    dispatch = DISPATCH
    tnt_width = TNT_WIDTH
    psb = PSB_PATTERN
    psb_len = len(psb)

    rec_ips = array("Q")
    rec_offsets = array("Q")
    rec_bit_start = array("L")
    rec_bit_end = array("L")
    fup_ips = array("Q")
    add_ip = rec_ips.append
    add_offset = rec_offsets.append
    add_bit_start = rec_bit_start.append
    add_bit_end = rec_bit_end.append
    add_fup = fup_ips.append

    tnt_buf = bytearray()
    emit_byte = tnt_buf.append
    acc = 0  # bit accumulator, flushed every 8 bits
    acc_bits = 0
    total_bits = 0
    pend_start = 0
    far_mask = 0
    after_far = False
    last_ip = 0
    pkt_count = 0
    truncated = False

    while pos < size:
        action = dispatch[data[pos]]
        if action == _A_TNT:
            if pos + 2 > size:
                truncated = True
                break
            payload = data[pos + 1]
            width = tnt_width[payload]
            if width == 255:
                raise PacketError(f"invalid TNT payload {payload:#x}")
            acc = (acc << width) | (payload ^ (1 << width))
            acc_bits += width
            total_bits += width
            while acc_bits >= 8:
                acc_bits -= 8
                emit_byte((acc >> acc_bits) & 0xFF)
            acc &= (1 << acc_bits) - 1
            pkt_count += 1
            pos += 2
        elif action <= _A_FUP:  # TIP / TIP.PGE / TIP.PGD / FUP
            if pos + 2 > size:
                truncated = True
                break
            width = data[pos + 1]
            if width > 8:
                raise PacketError(
                    f"desynchronised at offset {pos}: "
                    f"IP width {width} impossible"
                )
            end = pos + 2 + width
            if end > size:
                truncated = True
                break
            if width == 0:
                ip: Optional[int] = None
            else:
                mask = (1 << (8 * width)) - 1
                ip = (last_ip & ~mask) | int.from_bytes(
                    data[pos + 2:end], "little"
                )
                last_ip = ip
            if action == _A_TIP:
                if after_far:
                    far_mask |= 1 << len(rec_ips)
                    after_far = False
                add_ip(NO_IP if ip is None else ip)
                add_offset(pos)
                add_bit_start(pend_start)
                add_bit_end(total_bits)
                pend_start = total_bits
            elif action == _A_PGE:
                after_far = True
            elif action == _A_FUP and ip is not None:
                add_fup(ip)
            pkt_count += 1
            pos = end
        elif action == _A_PAD:
            pos += 1
        elif action == _A_PSB and data[pos:pos + psb_len] == psb:
            last_ip = 0
            pkt_count += 1
            pos += psb_len
        elif action == _A_PSBEND or action == _A_OVF:
            pkt_count += 1
            pos += 1
        elif psb[: size - pos] == data[pos:]:
            # The buffer ends inside a PSB pattern (including a lead
            # 0x82 whose pattern was cut): clean truncation, not desync.
            truncated = True
            break
        else:
            raise PacketError(
                f"desynchronised at offset {pos}: header {data[pos]:#04x}"
            )

    if acc_bits:
        emit_byte((acc << (8 - acc_bits)) & 0xFF)

    cycles = (
        (pos - synced) * costs.FAST_DECODE_CYCLES_PER_BYTE if charge else 0.0
    )
    tel = get_telemetry()
    if tel.enabled:
        m = tel.metrics
        m.counter("ipt.fast_decode.calls").inc()
        m.counter("ipt.fast_decode.bytes").inc(pos - synced)
        m.counter("ipt.fast_decode.packets").inc(pkt_count)
    return ColumnarSegment(
        data, sync, synced, pkt_count, cycles, truncated,
        rec_ips, rec_offsets, rec_bit_start, rec_bit_end,
        bytes(tnt_buf), total_bits, pend_start, after_far,
        far_mask, fup_ips,
    )


# -- tail accumulation (the fast-path consumer) ------------------------------


class _TailEntry:
    """One segment of a backward-accumulated tail, with the stitch patch
    that applies to its *first* record (trailing TNT/far state of every
    earlier segment folded in, composed without unpacking)."""

    __slots__ = ("seg", "base", "patch_sig", "patch_far")

    def __init__(self, seg: ColumnarSegment, base: int) -> None:
        self.seg = seg
        self.base = base
        self.patch_sig = 1
        self.patch_far = False


class ColumnarTail:
    """Backward-accumulated PSB segments, stored latest-first.

    The object engine's ``decode_tail`` prepends each earlier segment's
    records with a list concatenation and patches the head record in
    place.  Here prepending is an O(1) append of a :class:`_TailEntry`
    and the head patch is a signature composition — nothing materialises
    until a window is requested.
    """

    __slots__ = ("entries", "count", "cycles", "start", "_head")

    def __init__(self) -> None:
        self.entries: List[_TailEntry] = []
        self.count = 0
        self.cycles = 0.0
        self.start = 0
        self._head: Optional[_TailEntry] = None

    def prepend(self, seg: ColumnarSegment, base: int) -> None:
        """Add the next-earlier segment (mirrors the object engine's
        record stitch: the segment's trailing TNT run and far marker
        fold onto the current head record, if any)."""
        if self.count:
            trailing = seg.trailing_sig()
            if trailing != 1 or seg.trailing_far:
                head = self._head
                head.patch_sig = compose_tnt_sigs(trailing, head.patch_sig)
                head.patch_far = head.patch_far or seg.trailing_far
        entry = _TailEntry(seg, base)
        self.entries.append(entry)
        if seg.record_count:
            self._head = entry
            self.count += seg.record_count

    # -- materialisation -----------------------------------------------------

    def _effective(self, entry: _TailEntry, index: int):
        """(ip_or_none, sig, offset, far) of one record, patch applied."""
        seg = entry.seg
        sig = seg.record_sig(index)
        far = bool((seg.far_mask >> index) & 1)
        if index == 0:
            # Patches were accumulated while this entry's first record
            # was the tail's head; they stay valid after earlier
            # record-bearing segments arrive (the object engine patches
            # the record in place with the same effect).
            if entry.patch_sig != 1:
                sig = compose_tnt_sigs(entry.patch_sig, sig)
            far = far or entry.patch_far
        raw = seg.rec_ips[index]
        return (
            None if raw == NO_IP else raw,
            sig,
            seg.rec_offsets[index] + entry.base,
            far,
        )

    def window(self, n: int):
        """Materialise the last ``n`` records.

        Returns ``(records, ips, sigs)``: legacy :class:`TipRecord`
        objects for hand-off/telemetry, plus the raw ip and packed-TNT
        columns the batched edge check consumes directly.
        """
        picked = []  # latest-first, reversed at the end
        need = n
        for entry in self.entries:
            seg = entry.seg
            record_count = seg.record_count
            if not record_count:
                continue
            take = record_count if record_count < need else need
            for index in range(record_count - 1, record_count - take - 1, -1):
                picked.append(self._effective(entry, index))
            need -= take
            if not need:
                break
        picked.reverse()
        records = [
            TipRecord(ip, unpack_tnt_sig(sig), offset, far)
            for ip, sig, offset, far in picked
        ]
        ips = [item[0] for item in picked]
        sigs = [item[1] for item in picked]
        return records, ips, sigs

    def records(self) -> List[TipRecord]:
        """The full tail, materialised (legacy ``decode_tail`` shape)."""
        return self.window(self.count)[0] if self.count else []

    def last_ips(self, n: int) -> list:
        """IPs of the last ``n`` records (module-span requirement
        checks) without building records or signatures."""
        ips = []
        need = n
        for entry in self.entries:
            column = entry.seg.rec_ips
            record_count = len(column)
            if not record_count:
                continue
            take = record_count if record_count < need else need
            for index in range(
                record_count - 1, record_count - take - 1, -1
            ):
                raw = column[index]
                ips.append(None if raw == NO_IP else raw)
            need -= take
            if not need:
                break
        ips.reverse()
        return ips

    def lazy_packets(self) -> "LazyPackets":
        return LazyPackets(tuple(self.entries))


class LazyPackets:
    """Sequence of legacy ``DecodedPacket`` objects, materialised only
    when the slow path or a test actually indexes/iterates/compares.

    The fast path threads this through ``FastPathResult.packets``
    untouched; a PASS verdict never pays for packet objects.
    """

    __slots__ = ("_entries", "_items")

    def __init__(self, entries) -> None:
        self._entries = entries
        self._items: Optional[list] = None

    def _force(self) -> list:
        if self._items is None:
            items: list = []
            # entries are latest-first; packets go out in stream order.
            for entry in reversed(self._entries):
                items.extend(entry.seg.packets_at(entry.base))
            self._items = items
        return self._items

    def __len__(self) -> int:
        return len(self._force())

    def __bool__(self) -> bool:
        if self._items is None and not self._entries:
            return False
        return bool(self._force())

    def __getitem__(self, index):
        return self._force()[index]

    def __iter__(self):
        return iter(self._force())

    def __eq__(self, other) -> bool:
        if isinstance(other, LazyPackets):
            return self._force() == other._force()
        if isinstance(other, (list, tuple)):
            return self._force() == list(other)
        return NotImplemented

    def __repr__(self) -> str:
        if self._items is None:
            return f"LazyPackets(<unmaterialised, {len(self._entries)} segments>)"
        return repr(self._items)


# -- PSB-parallel decode (fleet threaded mode) -------------------------------


class ColumnarParallelResult:
    """Columnar counterpart of ``ParallelDecodeResult``: per-segment
    columns (zero-copy bases) instead of one concatenated packet list."""

    __slots__ = ("columns", "cycles", "synced_offset", "segments",
                 "critical_path_cycles", "truncated", "_packets")

    def __init__(self, columns, cycles, synced_offset, segments,
                 critical_path_cycles) -> None:
        #: ``[(ColumnarSegment, stream_base), ...]`` in stream order.
        self.columns = columns
        self.cycles = cycles
        self.synced_offset = synced_offset
        self.segments = segments
        self.critical_path_cycles = critical_path_cycles
        self.truncated = bool(columns) and columns[-1][0].truncated
        self._packets: Optional[list] = None

    @property
    def packets(self) -> list:
        """Legacy packet list, lazily materialised and rebased."""
        if self._packets is None:
            items: list = []
            for seg, base in self.columns:
                items.extend(seg.packets_at(base))
            self._packets = items
        return self._packets


def columnar_decode_parallel(
    data, sync: bool = False, executor=None, cache=None
) -> ColumnarParallelResult:
    """Columnar mirror of ``fast_decode_parallel``: split at PSBs and
    scan segments independently (zero-copy ``memoryview`` slices), with
    the same executor and segment-cache hooks and the identical cycle
    accounting (total + critical path)."""
    start = 0
    if sync:
        start = sync_to_psb(data)
        if start < 0:
            return ColumnarParallelResult([], 0.0, len(data), 1, 0.0)
    boundaries = psb_boundaries(data, start)
    spans = [
        (begin, end)
        for begin, end in zip(boundaries, boundaries[1:])
        if begin < end
    ]
    view = memoryview(data)

    if cache is not None:
        columns = []
        total = 0.0
        critical = 0.0
        for begin, end in spans:
            seg, seg_cycles = cache.decode_segment_columnar(view[begin:end])
            columns.append((seg, begin))
            total += seg_cycles
            critical = max(critical, seg_cycles)
        return ColumnarParallelResult(
            columns, total, start, max(len(spans), 1), critical
        )

    if executor is not None:
        zero_copy = isinstance(executor, ThreadPoolExecutor)
        segments = list(
            executor.map(
                columnar_scan,
                [
                    view[b:e] if zero_copy else bytes(view[b:e])
                    for b, e in spans
                ],
            )
        )
    else:
        segments = [columnar_scan(view[b:e]) for b, e in spans]

    columns = []
    total = 0.0
    critical = 0.0
    for (begin, _), seg in zip(spans, segments):
        columns.append((seg, begin))
        total += seg.cycles
        critical = max(critical, seg.cycles)
    return ColumnarParallelResult(
        columns, total, start, max(len(spans), 1), critical
    )
