"""RTIT model-specific register model (IA32_RTIT_* family).

IPT can only be configured by a privileged agent through MSRs (§2).
:class:`RTIT_CTL` models the primary enable/control register with the
bit fields FlowGuard programs in §5.1; :class:`IPTConfig` is the decoded
view the packetizer consumes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional


class RTIT_CTL:
    """Bit positions in IA32_RTIT_CTL."""

    TRACE_EN = 1 << 0
    OS = 1 << 2
    USER = 1 << 3
    FABRIC_EN = 1 << 6
    CR3_FILTER = 1 << 7
    TOPA = 1 << 8
    BRANCH_EN = 1 << 13


@dataclass
class IPTConfig:
    """Decoded trace-configuration state for one core.

    ``flowguard_defaults`` reflects §5.1: TraceEn+BranchEn set, OS bit
    cleared / User bit set (user-level flow only), CR3 filtering enabled
    against the protected process, FabricEn cleared (output to the
    memory subsystem) and ToPA output.
    """

    ctl: int = 0
    cr3_match: int = 0
    psb_period: int = 256  # bytes of output between PSB sync points

    @classmethod
    def flowguard_defaults(cls, cr3: int) -> "IPTConfig":
        config = cls()
        config.write_ctl(
            RTIT_CTL.TRACE_EN
            | RTIT_CTL.BRANCH_EN
            | RTIT_CTL.USER
            | RTIT_CTL.CR3_FILTER
            | RTIT_CTL.TOPA
        )
        config.cr3_match = cr3
        return config

    # -- MSR-style accessors ------------------------------------------------

    def write_ctl(self, value: int) -> None:
        self.ctl = value

    def write_cr3_match(self, value: int) -> None:
        self.cr3_match = value

    # -- decoded view ----------------------------------------------------------

    @property
    def trace_enabled(self) -> bool:
        return bool(self.ctl & RTIT_CTL.TRACE_EN)

    @property
    def branch_enabled(self) -> bool:
        return bool(self.ctl & RTIT_CTL.BRANCH_EN)

    @property
    def trace_os(self) -> bool:
        return bool(self.ctl & RTIT_CTL.OS)

    @property
    def trace_user(self) -> bool:
        return bool(self.ctl & RTIT_CTL.USER)

    @property
    def cr3_filtering(self) -> bool:
        return bool(self.ctl & RTIT_CTL.CR3_FILTER)

    @property
    def topa_output(self) -> bool:
        return bool(self.ctl & RTIT_CTL.TOPA)

    def accepts_cr3(self, cr3: Optional[int]) -> bool:
        """Whether the current CR3 passes the filter."""
        if not self.cr3_filtering:
            return True
        return cr3 == self.cr3_match
