"""Intel Processor Trace hardware model.

Faithful to the properties FlowGuard exploits (§2, Table 2, Table 3):

- per-core packetizer producing a *compressed* byte stream: conditional
  branches become single TNT bits (up to 6 per packet), indirect
  branches/returns become TIP packets with IP-byte compression against
  the previous IP, far transfers become FUP + TIP.PGD/TIP.PGE pairs, and
  direct branches produce **no output**,
- periodic PSB sync points (followed by a FUP carrying the current IP),
  enabling mid-stream and parallel decode,
- ToPA output regions with wrap-around and PMI-on-full,
- CR3 / CPL (user-only) filtering configured through RTIT MSRs,
- a **fast decoder** that only parses packet framing (cheap, but knows
  nothing about instruction types), and a **full decoder** that walks the
  program binaries instruction-by-instruction — Intel's reference
  "instruction flow layer", orders of magnitude slower.
"""

from repro.ipt.packets import (
    DecodedPacket,
    PacketKind,
    PSB_PATTERN,
    PacketError,
)
from repro.ipt.columnar import (
    ColumnarParallelResult,
    ColumnarSegment,
    ColumnarTail,
    LazyPackets,
    columnar_decode_parallel,
    columnar_scan,
)
from repro.ipt.topa import PMI, ToPA, ToPARegion
from repro.ipt.msr import RTIT_CTL, IPTConfig
from repro.ipt.encoder import IPTEncoder
from repro.ipt.fast_decoder import (
    FastDecodeResult,
    SegmentDecode,
    TipRecord,
    fast_decode,
    fast_decode_parallel,
    psb_boundaries,
    psb_offsets,
    sync_to_psb,
)
from repro.ipt.segment_cache import SegmentDecodeCache
from repro.ipt.full_decoder import (
    FlowEdge,
    FullDecodeResult,
    FullDecoder,
    TraceMismatch,
)

__all__ = [
    "ColumnarParallelResult",
    "ColumnarSegment",
    "ColumnarTail",
    "DecodedPacket",
    "FastDecodeResult",
    "FlowEdge",
    "FullDecodeResult",
    "FullDecoder",
    "IPTConfig",
    "IPTEncoder",
    "PMI",
    "PSB_PATTERN",
    "PacketError",
    "PacketKind",
    "RTIT_CTL",
    "SegmentDecode",
    "SegmentDecodeCache",
    "TipRecord",
    "ToPA",
    "ToPARegion",
    "TraceMismatch",
    "LazyPackets",
    "columnar_decode_parallel",
    "columnar_scan",
    "fast_decode",
    "fast_decode_parallel",
    "psb_boundaries",
    "psb_offsets",
    "sync_to_psb",
]
