"""Table of Physical Addresses (ToPA) output model.

The trace output is a chain of physical regions linked by a table of
pointers.  FlowGuard configures one ToPA with two regions (§5.1), with a
performance-monitoring interrupt (PMI) raised when the final region
fills, after which output wraps to the first region.

The monitor reads the buffer back with :meth:`ToPA.snapshot`, which
returns bytes oldest-to-newest; after a wrap the first bytes may be a
packet *tail*, so consumers must resynchronise at a PSB — exactly the
discipline real IPT decoders follow.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional


class PMI(Exception):
    """Raised through no path — PMIs are delivered via callback."""


@dataclass
class ToPARegion:
    """One output region.

    ``interrupt`` raises a PMI when the region fills; ``stop`` freezes
    output instead of wrapping (TraceStop).
    """

    size: int
    interrupt: bool = False
    stop: bool = False


@dataclass
class ToPA:
    """A circular chain of output regions."""

    regions: List[ToPARegion]
    pmi_callback: Optional[Callable[[], None]] = None

    _buffers: List[bytearray] = field(default_factory=list)
    _region: int = 0
    _offset: int = 0
    _wrapped: bool = False
    _stopped: bool = False
    total_bytes_written: int = 0

    def __post_init__(self) -> None:
        if not self.regions:
            raise ValueError("ToPA requires at least one region")
        self._buffers = [bytearray(r.size) for r in self.regions]

    @classmethod
    def flowguard_default(
        cls, pmi_callback: Optional[Callable[[], None]] = None
    ) -> "ToPA":
        """The paper's configuration: two regions, 16 KiB total, PMI on
        the last region."""
        return cls(
            regions=[
                ToPARegion(8192),
                ToPARegion(8192, interrupt=True),
            ],
            pmi_callback=pmi_callback,
        )

    @property
    def capacity(self) -> int:
        return sum(r.size for r in self.regions)

    @property
    def wrapped(self) -> bool:
        return self._wrapped

    @property
    def stopped(self) -> bool:
        return self._stopped

    def write(self, data: bytes) -> None:
        """Append packet bytes, moving across regions and wrapping."""
        if self._stopped:
            return
        for byte in data:
            region = self.regions[self._region]
            self._buffers[self._region][self._offset] = byte
            self._offset += 1
            self.total_bytes_written += 1
            if self._offset >= region.size:
                if region.interrupt and self.pmi_callback is not None:
                    self.pmi_callback()
                if region.stop:
                    self._stopped = True
                    return
                self._offset = 0
                self._region += 1
                if self._region >= len(self.regions):
                    self._region = 0
                    self._wrapped = True

    def snapshot(self) -> bytes:
        """Current contents, oldest byte first."""
        if not self._wrapped:
            out = bytearray()
            for index in range(self._region):
                out += self._buffers[index]
            out += self._buffers[self._region][: self._offset]
            return bytes(out)
        # Wrapped: oldest data starts right after the write cursor.
        out = bytearray(self._buffers[self._region][self._offset:])
        index = self._region + 1
        for _ in range(len(self.regions) - 1):
            if index >= len(self.regions):
                index = 0
            out += self._buffers[index]
            index += 1
        out += self._buffers[self._region][: self._offset]
        return bytes(out)

    def clear(self) -> None:
        """Reset the buffer (monitor consumed the trace)."""
        self._region = 0
        self._offset = 0
        self._wrapped = False
        self._stopped = False
