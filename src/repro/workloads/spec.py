"""A SPECCPU-2006-like suite: 12 C-benchmark analogues (Figure 5c, §2).

Each program reproduces the *branch personality* that drives the
paper's per-benchmark results — most importantly h264ref, whose core is
"a loop with many indirect calls" generating far more trace than the
others, and lbm/milc, almost branch-free arithmetic kernels that trace
nearly nothing.

All programs are CPU-bound: a data-seeded kernel loop, one final write
of the result, exit.  ``build_spec_program(name, scale)`` controls the
iteration count.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Callable, Dict, List

from repro.binary.module import Module
from repro.lang import (
    AddrOf,
    Assign,
    BinOp,
    Call,
    CallPtr,
    Const,
    Func,
    Global,
    If,
    Let,
    Load,
    LocalArray,
    Program,
    Rel,
    Return,
    Switch,
    Var,
    While,
)

_LIB_IMPORTS = ["exit", "write", "utoa", "checksum", "memcpy", "malloc"]


def _new_spec(name: str) -> Program:
    prog = Program(name)
    prog.add_needed("libsim.so")
    for symbol in _LIB_IMPORTS:
        prog.import_symbol(symbol)
    return prog


def _seed_bytes(n: int, seed: int = 7) -> bytes:
    value = seed
    out = bytearray()
    for _ in range(n):
        value = (value * 1103515245 + 12345) & 0x7FFFFFFF
        out.append(value & 0xFF)
    return bytes(out)


def _report_and_exit(result_var: str) -> List:
    """Write the result digits to stdout, then return it."""
    return [
        LocalArray("outbuf", 32),
        Let("outn", Call("utoa", [Var(result_var), AddrOf("outbuf")])),
        Call("write", [Const(1), AddrOf("outbuf"), Var("outn")]),
        Return(Var(result_var)),
    ]


def _loop(var: str, count, body: List) -> List:
    """for var in range(count): body"""
    bound = count if isinstance(count, (Const, Var, BinOp)) else Const(count)
    return [
        Let(var, Const(0)),
        While(
            Rel("<", Var(var), bound),
            body + [Assign(var, BinOp("+", Var(var), Const(1)))],
        ),
    ]


# ----------------------------------------------------------------------
# Individual benchmarks
# ----------------------------------------------------------------------


def _perlbench(prog: Program, scale: int) -> None:
    """Bytecode-interpreter loop: switch-heavy, data-driven branching."""
    ops = _seed_bytes(256, seed=3)
    prog.add_data("bytecode", bytes(b % 5 for b in ops))
    prog.add_func(
        Func(
            "interp",
            ["rounds"],
            [
                Let("acc", Const(1)),
                Let("pc", Const(0)),
                Let("op", Const(0)),
                Let("steps", BinOp("*", Var("rounds"), Const(256))),
                Let("i", Const(0)),
                While(
                    Rel("<", Var("i"), Var("steps")),
                    [
                        Assign("op", Load(
                            BinOp("+", Global("bytecode"),
                                  BinOp("%", Var("pc"), Const(256))),
                            byte=True)),
                        Switch(
                            Var("op"),
                            {
                                0: [Assign("acc", BinOp("+", Var("acc"),
                                                        Const(3)))],
                                1: [Assign("acc", BinOp("*", Var("acc"),
                                                        Const(2)))],
                                2: [Assign("acc", BinOp("^", Var("acc"),
                                                        Var("pc")))],
                                3: [Assign("acc", BinOp(">>", Var("acc"),
                                                        Const(1)))],
                                4: [
                                    If(Rel(">", Var("acc"), Const(1000)),
                                       [Assign("acc", Const(1))])
                                ],
                            },
                            default=[],
                        ),
                        Assign("acc", BinOp("&", Var("acc"),
                                            Const(0xFFFFFF))),
                        Assign("pc", BinOp("+", Var("pc"), Const(1))),
                        Assign("i", BinOp("+", Var("i"), Const(1))),
                    ],
                ),
                Return(Var("acc")),
            ],
        )
    )
    prog.add_func(
        Func("main", [],
             [Let("r", Call("interp", [Const(scale)]))]
             + _report_and_exit("r"))
    )


def _bzip2(prog: Program, scale: int) -> None:
    """Run-length/transform loops over a block: conditional-heavy."""
    prog.add_data("block", _seed_bytes(512, seed=11))
    prog.add_func(
        Func(
            "compress_pass",
            ["rounds"],
            [
                Let("matches", Const(0)),
                Let("prev", Const(0)),
                Let("cur", Const(0)),
                Let("r", Const(0)),
                While(
                    Rel("<", Var("r"), Var("rounds")),
                    [
                        Let("i", Const(0)),
                        While(
                            Rel("<", Var("i"), Const(512)),
                            [
                                Assign("cur", Load(
                                    BinOp("+", Global("block"), Var("i")),
                                    byte=True)),
                                If(
                                    Rel("==", Var("cur"), Var("prev")),
                                    [Assign("matches",
                                            BinOp("+", Var("matches"),
                                                  Const(1)))],
                                    [
                                        If(
                                            Rel(">", Var("cur"),
                                                Const(128)),
                                            [Assign("matches",
                                                    BinOp("+",
                                                          Var("matches"),
                                                          Const(0)))],
                                        )
                                    ],
                                ),
                                Assign("prev", Var("cur")),
                                Assign("i", BinOp("+", Var("i"),
                                                  Const(1))),
                            ],
                        ),
                        Assign("r", BinOp("+", Var("r"), Const(1))),
                    ],
                ),
                Return(Var("matches")),
            ],
        )
    )
    prog.add_func(
        Func("main", [],
             [Let("r", Call("compress_pass", [Const(scale * 4)]))]
             + _report_and_exit("r"))
    )


def _gcc(prog: Program, scale: int) -> None:
    """Recursive tree walk + switch: call/return heavy."""
    prog.add_data("tree", _seed_bytes(128, seed=17))
    prog.add_func(
        Func(
            "eval_node",
            ["index", "depth"],
            [
                If(Rel("<=", Var("depth"), Const(0)),
                   [Return(Const(1))]),
                Let("kind", BinOp("%", Load(
                    BinOp("+", Global("tree"),
                          BinOp("%", Var("index"), Const(128))),
                    byte=True), Const(3))),
                Let("left", Call("eval_node",
                                 [BinOp("*", Var("index"), Const(2)),
                                  BinOp("-", Var("depth"), Const(1))])),
                Let("right", Call("eval_node",
                                  [BinOp("+",
                                         BinOp("*", Var("index"),
                                               Const(2)), Const(1)),
                                   BinOp("-", Var("depth"), Const(1))])),
                Switch(
                    Var("kind"),
                    {
                        0: [Return(BinOp("+", Var("left"), Var("right")))],
                        1: [Return(BinOp("^", Var("left"), Var("right")))],
                        2: [Return(BinOp("&",
                                         BinOp("*", Var("left"),
                                               Const(3)),
                                         Const(0xFFFF)))],
                    },
                    default=[Return(Var("left"))],
                ),
            ],
        )
    )
    prog.add_func(
        Func(
            "main", [],
            _loop("round", Const(scale * 2),
                  [Let("r", Call("eval_node", [Const(1), Const(8)]))])
            + [Assign("r", BinOp("&", Var("r"), Const(0xFFFF)))]
            + _report_and_exit("r"),
        )
    )


def _mcf(prog: Program, scale: int) -> None:
    """Pointer-chasing over an in-data linked structure: load-bound."""
    # 128 nodes of 8 bytes each: a permutation cycle.
    import struct

    nodes = list(range(128))
    order = nodes[1:] + nodes[:1]
    table = b"".join(struct.pack("<Q", order[i]) for i in range(128))
    prog.add_data("links", table)
    prog.add_func(
        Func(
            "chase",
            ["steps"],
            [
                Let("node", Const(0)),
                Let("hops", Const(0)),
                Let("i", Const(0)),
                While(
                    Rel("<", Var("i"), Var("steps")),
                    [
                        Assign("node", Load(
                            BinOp("+", Global("links"),
                                  BinOp("*", Var("node"), Const(8))))),
                        Assign("hops", BinOp("+", Var("hops"), Const(1))),
                        Assign("i", BinOp("+", Var("i"), Const(1))),
                    ],
                ),
                Return(BinOp("+", Var("node"), Var("hops"))),
            ],
        )
    )
    prog.add_func(
        Func("main", [],
             [Let("r", Call("chase", [Const(scale * 2000)]))]
             + _report_and_exit("r"))
    )


def _milc(prog: Program, scale: int) -> None:
    """Lattice arithmetic: long multiply/add runs, few branches."""
    prog.add_func(
        Func(
            "su3_mult",
            ["rounds"],
            [
                Let("acc", Const(1)),
                Let("x", Const(1103515245)),
                Let("i", Const(0)),
                Let("total", BinOp("*", Var("rounds"), Const(512))),
                While(
                    Rel("<", Var("i"), Var("total")),
                    [
                        Assign("x", BinOp("&",
                                          BinOp("+",
                                                BinOp("*", Var("x"),
                                                      Const(75)),
                                                Const(74)),
                                          Const(0xFFFFFFF))),
                        Assign("acc", BinOp("&",
                                            BinOp("+", Var("acc"),
                                                  BinOp("*", Var("x"),
                                                        Const(3))),
                                            Const(0xFFFFFFF))),
                        Assign("i", BinOp("+", Var("i"), Const(1))),
                    ],
                ),
                Return(BinOp("&", Var("acc"), Const(0xFFFF))),
            ],
        )
    )
    prog.add_func(
        Func("main", [],
             [Let("r", Call("su3_mult", [Const(scale * 2)]))]
             + _report_and_exit("r"))
    )


def _gobmk(prog: Program, scale: int) -> None:
    """Depth-limited game search: recursion + dense conditionals."""
    prog.add_data("board", _seed_bytes(64, seed=23))
    prog.add_func(
        Func(
            "evaluate",
            ["pos"],
            [
                Let("v", Load(BinOp("+", Global("board"),
                                    BinOp("%", Var("pos"), Const(64))),
                              byte=True)),
                If(Rel(">", Var("v"), Const(200)), [Return(Const(9))]),
                If(Rel(">", Var("v"), Const(128)), [Return(Const(3))]),
                If(Rel(">", Var("v"), Const(64)), [Return(Const(1))]),
                Return(Const(0)),
            ],
        )
    )
    prog.add_func(
        Func(
            "search",
            ["pos", "depth"],
            [
                If(Rel("<=", Var("depth"), Const(0)),
                   [Return(Call("evaluate", [Var("pos")]))]),
                Let("best", Const(0)),
                Let("move", Const(0)),
                While(
                    Rel("<", Var("move"), Const(3)),
                    [
                        Let("score",
                            Call("search",
                                 [BinOp("+",
                                        BinOp("*", Var("pos"), Const(3)),
                                        Var("move")),
                                  BinOp("-", Var("depth"), Const(1))])),
                        If(Rel(">", Var("score"), Var("best")),
                           [Assign("best", Var("score"))]),
                        Assign("move", BinOp("+", Var("move"), Const(1))),
                    ],
                ),
                Return(Var("best")),
            ],
        )
    )
    prog.add_func(
        Func(
            "main", [],
            _loop("round", Const(scale),
                  [Let("r", Call("search", [Const(1), Const(7)]))])
            + _report_and_exit("r"),
        )
    )


def _hmmer(prog: Program, scale: int) -> None:
    """Profile-HMM style dynamic programming: max-compare loops."""
    prog.add_data("seq", _seed_bytes(256, seed=29))
    prog.add_func(
        Func(
            "viterbi_pass",
            ["rounds"],
            [
                Let("m", Const(0)),
                Let("d", Const(0)),
                Let("best", Const(0)),
                Let("r", Const(0)),
                While(
                    Rel("<", Var("r"), Var("rounds")),
                    [
                        Let("i", Const(0)),
                        While(
                            Rel("<", Var("i"), Const(256)),
                            [
                                Let("e", Load(BinOp("+", Global("seq"),
                                                    Var("i")), byte=True)),
                                Assign("m", BinOp("+", Var("m"), Var("e"))),
                                Assign("d", BinOp("+", Var("d"), Const(7))),
                                If(Rel(">", Var("d"), Var("m")),
                                   [Assign("m", Var("d"))]),
                                If(Rel(">", Var("m"), Var("best")),
                                   [Assign("best", Var("m"))]),
                                Assign("m", BinOp("%", Var("m"),
                                                  Const(65521))),
                                Assign("i", BinOp("+", Var("i"),
                                                  Const(1))),
                            ],
                        ),
                        Assign("r", BinOp("+", Var("r"), Const(1))),
                    ],
                ),
                Return(BinOp("&", Var("best"), Const(0xFFFF))),
            ],
        )
    )
    prog.add_func(
        Func("main", [],
             [Let("r", Call("viterbi_pass", [Const(scale * 3)]))]
             + _report_and_exit("r"))
    )


def _sjeng(prog: Program, scale: int) -> None:
    """Chess-engine style: recursion + switch over move kinds."""
    prog.add_data("moves", bytes(b % 4 for b in _seed_bytes(128, seed=31)))
    prog.add_func(
        Func(
            "negamax",
            ["pos", "depth"],
            [
                If(
                    Rel("<=", Var("depth"), Const(0)),
                    [
                        # Leaf evaluation: a burst of scoring arithmetic
                        # per node (piece-square sums), keeping sjeng
                        # compute-bound between control transfers.
                        Let("score", Var("pos")),
                        Let("k", Const(0)),
                        While(
                            Rel("<", Var("k"), Const(24)),
                            [
                                Assign("score",
                                       BinOp("&",
                                             BinOp("+",
                                                   BinOp("*", Var("score"),
                                                         Const(13)),
                                                   Var("k")),
                                             Const(0xFFFF))),
                                Assign("k", BinOp("+", Var("k"),
                                                  Const(1))),
                            ],
                        ),
                        Return(BinOp("%", Var("score"), Const(64))),
                    ],
                ),
                Let("kind", Load(BinOp("+", Global("moves"),
                                       BinOp("%", Var("pos"), Const(128))),
                                 byte=True)),
                Let("sub", Call("negamax",
                                [BinOp("+",
                                       BinOp("*", Var("pos"), Const(2)),
                                       Const(1)),
                                 BinOp("-", Var("depth"), Const(1))])),
                Switch(
                    Var("kind"),
                    {
                        0: [Return(BinOp("+", Var("sub"), Const(1)))],
                        1: [Return(BinOp("-", Const(64), Var("sub")))],
                        2: [Return(BinOp("^", Var("sub"), Const(21)))],
                        3: [Return(BinOp(">>", Var("sub"), Const(1)))],
                    },
                    default=[Return(Var("sub"))],
                ),
            ],
        )
    )
    prog.add_func(
        Func(
            "main", [],
            _loop("round", Const(scale * 8),
                  [Let("r", Call("negamax", [Const(3), Const(9)]))])
            + _report_and_exit("r"),
        )
    )


def _libquantum(prog: Program, scale: int) -> None:
    """Quantum-register bit manipulation: shift/xor loops."""
    prog.add_func(
        Func(
            "toffoli_pass",
            ["rounds"],
            [
                Let("reg", Const(0x12345)),
                Let("i", Const(0)),
                Let("total", BinOp("*", Var("rounds"), Const(1024))),
                While(
                    Rel("<", Var("i"), Var("total")),
                    [
                        Assign("reg", BinOp("^", Var("reg"),
                                            BinOp("<<", Var("reg"),
                                                  Const(3)))),
                        Assign("reg", BinOp("&", Var("reg"),
                                            Const(0xFFFFFF))),
                        If(
                            Rel("==", BinOp("&", Var("reg"), Const(1)),
                                Const(1)),
                            [Assign("reg", BinOp(">>", Var("reg"),
                                                 Const(1)))],
                        ),
                        Assign("i", BinOp("+", Var("i"), Const(1))),
                    ],
                ),
                Return(BinOp("&", Var("reg"), Const(0xFFFF))),
            ],
        )
    )
    prog.add_func(
        Func("main", [],
             [Let("r", Call("toffoli_pass", [Const(scale)]))]
             + _report_and_exit("r"))
    )


def _h264ref(prog: Program, scale: int) -> None:
    """The outlier: a macroblock loop with *many indirect calls* — the
    prediction-mode dispatch runs through a function-pointer table on
    every iteration, generating far more TIP traffic than any other
    benchmark (~90% more trace at runtime, §7.2.1)."""
    prog.add_data("mb_modes", bytes(b % 4 for b in _seed_bytes(256, seed=37)))
    for mode, op in enumerate(["+", "^", "*", "-"]):
        prog.add_func(
            Func(
                f"predict_mode{mode}",
                ["px"],
                [Return(BinOp("&", BinOp(op, Var("px"),
                                         Const(mode + 3)),
                              Const(0xFFFF)))],
            )
        )
    prog.add_pointer_table(
        "predictors",
        [f"predict_mode{mode}" for mode in range(4)],
    )
    prog.add_func(
        Func(
            "encode_frame",
            ["rounds"],
            [
                Let("px", Const(7)),
                Let("r", Const(0)),
                While(
                    Rel("<", Var("r"), Var("rounds")),
                    [
                        Let("mb", Const(0)),
                        While(
                            Rel("<", Var("mb"), Const(256)),
                            [
                                Let("mode", Load(
                                    BinOp("+", Global("mb_modes"),
                                          Var("mb")), byte=True)),
                                Let("fp", Load(
                                    BinOp("+", Global("predictors"),
                                          BinOp("*", Var("mode"),
                                                Const(8))))),
                                # Indirect call on every macroblock.
                                Assign("px", CallPtr(Var("fp"),
                                                     [Var("px")])),
                                Assign("mb", BinOp("+", Var("mb"),
                                                   Const(1))),
                            ],
                        ),
                        Assign("r", BinOp("+", Var("r"), Const(1))),
                    ],
                ),
                Return(Var("px")),
            ],
        )
    )
    prog.add_func(
        Func("main", [],
             [Let("r", Call("encode_frame", [Const(scale * 3)]))]
             + _report_and_exit("r"))
    )


def _lbm(prog: Program, scale: int) -> None:
    """Lattice-Boltzmann stencil: almost branch-free arithmetic."""
    prog.add_func(
        Func(
            "stream_collide",
            ["rounds"],
            [
                Let("a", Const(3)),
                Let("b", Const(5)),
                Let("c", Const(7)),
                Let("i", Const(0)),
                Let("total", BinOp("*", Var("rounds"), Const(1024))),
                While(
                    Rel("<", Var("i"), Var("total")),
                    [
                        Assign("a", BinOp("&", BinOp("+",
                                                     BinOp("*", Var("a"),
                                                           Const(3)),
                                                     Var("b")),
                                          Const(0xFFFFF))),
                        Assign("b", BinOp("&", BinOp("+",
                                                     BinOp("*", Var("b"),
                                                           Const(5)),
                                                     Var("c")),
                                          Const(0xFFFFF))),
                        Assign("c", BinOp("&", BinOp("+",
                                                     BinOp("*", Var("c"),
                                                           Const(7)),
                                                     Var("a")),
                                          Const(0xFFFFF))),
                        Assign("i", BinOp("+", Var("i"), Const(1))),
                    ],
                ),
                Return(BinOp("&", BinOp("+", Var("a"),
                                        BinOp("+", Var("b"), Var("c"))),
                             Const(0xFFFF))),
            ],
        )
    )
    prog.add_func(
        Func("main", [],
             [Let("r", Call("stream_collide", [Const(scale)]))]
             + _report_and_exit("r"))
    )


def _sphinx3(prog: Program, scale: int) -> None:
    """Speech decoding: arithmetic scoring plus a moderate rate of
    indirect calls (senone scoring dispatch)."""
    prog.add_data("frames", _seed_bytes(128, seed=41))
    prog.add_func(
        Func("score_a", ["x"],
             [Return(BinOp("&", BinOp("*", Var("x"), Const(5)),
                           Const(0xFFFF)))])
    )
    prog.add_func(
        Func("score_b", ["x"],
             [Return(BinOp("&", BinOp("+", Var("x"), Const(77)),
                           Const(0xFFFF)))])
    )
    prog.add_pointer_table("scorers", ["score_a", "score_b"])
    prog.add_func(
        Func(
            "decode",
            ["rounds"],
            [
                Let("acc", Const(1)),
                Let("r", Const(0)),
                While(
                    Rel("<", Var("r"), Var("rounds")),
                    [
                        Let("i", Const(0)),
                        While(
                            Rel("<", Var("i"), Const(128)),
                            [
                                Let("f", Load(BinOp("+", Global("frames"),
                                                    Var("i")), byte=True)),
                                Assign("acc", BinOp("&",
                                                    BinOp("+",
                                                          BinOp("*",
                                                                Var("acc"),
                                                                Const(31)),
                                                          Var("f")),
                                                    Const(0xFFFFFF))),
                                # Every 8th frame goes through the
                                # scorer dispatch.
                                If(
                                    Rel("==", BinOp("%", Var("i"),
                                                    Const(8)), Const(0)),
                                    [
                                        Let("fp", Load(
                                            BinOp("+", Global("scorers"),
                                                  BinOp("*",
                                                        BinOp("&",
                                                              Var("f"),
                                                              Const(1)),
                                                        Const(8))))),
                                        Assign("acc",
                                               CallPtr(Var("fp"),
                                                       [Var("acc")])),
                                    ],
                                ),
                                Assign("i", BinOp("+", Var("i"),
                                                  Const(1))),
                            ],
                        ),
                        Assign("r", BinOp("+", Var("r"), Const(1))),
                    ],
                ),
                Return(BinOp("&", Var("acc"), Const(0xFFFF))),
            ],
        )
    )
    prog.add_func(
        Func("main", [],
             [Let("r", Call("decode", [Const(scale * 4)]))]
             + _report_and_exit("r"))
    )


_GENERATORS: Dict[str, Callable[[Program, int], None]] = {
    "perlbench": _perlbench,
    "bzip2": _bzip2,
    "gcc": _gcc,
    "mcf": _mcf,
    "milc": _milc,
    "gobmk": _gobmk,
    "hmmer": _hmmer,
    "sjeng": _sjeng,
    "libquantum": _libquantum,
    "h264ref": _h264ref,
    "lbm": _lbm,
    "sphinx3": _sphinx3,
}

SPEC_NAMES = tuple(_GENERATORS)


@lru_cache(maxsize=None)
def build_spec_program(name: str, scale: int = 1) -> Module:
    """Build one suite member at the given iteration scale."""
    generator = _GENERATORS.get(name)
    if generator is None:
        raise KeyError(f"unknown SPEC-like benchmark: {name}")
    prog = _new_spec(name)
    generator(prog, scale)
    prog.set_entry("main")
    return prog.build()


SPEC_BUILDERS: Dict[str, Callable[[], Module]] = {
    name: (lambda n=name: build_spec_program(n)) for name in SPEC_NAMES
}
