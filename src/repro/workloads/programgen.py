"""Random program generation for whole-stack property testing.

Generates deterministic (seeded) mini-language programs exercising the
full branch taxonomy — loops, nested conditionals, switches, direct and
indirect calls through pointer tables, recursion — so properties like
"every trace fully reconstructs" and "consecutive TIPs are ITC edges"
can be checked over a large space of program shapes rather than a few
hand-written fixtures.

All generated programs terminate: loops are bounded counters and
recursion carries an explicit depth argument.
"""

from __future__ import annotations

import random
from typing import List

from repro.binary.module import Module
from repro.lang import (
    Assign,
    BinOp,
    Call,
    CallPtr,
    Const,
    Func,
    Global,
    If,
    Let,
    Load,
    Program,
    Rel,
    Return,
    Switch,
    Var,
    While,
)

_OPS = ["+", "-", "*", "^", "&", "|"]
_RELS = ["==", "!=", "<", "<=", ">", ">="]


class ProgramGenerator:
    """Seeded random generator of terminating programs."""

    def __init__(self, seed: int, leaf_count: int = 4,
                 max_depth: int = 3) -> None:
        self.rng = random.Random(seed)
        self.leaf_count = leaf_count
        self.max_depth = max_depth
        self._names = iter(f"v{i}" for i in range(10_000))

    # -- expressions -------------------------------------------------------

    def _value(self, scope: List[str]):
        roll = self.rng.random()
        if scope and roll < 0.5:
            return Var(self.rng.choice(scope))
        return Const(self.rng.randint(0, 255))

    def _expr(self, scope: List[str], depth: int = 0):
        if depth >= 2 or self.rng.random() < 0.4:
            return self._value(scope)
        op = self.rng.choice(_OPS)
        return BinOp(
            op, self._expr(scope, depth + 1), self._expr(scope, depth + 1)
        )

    def _cond(self, scope: List[str]):
        return Rel(
            self.rng.choice(_RELS), self._value(scope), self._value(scope)
        )

    # -- statements ----------------------------------------------------------

    def _block(self, scope: List[str], depth: int) -> List:
        statements: List = []
        for _ in range(self.rng.randint(1, 4)):
            statement = self._statement(scope, depth)
            if isinstance(statement, list):
                statements.extend(statement)
            else:
                statements.append(statement)
        return statements

    def _statement(self, scope: List[str], depth: int):
        choices = ["assign", "let"]
        if depth < self.max_depth:
            choices += ["if", "loop", "switch"]
        choices += ["leaf_call", "indirect_call"]
        kind = self.rng.choice(choices)

        if kind == "let" or (kind == "assign" and not scope):
            name = next(self._names)
            scope.append(name)
            return Let(name, self._expr(scope))
        if kind == "assign":
            return Assign(self.rng.choice(scope), self._expr(scope))
        if kind == "if":
            orelse = (
                self._block(list(scope), depth + 1)
                if self.rng.random() < 0.5 else []
            )
            return If(self._cond(scope),
                      self._block(list(scope), depth + 1), orelse)
        if kind == "loop":
            counter = next(self._names)
            scope.append(counter)
            bound = self.rng.randint(1, 6)
            body = self._block(list(scope), depth + 1)
            body.append(Assign(counter,
                               BinOp("+", Var(counter), Const(1))))
            return [
                Let(counter, Const(0)),
                While(Rel("<", Var(counter), Const(bound)), body),
            ]
        if kind == "switch":
            selector = self._value(scope)
            cases = {
                key: self._block(list(scope), depth + 1)
                for key in range(self.rng.randint(2, 4))
            }
            return Switch(BinOp("&", selector, Const(3)), cases,
                          default=self._block(list(scope), depth + 1))
        if kind == "leaf_call":
            index = self.rng.randrange(self.leaf_count)
            return Let(next(self._names),
                       Call(f"leaf{index}", [self._value(scope)]))
        # indirect call through the pointer table.
        index_expr = BinOp("&", self._value(scope),
                           Const(self.leaf_count - 1))
        return Let(
            next(self._names),
            CallPtr(
                Load(BinOp("+", Global("leaves"),
                           BinOp("*", index_expr, Const(8)))),
                [self._value(scope)],
            ),
        )

    # -- whole programs ---------------------------------------------------------

    def generate(self, name: str = "generated") -> Module:
        prog = Program(name)
        prog.add_needed("libsim.so")
        prog.import_symbol("exit")
        # Leaf functions: simple arithmetic, one recursive.
        for index in range(self.leaf_count):
            op = self.rng.choice(_OPS)
            prog.add_func(
                Func(
                    f"leaf{index}",
                    ["x"],
                    [Return(BinOp("&",
                                  BinOp(op, Var("x"),
                                        Const(self.rng.randint(1, 9))),
                                  Const(0xFFFF)))],
                )
            )
        prog.add_func(
            Func(
                "rec",
                ["n"],
                [
                    If(Rel("<=", Var("n"), Const(0)),
                       [Return(Const(1))]),
                    Return(BinOp("+", Var("n"),
                                 Call("rec",
                                      [BinOp("-", Var("n"), Const(1))]))),
                ],
            )
        )
        prog.add_pointer_table(
            "leaves", [f"leaf{i}" for i in range(self.leaf_count)]
        )
        scope: List[str] = []
        body = [Let("seed", Const(self.rng.randint(0, 99)))]
        scope.append("seed")
        body.extend(self._block(scope, 0))
        body.append(
            Let(next(self._names),
                Call("rec", [Const(self.rng.randint(1, 5))]))
        )
        body.append(Return(BinOp("&", self._value(scope), Const(0xFF))))
        prog.add_func(Func("main", [], body))
        prog.set_entry("main")
        return prog.build()


def generate_program(seed: int, name: str = "generated") -> Module:
    """Convenience wrapper: one seeded random program."""
    return ProgramGenerator(seed).generate(name)
