"""The VDSO module: fast-path syscall acceleration (§4.1).

Real VDSOs avoid the kernel entirely; here ``gettimeofday`` still traps
(the kernel model is the only clock), but the module boundary — calls
resolving into a VDSO segment that takes precedence over libraries — is
what the CFG construction needs to handle, and does.
"""

from __future__ import annotations

from functools import lru_cache

from repro.binary.builder import ModuleBuilder
from repro.binary.module import Module
from repro.isa.assembler import A
from repro.isa.registers import R0
from repro.osmodel.syscalls import Sys


@lru_cache(maxsize=None)
def build_vdso() -> Module:
    vdso = ModuleBuilder("vdso")
    vdso.add_function(
        "gettimeofday",
        [
            A.mov(R0, int(Sys.GETTIMEOFDAY)),
            A.syscall(),
            A.ret(),
        ],
    )
    vdso.add_function(
        "time",
        [
            A.mov(R0, int(Sys.GETTIMEOFDAY)),
            A.syscall(),
            A.ret(),
        ],
    )
    return vdso.build()
