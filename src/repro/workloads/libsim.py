"""``libsim.so`` — the shared C library analogue.

Provides syscall wrappers, string/memory routines and a bump allocator.
Like a real libc it is also the attacker's gadget quarry:

- ``strcpy``/``memcpy`` are unbounded (the classic overflow primitives),
- ``setcontext`` restores argument registers from the stack and returns
  — the canonical register-control ROP gadget,
- ``sigreturn`` is a raw ``mov r0, NR; syscall; ret`` trampoline, the
  SROP entry point (its ``syscall; ret`` tail doubles as a
  syscall-anything gadget once registers are controlled).

All applications link against one shared instance, so gadget addresses
are identical across protected programs — as with a system libc.
"""

from __future__ import annotations

from functools import lru_cache

from repro.binary.module import Module
from repro.isa.assembler import A
from repro.isa.registers import R0, R1, R2, R3, R4
from repro.lang import (
    Assign,
    BinOp,
    Break,
    Call,
    Const,
    Func,
    Global,
    If,
    Let,
    Load,
    Program,
    Rel,
    Return,
    Store,
    SyscallExpr,
    Var,
    While,
)
from repro.osmodel.process import HEAP_BASE
from repro.osmodel.syscalls import Sys


def _wrapper(name: str, nr: Sys, params: list) -> Func:
    """A syscall wrapper: ``name(params...) -> syscall(nr, params...)``."""
    return Func(
        name, params,
        [Return(SyscallExpr(int(nr), [Var(p) for p in params]))],
    )


_HEAP_POOL = 1 << 20  # 1 MiB bump-allocator pool


@lru_cache(maxsize=None)
def build_libsim() -> Module:
    """Build (and memoise) the shared library image."""
    lib = Program("libsim.so")

    # -- syscall wrappers -------------------------------------------------
    lib.add_func(_wrapper("exit", Sys.EXIT, ["code"]))
    lib.add_func(_wrapper("read", Sys.READ, ["fd", "buf", "n"]))
    lib.add_func(_wrapper("write", Sys.WRITE, ["fd", "buf", "n"]))
    lib.add_func(_wrapper("open", Sys.OPEN, ["path", "flags"]))
    lib.add_func(_wrapper("close", Sys.CLOSE, ["fd"]))
    lib.add_func(_wrapper("mmap", Sys.MMAP, ["hint", "size", "prot"]))
    lib.add_func(_wrapper("mprotect", Sys.MPROTECT, ["addr", "size", "prot"]))
    lib.add_func(_wrapper("execve", Sys.EXECVE, ["path"]))
    lib.add_func(_wrapper("fork", Sys.FORK, []))
    lib.add_func(_wrapper("wait", Sys.WAIT, []))
    lib.add_func(_wrapper("sigaction", Sys.SIGACTION, ["sig", "handler"]))
    lib.add_func(_wrapper("socket", Sys.SOCKET, []))
    lib.add_func(_wrapper("bind", Sys.BIND, ["fd"]))
    lib.add_func(_wrapper("listen", Sys.LISTEN, ["fd"]))
    lib.add_func(_wrapper("accept", Sys.ACCEPT, ["fd"]))
    lib.add_func(_wrapper("recv", Sys.RECV, ["fd", "buf", "n"]))
    lib.add_func(_wrapper("send", Sys.SEND, ["fd", "buf", "n"]))
    lib.add_func(_wrapper("ptrace", Sys.PTRACE, ["req"]))
    lib.add_func(_wrapper("getpid", Sys.GETPID, []))
    lib.add_func(_wrapper("brk", Sys.BRK, ["addr"]))
    lib.add_func(_wrapper("unlink", Sys.UNLINK, ["path"]))
    lib.add_func(_wrapper("kill", Sys.KILL, ["pid", "sig"]))
    # Fallback for images loaded without a VDSO (the VDSO's definition
    # takes precedence when present, §4.1).
    lib.add_func(_wrapper("gettimeofday", Sys.GETTIMEOFDAY, []))

    # sigreturn must not touch the stack before the syscall: the kernel
    # reads the signal frame at SP.  (Raw assembly, no prologue.)
    lib.builder.add_function(
        "sigreturn",
        [
            A.mov(R0, int(Sys.SIGRETURN)),
            A.syscall(),
            A.ret(),
        ],
    )

    # setcontext: restores the argument registers from the stack — the
    # libc-style register-control gadget every ROP chain wants.
    lib.builder.add_function(
        "setcontext",
        [
            A.pop(R1),
            A.pop(R2),
            A.pop(R3),
            A.pop(R4),
            A.ret(),
        ],
    )

    # -- string / memory routines -------------------------------------------

    lib.add_func(
        Func(
            "memcpy",
            ["dst", "src", "n"],
            [
                Let("i", Const(0)),
                While(
                    Rel("<", Var("i"), Var("n")),
                    [
                        Store(
                            BinOp("+", Var("dst"), Var("i")),
                            Load(BinOp("+", Var("src"), Var("i")),
                                 byte=True),
                            byte=True,
                        ),
                        Assign("i", BinOp("+", Var("i"), Const(1))),
                    ],
                ),
                Return(Var("dst")),
            ],
        )
    )

    lib.add_func(
        Func(
            "memset",
            ["dst", "value", "n"],
            [
                Let("i", Const(0)),
                While(
                    Rel("<", Var("i"), Var("n")),
                    [
                        Store(BinOp("+", Var("dst"), Var("i")),
                              Var("value"), byte=True),
                        Assign("i", BinOp("+", Var("i"), Const(1))),
                    ],
                ),
                Return(Var("dst")),
            ],
        )
    )

    lib.add_func(
        Func(
            "strlen",
            ["s"],
            [
                Let("i", Const(0)),
                While(
                    Rel("!=", Load(BinOp("+", Var("s"), Var("i")),
                                   byte=True), Const(0)),
                    [Assign("i", BinOp("+", Var("i"), Const(1)))],
                ),
                Return(Var("i")),
            ],
        )
    )

    lib.add_func(
        Func(
            "strcmp",
            ["a", "b"],
            [
                Let("i", Const(0)),
                Let("ca", Const(0)),
                Let("cb", Const(0)),
                While(
                    Const(1),
                    [
                        Assign("ca", Load(BinOp("+", Var("a"), Var("i")),
                                          byte=True)),
                        Assign("cb", Load(BinOp("+", Var("b"), Var("i")),
                                          byte=True)),
                        If(
                            Rel("!=", Var("ca"), Var("cb")),
                            [Return(BinOp("-", Var("ca"), Var("cb")))],
                        ),
                        If(Rel("==", Var("ca"), Const(0)),
                           [Return(Const(0))]),
                        Assign("i", BinOp("+", Var("i"), Const(1))),
                    ],
                ),
            ],
        )
    )

    lib.add_func(
        Func(
            "strncmp",
            ["a", "b", "n"],
            [
                Let("i", Const(0)),
                Let("ca", Const(0)),
                Let("cb", Const(0)),
                While(
                    Rel("<", Var("i"), Var("n")),
                    [
                        Assign("ca", Load(BinOp("+", Var("a"), Var("i")),
                                          byte=True)),
                        Assign("cb", Load(BinOp("+", Var("b"), Var("i")),
                                          byte=True)),
                        If(
                            Rel("!=", Var("ca"), Var("cb")),
                            [Return(BinOp("-", Var("ca"), Var("cb")))],
                        ),
                        If(Rel("==", Var("ca"), Const(0)),
                           [Return(Const(0))]),
                        Assign("i", BinOp("+", Var("i"), Const(1))),
                    ],
                ),
                Return(Const(0)),
            ],
        )
    )

    # Unbounded strcpy: the canonical overflow primitive.
    lib.add_func(
        Func(
            "strcpy",
            ["dst", "src"],
            [
                Let("i", Const(0)),
                Let("c", Const(1)),
                While(
                    Rel("!=", Var("c"), Const(0)),
                    [
                        Assign("c", Load(BinOp("+", Var("src"), Var("i")),
                                         byte=True)),
                        Store(BinOp("+", Var("dst"), Var("i")), Var("c"),
                              byte=True),
                        Assign("i", BinOp("+", Var("i"), Const(1))),
                    ],
                ),
                Return(Var("dst")),
            ],
        )
    )

    lib.add_func(
        Func(
            "atoi",
            ["s"],
            [
                Let("value", Const(0)),
                Let("i", Const(0)),
                Let("c", Const(0)),
                While(
                    Const(1),
                    [
                        Assign("c", Load(BinOp("+", Var("s"), Var("i")),
                                         byte=True)),
                        If(Rel("<", Var("c"), Const(48)), [Break()]),
                        If(Rel(">", Var("c"), Const(57)), [Break()]),
                        Assign(
                            "value",
                            BinOp("+", BinOp("*", Var("value"), Const(10)),
                                  BinOp("-", Var("c"), Const(48))),
                        ),
                        Assign("i", BinOp("+", Var("i"), Const(1))),
                    ],
                ),
                Return(Var("value")),
            ],
        )
    )

    lib.add_func(
        Func(
            "utoa",
            ["value", "buf"],
            [
                # Writes decimal digits; returns the length.
                If(
                    Rel("==", Var("value"), Const(0)),
                    [
                        Store(Var("buf"), Const(48), byte=True),
                        Store(Var("buf"), Const(0), offset=1, byte=True),
                        Return(Const(1)),
                    ],
                ),
                Let("n", Const(0)),
                Let("v", Var("value")),
                While(
                    Rel(">", Var("v"), Const(0)),
                    [
                        Assign("v", BinOp("/", Var("v"), Const(10))),
                        Assign("n", BinOp("+", Var("n"), Const(1))),
                    ],
                ),
                Let("i", Var("n")),
                Assign("v", Var("value")),
                While(
                    Rel(">", Var("i"), Const(0)),
                    [
                        Assign("i", BinOp("-", Var("i"), Const(1))),
                        Store(
                            BinOp("+", Var("buf"), Var("i")),
                            BinOp("+", Const(48),
                                  BinOp("%", Var("v"), Const(10))),
                            byte=True,
                        ),
                        Assign("v", BinOp("/", Var("v"), Const(10))),
                    ],
                ),
                Store(BinOp("+", Var("buf"), Var("n")), Const(0), byte=True),
                Return(Var("n")),
            ],
        )
    )

    lib.add_func(
        Func(
            "read_line",
            ["fd", "buf", "maxlen"],
            [
                # Bounded line reader: stops at '\n' or maxlen-1 bytes.
                Let("i", Const(0)),
                Let("got", Const(0)),
                Let("c", Const(0)),
                While(
                    Rel("<", Var("i"),
                        BinOp("-", Var("maxlen"), Const(1))),
                    [
                        Assign(
                            "got",
                            SyscallExpr(
                                int(Sys.READ),
                                [Var("fd"),
                                 BinOp("+", Var("buf"), Var("i")),
                                 Const(1)],
                            ),
                        ),
                        If(Rel("<=", Var("got"), Const(0)), [Break()]),
                        Assign("c", Load(BinOp("+", Var("buf"), Var("i")),
                                         byte=True)),
                        Assign("i", BinOp("+", Var("i"), Const(1))),
                        If(Rel("==", Var("c"), Const(10)), [Break()]),
                    ],
                ),
                Store(BinOp("+", Var("buf"), Var("i")), Const(0), byte=True),
                Return(Var("i")),
            ],
        )
    )

    lib.add_func(
        Func(
            "checksum",
            ["buf", "n"],
            [
                Let("acc", Const(0)),
                Let("i", Const(0)),
                While(
                    Rel("<", Var("i"), Var("n")),
                    [
                        Assign(
                            "acc",
                            BinOp(
                                "^",
                                BinOp("*", Var("acc"), Const(31)),
                                Load(BinOp("+", Var("buf"), Var("i")),
                                     byte=True),
                            ),
                        ),
                        Assign("i", BinOp("+", Var("i"), Const(1))),
                    ],
                ),
                Return(Var("acc")),
            ],
        )
    )

    # -- bump allocator -----------------------------------------------------

    lib.add_zeros("__heap_next", 8)
    lib.add_func(
        Func(
            "malloc",
            ["n"],
            [
                Let("next", Load(Global("__heap_next"))),
                If(
                    Rel("==", Var("next"), Const(0)),
                    [
                        SyscallExpr(int(Sys.BRK),
                                    [Const(HEAP_BASE + _HEAP_POOL)]),
                        Assign("next", Const(HEAP_BASE)),
                    ],
                ),
                Let("result", Var("next")),
                Store(
                    Global("__heap_next"),
                    BinOp("+", Var("next"),
                          BinOp("&", BinOp("+", Var("n"), Const(15)),
                                Const(~7 & 0xFFFFFFFF))),
                ),
                Return(Var("result")),
            ],
        )
    )
    lib.add_func(Func("free", ["p"], [Return(Const(0))]))

    # A tail-call pair exercising the §4.1 tail-call handling: puts()
    # computes the length then *jumps* to write_str's body.
    lib.add_func(
        Func(
            "write_str",
            ["fd", "s"],
            [
                Let("n", Call("strlen", [Var("s")])),
                Return(SyscallExpr(int(Sys.WRITE),
                                   [Var("fd"), Var("s"), Var("n")])),
            ],
        )
    )
    lib.builder.add_function(
        "puts",
        [
            # Tail call: mov r2 <- r1 (string), r1 <- 1 (stdout), then a
            # direct jump to write_str.  write_str's ret returns to
            # puts' caller.
            A.movr(R2, R1),
            A.mov(R1, 1),
            A.jmp("write_str"),
        ],
    )

    return lib.build()
