"""Linux-utility workloads (§7.2.1, Figure 5b).

Run-once-and-exit programs: tar / dd / make / scp analogues, plus the
launcher used in the paper's experiment — a parent that forks, has the
child call ``ptrace(PTRACE_TRACEME)`` and ``execve`` the utility, so
the monitor can read the child's fresh CR3 at the exec stop and attach
CR3-filtered tracing before the utility runs.

The utilities take their inputs from fixed VFS paths (argv passing is
outside the kernel model); drivers seed the filesystem first.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Callable, Dict

from repro.binary.module import Module
from repro.lang import (
    AddrOf,
    Assign,
    BinOp,
    Break,
    Call,
    CallPtr,
    Const,
    Func,
    Global,
    If,
    Let,
    Load,
    LocalArray,
    Program,
    Rel,
    Return,
    Store,
    Var,
    While,
)
from repro.osmodel.syscalls import O_CREAT, O_WRONLY, PTRACE_TRACEME

_LIB_IMPORTS = [
    "exit", "read", "write", "open", "close", "strlen", "strncmp",
    "memcpy", "memset", "atoi", "utoa", "read_line", "checksum",
    "fork", "wait", "ptrace", "execve", "unlink", "write_str",
]


def _new_utility(name: str) -> Program:
    prog = Program(name)
    prog.add_needed("libsim.so")
    for symbol in _LIB_IMPORTS:
        prog.import_symbol(symbol)
    return prog


#: Input/output paths the utilities operate on.
TAR_INPUTS = ("/in/a.txt", "/in/b.txt", "/in/c.txt")
TAR_OUTPUT = "/out/archive.tar"
DD_INPUT = "/in/data.bin"
DD_OUTPUT = "/out/data.img"
MAKE_INPUT = "/in/Makefile"
MAKE_OUTPUT = "/out/build.log"
SCP_INPUT = "/in/payload.bin"
SCP_OUTPUT = "/out/payload.copy"


@lru_cache(maxsize=None)
def build_tar() -> Module:
    """Concatenate the input files with 16-byte size headers."""
    prog = _new_utility("tar")
    for index, path in enumerate(TAR_INPUTS):
        prog.add_string(f"in{index}", path)
    prog.add_string("outpath", TAR_OUTPUT)

    prog.add_func(
        Func(
            "append_file",
            ["out", "path"],
            [
                Let("fd", Call("open", [Var("path"), Const(0)])),
                If(Rel("<", Var("fd"), Const(0)), [Return(Const(-1))]),
                LocalArray("header", 16),
                LocalArray("chunk", 1024),
                Let("total", Const(0)),
                Let("n", Const(1)),
                While(
                    Rel(">", Var("n"), Const(0)),
                    [
                        Assign("n", Call("read", [Var("fd"),
                                                  AddrOf("chunk"),
                                                  Const(1024)])),
                        If(
                            Rel(">", Var("n"), Const(0)),
                            [
                                Call("write", [Var("out"), AddrOf("chunk"),
                                               Var("n")]),
                                Assign("total", BinOp("+", Var("total"),
                                                      Var("n"))),
                            ],
                        ),
                    ],
                ),
                Call("close", [Var("fd")]),
                Let("hn", Call("utoa", [Var("total"), AddrOf("header")])),
                Store(BinOp("+", AddrOf("header"), Var("hn")), Const(10),
                      byte=True),
                Call("write", [Var("out"), AddrOf("header"),
                               BinOp("+", Var("hn"), Const(1))]),
                Return(Var("total")),
            ],
        )
    )

    body = [
        Let("out", Call("open", [Global("outpath"),
                                 Const(O_CREAT | O_WRONLY)])),
        If(Rel("<", Var("out"), Const(0)), [Return(Const(1))]),
        Let("total", Const(0)),
    ]
    for index in range(len(TAR_INPUTS)):
        body.append(
            Assign(
                "total",
                BinOp("+", Var("total"),
                      Call("append_file", [Var("out"),
                                           Global(f"in{index}")])),
            )
        )
    body.extend([Call("close", [Var("out")]), Return(Const(0))])
    prog.add_func(Func("main", [], body))
    prog.set_entry("main")
    return prog.build()


@lru_cache(maxsize=None)
def build_dd() -> Module:
    """Block copy: small branch count, few syscalls per block (the
    near-zero-overhead point of Figure 5b)."""
    prog = _new_utility("dd")
    prog.add_string("inpath", DD_INPUT)
    prog.add_string("outpath", DD_OUTPUT)
    prog.add_func(
        Func(
            "main",
            [],
            [
                Let("src", Call("open", [Global("inpath"), Const(0)])),
                If(Rel("<", Var("src"), Const(0)), [Return(Const(1))]),
                Let("dst", Call("open", [Global("outpath"),
                                         Const(O_CREAT | O_WRONLY)])),
                LocalArray("block", 4096),
                Let("blocks", Const(0)),
                Let("n", Const(1)),
                While(
                    Rel(">", Var("n"), Const(0)),
                    [
                        Assign("n", Call("read", [Var("src"),
                                                  AddrOf("block"),
                                                  Const(4096)])),
                        If(
                            Rel(">", Var("n"), Const(0)),
                            [
                                Call("write", [Var("dst"), AddrOf("block"),
                                               Var("n")]),
                                Assign("blocks", BinOp("+", Var("blocks"),
                                                       Const(1))),
                            ],
                        ),
                    ],
                ),
                Call("close", [Var("src")]),
                Call("close", [Var("dst")]),
                Return(Const(0)),
            ],
        )
    )
    prog.set_entry("main")
    return prog.build()


@lru_cache(maxsize=None)
def build_make() -> Module:
    """Parse a rule file; dispatch each rule through a handler table."""
    prog = _new_utility("make")
    prog.add_string("inpath", MAKE_INPUT)
    prog.add_string("outpath", MAKE_OUTPUT)
    prog.add_string("t_compile", "compile")
    prog.add_string("t_link", "link")
    prog.add_string("msg_cc", "CC  ")
    prog.add_string("msg_ld", "LD  ")
    prog.add_string("msg_skip", "??  ")

    prog.add_func(
        Func(
            "emit",
            ["log", "tag", "line"],
            [
                Call("write", [Var("log"), Var("tag"),
                               Call("strlen", [Var("tag")])]),
                Call("write", [Var("log"), Var("line"),
                               Call("strlen", [Var("line")])]),
                Return(Const(0)),
            ],
        )
    )
    prog.add_func(
        Func(
            "rule_compile",
            ["log", "line"],
            [Return(Call("emit", [Var("log"), Global("msg_cc"),
                                  Var("line")]))],
        )
    )
    prog.add_func(
        Func(
            "rule_link",
            ["log", "line"],
            [Return(Call("emit", [Var("log"), Global("msg_ld"),
                                  Var("line")]))],
        )
    )
    prog.add_pointer_table("rules", ["rule_compile", "rule_link"])

    prog.add_func(
        Func(
            "main",
            [],
            [
                Let("src", Call("open", [Global("inpath"), Const(0)])),
                If(Rel("<", Var("src"), Const(0)), [Return(Const(1))]),
                Let("log", Call("open", [Global("outpath"),
                                         Const(O_CREAT | O_WRONLY)])),
                LocalArray("line", 128),
                Let("n", Const(0)),
                Let("idx", Const(0)),
                While(
                    Const(1),
                    [
                        Assign("n", Call("read_line",
                                         [Var("src"), AddrOf("line"),
                                          Const(128)])),
                        If(Rel("<=", Var("n"), Const(0)), [Break()]),
                        Assign("idx", Const(-1)),
                        If(
                            Rel("==", Call("strncmp",
                                           [AddrOf("line"),
                                            Global("t_compile"),
                                            Const(7)]), Const(0)),
                            [Assign("idx", Const(0))],
                        ),
                        If(
                            Rel("==", Call("strncmp",
                                           [AddrOf("line"),
                                            Global("t_link"),
                                            Const(4)]), Const(0)),
                            [Assign("idx", Const(1))],
                        ),
                        If(
                            Rel(">=", Var("idx"), Const(0)),
                            [
                                Let("fp",
                                    Load(BinOp("+", Global("rules"),
                                               BinOp("*", Var("idx"),
                                                     Const(8))))),
                                CallPtr(Var("fp"),
                                        [Var("log"), AddrOf("line")]),
                            ],
                            [Call("emit", [Var("log"), Global("msg_skip"),
                                           AddrOf("line")])],
                        ),
                    ],
                ),
                Call("close", [Var("src")]),
                Call("close", [Var("log")]),
                Return(Const(0)),
            ],
        )
    )
    prog.set_entry("main")
    return prog.build()


@lru_cache(maxsize=None)
def build_scp() -> Module:
    """Copy with checksum verification (cond-heavy inner loop)."""
    prog = _new_utility("scp")
    prog.add_string("inpath", SCP_INPUT)
    prog.add_string("outpath", SCP_OUTPUT)
    prog.add_func(
        Func(
            "main",
            [],
            [
                Let("src", Call("open", [Global("inpath"), Const(0)])),
                If(Rel("<", Var("src"), Const(0)), [Return(Const(1))]),
                Let("dst", Call("open", [Global("outpath"),
                                         Const(O_CREAT | O_WRONLY)])),
                LocalArray("block", 256),
                Let("acc", Const(0)),
                Let("n", Const(1)),
                While(
                    Rel(">", Var("n"), Const(0)),
                    [
                        Assign("n", Call("read", [Var("src"),
                                                  AddrOf("block"),
                                                  Const(256)])),
                        If(
                            Rel(">", Var("n"), Const(0)),
                            [
                                Assign(
                                    "acc",
                                    BinOp("^", Var("acc"),
                                          Call("checksum",
                                               [AddrOf("block"),
                                                Var("n")])),
                                ),
                                Call("write", [Var("dst"), AddrOf("block"),
                                               Var("n")]),
                            ],
                        ),
                    ],
                ),
                Call("close", [Var("src")]),
                Call("close", [Var("dst")]),
                Return(BinOp("&", Var("acc"), Const(0x7F))),
            ],
        )
    )
    prog.set_entry("main")
    return prog.build()


@lru_cache(maxsize=None)
def build_launcher(utility: str) -> Module:
    """The Figure 5b harness: fork; child PTRACE_TRACEME + execve."""
    prog = _new_utility(f"launch-{utility}")
    prog.add_string("target", utility)
    prog.add_func(
        Func(
            "main",
            [],
            [
                Let("pid", Call("fork", [])),
                If(
                    Rel("==", Var("pid"), Const(0)),
                    [
                        # Child: request tracing so the parent (and the
                        # monitor) observe the post-exec CR3, then exec.
                        Call("ptrace", [Const(PTRACE_TRACEME)]),
                        Call("execve", [Global("target")]),
                        Return(Const(127)),  # exec failed
                    ],
                ),
                Return(Call("wait", [])),
            ],
        )
    )
    prog.set_entry("main")
    return prog.build()


UTILITY_BUILDERS: Dict[str, Callable[[], Module]] = {
    "tar": build_tar,
    "dd": build_dd,
    "make": build_make,
    "scp": build_scp,
}


def seed_utility_inputs(fs, size: int = 16384) -> None:
    """Populate the VFS inputs the utilities expect."""
    payload = bytes((i * 37 + 11) & 0xFF for i in range(size))
    for path in TAR_INPUTS:
        fs.create(path, payload[: size // 4])
    fs.create(DD_INPUT, payload)
    fs.create(
        MAKE_INPUT,
        b"compile main.c\ncompile util.c\nlink app\nnote done\n",
    )
    fs.create(SCP_INPUT, payload[: size // 2])
