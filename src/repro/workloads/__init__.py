"""Workload programs: the applications the paper evaluates.

Everything is compiled from the mini-language against ``libsim.so`` (the
libc analogue) and an optional VDSO, reproducing the branch/syscall
personalities of the originals:

- servers: nginx / vsftpd / openssh / exim analogues (§7.2.1),
- Linux utilities: tar / dd / make / scp analogues run through the
  fork + ptrace(TRACEME) + execve harness,
- a 12-program SPECCPU-2006-like suite, including the h264ref outlier
  (an indirect-call-heavy core loop).
"""

from repro.workloads.libsim import build_libsim
from repro.workloads.vdso import build_vdso
from repro.workloads.servers import (
    SERVER_BUILDERS,
    build_exim,
    build_nginx,
    build_openssh,
    build_vsftpd,
    exim_session,
    nginx_request,
    openssh_session,
    vsftpd_session,
)
from repro.workloads.utilities import (
    UTILITY_BUILDERS,
    build_dd,
    build_launcher,
    build_make,
    build_scp,
    build_tar,
)
from repro.workloads.spec import SPEC_BUILDERS, build_spec_program
from repro.workloads.programgen import ProgramGenerator, generate_program
from repro.workloads.utilities import seed_utility_inputs

__all__ = [
    "ProgramGenerator",
    "SERVER_BUILDERS",
    "SPEC_BUILDERS",
    "UTILITY_BUILDERS",
    "build_dd",
    "build_exim",
    "build_launcher",
    "build_libsim",
    "build_make",
    "build_nginx",
    "build_openssh",
    "build_scp",
    "build_spec_program",
    "build_tar",
    "build_vdso",
    "build_vsftpd",
    "exim_session",
    "generate_program",
    "seed_utility_inputs",
    "nginx_request",
    "openssh_session",
    "vsftpd_session",
]
