"""Server workloads: nginx / vsftpd / openssh / exim analogues (§7.2.1).

Each is a connection-loop server compiled against ``libsim.so``:

- **nginx**: HTTP-ish — request-line parsing, a method dispatch through
  a function-pointer table (forward-edge surface), static file serving,
  access logging (write endpoints), and the paper's *artificially
  implanted vulnerability*: the POST handler trusts Content-Length and
  reads the body into a 64-byte stack buffer
  (:data:`NGINX_VULN_RET_OFFSET` bytes below the return address).
- **vsftpd**: FTP-ish command loop (USER/PASS/RETR/STOR/QUIT) with
  strcmp chains and file transfers.
- **openssh**: login check followed by a command dispatch through a
  handler table.
- **exim**: SMTP-ish state machine (HELO/MAIL/RCPT/DATA/QUIT) as a
  ``switch`` over the session state, spooling mail to a file.

Builders return the executable Module; ``*_session`` helpers produce
client payload bytes for drivers and fuzzers.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Dict, Callable

from repro.binary.module import Module
from repro.lang import (
    AddrOf,
    Assign,
    BinOp,
    Break,
    Call,
    CallPtr,
    Const,
    Func,
    Global,
    If,
    Let,
    Load,
    LocalArray,
    Program,
    Rel,
    Return,
    Store,
    Var,
    While,
)
from repro.osmodel.syscalls import O_CREAT, O_WRONLY

#: Distance from the POST body buffer to the saved return address in the
#: nginx analogue's handler frame: 64-byte buffer + two 8-byte parameter
#: slots + the saved frame pointer.  Verified by the attack tests.
NGINX_VULN_RET_OFFSET = 88
NGINX_VULN_BUF_SIZE = 64

_LIB_IMPORTS = [
    "exit", "read", "write", "open", "close", "socket", "bind", "listen",
    "accept", "recv", "send", "strlen", "strcmp", "strncmp", "strcpy",
    "memcpy", "memset", "atoi", "utoa", "read_line", "checksum", "malloc",
    "write_str", "puts", "gettimeofday", "unlink",
]


def _new_server(name: str) -> Program:
    prog = Program(name)
    prog.add_needed("libsim.so")
    for symbol in _LIB_IMPORTS:
        prog.import_symbol(symbol)
    return prog


# ----------------------------------------------------------------------
# nginx
# ----------------------------------------------------------------------


@lru_cache(maxsize=None)
def build_nginx() -> Module:
    prog = _new_server("nginx")
    prog.add_string("s_get", "GET ")
    prog.add_string("s_post", "POST")
    prog.add_string("s_head", "HEAD")
    prog.add_string("resp_ok", "HTTP/1.1 200 OK\n\n")
    prog.add_string("resp_404", "HTTP/1.1 404 Not Found\n\n")
    prog.add_string("resp_400", "HTTP/1.1 400 Bad Request\n\n")
    prog.add_string("resp_created", "HTTP/1.1 201 Created\n\n")
    prog.add_string("log_path", "/var/log/nginx.access")

    # parse_method(line) -> 0 GET / 1 POST / 2 HEAD / -1.
    prog.add_func(
        Func(
            "parse_method",
            ["line"],
            [
                If(
                    Rel("==", Call("strncmp",
                                   [Var("line"), Global("s_get"), Const(4)]),
                        Const(0)),
                    [Return(Const(0))],
                ),
                If(
                    Rel("==", Call("strncmp",
                                   [Var("line"), Global("s_post"), Const(4)]),
                        Const(0)),
                    [Return(Const(1))],
                ),
                If(
                    Rel("==", Call("strncmp",
                                   [Var("line"), Global("s_head"), Const(4)]),
                        Const(0)),
                    [Return(Const(2))],
                ),
                Return(Const(-1)),
            ],
        )
    )

    # extract_path(line, out, maxlen): token after "METHOD " — bounded.
    prog.add_func(
        Func(
            "extract_path",
            ["line", "out", "maxlen"],
            [
                Let("i", Const(4)),
                # skip to first '/' within the method field
                While(
                    Rel("==", Load(BinOp("+", Var("line"), Var("i")),
                                   byte=True), Const(32)),
                    [Assign("i", BinOp("+", Var("i"), Const(1)))],
                ),
                Let("j", Const(0)),
                Let("c", Const(0)),
                While(
                    Rel("<", Var("j"), BinOp("-", Var("maxlen"), Const(1))),
                    [
                        Assign("c", Load(BinOp("+", Var("line"), Var("i")),
                                         byte=True)),
                        If(Rel("==", Var("c"), Const(32)), [Break()]),
                        If(Rel("==", Var("c"), Const(10)), [Break()]),
                        If(Rel("==", Var("c"), Const(0)), [Break()]),
                        Store(BinOp("+", Var("out"), Var("j")), Var("c"),
                              byte=True),
                        Assign("i", BinOp("+", Var("i"), Const(1))),
                        Assign("j", BinOp("+", Var("j"), Const(1))),
                    ],
                ),
                Store(BinOp("+", Var("out"), Var("j")), Const(0), byte=True),
                Return(Var("j")),
            ],
        )
    )

    prog.add_func(
        Func(
            "log_access",
            ["line"],
            [
                Let("fd", Call("open", [Global("log_path"),
                                        Const(O_CREAT | O_WRONLY)])),
                If(Rel("<", Var("fd"), Const(0)), [Return(Const(-1))]),
                Call("write", [Var("fd"), Var("line"),
                               Call("strlen", [Var("line")])]),
                Call("close", [Var("fd")]),
                Return(Const(0)),
            ],
        )
    )

    prog.add_func(
        Func(
            "handle_get",
            ["cfd", "line"],
            [
                LocalArray("path", 64),
                Call("extract_path", [Var("line"), AddrOf("path"),
                                      Const(64)]),
                Let("fd", Call("open", [AddrOf("path"), Const(0)])),
                If(
                    Rel("<", Var("fd"), Const(0)),
                    [
                        Call("send", [Var("cfd"), Global("resp_404"),
                                      Call("strlen",
                                           [Global("resp_404")])]),
                        Return(Const(404)),
                    ],
                ),
                Call("send", [Var("cfd"), Global("resp_ok"),
                              Call("strlen", [Global("resp_ok")])]),
                LocalArray("chunk", 512),
                Let("n", Const(1)),
                While(
                    Rel(">", Var("n"), Const(0)),
                    [
                        Assign("n", Call("read", [Var("fd"),
                                                  AddrOf("chunk"),
                                                  Const(512)])),
                        If(
                            Rel(">", Var("n"), Const(0)),
                            [Call("send", [Var("cfd"), AddrOf("chunk"),
                                           Var("n")])],
                        ),
                    ],
                ),
                Call("close", [Var("fd")]),
                Call("log_access", [Var("line")]),
                Return(Const(200)),
            ],
        )
    )

    # The implanted vulnerability (§7.1.2): Content-Length is trusted
    # and the body lands in a 64-byte stack buffer.
    prog.add_func(
        Func(
            "handle_post",
            ["cfd", "line"],
            [
                LocalArray("body", NGINX_VULN_BUF_SIZE),
                LocalArray("header", 64),
                Call("read_line", [Var("cfd"), AddrOf("header"), Const(64)]),
                Let("len", Call("atoi",
                                [BinOp("+", AddrOf("header"), Const(16))])),
                # BUG: no bound check against sizeof(body).
                Call("read", [Var("cfd"), AddrOf("body"), Var("len")]),
                Call("send", [Var("cfd"), Global("resp_created"),
                              Call("strlen", [Global("resp_created")])]),
                Call("log_access", [Var("line")]),
                Return(Const(201)),
            ],
        )
    )

    prog.add_func(
        Func(
            "handle_head",
            ["cfd", "line"],
            [
                Call("send", [Var("cfd"), Global("resp_ok"),
                              Call("strlen", [Global("resp_ok")])]),
                Return(Const(200)),
            ],
        )
    )

    prog.add_pointer_table(
        "method_handlers", ["handle_get", "handle_post", "handle_head"]
    )

    prog.add_func(
        Func(
            "handle_conn",
            ["cfd"],
            [
                LocalArray("reqline", 256),
                Let("n", Call("read_line", [Var("cfd"), AddrOf("reqline"),
                                            Const(256)])),
                If(Rel("<=", Var("n"), Const(0)), [Return(Const(-1))]),
                Let("method", Call("parse_method", [AddrOf("reqline")])),
                If(
                    Rel("<", Var("method"), Const(0)),
                    [
                        Call("send", [Var("cfd"), Global("resp_400"),
                                      Call("strlen",
                                           [Global("resp_400")])]),
                        Return(Const(400)),
                    ],
                ),
                # Forward-edge dispatch through the handler table.
                Let("table", Global("method_handlers")),
                Let("handler",
                    Load(BinOp("+", Var("table"),
                               BinOp("*", Var("method"), Const(8))))),
                Return(CallPtr(Var("handler"),
                               [Var("cfd"), AddrOf("reqline")])),
            ],
        )
    )

    prog.add_func(
        Func(
            "main",
            [],
            [
                Let("lfd", Call("socket", [])),
                Call("bind", [Var("lfd")]),
                Call("listen", [Var("lfd")]),
                Let("served", Const(0)),
                Let("cfd", Const(0)),
                While(
                    Const(1),
                    [
                        Assign("cfd", Call("accept", [Var("lfd")])),
                        If(Rel("<", Var("cfd"), Const(0)), [Break()]),
                        Call("handle_conn", [Var("cfd")]),
                        Call("close", [Var("cfd")]),
                        Assign("served", BinOp("+", Var("served"),
                                               Const(1))),
                    ],
                ),
                Return(Var("served")),
            ],
        )
    )
    prog.set_entry("main")
    return prog.build()


def nginx_request(path: str = "/index.html", method: str = "GET",
                  body: bytes = b"") -> bytes:
    """One HTTP-ish request payload for the nginx analogue."""
    if method == "POST":
        header = f"POST {path} HTTP/1.0\n".encode()
        header += f"Content-Length: {len(body)}\n".encode()
        return header + body
    return f"{method} {path} HTTP/1.0\n".encode()


# ----------------------------------------------------------------------
# vsftpd
# ----------------------------------------------------------------------


@lru_cache(maxsize=None)
def build_vsftpd() -> Module:
    prog = _new_server("vsftpd")
    prog.add_string("c_user", "USER")
    prog.add_string("c_pass", "PASS")
    prog.add_string("c_retr", "RETR")
    prog.add_string("c_stor", "STOR")
    prog.add_string("c_quit", "QUIT")
    prog.add_string("r_220", "220 ftp ready\n")
    prog.add_string("r_230", "230 logged in\n")
    prog.add_string("r_331", "331 need password\n")
    prog.add_string("r_150", "150 opening transfer\n")
    prog.add_string("r_226", "226 transfer complete\n")
    prog.add_string("r_550", "550 not found\n")
    prog.add_string("r_500", "500 bad command\n")
    prog.add_string("r_221", "221 bye\n")

    prog.add_func(
        Func(
            "reply",
            ["cfd", "msg"],
            [Return(Call("send", [Var("cfd"), Var("msg"),
                                  Call("strlen", [Var("msg")])]))],
        )
    )

    prog.add_func(
        Func(
            "do_retr",
            ["cfd", "arg"],
            [
                Let("fd", Call("open", [Var("arg"), Const(0)])),
                If(Rel("<", Var("fd"), Const(0)),
                   [Call("reply", [Var("cfd"), Global("r_550")]),
                    Return(Const(-1))]),
                Call("reply", [Var("cfd"), Global("r_150")]),
                LocalArray("chunk", 512),
                Let("n", Const(1)),
                While(
                    Rel(">", Var("n"), Const(0)),
                    [
                        Assign("n", Call("read", [Var("fd"),
                                                  AddrOf("chunk"),
                                                  Const(512)])),
                        If(Rel(">", Var("n"), Const(0)),
                           [Call("send", [Var("cfd"), AddrOf("chunk"),
                                          Var("n")])]),
                    ],
                ),
                Call("close", [Var("fd")]),
                Call("reply", [Var("cfd"), Global("r_226")]),
                Return(Const(0)),
            ],
        )
    )

    prog.add_func(
        Func(
            "do_stor",
            ["cfd", "arg"],
            [
                Let("fd", Call("open", [Var("arg"),
                                        Const(O_CREAT | O_WRONLY)])),
                If(Rel("<", Var("fd"), Const(0)),
                   [Call("reply", [Var("cfd"), Global("r_550")]),
                    Return(Const(-1))]),
                Call("reply", [Var("cfd"), Global("r_150")]),
                LocalArray("chunk", 512),
                Let("n", Const(1)),
                While(
                    Rel(">", Var("n"), Const(0)),
                    [
                        Assign("n", Call("recv", [Var("cfd"),
                                                  AddrOf("chunk"),
                                                  Const(512)])),
                        If(Rel(">", Var("n"), Const(0)),
                           [Call("write", [Var("fd"), AddrOf("chunk"),
                                           Var("n")])]),
                    ],
                ),
                Call("close", [Var("fd")]),
                Call("reply", [Var("cfd"), Global("r_226")]),
                Return(Const(0)),
            ],
        )
    )

    prog.add_func(
        Func(
            "session",
            ["cfd"],
            [
                LocalArray("line", 128),
                Call("reply", [Var("cfd"), Global("r_220")]),
                Let("authed", Const(0)),
                Let("n", Const(0)),
                While(
                    Const(1),
                    [
                        Assign("n", Call("read_line",
                                         [Var("cfd"), AddrOf("line"),
                                          Const(128)])),
                        If(Rel("<=", Var("n"), Const(0)), [Break()]),
                        # Strip the trailing newline so command
                        # arguments are usable as paths.
                        If(
                            Rel("==",
                                Load(BinOp("+", AddrOf("line"),
                                           BinOp("-", Var("n"), Const(1))),
                                     byte=True),
                                Const(10)),
                            [Store(BinOp("+", AddrOf("line"),
                                         BinOp("-", Var("n"), Const(1))),
                                   Const(0), byte=True)],
                        ),
                        If(
                            Rel("==", Call("strncmp",
                                           [AddrOf("line"),
                                            Global("c_quit"), Const(4)]),
                                Const(0)),
                            [
                                Call("reply", [Var("cfd"), Global("r_221")]),
                                Break(),
                            ],
                        ),
                        If(
                            Rel("==", Call("strncmp",
                                           [AddrOf("line"),
                                            Global("c_user"), Const(4)]),
                                Const(0)),
                            [Call("reply", [Var("cfd"), Global("r_331")])],
                            [
                                If(
                                    Rel("==",
                                        Call("strncmp",
                                             [AddrOf("line"),
                                              Global("c_pass"), Const(4)]),
                                        Const(0)),
                                    [
                                        Assign("authed", Const(1)),
                                        Call("reply", [Var("cfd"),
                                                       Global("r_230")]),
                                    ],
                                    [
                                        If(
                                            Rel("==", Var("authed"),
                                                Const(0)),
                                            [Call("reply",
                                                  [Var("cfd"),
                                                   Global("r_500")])],
                                            [
                                                If(
                                                    Rel("==",
                                                        Call("strncmp",
                                                             [AddrOf("line"),
                                                              Global("c_retr"),
                                                              Const(4)]),
                                                        Const(0)),
                                                    [Call("do_retr",
                                                          [Var("cfd"),
                                                           BinOp("+",
                                                                 AddrOf("line"),
                                                                 Const(5))])],
                                                    [
                                                        If(
                                                            Rel("==",
                                                                Call("strncmp",
                                                                     [AddrOf("line"),
                                                                      Global("c_stor"),
                                                                      Const(4)]),
                                                                Const(0)),
                                                            [Call("do_stor",
                                                                  [Var("cfd"),
                                                                   BinOp("+",
                                                                         AddrOf("line"),
                                                                         Const(5))])],
                                                            [Call("reply",
                                                                  [Var("cfd"),
                                                                   Global("r_500")])],
                                                        )
                                                    ],
                                                )
                                            ],
                                        )
                                    ],
                                )
                            ],
                        ),
                    ],
                ),
                Return(Const(0)),
            ],
        )
    )

    prog.add_func(
        Func(
            "main",
            [],
            [
                Let("lfd", Call("socket", [])),
                Call("bind", [Var("lfd")]),
                Call("listen", [Var("lfd")]),
                Let("cfd", Const(0)),
                Let("served", Const(0)),
                While(
                    Const(1),
                    [
                        Assign("cfd", Call("accept", [Var("lfd")])),
                        If(Rel("<", Var("cfd"), Const(0)), [Break()]),
                        Call("session", [Var("cfd")]),
                        Call("close", [Var("cfd")]),
                        Assign("served", BinOp("+", Var("served"),
                                               Const(1))),
                    ],
                ),
                Return(Var("served")),
            ],
        )
    )
    prog.set_entry("main")
    return prog.build()


def vsftpd_session(files=("/srv/hello.txt",), store=False) -> bytes:
    """A USER/PASS/RETR…/QUIT session payload."""
    lines = ["USER demo", "PASS secret"]
    for path in files:
        lines.append(("STOR " if store else "RETR ") + path)
    lines.append("QUIT")
    return ("\n".join(lines) + "\n").encode()


# ----------------------------------------------------------------------
# openssh
# ----------------------------------------------------------------------


@lru_cache(maxsize=None)
def build_openssh() -> Module:
    prog = _new_server("openssh")
    prog.add_string("banner", "SSH-2.0-simssh\n")
    prog.add_string("good_user", "admin")
    prog.add_string("good_pass", "hunter2")
    prog.add_string("r_ok", "auth ok\n")
    prog.add_string("r_fail", "auth failed\n")
    prog.add_string("r_bye", "bye\n")
    prog.add_string("c_whoami", "whoami")
    prog.add_string("c_uptime", "uptime")
    prog.add_string("c_exit", "exit")
    prog.add_string("out_whoami", "admin\n")

    prog.add_func(
        Func(
            "cmd_whoami",
            ["cfd"],
            [Return(Call("send", [Var("cfd"), Global("out_whoami"),
                                  Call("strlen", [Global("out_whoami")])]))],
        )
    )
    prog.add_func(
        Func(
            "cmd_uptime",
            ["cfd"],
            [
                LocalArray("buf", 32),
                # Fixed-width output: four digits regardless of uptime,
                # like a column-formatted `uptime`.
                Let("t", BinOp("+",
                               BinOp("%", Call("gettimeofday", []),
                                     Const(9000)),
                               Const(1000))),
                Let("n", Call("utoa", [Var("t"), AddrOf("buf")])),
                Store(BinOp("+", AddrOf("buf"), Var("n")), Const(10),
                      byte=True),
                Return(Call("send", [Var("cfd"), AddrOf("buf"),
                                     BinOp("+", Var("n"), Const(1))])),
            ],
        )
    )

    prog.add_pointer_table("commands", ["cmd_whoami", "cmd_uptime"])

    prog.add_func(
        Func(
            "shell",
            ["cfd"],
            [
                LocalArray("line", 128),
                Let("n", Const(0)),
                While(
                    Const(1),
                    [
                        Assign("n", Call("read_line",
                                         [Var("cfd"), AddrOf("line"),
                                          Const(128)])),
                        If(Rel("<=", Var("n"), Const(0)), [Break()]),
                        If(
                            Rel("==", Call("strncmp",
                                           [AddrOf("line"),
                                            Global("c_exit"), Const(4)]),
                                Const(0)),
                            [
                                Call("send", [Var("cfd"), Global("r_bye"),
                                              Call("strlen",
                                                   [Global("r_bye")])]),
                                Break(),
                            ],
                        ),
                        Let("idx", Const(-1)),
                        If(
                            Rel("==", Call("strncmp",
                                           [AddrOf("line"),
                                            Global("c_whoami"), Const(6)]),
                                Const(0)),
                            [Assign("idx", Const(0))],
                        ),
                        If(
                            Rel("==", Call("strncmp",
                                           [AddrOf("line"),
                                            Global("c_uptime"), Const(6)]),
                                Const(0)),
                            [Assign("idx", Const(1))],
                        ),
                        If(
                            Rel(">=", Var("idx"), Const(0)),
                            [
                                Let("fp",
                                    Load(BinOp("+", Global("commands"),
                                               BinOp("*", Var("idx"),
                                                     Const(8))))),
                                CallPtr(Var("fp"), [Var("cfd")]),
                            ],
                        ),
                    ],
                ),
                Return(Const(0)),
            ],
        )
    )

    prog.add_func(
        Func(
            "session",
            ["cfd"],
            [
                LocalArray("user", 64),
                LocalArray("passwd", 64),
                Call("send", [Var("cfd"), Global("banner"),
                              Call("strlen", [Global("banner")])]),
                Call("read_line", [Var("cfd"), AddrOf("user"), Const(64)]),
                Call("read_line", [Var("cfd"), AddrOf("passwd"), Const(64)]),
                If(
                    Rel("!=", Call("strncmp", [AddrOf("user"),
                                               Global("good_user"),
                                               Const(5)]),
                        Const(0)),
                    [
                        Call("send", [Var("cfd"), Global("r_fail"),
                                      Call("strlen", [Global("r_fail")])]),
                        Return(Const(-1)),
                    ],
                ),
                If(
                    Rel("!=", Call("strncmp", [AddrOf("passwd"),
                                               Global("good_pass"),
                                               Const(7)]),
                        Const(0)),
                    [
                        Call("send", [Var("cfd"), Global("r_fail"),
                                      Call("strlen", [Global("r_fail")])]),
                        Return(Const(-1)),
                    ],
                ),
                Call("send", [Var("cfd"), Global("r_ok"),
                              Call("strlen", [Global("r_ok")])]),
                Return(Call("shell", [Var("cfd")])),
            ],
        )
    )

    prog.add_func(
        Func(
            "main",
            [],
            [
                Let("lfd", Call("socket", [])),
                Call("bind", [Var("lfd")]),
                Call("listen", [Var("lfd")]),
                Let("cfd", Const(0)),
                Let("served", Const(0)),
                While(
                    Const(1),
                    [
                        Assign("cfd", Call("accept", [Var("lfd")])),
                        If(Rel("<", Var("cfd"), Const(0)), [Break()]),
                        Call("session", [Var("cfd")]),
                        Call("close", [Var("cfd")]),
                        Assign("served", BinOp("+", Var("served"),
                                               Const(1))),
                    ],
                ),
                Return(Var("served")),
            ],
        )
    )
    prog.set_entry("main")
    return prog.build()


def openssh_session(commands=("whoami", "uptime")) -> bytes:
    lines = ["admin", "hunter2"]
    lines.extend(commands)
    lines.append("exit")
    return ("\n".join(lines) + "\n").encode()


# ----------------------------------------------------------------------
# exim
# ----------------------------------------------------------------------


@lru_cache(maxsize=None)
def build_exim() -> Module:
    prog = _new_server("exim")
    prog.add_string("r_greet", "220 exim ready\n")
    prog.add_string("r_250", "250 ok\n")
    prog.add_string("r_354", "354 go ahead\n")
    prog.add_string("r_quit", "221 closing\n")
    prog.add_string("r_err", "503 bad sequence\n")
    prog.add_string("c_helo", "HELO")
    prog.add_string("c_mail", "MAIL")
    prog.add_string("c_rcpt", "RCPT")
    prog.add_string("c_data", "DATA")
    prog.add_string("c_quit", "QUIT")
    prog.add_string("c_dot", ".")
    prog.add_string("spool", "/var/spool/mail.out")

    # classify(line) -> 0 HELO / 1 MAIL / 2 RCPT / 3 DATA / 4 QUIT / -1.
    prog.add_func(
        Func(
            "classify",
            ["line"],
            [
                If(Rel("==", Call("strncmp", [Var("line"), Global("c_helo"),
                                              Const(4)]), Const(0)),
                   [Return(Const(0))]),
                If(Rel("==", Call("strncmp", [Var("line"), Global("c_mail"),
                                              Const(4)]), Const(0)),
                   [Return(Const(1))]),
                If(Rel("==", Call("strncmp", [Var("line"), Global("c_rcpt"),
                                              Const(4)]), Const(0)),
                   [Return(Const(2))]),
                If(Rel("==", Call("strncmp", [Var("line"), Global("c_data"),
                                              Const(4)]), Const(0)),
                   [Return(Const(3))]),
                If(Rel("==", Call("strncmp", [Var("line"), Global("c_quit"),
                                              Const(4)]), Const(0)),
                   [Return(Const(4))]),
                Return(Const(-1)),
            ],
        )
    )

    prog.add_func(
        Func(
            "spool_body",
            ["cfd"],
            [
                Let("fd", Call("open", [Global("spool"),
                                        Const(O_CREAT | O_WRONLY)])),
                LocalArray("line", 128),
                Let("n", Const(0)),
                While(
                    Const(1),
                    [
                        Assign("n", Call("read_line",
                                         [Var("cfd"), AddrOf("line"),
                                          Const(128)])),
                        If(Rel("<=", Var("n"), Const(0)), [Break()]),
                        If(
                            Rel("==", Call("strncmp",
                                           [AddrOf("line"), Global("c_dot"),
                                            Const(1)]), Const(0)),
                            [Break()],
                        ),
                        Call("write", [Var("fd"), AddrOf("line"),
                                       Var("n")]),
                    ],
                ),
                Call("close", [Var("fd")]),
                Return(Const(0)),
            ],
        )
    )

    from repro.lang import Switch

    prog.add_func(
        Func(
            "session",
            ["cfd"],
            [
                LocalArray("line", 128),
                Call("send", [Var("cfd"), Global("r_greet"),
                              Call("strlen", [Global("r_greet")])]),
                Let("state", Const(0)),  # 0 start,1 helo,2 mail,3 rcpt
                Let("n", Const(0)),
                Let("cmd", Const(0)),
                While(
                    Const(1),
                    [
                        Assign("n", Call("read_line",
                                         [Var("cfd"), AddrOf("line"),
                                          Const(128)])),
                        If(Rel("<=", Var("n"), Const(0)), [Break()]),
                        Assign("cmd", Call("classify", [AddrOf("line")])),
                        If(
                            Rel("==", Var("cmd"), Const(4)),
                            [
                                Call("send", [Var("cfd"), Global("r_quit"),
                                              Call("strlen",
                                                   [Global("r_quit")])]),
                                Break(),
                            ],
                        ),
                        Switch(
                            Var("cmd"),
                            {
                                0: [
                                    Assign("state", Const(1)),
                                    Call("send",
                                         [Var("cfd"), Global("r_250"),
                                          Call("strlen",
                                               [Global("r_250")])]),
                                ],
                                1: [
                                    If(
                                        Rel("<", Var("state"), Const(1)),
                                        [Call("send",
                                              [Var("cfd"), Global("r_err"),
                                               Call("strlen",
                                                    [Global("r_err")])])],
                                        [
                                            Assign("state", Const(2)),
                                            Call("send",
                                                 [Var("cfd"),
                                                  Global("r_250"),
                                                  Call("strlen",
                                                       [Global("r_250")])]),
                                        ],
                                    )
                                ],
                                2: [
                                    If(
                                        Rel("<", Var("state"), Const(2)),
                                        [Call("send",
                                              [Var("cfd"), Global("r_err"),
                                               Call("strlen",
                                                    [Global("r_err")])])],
                                        [
                                            Assign("state", Const(3)),
                                            Call("send",
                                                 [Var("cfd"),
                                                  Global("r_250"),
                                                  Call("strlen",
                                                       [Global("r_250")])]),
                                        ],
                                    )
                                ],
                                3: [
                                    If(
                                        Rel("<", Var("state"), Const(3)),
                                        [Call("send",
                                              [Var("cfd"), Global("r_err"),
                                               Call("strlen",
                                                    [Global("r_err")])])],
                                        [
                                            Call("send",
                                                 [Var("cfd"),
                                                  Global("r_354"),
                                                  Call("strlen",
                                                       [Global("r_354")])]),
                                            Call("spool_body",
                                                 [Var("cfd")]),
                                            Assign("state", Const(1)),
                                            Call("send",
                                                 [Var("cfd"),
                                                  Global("r_250"),
                                                  Call("strlen",
                                                       [Global("r_250")])]),
                                        ],
                                    )
                                ],
                            },
                            default=[
                                Call("send", [Var("cfd"), Global("r_err"),
                                              Call("strlen",
                                                   [Global("r_err")])])
                            ],
                        ),
                    ],
                ),
                Return(Const(0)),
            ],
        )
    )

    prog.add_func(
        Func(
            "main",
            [],
            [
                Let("lfd", Call("socket", [])),
                Call("bind", [Var("lfd")]),
                Call("listen", [Var("lfd")]),
                Let("cfd", Const(0)),
                Let("served", Const(0)),
                While(
                    Const(1),
                    [
                        Assign("cfd", Call("accept", [Var("lfd")])),
                        If(Rel("<", Var("cfd"), Const(0)), [Break()]),
                        Call("session", [Var("cfd")]),
                        Call("close", [Var("cfd")]),
                        Assign("served", BinOp("+", Var("served"),
                                               Const(1))),
                    ],
                ),
                Return(Var("served")),
            ],
        )
    )
    prog.set_entry("main")
    return prog.build()


def exim_session(rcpts=1, body_lines=("hello", "world")) -> bytes:
    lines = ["HELO client", "MAIL FROM:<a@b>"]
    for index in range(rcpts):
        lines.append(f"RCPT TO:<user{index}@dest>")
    lines.append("DATA")
    lines.extend(body_lines)
    lines.append(".")
    lines.append("QUIT")
    return ("\n".join(lines) + "\n").encode()


SERVER_BUILDERS: Dict[str, Callable[[], Module]] = {
    "nginx": build_nginx,
    "vsftpd": build_vsftpd,
    "openssh": build_openssh,
    "exim": build_exim,
}
