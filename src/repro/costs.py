"""Calibrated cycle-cost model shared by the whole simulation.

The paper reports *relative* overheads measured in wall-clock time on a
Skylake machine.  The reproduction instead measures deterministic
simulated cycles: the CPU charges cycles per retired instruction and
every monitoring component (tracing hardware, decoders, checkers, kernel
entry/exit) charges cycles through the same account.  Overhead is then
``monitored_cycles / baseline_cycles - 1``.

The constants below are calibrated so that the *shape* of the paper's
results holds (orderings, ratios and crossovers — e.g. BTS tracing is
~50x, IPT tracing a few percent, full decoding is orders of magnitude
slower than tracing, slow-path checking is ~60x the fast path).  They are
plain module constants so that ablation experiments can scale them; see
EXPERIMENTS.md for the calibration notes.
"""

from __future__ import annotations

from repro.isa.instructions import Op

# ----------------------------------------------------------------------
# CPU: cycles charged per retired instruction, by opcode class.
# ----------------------------------------------------------------------

_DEFAULT_INSN_CYCLES = 1

_SPECIAL_INSN_CYCLES = {
    Op.LOAD: 2,
    Op.STORE: 2,
    Op.LOADB: 2,
    Op.STOREB: 2,
    Op.PUSH: 2,
    Op.POP: 2,
    Op.MUL: 3,
    Op.MULI: 3,
    Op.DIV: 12,
    Op.MOD: 12,
    Op.CALL: 2,
    Op.CALLR: 2,
    Op.RET: 2,
}

INSN_CYCLES = {
    op: _SPECIAL_INSN_CYCLES.get(op, _DEFAULT_INSN_CYCLES) for op in Op
}

# Kernel entry/exit (trap, switch, sysret) charged per syscall, on top of
# whatever the syscall handler itself charges.
SYSCALL_BASE_CYCLES = 150
# Kernel data-copy cost (copy_to_user / copy_from_user and device I/O)
# charged per byte moved by read/write/send/recv.
KERNEL_IO_CYCLES_PER_BYTE = 1.5

# ----------------------------------------------------------------------
# Tracing hardware.
# ----------------------------------------------------------------------

# IPT: the packetizer shares the store path with the memory subsystem;
# cost is proportional to the (compressed) bytes emitted.
IPT_TRACE_CYCLES_PER_BYTE = 0.6

# BTS: each record is a 24-byte store *plus* a microcode assist that
# stalls the pipeline — the reason BTS tracing is ~50x on branchy code.
BTS_RECORD_BYTES = 24
BTS_RECORD_CYCLES = 1000

# LBR: a register-stack rotation, effectively free.
LBR_BRANCH_CYCLES = 0.02

# ----------------------------------------------------------------------
# Decoders.
# ----------------------------------------------------------------------

# Fast (packet-layer) decode: a linear scan of the packet bytes.
FAST_DECODE_CYCLES_PER_BYTE = 0.5

# Full (instruction-flow-layer) decode: every instruction along the
# reconstructed path must be fetched from the binary, decoded and
# interpreted against the packet stream — Intel's reference library
# behaviour, and the reason decoding is orders of magnitude slower
# than tracing.
FULL_DECODE_CYCLES_PER_INSN = 300.0

# Hardware-assisted pattern-matching decoder (§6 suggestion 1): a simple
# two-byte-word pattern engine that classifies and routes packets.
HW_DECODE_CYCLES_PER_BYTE = 0.02

# ----------------------------------------------------------------------
# Flow checking.
# ----------------------------------------------------------------------

# One probe of the sorted target array during fast-path binary search.
SEARCH_PROBE_CYCLES = 0.5
# Hash-probe of the high-credit fast-matching cache (§5.3).
CREDIT_CACHE_PROBE_CYCLES = 0.5
# Content-addressed segment decode cache: hashing streams a segment
# through a short-digest hash (hardware-rate, like the pattern-matching
# decoder above), then one probe of the content-addressed store.  A hit
# pays hash + probe instead of the per-byte fast decode; a miss pays
# hash + decode.
SEGMENT_CACHE_HASH_CYCLES_PER_BYTE = 0.02
SEGMENT_CACHE_PROBE_CYCLES = 4.0
# Memoized edge-verdict probe: one hash probe of the (src, dst, TNT)
# verdict store, replacing the credit-cache probe + binary searches.
EDGE_CACHE_PROBE_CYCLES = 0.5
# Per-entry shadow-stack push/pop/compare in the slow path.
SHADOW_STACK_OP_CYCLES = 2.0
# Upcall from kernel module to the user-level slow-path process.
SLOWPATH_UPCALL_CYCLES = 4000.0
# Fixed kernel-module work per intercepted endpoint (CR3 match, result
# plumbing) — the "other" slice of the Figure 5 breakdown.
MONITOR_INTERCEPT_CYCLES = 120.0
