"""High-level FlowGuard pipeline: the library's front door.

Wraps the full offline → runtime workflow of Figure 1:

1. static analysis of the executable and its libraries into the
   conservative O-CFG (step 1),
2. ITC-CFG reconstruction + fuzzing-corpus credit training (step 2),
3. kernel-module installation, per-process IPT configuration (step 3),
4. endpoint interception (step 4) and hybrid flow checking (step 5).

Example::

    pipeline = FlowGuardPipeline.offline(
        "nginx", build_nginx(), {"libsim.so": build_libsim()},
        vdso=build_vdso(), corpus=[nginx_request("/a")], mode="socket",
    )
    kernel = Kernel()
    monitor, proc = pipeline.deploy(kernel)
    proc.push_connection(nginx_request("/index.html"))
    kernel.run(proc)
    assert not monitor.detections
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Optional, Tuple

from repro.telemetry import get_telemetry
from repro.analysis.build import build_ocfg
from repro.analysis.cfg import ControlFlowGraph
from repro.binary.loader import Loader
from repro.binary.module import Module
from repro.fuzz.training import TrainingReport, train_credits
from repro.itccfg.construct import ITCCFG, build_itccfg
from repro.itccfg.credits import CreditLabeledITC
from repro.itccfg.paths import PathIndex
from repro.monitor.flowguard import FlowGuardMonitor
from repro.monitor.policy import FlowGuardPolicy
from repro.osmodel.kernel import Kernel
from repro.osmodel.process import Process


@dataclass
class FlowGuardPipeline:
    """Offline artifacts for one protected program."""

    program: str
    exe: Module
    libraries: Dict[str, Module]
    vdso: Optional[Module]
    ocfg: ControlFlowGraph
    itc: ITCCFG
    labeled: CreditLabeledITC
    training: Optional[TrainingReport] = None
    mode: str = "socket"
    #: trained k-gram paths for the path-sensitive fast-path extension.
    path_index: Optional[PathIndex] = None

    @classmethod
    def offline(
        cls,
        program: str,
        exe: Module,
        libraries: Optional[Dict[str, Module]] = None,
        vdso: Optional[Module] = None,
        corpus: Iterable[bytes] = (),
        mode: str = "socket",
        train_max_steps: int = 400_000,
        kernel_setup=None,
    ) -> "FlowGuardPipeline":
        """Run the whole offline phase (Figure 2).

        Module bases are deterministic (no ASLR, §3.3), so the CFG built
        from a reference load is valid for every process instance.
        """
        tel = get_telemetry()
        libraries = dict(libraries or {})
        with tel.tracer.span("offline.pipeline", program=program):
            with tel.tracer.span("offline.load", program=program):
                image = Loader(libraries, vdso=vdso).load(exe)
            with tel.tracer.span("offline.ocfg", program=program):
                ocfg = build_ocfg(image)
            with tel.tracer.span("offline.itccfg", program=program):
                itc = build_itccfg(ocfg)
            labeled = CreditLabeledITC(itc=itc)
            pipeline = cls(
                program=program,
                exe=exe,
                libraries=libraries,
                vdso=vdso,
                ocfg=ocfg,
                itc=itc,
                labeled=labeled,
                mode=mode,
            )
            corpus = list(corpus)
            if corpus:
                pipeline.path_index = PathIndex()
                with tel.tracer.span(
                    "offline.training", program=program,
                    inputs=len(corpus),
                ):
                    pipeline.training = train_credits(
                        labeled,
                        program,
                        exe,
                        corpus,
                        libraries=libraries,
                        vdso=vdso,
                        mode=mode,
                        max_steps=train_max_steps,
                        kernel_setup=kernel_setup,
                        path_index=pipeline.path_index,
                    )
        if tel.enabled:
            g = tel.metrics.gauge
            cfg_stats = ocfg.stats()
            g("offline.ocfg.blocks").set(cfg_stats["blocks"], program=program)
            g("offline.ocfg.edges").set(cfg_stats["edges"], program=program)
            g("offline.itccfg.nodes").set(len(itc.nodes), program=program)
            g("offline.itccfg.edges").set(itc.edge_count, program=program)
            g("offline.trained_ratio").set(
                labeled.trained_ratio(), program=program
            )
        return pipeline

    # -- runtime ------------------------------------------------------------

    def make_monitor(
        self,
        kernel: Kernel,
        policy: Optional[FlowGuardPolicy] = None,
        faults=None,
    ) -> FlowGuardMonitor:
        """Register the program, build and install the kernel module.

        ``faults`` optionally arms a :class:`~repro.resilience.FaultPlan`
        on the monitor's recovery plane.
        """
        if self.program not in kernel.programs:
            kernel.register_program(
                self.program, self.exe, self.libraries, vdso=self.vdso
            )
        monitor = FlowGuardMonitor(kernel, policy=policy, faults=faults)
        monitor.install()
        return monitor

    def deploy(
        self,
        kernel: Kernel,
        policy: Optional[FlowGuardPolicy] = None,
        monitor: Optional[FlowGuardMonitor] = None,
        faults=None,
    ) -> Tuple[FlowGuardMonitor, Process]:
        """Spawn one protected process under a (new) monitor."""
        if monitor is None:
            monitor = self.make_monitor(kernel, policy=policy,
                                        faults=faults)
        elif self.program not in kernel.programs:
            kernel.register_program(
                self.program, self.exe, self.libraries, vdso=self.vdso
            )
        proc = kernel.spawn(self.program)
        monitor.protect(proc, self.labeled, self.ocfg,
                        path_index=self.path_index)
        return monitor, proc

    def auto_deploy(
        self,
        kernel: Kernel,
        policy: Optional[FlowGuardPolicy] = None,
    ) -> FlowGuardMonitor:
        """Install a monitor that auto-protects every instance of the
        program — including forked workers and execve'd children."""
        monitor = self.make_monitor(kernel, policy=policy)
        monitor.auto_protect(
            self.program, self.labeled, self.ocfg,
            path_index=self.path_index,
        )
        return monitor

    def spawn_unprotected(self, kernel: Kernel) -> Process:
        """Baseline: the same program with no monitor attached."""
        if self.program not in kernel.programs:
            kernel.register_program(
                self.program, self.exe, self.libraries, vdso=self.vdso
            )
        return kernel.spawn(self.program)
