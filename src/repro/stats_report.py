"""The one versioned stats schema every reporting surface emits.

Before this module, three surfaces invented three payload shapes:
``repro stats`` dumped an ad-hoc ``{server, monitor, telemetry, ...}``
dict, ``repro fleet --json`` dumped :class:`FleetResult`'s flat field
dump, and library consumers got a third shape from
``FleetResult.to_dict()``.  All three now emit one
:class:`StatsReport`:

- ``schema_version`` — bumped on any breaking reshape, so downstream
  log pipelines can dispatch on it,
- ``context`` — what produced the report (solo server run, fleet run),
- ``monitor`` — the checking stack: policy, per-process cycle
  breakdowns, detections, cycle-accounting reconciliation,
- ``caches`` — segment-decode / edge-verdict cache hit rates,
- ``fleet`` — fleet-only observables (schedule, lag, workers, config);
  ``None`` for solo runs,
- ``resilience`` — fault-plane stats, the degradation ledger and its
  reconciliation; ``None`` when the run had no resilience plane,
- ``slo`` — SLO verdicts, error-budget burn and plane health from the
  observability plane (v3); ``None`` when no plane was attached,
- ``tenants`` — per-tenant serving breakdown from ``repro.service``
  (v4): verdict counts, latency percentiles, quota/shed counters and
  error-budget burn, keyed by tenant name; ``None`` outside service
  mode,
- ``telemetry`` — the metrics snapshot, when telemetry was enabled.

Every key is always present (absent sections are ``None``, never
missing), so consumers can index without existence checks.

Migration v2 -> v3: purely additive — the new ``slo`` section.  v2
payloads load fine through :meth:`StatsReport.from_dict` (``slo``
becomes ``None``); v3 payloads are rejected by v2 readers via the
existing newer-version check, which is the point of the bump.

Migration v3 -> v4: again purely additive — the new ``tenants``
section.  v2/v3 payloads load fine (``slo`` / ``tenants`` default to
``None``); v4 payloads are rejected by older readers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

#: current schema revision.  1 was the trio of ad-hoc shapes (implicit,
#: unversioned); 2 is the unified report; 3 adds the ``slo`` section;
#: 4 adds the per-tenant serving section ``tenants``.
SCHEMA_VERSION = 4

_SECTIONS = (
    "schema_version",
    "context",
    "monitor",
    "caches",
    "fleet",
    "resilience",
    "slo",
    "tenants",
    "telemetry",
)


@dataclass
class StatsReport:
    """One run's complete observable state, in the unified schema."""

    monitor: dict
    caches: Optional[dict] = None
    fleet: Optional[dict] = None
    resilience: Optional[dict] = None
    slo: Optional[dict] = None
    tenants: Optional[dict] = None
    telemetry: Optional[dict] = None
    context: Dict[str, object] = field(default_factory=dict)
    schema_version: int = SCHEMA_VERSION

    def to_dict(self) -> dict:
        """JSON-ready payload; key order is the documented one."""
        return {
            "schema_version": self.schema_version,
            "context": self.context,
            "monitor": self.monitor,
            "caches": self.caches,
            "fleet": self.fleet,
            "resilience": self.resilience,
            "slo": self.slo,
            "tenants": self.tenants,
            "telemetry": self.telemetry,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "StatsReport":
        unknown = set(data) - set(_SECTIONS)
        if unknown:
            raise ValueError(
                f"unknown StatsReport keys: {', '.join(sorted(unknown))}"
            )
        version = data.get("schema_version", SCHEMA_VERSION)
        if version > SCHEMA_VERSION:
            raise ValueError(
                f"StatsReport schema_version {version} is newer than "
                f"this reader ({SCHEMA_VERSION})"
            )
        return cls(
            monitor=data.get("monitor") or {},
            caches=data.get("caches"),
            fleet=data.get("fleet"),
            resilience=data.get("resilience"),
            slo=data.get("slo"),  # absent before v3
            tenants=data.get("tenants"),  # absent before v4
            telemetry=data.get("telemetry"),
            context=dict(data.get("context") or {}),
            schema_version=version,
        )

    # -- builders ------------------------------------------------------------

    @classmethod
    def from_monitor(
        cls,
        monitor,
        reconciliation: Optional[dict] = None,
        telemetry: Optional[dict] = None,
        slo: Optional[dict] = None,
        **context,
    ) -> "StatsReport":
        """A report for a solo (non-fleet) monitor.

        ``reconciliation`` is the profiler-vs-MonitorStats check; it is
        embedded in the ``monitor`` section because it audits the
        monitor's own cycle ledger.
        """
        block = monitor.report()
        if reconciliation is not None:
            block["reconciliation"] = reconciliation
        injector = getattr(monitor, "fault_injector", None)
        ledger = getattr(monitor, "degradations", None)
        resilience = None
        if injector is not None or (ledger is not None and ledger.events):
            resilience = {
                "faults": injector.stats() if injector is not None else None,
                "degradations": (
                    ledger.to_dict() if ledger is not None else None
                ),
                "ledger_reconcile": (
                    ledger.reconcile() if ledger is not None else None
                ),
            }
        return cls(
            monitor=block,
            caches=monitor.cache_stats(),
            resilience=resilience,
            slo=slo,
            telemetry=telemetry,
            context={"kind": "solo", **context},
        )
