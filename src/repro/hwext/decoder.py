"""The suggested hardware packet decoder (§6 item 1).

"This hardware decoder can be very simple: it only requires a
pattern-matching engine to process the buffer according to patterns
with two 8-bit words, and route corresponding packets to specific
memory locations."  Functionally identical to the software fast decode;
the cost drops from :data:`repro.costs.FAST_DECODE_CYCLES_PER_BYTE` to
:data:`repro.costs.HW_DECODE_CYCLES_PER_BYTE` per byte.
"""

from __future__ import annotations

from repro import costs
from repro.ipt.fast_decoder import FastDecodeResult, fast_decode


class PatternMatchDecoder:
    """Hardware-assisted packet-layer decoder."""

    def __init__(self) -> None:
        self.cycles = 0.0
        self.bytes_processed = 0

    def decode(self, data: bytes, sync: bool = False) -> FastDecodeResult:
        """Decode like the software fast path, at hardware cost."""
        result = fast_decode(data, sync=sync, charge=False)
        processed = len(data) - result.synced_offset
        cost = processed * costs.HW_DECODE_CYCLES_PER_BYTE
        self.bytes_processed += processed
        self.cycles += cost
        return FastDecodeResult(
            result.packets,
            cost,
            synced_offset=result.synced_offset,
            truncated=result.truncated,
        )
