"""Configurable trigger mechanisms (§6 item 4)."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.cpu.events import BranchEvent


@dataclass
class TipCountTrigger:
    """Fire a callback every N TIP-producing branches.

    Today's IPT only interrupts on buffer-full PMIs; a configurable
    packet-count trigger lets the monitor bound the unchecked-flow
    window without burning a syscall endpoint.
    """

    every_n_tips: int
    callback: Callable[[], None]
    fired: int = 0
    _count: int = field(default=0, repr=False)

    def on_branch(self, event: BranchEvent) -> None:
        if not event.kind.produces_tip:
            return
        self._count += 1
        if self._count >= self.every_n_tips:
            self._count = 0
            self.fired += 1
            self.callback()
