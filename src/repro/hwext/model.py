"""Overhead projection under the §6 hardware extensions (§7.2.4).

Takes a measured :class:`~repro.monitor.flowguard.MonitorStats`
breakdown (trace / decode / check / other) and projects the totals with
selected extensions enabled — the quantitative version of "a dedicated
hardware decoder can significantly reduce such overhead".
"""

from __future__ import annotations

from dataclasses import dataclass

from repro import costs
from repro.monitor.flowguard import MonitorStats


@dataclass
class HardwareExtensionModel:
    """Which suggested extensions to apply."""

    hw_decoder: bool = True
    multi_cr3: bool = False
    hw_cfi_logic: bool = False

    #: Fraction of tracing cost recovered by not reprogramming the CR3
    #: filter across multi-process context switches.
    multi_cr3_trace_saving: float = 0.3
    #: Fraction of checking cost offloaded to in-hardware simple CFI.
    hw_cfi_check_saving: float = 0.5

    def apply(self, stats: MonitorStats) -> MonitorStats:
        """A projected copy of ``stats`` with the extensions enabled."""
        projected = MonitorStats(
            trace_cycles=stats.trace_cycles,
            decode_cycles=stats.decode_cycles,
            check_cycles=stats.check_cycles,
            other_cycles=stats.other_cycles,
            checks=stats.checks,
            fast_passes=stats.fast_passes,
            slow_path_runs=stats.slow_path_runs,
            pmi_count=stats.pmi_count,
        )
        if self.hw_decoder:
            ratio = (
                costs.HW_DECODE_CYCLES_PER_BYTE
                / costs.FAST_DECODE_CYCLES_PER_BYTE
            )
            projected.decode_cycles *= ratio
        if self.multi_cr3:
            projected.trace_cycles *= 1.0 - self.multi_cr3_trace_saving
        if self.hw_cfi_logic:
            projected.check_cycles *= 1.0 - self.hw_cfi_check_saving
        return projected


def project_overhead(
    stats: MonitorStats,
    app_cycles: float,
    model: HardwareExtensionModel,
) -> float:
    """Projected relative overhead with the extensions enabled."""
    if app_cycles <= 0:
        return 0.0
    return model.apply(stats).total_cycles / app_cycles
