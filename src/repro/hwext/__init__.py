"""§6 hardware suggestions, modelled so §7.2.4 can quantify them.

1. **Dedicated pattern-matching decoder** — a simple engine matching
   two 8-bit words per cycle that classifies packet framing and routes
   TIP/TNT payloads to fixed memory; replaces the software fast decode
   at a fraction of the per-byte cost.
2. **Multi-CR3 filtering** — configurable numbers of CR3 match values,
   so multi-process applications (post-fork servers) stay traced
   without per-context reprogramming.
3. **In-hardware simple CFI policies** — pattern checks on the packet
   stream between endpoints (e.g. TIP targets confined to code regions),
   catching wild transfers without any software involvement.
4. **Additional trigger mechanisms** — checks fired on configurable
   events (every Nth TIP packet, specific system events) rather than
   only buffer-full PMIs.
"""

from repro.hwext.decoder import PatternMatchDecoder
from repro.hwext.filters import HardwareCFIFilter, MultiCR3Config
from repro.hwext.model import HardwareExtensionModel, project_overhead
from repro.hwext.triggers import TipCountTrigger

__all__ = [
    "HardwareCFIFilter",
    "HardwareExtensionModel",
    "MultiCR3Config",
    "PatternMatchDecoder",
    "TipCountTrigger",
    "project_overhead",
]
