"""Multi-CR3 filtering and in-hardware simple CFI policies (§6 2-3)."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, List, Optional, Set, Tuple

from repro.ipt.msr import IPTConfig
from repro.cpu.events import BranchEvent


class MultiCR3Config(IPTConfig):
    """An RTIT extension with a *set* of CR3 match values.

    One CR3-related MSR is not enough for multi-process applications
    (a forked worker gets a fresh CR3 and falls out of the filter);
    this models a small CAM of match values.
    """

    def __init__(self, cr3_values: Iterable[int] = (), slots: int = 8,
                 **kwargs) -> None:
        super().__init__(**kwargs)
        self.slots = slots
        self._matches: Set[int] = set()
        for value in cr3_values:
            self.add_cr3(value)

    def add_cr3(self, value: int) -> None:
        if len(self._matches) >= self.slots:
            raise ValueError(f"all {self.slots} CR3 filter slots in use")
        self._matches.add(value)

    def remove_cr3(self, value: int) -> None:
        self._matches.discard(value)

    def accepts_cr3(self, cr3: Optional[int]) -> bool:
        if not self.cr3_filtering:
            return True
        return cr3 in self._matches


@dataclass
class HardwareCFIFilter:
    """Simple in-hardware CFI policy over the live packet stream.

    Checks every indirect-branch target against a set of allowed code
    ranges *as it retires* — no buffering, no software, no endpoint.
    This catches wild transfers (heap/stack targets) between endpoint
    checks, the "non end-points runtime traces" improvement of §6.
    """

    allowed_ranges: List[Tuple[int, int]] = field(default_factory=list)
    violations: List[BranchEvent] = field(default_factory=list)
    checked: int = 0

    def add_range(self, start: int, end: int) -> None:
        self.allowed_ranges.append((start, end))

    def on_branch(self, event: BranchEvent) -> None:
        if not event.kind.is_indirect:
            return
        self.checked += 1
        for start, end in self.allowed_ranges:
            if start <= event.dst < end:
                return
        self.violations.append(event)

    @classmethod
    def for_image(cls, image) -> "HardwareCFIFilter":
        """Allow exactly the loaded code regions."""
        filter_ = cls()
        for lm in image.all_modules():
            filter_.add_range(lm.base, lm.base + len(lm.module.code))
        return filter_
