"""Last Branch Record model.

LBR keeps the most recent 16 or 32 branch source/target pairs in a
register stack.  Tracing is effectively free and some filtering is
available (by privilege level and CoFI type — e.g. conditional branches
can be excluded), but the tiny window makes precise protection
impossible; kBouncer-style defenses inspect it at chosen trigger points
and are vulnerable to history flushing.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, List, Tuple

from repro import costs
from repro.cpu.events import BranchEvent, CoFIKind


@dataclass
class LBRFilter:
    """MSR_LBR_SELECT-style CoFI-type filtering."""

    record_cond: bool = True
    record_near_ret: bool = True
    record_indirect: bool = True
    record_direct: bool = True
    record_far: bool = True

    def accepts(self, kind: CoFIKind) -> bool:
        if kind is CoFIKind.COND_BRANCH:
            return self.record_cond
        if kind is CoFIKind.RET:
            return self.record_near_ret
        if kind in (CoFIKind.INDIRECT_JMP, CoFIKind.INDIRECT_CALL):
            return self.record_indirect
        if kind in (CoFIKind.DIRECT_JMP, CoFIKind.DIRECT_CALL):
            return self.record_direct
        return self.record_far


class LBRStack:
    """A 16- or 32-entry ring of (src, dst) branch pairs."""

    def __init__(self, depth: int = 16,
                 filter_: "LBRFilter | None" = None) -> None:
        if depth not in (16, 32):
            raise ValueError("LBR depth is 16 or 32 on real hardware")
        self.depth = depth
        self.filter = filter_ if filter_ is not None else LBRFilter()
        self._ring: Deque[Tuple[int, int, CoFIKind]] = deque(maxlen=depth)
        self.cycles = 0.0
        self.branches_seen = 0

    def on_branch(self, event: BranchEvent) -> None:
        if event.kind is CoFIKind.COND_BRANCH and not event.taken:
            return  # LBR records only taken branches
        if not self.filter.accepts(event.kind):
            return
        self._ring.append((event.src, event.dst, event.kind))
        self.branches_seen += 1
        self.cycles += costs.LBR_BRANCH_CYCLES

    def entries(self) -> List[Tuple[int, int, CoFIKind]]:
        """Current window, oldest first (what a defense can inspect)."""
        return list(self._ring)

    def clear(self) -> None:
        self._ring.clear()
