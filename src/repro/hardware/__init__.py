"""Other hardware tracing mechanisms (Table 1): BTS and LBR.

Both subscribe to the same CoFI event bus as IPT.  BTS records complete
source/target pairs to memory but stalls the pipeline per record (~50x
tracing overhead); LBR keeps only the last 16/32 branch pairs in a
register stack at negligible cost — precise protection is impossible
but kBouncer/ROPecker/PathArmor-style heuristics build on it.
"""

from repro.hardware.bts import BTSBuffer, BTSRecord, BTSTracer
from repro.hardware.lbr import LBRFilter, LBRStack

__all__ = ["BTSBuffer", "BTSRecord", "BTSTracer", "LBRFilter", "LBRStack"]
