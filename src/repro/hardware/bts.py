"""Branch Trace Store model.

BTS captures *all* control-transfer events — including direct jumps and
calls — as 24-byte records (source, target, flags) in a memory-resident
buffer.  No decoding is needed, but every record costs a microcode
assist that stalls the pipeline, which is where the ~50x tracing
overhead of Table 1 comes from.  There is no event filtering.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional

from repro import costs
from repro.cpu.events import BranchEvent


@dataclass(frozen=True)
class BTSRecord:
    """One branch record: 24 bytes in the hardware format."""

    src: int
    dst: int
    flags: int = 0


@dataclass
class BTSBuffer:
    """The memory-resident BTS buffer with an interrupt threshold."""

    capacity: int = 4096  # records
    records: List[BTSRecord] = field(default_factory=list)
    threshold_callback: Optional[Callable[[], None]] = None

    def append(self, record: BTSRecord) -> None:
        self.records.append(record)
        if len(self.records) >= self.capacity:
            if self.threshold_callback is not None:
                self.threshold_callback()
            self.records.clear()

    @property
    def bytes_used(self) -> int:
        return costs.BTS_RECORD_BYTES * len(self.records)


class BTSTracer:
    """CoFI listener writing BTS records (no filtering mechanisms)."""

    def __init__(self, buffer: Optional[BTSBuffer] = None) -> None:
        self.buffer = buffer if buffer is not None else BTSBuffer()
        self.cycles = 0.0
        self.records_written = 0

    def on_branch(self, event: BranchEvent) -> None:
        # BTS logs *every* transfer, even statically known ones.
        self.buffer.append(BTSRecord(event.src, event.dst))
        self.records_written += 1
        self.cycles += costs.BTS_RECORD_CYCLES
