"""The module (ELF-analogue) image format."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple


@dataclass(frozen=True)
class Symbol:
    """An exported symbol: a function entry or a data object.

    ``offset`` is section-relative: within ``code`` for functions, within
    ``data`` for objects.
    """

    name: str
    offset: int
    is_function: bool = True


@dataclass(frozen=True)
class Relocation:
    """An absolute 64-bit relocation in the data section.

    The loader writes the absolute address of ``symbol`` (plus
    ``addend``) at ``data_offset``.  ``symbol`` may be local or imported;
    this is how function-pointer tables (switch jump tables, handler
    vtables) get their code addresses.
    """

    data_offset: int
    symbol: str
    addend: int = 0


@dataclass
class Module:
    """A linkable binary image.

    Attributes:
        name: module soname, e.g. ``"nginx"`` or ``"libsim.so"``.
        code: the read-only executable section (includes PLT stubs).
        data: initialised writable data (includes the GOT).
        symbols: exported symbols by name.
        imports: names resolved at load time through the GOT.
        plt: import name -> PLT stub offset within ``code``.
        got: import name -> GOT slot offset within ``data``.
        relocations: absolute relocations into ``data``.
        needed: DT_NEEDED — dependency sonames in search order.
        entry: name of the entry-point function for executables.
        function_ranges: name -> (start, end) code offsets; the ground
            truth used by static analysis to bound disassembly and by
            tests to validate CFG recovery.
    """

    name: str
    code: bytes = b""
    data: bytes = b""
    symbols: Dict[str, Symbol] = field(default_factory=dict)
    imports: List[str] = field(default_factory=list)
    plt: Dict[str, int] = field(default_factory=dict)
    got: Dict[str, int] = field(default_factory=dict)
    relocations: List[Relocation] = field(default_factory=list)
    needed: List[str] = field(default_factory=list)
    entry: Optional[str] = None
    function_ranges: Dict[str, Tuple[int, int]] = field(default_factory=dict)
    # All code labels (exported or not) at their code offsets; used to
    # resolve module-local relocation targets.
    local_symbols: Dict[str, int] = field(default_factory=dict)

    @property
    def is_executable(self) -> bool:
        return self.entry is not None

    def symbol_offset(self, name: str) -> int:
        """Code offset of exported function ``name``."""
        sym = self.symbols.get(name)
        if sym is None:
            raise KeyError(f"{self.name}: no symbol {name!r}")
        return sym.offset

    def exports(self) -> List[str]:
        """Names of all exported function symbols."""
        return [s.name for s in self.symbols.values() if s.is_function]

    def function_at(self, code_offset: int) -> Optional[str]:
        """Name of the function whose range contains ``code_offset``."""
        for name, (start, end) in self.function_ranges.items():
            if start <= code_offset < end:
                return name
        return None
