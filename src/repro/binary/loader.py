"""Dynamic loader: layout, symbol resolution, GOT fill, relocations.

Reproduces the linking behaviour the paper's inter-module CFG
construction depends on (§4.1):

- modules connect only through PLT indirect jumps and the corresponding
  returns,
- global symbol interposition follows the DT_NEEDED search order (the
  first module providing a symbol wins),
- VDSO functions take precedence over library functions of the same
  name (the ``gettimeofday`` case).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.binary.module import Module
from repro.cpu.memory import (
    Memory,
    PROT_EXEC,
    PROT_READ,
    PROT_WRITE,
)

EXEC_BASE = 0x400000
LIB_BASE = 0x7F0000000000
LIB_STRIDE = 0x10000000
VDSO_BASE = 0x7FFFF7FF0000

_PAGE = 4096


def _align(value: int, boundary: int = _PAGE) -> int:
    return (value + boundary - 1) // boundary * boundary


class LinkResolutionError(Exception):
    """An import or relocation could not be resolved."""


@dataclass
class LoadedModule:
    """A module mapped at a base address."""

    module: Module
    base: int
    data_base: int
    end: int

    @property
    def name(self) -> str:
        return self.module.name

    @property
    def is_executable(self) -> bool:
        return self.module.is_executable

    def contains(self, addr: int) -> bool:
        return self.base <= addr < self.end

    def contains_code(self, addr: int) -> bool:
        return self.base <= addr < self.base + len(self.module.code)

    def addr_of(self, symbol: str) -> int:
        """Absolute address of an exported symbol."""
        sym = self.module.symbols.get(symbol)
        if sym is None:
            raise KeyError(f"{self.name}: no symbol {symbol!r}")
        section = self.base if sym.is_function else self.data_base
        return section + sym.offset

    def local_addr_of(self, label: str) -> int:
        """Absolute address of any code label (exported or not)."""
        return self.base + self.module.local_symbols[label]

    def plt_addr(self, import_name: str) -> int:
        """Absolute address of the PLT stub for ``import_name``."""
        return self.base + self.module.plt[import_name]

    def code_offset(self, addr: int) -> int:
        """Module-relative code offset of absolute address ``addr``."""
        return addr - self.base

    def function_at(self, addr: int) -> Optional[str]:
        """Name of the function containing absolute address ``addr``."""
        return self.module.function_at(addr - self.base)


@dataclass
class Image:
    """A loaded program: all modules mapped into one address space."""

    memory: Memory
    modules: List[LoadedModule] = field(default_factory=list)
    vdso: Optional[LoadedModule] = None

    @property
    def executable(self) -> LoadedModule:
        return self.modules[0]

    @property
    def entry_address(self) -> int:
        exe = self.executable
        if exe.module.entry is None:
            raise LinkResolutionError(f"{exe.name} has no entry point")
        return exe.addr_of(exe.module.entry)

    def module_of(self, addr: int) -> Optional[LoadedModule]:
        """The loaded module whose mapping contains ``addr``."""
        for lm in self.modules:
            if lm.contains(addr):
                return lm
        if self.vdso is not None and self.vdso.contains(addr):
            return self.vdso
        return None

    def by_name(self, name: str) -> LoadedModule:
        for lm in self.modules:
            if lm.name == name:
                return lm
        if self.vdso is not None and self.vdso.name == name:
            return self.vdso
        raise KeyError(f"module {name!r} not loaded")

    def all_modules(self) -> List[LoadedModule]:
        """All loaded modules including the VDSO."""
        out = list(self.modules)
        if self.vdso is not None:
            out.append(self.vdso)
        return out

    def addr_of(self, module_name: str, symbol: str) -> int:
        return self.by_name(module_name).addr_of(symbol)


class Loader:
    """Maps an executable and its dependency closure into memory."""

    def __init__(
        self,
        libraries: Optional[Dict[str, Module]] = None,
        vdso: Optional[Module] = None,
    ) -> None:
        self.libraries = dict(libraries or {})
        self.vdso_module = vdso

    # -- dependency resolution ----------------------------------------------

    def _dependency_order(self, exe: Module) -> List[Module]:
        """Breadth-first DT_NEEDED closure: the ELF search order."""
        order: List[Module] = []
        seen = set()
        queue = list(exe.needed)
        while queue:
            soname = queue.pop(0)
            if soname in seen:
                continue
            seen.add(soname)
            lib = self.libraries.get(soname)
            if lib is None:
                raise LinkResolutionError(
                    f"{exe.name}: needed library {soname!r} not found"
                )
            order.append(lib)
            queue.extend(lib.needed)
        return order

    # -- loading -------------------------------------------------------------

    def load(self, exe: Module, memory: Optional[Memory] = None) -> Image:
        """Map ``exe`` and its dependencies; resolve and relocate."""
        memory = memory if memory is not None else Memory()
        image = Image(memory=memory)

        libs = self._dependency_order(exe)
        placements = [(exe, EXEC_BASE)]
        for index, lib in enumerate(libs):
            placements.append((lib, LIB_BASE + index * LIB_STRIDE))

        for module, base in placements:
            image.modules.append(self._map_module(memory, module, base))
        if self.vdso_module is not None:
            image.vdso = self._map_module(memory, self.vdso_module, VDSO_BASE)

        for lm in image.all_modules():
            self._fill_got(image, lm)
            self._apply_relocations(image, lm)
        return image

    @staticmethod
    def _map_module(memory: Memory, module: Module, base: int) -> LoadedModule:
        code_size = _align(max(len(module.code), 1))
        data_size = _align(max(len(module.data), 1))
        data_base = base + code_size
        memory.map_region(base, code_size, PROT_READ | PROT_EXEC)
        memory.write_raw(base, module.code)
        memory.map_region(data_base, data_size, PROT_READ | PROT_WRITE)
        memory.write_raw(data_base, module.data)
        return LoadedModule(
            module=module,
            base=base,
            data_base=data_base,
            end=data_base + data_size,
        )

    # -- symbol resolution -----------------------------------------------------

    def _resolve(self, image: Image, requester: LoadedModule,
                 symbol: str) -> int:
        """Resolve ``symbol`` with interposition semantics.

        VDSO-provided functions win first (§4.1); then the executable and
        libraries are searched in load (DT_NEEDED breadth-first) order.
        The requesting module itself participates in the search at its
        normal position, so a library's own definition can be interposed
        by an earlier module — real ELF behaviour.
        """
        if image.vdso is not None and symbol in image.vdso.module.symbols:
            return image.vdso.addr_of(symbol)
        for lm in image.modules:
            if symbol in lm.module.symbols:
                return lm.addr_of(symbol)
        raise LinkResolutionError(
            f"{requester.name}: undefined symbol {symbol!r}"
        )

    def _fill_got(self, image: Image, lm: LoadedModule) -> None:
        for import_name, got_offset in lm.module.got.items():
            target = self._resolve(image, lm, import_name)
            image.memory.write_u64(lm.data_base + got_offset, target)

    def _apply_relocations(self, image: Image, lm: LoadedModule) -> None:
        for reloc in lm.module.relocations:
            local = lm.module.local_symbols.get(reloc.symbol)
            if local is not None:
                target = lm.base + local
            else:
                target = self._resolve(image, lm, reloc.symbol)
            image.memory.write_u64(
                lm.data_base + reloc.data_offset, target + reloc.addend
            )
