"""Module builder: functions + data + imports -> a linkable Module.

The builder is the static-linker half of the toolchain.  It:

- concatenates function bodies into the code section and records their
  ranges,
- synthesises one PLT stub per imported symbol (an IP-relative GOT load
  followed by an *indirect jump* — the inter-module junction the paper's
  CFG construction keys on),
- lays the GOT and user data in the data section,
- resolves code references to data symbols (the module is loaded
  contiguously, so code→data displacements are link-time constants), and
- records absolute relocations for function-pointer tables.

Register convention: ``r15`` is the linker scratch register clobbered by
PLT stubs; compiled code never holds live values in it across calls.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence

from repro.binary.module import Module, Relocation, Symbol
from repro.isa.assembler import A, Item, assemble
from repro.isa.encoding import instruction_length
from repro.isa.instructions import Insn, Label

_PAGE = 4096
_GOT_SLOT = 8
_PLT_SCRATCH = 15  # r15


def _align(value: int, boundary: int = _PAGE) -> int:
    return (value + boundary - 1) // boundary * boundary


class LinkError(Exception):
    """Raised on malformed module composition."""


class ModuleBuilder:
    """Accumulates functions, data and imports; emits a Module."""

    def __init__(self, name: str) -> None:
        self.name = name
        self._functions: List[tuple] = []  # (name, items, exported)
        self._data_items: List[tuple] = []  # (name, bytes, exported)
        self._imports: List[str] = []
        self._needed: List[str] = []
        self._relocations: List[tuple] = []  # (data_label, index, symbol)
        self._entry: Optional[str] = None

    # -- composition -------------------------------------------------------

    def add_function(
        self, name: str, items: Sequence[Item], export: bool = True
    ) -> "ModuleBuilder":
        """Add a function whose body is the given instruction stream."""
        if any(name == f[0] for f in self._functions):
            raise LinkError(f"{self.name}: duplicate function {name!r}")
        self._functions.append((name, list(items), export))
        return self

    def add_data(
        self, name: str, payload: bytes, export: bool = False
    ) -> "ModuleBuilder":
        """Add an initialised data object."""
        if any(name == d[0] for d in self._data_items):
            raise LinkError(f"{self.name}: duplicate data {name!r}")
        self._data_items.append((name, bytes(payload), export))
        return self

    def add_zeros(self, name: str, size: int, export: bool = False
                  ) -> "ModuleBuilder":
        """Add a zero-initialised data object (BSS-like)."""
        return self.add_data(name, b"\x00" * size, export)

    def add_pointer_table(
        self, name: str, function_names: Iterable[str], export: bool = False
    ) -> "ModuleBuilder":
        """Add a table of absolute function pointers (jump/handler table).

        Each entry is filled by the loader through a relocation, exactly
        like switch jump tables and vtables in real binaries.
        """
        names = list(function_names)
        self.add_data(name, b"\x00" * (8 * len(names)), export)
        for index, fname in enumerate(names):
            self._relocations.append((name, index, fname))
        return self

    def import_symbol(self, name: str) -> "ModuleBuilder":
        """Declare an imported function, reached via a PLT stub."""
        if name not in self._imports:
            self._imports.append(name)
        return self

    def add_needed(self, soname: str) -> "ModuleBuilder":
        """Append a DT_NEEDED dependency."""
        if soname not in self._needed:
            self._needed.append(soname)
        return self

    def set_entry(self, name: str) -> "ModuleBuilder":
        self._entry = name
        return self

    # -- layout ------------------------------------------------------------

    @staticmethod
    def _stream_size(items: Sequence[Item]) -> int:
        return sum(
            instruction_length(item.op)
            for item in items
            if isinstance(item, Insn)
        )

    @staticmethod
    def _plt_stub(got_label: str) -> List[Item]:
        return [
            A.lea(_PLT_SCRATCH, got_label),
            A.load(_PLT_SCRATCH, _PLT_SCRATCH, 0),
            A.jmpr(_PLT_SCRATCH),
        ]

    def build(self) -> Module:
        """Link everything into a Module image."""
        # Assemble the full code stream: functions, then PLT stubs.
        stream: List[Item] = []
        function_ranges: Dict[str, tuple] = {}
        pos = 0
        for fname, items, _ in self._functions:
            stream.append(Label(fname))
            size = self._stream_size(items)
            function_ranges[fname] = (pos, pos + size)
            stream.extend(items)
            pos += size

        plt_offsets: Dict[str, int] = {}
        for imp in self._imports:
            stub = self._plt_stub(f"__got.{imp}")
            plt_offsets[imp] = pos
            stream.append(Label(f"__plt.{imp}"))
            stream.extend(stub)
            pos += self._stream_size(stub)
        code_size = pos

        # Data layout: GOT slots first, then user data objects.
        data_link_base = _align(code_size)
        got_offsets: Dict[str, int] = {}
        data_offset = 0
        for imp in self._imports:
            got_offsets[imp] = data_offset
            data_offset += _GOT_SLOT
        data_symbol_offsets: Dict[str, int] = {}
        chunks: List[bytes] = [b"\x00" * data_offset]
        for dname, payload, _ in self._data_items:
            data_symbol_offsets[dname] = data_offset
            chunks.append(payload)
            data_offset += len(payload)
        data = b"".join(chunks)

        # Labels visible to code: PLT stubs under the *import name* (so
        # `call foo` links to foo's PLT stub, compiler stays linkage
        # agnostic), GOT slots, and data objects at their link addresses.
        extra_labels: Dict[str, int] = {}
        for imp in self._imports:
            extra_labels[imp] = plt_offsets[imp]
            extra_labels[f"__got.{imp}"] = data_link_base + got_offsets[imp]
        for dname, off in data_symbol_offsets.items():
            extra_labels[dname] = data_link_base + off

        code, symbols = assemble(stream, extra_labels=extra_labels)
        if len(code) != code_size:
            raise LinkError("layout size mismatch")  # pragma: no cover

        module = Module(name=self.name)
        module.code = code
        module.data = data
        module.imports = list(self._imports)
        module.plt = plt_offsets
        module.got = got_offsets
        module.needed = list(self._needed)
        module.function_ranges = function_ranges
        module.local_symbols = dict(symbols)
        for fname, _, exported in self._functions:
            if exported:
                module.symbols[fname] = Symbol(fname, symbols[fname], True)
        for dname, _, exported in self._data_items:
            if exported:
                module.symbols[dname] = Symbol(
                    dname, data_symbol_offsets[dname], False
                )
        for dlabel, index, target in self._relocations:
            module.relocations.append(
                Relocation(data_symbol_offsets[dlabel] + 8 * index, target)
            )
        if self._entry is not None:
            if self._entry not in function_ranges:
                raise LinkError(
                    f"{self.name}: entry {self._entry!r} is not a function"
                )
            module.entry = self._entry
        return module
