"""Binary images and dynamic linking.

A :class:`~repro.binary.module.Module` is the ELF analogue: a read-only
code section, an initialised data section, exported symbols, imported
symbols reached through PLT stubs, relocations, and a ``DT_NEEDED`` list.
The :class:`~repro.binary.loader.Loader` lays modules out in an address
space, resolves symbols with ELF interposition semantics (VDSO taking
precedence for the symbols it provides), fills GOT slots and applies
relocations — reproducing exactly the inter-module control-flow junctions
the paper's CFG construction relies on (PLT indirect jumps, returns, and
VDSO calls).
"""

from repro.binary.module import Module, Relocation, Symbol
from repro.binary.builder import LinkError, ModuleBuilder
from repro.binary.loader import (
    Image,
    LinkResolutionError,
    LoadedModule,
    Loader,
)

__all__ = [
    "Image",
    "LinkError",
    "LinkResolutionError",
    "LoadedModule",
    "Loader",
    "Module",
    "ModuleBuilder",
    "Relocation",
    "Symbol",
]
