"""The FlowGuard kernel module (§5): per-process protection state,
syscall-table interception, fast/slow-path dispatch, enforcement.

Protection lifecycle::

    kernel = Kernel()
    monitor = FlowGuardMonitor(kernel)
    monitor.install()                       # swap endpoint handlers
    proc = kernel.spawn("nginx")
    monitor.protect(proc, labeled_itc, ocfg)  # configure IPT + CFGs
    kernel.run(proc)
    monitor.detections                      # CFI verdicts

On a violation the process is SIGKILLed and the detection reported —
the paper's enforcement action.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro import costs
from repro.telemetry import get_telemetry
from repro.analysis.cfg import ControlFlowGraph
from repro.ipt.encoder import IPTEncoder
from repro.ipt.msr import IPTConfig
from repro.ipt.topa import ToPA
from repro.ipt.columnar import set_scan_kernel
from repro.ipt.segment_cache import SegmentDecodeCache
from repro.itccfg.credits import CreditLabeledITC
from repro.itccfg.searchindex import FlowSearchIndex
from repro.itccfg.shardindex import build_flow_index
from repro.monitor.fastpath import FastPathChecker, FastPathResult, Verdict
from repro.monitor.policy import FlowGuardPolicy
from repro.monitor.slowpath import SlowPathEngine
from repro.resilience.faults import FaultInjector, FaultPlan, InjectedFault
from repro.resilience.ledger import DegradationLedger
from repro.osmodel.kernel import Kernel
from repro.osmodel.process import Process
from repro.osmodel.syscalls import SIGKILL, Sys


@dataclass
class Detection:
    """One reported CFI violation."""

    pid: int
    syscall_nr: int
    path: str  # "fast" or "slow"
    reason: str
    edge: Optional[tuple] = None


@dataclass
class MonitorStats:
    """Cycle breakdown per protected process (Figure 5 phases)."""

    trace_cycles: float = 0.0
    decode_cycles: float = 0.0
    check_cycles: float = 0.0
    other_cycles: float = 0.0
    checks: int = 0
    fast_passes: int = 0
    slow_path_runs: int = 0
    pmi_count: int = 0
    edges_checked: int = 0
    low_credit_edges: int = 0

    @property
    def total_cycles(self) -> float:
        return (
            self.trace_cycles
            + self.decode_cycles
            + self.check_cycles
            + self.other_cycles
        )

    @property
    def slow_path_rate(self) -> float:
        return self.slow_path_runs / self.checks if self.checks else 0.0

    @property
    def high_credit_edge_ratio(self) -> float:
        """Fraction of checked ITC edges that held a high credit —
        the Figure 5d cred-ratio metric."""
        if not self.edges_checked:
            return 0.0
        return 1.0 - self.low_credit_edges / self.edges_checked


@dataclass
class ProtectedProcess:
    """Per-process protection state."""

    process: Process
    config: IPTConfig
    topa: ToPA
    encoder: IPTEncoder
    labeled: CreditLabeledITC
    index: FlowSearchIndex
    checker: FastPathChecker
    slow: SlowPathEngine
    stats: MonitorStats = field(default_factory=MonitorStats)


class FlowGuardMonitor:
    """The kernel module: owns interception and per-process state."""

    #: snapshot re-reads per check before giving up on a drain whose
    #: mangled bytes left no judgeable window (the ring still holds the
    #: real data; the fault model corrupts the DMA copy, not the ring).
    DRAIN_ATTEMPTS = 3

    def __init__(
        self,
        kernel: Kernel,
        policy: Optional[FlowGuardPolicy] = None,
        faults: Optional[FaultPlan] = None,
    ) -> None:
        self.kernel = kernel
        self.policy = policy if policy is not None else FlowGuardPolicy()
        # "auto" inherits the process/env scan-kernel setting (so a CI
        # run forcing REPRO_SCAN_KERNEL is not stomped); "on"/"off"
        # pin it for this process.
        if self.policy.scan_kernel != "auto":
            set_scan_kernel(self.policy.scan_kernel)
        self._telemetry = get_telemetry()
        #: deterministic fault plane (None = fault-free, bit-identical
        #: to a monitor built without the resilience layer).
        self.fault_injector: Optional[FaultInjector] = (
            FaultInjector(faults)
            if faults is not None and faults.active
            else None
        )
        #: audit trail of every degradation/recovery action taken.
        self.degradations = DegradationLedger()
        self.detections: List[Detection] = []
        self._protected: Dict[int, ProtectedProcess] = {}  # by CR3
        self._originals: Dict[int, object] = {}
        self._installed = False
        #: Optional ToPA constructor ``f(pmi_callback) -> ToPA``;
        #: subclasses (the fleet's per-process rings) override the
        #: paper's two-region 16 KiB default.
        self.topa_factory: Optional[Callable[[Callable[[], None]], ToPA]] = None
        #: one content-addressed segment cache shared by every protected
        #: process (None when the policy leaves it disabled): identical
        #: PSB segments across snapshots — and across processes running
        #: the same binaries — decode once.
        self.segment_cache: Optional[SegmentDecodeCache] = (
            SegmentDecodeCache(self.policy.segment_cache_entries)
            if self.policy.segment_cache_entries > 0
            else None
        )

    # -- lifecycle -----------------------------------------------------------

    def install(self) -> None:
        """Swap the endpoint syscall-table entries (§5.2)."""
        if self._installed:
            return
        for nr in self.policy.endpoints:
            original = self.kernel.install_handler(
                nr, self._make_wrapper(nr)
            )
            self._originals[nr] = original
        self._installed = True

    def uninstall(self) -> None:
        """Restore the original syscall table."""
        for nr, original in self._originals.items():
            self.kernel.install_handler(nr, original)
        self._originals.clear()
        self._installed = False

    def protect(
        self,
        process: Process,
        labeled: CreditLabeledITC,
        ocfg: ControlFlowGraph,
        path_index=None,
    ) -> ProtectedProcess:
        """Start tracing and checking a process.

        Configures the RTIT MSRs with the paper's §5.1 settings (CR3
        filter on the target, user-only, ToPA output with two regions)
        and subscribes the packetizer to the CPU's CoFI bus.
        """
        config = IPTConfig.flowguard_defaults(process.cr3)
        if self.policy.psb_period:
            config.psb_period = self.policy.psb_period
        pp_holder: List[ProtectedProcess] = []

        def on_pmi() -> None:
            if pp_holder:
                self._on_pmi(pp_holder[0])

        if self.topa_factory is not None:
            topa = self.topa_factory(on_pmi)
        else:
            topa = ToPA.flowguard_default(pmi_callback=on_pmi)
        encoder = IPTEncoder(
            config, output=topa,
            current_cr3=lambda p=process: p.cr3,
        )
        index = build_flow_index(
            labeled,
            edge_cache_entries=self.policy.edge_cache_entries,
            index_shards=self.policy.index_shards,
        )
        checker = FastPathChecker(
            index,
            process.image,
            pkt_count=self.policy.pkt_count,
            cred_ratio=self.policy.cred_ratio,
            require_cross_module=self.policy.require_cross_module,
            require_executable=self.policy.require_executable,
            path_index=path_index if self.policy.path_sensitive else None,
            segment_cache=self.segment_cache,
            ledger=self.degradations,
            owner_pid=process.pid,
            engine=self.policy.engine,
        )
        slow = SlowPathEngine(process.machine.memory, ocfg)
        pp = ProtectedProcess(
            process=process,
            config=config,
            topa=topa,
            encoder=encoder,
            labeled=labeled,
            index=index,
            checker=checker,
            slow=slow,
        )
        pp_holder.append(pp)
        process.executor.add_listener(encoder.on_branch)
        self._protected[process.cr3] = pp
        return pp

    def rebind(
        self,
        pp: "ProtectedProcess",
        labeled: CreditLabeledITC,
        ocfg: ControlFlowGraph,
        path_index=None,
    ) -> None:
        """Atomically swap a protected process onto a new CFG version.

        The serving front-end's hot O-CFG/ITC-CFG reload: a freshly
        trained pipeline's artifacts replace the live checking stack —
        labeled ITC, search index, fast-path checker, slow-path engine
        — without touching the trace plumbing (IPT unit, ToPA ring,
        encoder) or the process itself.  Verdicts are computed eagerly
        at submit time, so calling this between scheduler rounds can
        never change (or drop) a check already in flight; it only
        redirects checks submitted afterwards.
        """
        process = pp.process
        index = build_flow_index(
            labeled,
            edge_cache_entries=self.policy.edge_cache_entries,
            index_shards=self.policy.index_shards,
        )
        checker = FastPathChecker(
            index,
            process.image,
            pkt_count=self.policy.pkt_count,
            cred_ratio=self.policy.cred_ratio,
            require_cross_module=self.policy.require_cross_module,
            require_executable=self.policy.require_executable,
            path_index=path_index if self.policy.path_sensitive else None,
            segment_cache=self.segment_cache,
            ledger=self.degradations,
            owner_pid=process.pid,
            engine=self.policy.engine,
        )
        slow = SlowPathEngine(process.machine.memory, ocfg)
        pp.labeled = labeled
        pp.index = index
        pp.checker = checker
        pp.slow = slow

    def auto_protect(
        self,
        program: str,
        labeled: CreditLabeledITC,
        ocfg: ControlFlowGraph,
        path_index=None,
    ) -> None:
        """Protect every current and future instance of ``program``.

        Hooks process creation (spawn, fork, execve) so forked workers
        and exec'd children are traced from their first instruction —
        the multi-process scenario §6's multi-CR3 suggestion targets.
        Each instance gets its own IPT unit and ToPA (as on real
        hardware, one per core), all checked against the shared trained
        CFG.
        """

        def hook(proc: Process) -> None:
            if proc.name == program and self.protected_for(proc) is None:
                self.protect(proc, labeled, ocfg, path_index=path_index)

        self.kernel.spawn_hooks.append(hook)
        self.kernel.exec_stop_hooks.append(hook)
        for proc in self.kernel.processes.values():
            hook(proc)

    def unprotect(self, process: Process) -> None:
        pp = self._protected.pop(process.cr3, None)
        if pp is not None:
            try:
                process.executor.remove_listener(pp.encoder.on_branch)
            except ValueError:  # pragma: no cover - already detached
                pass

    def protected_for(self, process: Process) -> Optional[ProtectedProcess]:
        return self._protected.get(process.cr3)

    # -- interception -----------------------------------------------------------

    def _make_wrapper(self, nr: int):
        def wrapper(kernel: Kernel, proc: Process):
            # The installed handler first checks whether the syscall was
            # issued by a protected process (CR3 / pid), §5.2.
            pp = self._protected.get(proc.cr3)
            if pp is None or pp.process.pid != proc.pid:
                return self._originals[nr](kernel, proc)
            verdict = self._run_check(pp, nr)
            if verdict is Verdict.VIOLATION:
                kernel.kill_process(proc, SIGKILL)
                return -1
            return self._originals[nr](kernel, proc)

        return wrapper

    # -- checking -----------------------------------------------------------------

    def _run_check(self, pp: ProtectedProcess, nr: int) -> Verdict:
        """One endpoint check, observed: the observability plane (when
        attached) journals every verdict into the flight recorder and
        auto-dumps on VIOLATION.  The plane only reads state — verdicts
        and charged cycles are bit-identical with it detached."""
        verdict = self._run_check_inner(pp, nr)
        plane = self._telemetry.plane
        if plane is not None:
            plane.on_check(pp, nr, verdict)
        return verdict

    def _run_check_inner(self, pp: ProtectedProcess, nr: int) -> Verdict:
        tel = self._telemetry
        stats = pp.stats
        stats.checks += 1
        stats.other_cycles += costs.MONITOR_INTERCEPT_CYCLES
        pp.encoder.flush()
        result = self._fastpath_with_recovery(pp)
        stats.decode_cycles += result.decode_cycles
        stats.check_cycles += result.search_cycles
        stats.edges_checked += result.checked_pairs
        stats.low_credit_edges += len(result.low_credit_pairs)
        if tel.enabled:
            prof = tel.profiler
            prof.record("monitor.intercept", "intercept",
                        costs.MONITOR_INTERCEPT_CYCLES)
            prof.record("monitor.fastpath", "decode", result.decode_cycles)
            prof.record("monitor.fastpath", "search", result.search_cycles)
            m = tel.metrics
            m.counter("monitor.checks").inc(
                path="slow" if result.verdict is Verdict.SUSPICIOUS
                else "fast"
            )
            m.counter("monitor.verdicts").inc(verdict=result.verdict.value)
            m.counter("monitor.edges_checked").inc(result.checked_pairs)
            m.counter("monitor.low_credit_edges").inc(
                len(result.low_credit_pairs)
            )

        if result.verdict is Verdict.VIOLATION:
            self.detections.append(
                Detection(
                    pid=pp.process.pid,
                    syscall_nr=nr,
                    path="fast",
                    reason=(
                        "flow outside ITC-CFG: "
                        f"{result.violation_edge[0]:#x} -> "
                        f"{result.violation_edge[1]:#x}"
                    ),
                    edge=result.violation_edge,
                )
            )
            if tel.enabled:
                tel.metrics.counter("monitor.detections").inc(path="fast")
            return Verdict.VIOLATION

        if result.verdict in (Verdict.PASS, Verdict.INSUFFICIENT):
            stats.fast_passes += 1
            return Verdict.PASS

        # Suspicious: upcall into the slow path with the same window.
        return self._run_slow(pp, nr, result)

    def _fastpath_with_recovery(self, pp: ProtectedProcess) -> FastPathResult:
        """Snapshot the ToPA and run the fast path, surviving the fault
        plane.  Fault-free (no injector) this is exactly one snapshot
        and one check — bit-identical to the pre-resilience monitor.

        Under faults, the drain bytes are mangled per the plan; an
        injected fast-path decode error downgrades the check to
        SUSPICIOUS over a raw tail decode (the slow path then delivers
        the verdict); and a drain whose corruption left no judgeable
        window is re-read from the ring up to ``DRAIN_ATTEMPTS`` times —
        the ring still holds the true bytes, only the DMA copy was
        mangled.  Every attempt's decode cost is charged.
        """
        inj = self.fault_injector
        data = pp.topa.snapshot()
        if inj is None:
            return pp.checker.check(data)
        tel = self._telemetry
        stats = pp.stats
        pid = pp.process.pid
        result: FastPathResult
        for attempt in range(1, self.DRAIN_ATTEMPTS + 1):
            mangled, drain_events = inj.mangle(data)
            for kind in drain_events:
                self.degradations.record(kind, pid=pid)
            try:
                if inj.fire("fastpath_error"):
                    raise InjectedFault("injected fast-path decode error")
                result = pp.checker.check(mangled)
            except InjectedFault:
                self.degradations.record(
                    "slowpath-fallback", pid=pid, detail="fastpath-error"
                )
                if tel.enabled:
                    tel.metrics.counter("resilience.slowpath_fallbacks").inc()
                result = self._fastpath_surrogate(pp, mangled)
            blinded = (
                result.verdict is Verdict.INSUFFICIENT
                and result.corrupt_segments > 0
            )
            if blinded and attempt < self.DRAIN_ATTEMPTS:
                # Charge the wasted decode, audit, re-read the drain.
                self.degradations.record("retry", pid=pid,
                                         detail="drain-reread")
                stats.decode_cycles += result.decode_cycles
                stats.check_cycles += result.search_cycles
                if tel.enabled:
                    prof = tel.profiler
                    prof.record("monitor.fastpath", "decode",
                                result.decode_cycles)
                    prof.record("monitor.fastpath", "search",
                                result.search_cycles)
                continue
            break
        return result

    def _fastpath_surrogate(
        self, pp: ProtectedProcess, data: bytes
    ) -> FastPathResult:
        """The fast path crashed mid-check: decode the tail directly
        and mark the whole window SUSPICIOUS so the slow path (which
        shares no state with the fast checker) delivers the verdict."""
        checker = pp.checker
        if checker.engine == "columnar":
            # Engine-native: materialise only the checked window, keep
            # the packet hand-off lazy (the slow path's columnar lane
            # never forces it).
            tail = checker.decode_tail_columnar(data)
            packets = tail.lazy_packets()
            if tail.count < 2:
                return FastPathResult(
                    Verdict.INSUFFICIENT,
                    decode_cycles=tail.cycles,
                    window=tail.records(),
                    window_offset=tail.start,
                    packets=packets,
                    corrupt_segments=checker.last_corrupt_segments,
                )
            return FastPathResult(
                Verdict.SUSPICIOUS,
                decode_cycles=tail.cycles,
                window=tail.window(checker.pkt_count + 1)[0],
                window_offset=tail.start,
                packets=packets,
                corrupt_segments=checker.last_corrupt_segments,
            )
        records, packets, cycles, start = checker.decode_tail(data)
        if len(records) < 2:
            return FastPathResult(
                Verdict.INSUFFICIENT,
                decode_cycles=cycles,
                window=records,
                window_offset=start,
                packets=packets,
                corrupt_segments=checker.last_corrupt_segments,
            )
        window = records[-(checker.pkt_count + 1):]
        return FastPathResult(
            Verdict.SUSPICIOUS,
            decode_cycles=cycles,
            window=window,
            window_offset=start,
            packets=packets,
            corrupt_segments=checker.last_corrupt_segments,
        )

    def _run_slow(
        self, pp: ProtectedProcess, nr: int, result: FastPathResult
    ) -> Verdict:
        tel = self._telemetry
        stats = pp.stats
        stats.slow_path_runs += 1
        inj = self.fault_injector
        try:
            if inj is not None and inj.fire("slowpath_error"):
                raise InjectedFault("injected slow-path decode error")
            source = (
                result.slow_path_packets()
                if self.policy.slow_lane == "objects"
                else result.slow_path_source()
            )
            slow_result = pp.slow.check(source, window=result.window)
        except InjectedFault:
            # The engine died after the upcall: charge the upcall, audit
            # the downgrade, and fail open for this window — violations
            # are fast-path verdicts, so availability wins here.
            self.degradations.record(
                "slowpath-error", pid=pp.process.pid, detail=f"syscall={nr}"
            )
            stats.other_cycles += costs.SLOWPATH_UPCALL_CYCLES
            if tel.enabled:
                tel.profiler.record("monitor.slowpath", "upcall",
                                    costs.SLOWPATH_UPCALL_CYCLES)
            return Verdict.PASS
        slow_decode = (
            slow_result.insns_decoded * costs.FULL_DECODE_CYCLES_PER_INSN
        )
        slow_check = max(
            0.0,
            slow_result.cycles - costs.SLOWPATH_UPCALL_CYCLES - slow_decode,
        )
        stats.decode_cycles += slow_decode
        stats.check_cycles += slow_check
        stats.other_cycles += costs.SLOWPATH_UPCALL_CYCLES
        if tel.enabled:
            # Mirror the exact same charges, split into the finer phases
            # (shadow-stack share clamped into the check slice so the
            # profiler reconciles exactly with MonitorStats).
            shadow = min(slow_result.shadow_cycles, slow_check)
            prof = tel.profiler
            prof.record("monitor.slowpath", "decode", slow_decode)
            prof.record("monitor.slowpath", "shadow-stack", shadow)
            prof.record("monitor.slowpath", "search", slow_check - shadow)
            prof.record("monitor.slowpath", "upcall",
                        costs.SLOWPATH_UPCALL_CYCLES)
            tel.metrics.counter("monitor.slow_path_insns").inc(
                slow_result.insns_decoded
            )
        if not slow_result.ok:
            self.detections.append(
                Detection(
                    pid=pp.process.pid,
                    syscall_nr=nr,
                    path="slow",
                    reason=slow_result.reason or "slow-path violation",
                )
            )
            if tel.enabled:
                tel.metrics.counter("monitor.detections").inc(path="slow")
            return Verdict.VIOLATION
        if self.policy.cache_slow_path_negatives:
            for src, dst, tnt in slow_result.confirmed_pairs:
                pp.labeled.promote(src, dst, tnt)
                pp.index.promote(src, dst, tnt)
            if tel.enabled:
                tel.metrics.counter("monitor.promotions").inc(
                    len(slow_result.confirmed_pairs)
                )
        return Verdict.PASS

    def _on_pmi(self, pp: ProtectedProcess) -> None:
        inj = self.fault_injector
        if inj is not None and inj.fire("drop_pmi"):
            # The interrupt never reached the handler; the ring keeps
            # filling and the next endpoint check covers the window.
            self.degradations.record("pmi-drop", pid=pp.process.pid)
            return
        pp.stats.pmi_count += 1
        if self._telemetry.enabled:
            self._telemetry.metrics.counter("monitor.pmi").inc()
        if self.policy.check_on_pmi:
            verdict = self._run_check(pp, -1)
            if verdict is Verdict.VIOLATION:
                self.kernel.kill_process(pp.process, SIGKILL)

    # -- reporting -----------------------------------------------------------------

    def stats_for(self, process: Process) -> MonitorStats:
        pp = self._protected.get(process.cr3)
        if pp is None:
            raise KeyError(f"process {process.pid} is not protected")
        stats = pp.stats
        stats.trace_cycles = pp.encoder.cycles
        if self._telemetry.enabled:
            # Tracing cost is cumulative on the encoder, so overwrite
            # the per-process cell rather than accumulate.  The cell
            # key carries the tenant tag when this monitor belongs to
            # a tenant fault domain: pids restart from 1 in every
            # tenant's kernel, so untagged cells would collide.
            tenant = getattr(self.degradations, "tenant", None)
            prefix = "ipt.encoder" if tenant is None \
                else f"ipt.encoder.{tenant}"
            self._telemetry.profiler.set(
                f"{prefix}.pid{pp.process.pid}", "trace",
                stats.trace_cycles,
            )
        return stats

    def all_stats(self) -> List[MonitorStats]:
        """Refreshed stats for every protected process."""
        return [
            self.stats_for(pp.process) for pp in self._protected.values()
        ]

    def cache_stats(self) -> dict:
        """Fast-path cache effectiveness: the shared segment decode
        cache plus the per-process edge-verdict memos aggregated
        (None members when the policy leaves a cache disabled)."""
        segment = (
            self.segment_cache.stats()
            if self.segment_cache is not None
            else None
        )
        edge = None
        if self.policy.edge_cache_entries:
            hits = misses = invalidations = resident = 0
            for pp in self._protected.values():
                stats = pp.index.edge_cache_stats()
                hits += stats["hits"]
                misses += stats["misses"]
                invalidations += stats["invalidations"]
                resident += stats["resident"]
            probes = hits + misses
            edge = {
                "entries": self.policy.edge_cache_entries,
                "resident": resident,
                "hits": hits,
                "misses": misses,
                "invalidations": invalidations,
                "hit_rate": hits / probes if probes else 0.0,
            }
        return {"segment": segment, "edge": edge}

    def report(self) -> dict:
        """A JSON-compatible operational report across all protected
        processes: per-process cycle breakdowns, check counts, and
        every detection — what an administrator would ship to their
        logging pipeline (§5.2: "reports the detection ... to the
        administrators or users")."""
        return {
            "policy": {
                "pkt_count": self.policy.pkt_count,
                "cred_ratio": self.policy.cred_ratio,
                "endpoints": sorted(self.policy.endpoints),
                "check_on_pmi": self.policy.check_on_pmi,
                "path_sensitive": self.policy.path_sensitive,
                "engine": self.policy.engine,
            },
            "processes": [
                {
                    "pid": pp.process.pid,
                    "name": pp.process.name,
                    "cr3": pp.process.cr3,
                    "checks": pp.stats.checks,
                    "fast_passes": pp.stats.fast_passes,
                    "slow_path_runs": pp.stats.slow_path_runs,
                    "pmi_count": pp.stats.pmi_count,
                    "trace_cycles": pp.encoder.cycles,
                    "decode_cycles": pp.stats.decode_cycles,
                    "check_cycles": pp.stats.check_cycles,
                    "other_cycles": pp.stats.other_cycles,
                    "high_credit_edge_ratio":
                        pp.stats.high_credit_edge_ratio,
                }
                for pp in self._protected.values()
            ],
            "detections": [
                {
                    "pid": det.pid,
                    "syscall": int(det.syscall_nr),
                    "path": det.path,
                    "reason": det.reason,
                }
                for det in self.detections
            ],
        }

    def overhead_for(self, process: Process) -> float:
        """Monitoring overhead relative to the process's own cycles."""
        stats = self.stats_for(process)
        app_cycles = process.executor.cycles
        return stats.total_cycles / app_cycles if app_cycles else 0.0
