"""FlowGuard policy knobs (§5.2, §7.1.1)."""

from __future__ import annotations

from dataclasses import dataclass, field, fields
from typing import FrozenSet

from repro.osmodel.syscalls import SENSITIVE_SYSCALLS, Sys

#: valid ``scan_kernel`` policy values (mirrors
#: ``repro.ipt.columnar.set_scan_kernel``).
SCAN_KERNEL_MODES = ("auto", "on", "off")
#: valid ``slow_lane`` policy values.
SLOW_LANES = ("columnar", "objects")


@dataclass
class FlowGuardPolicy:
    """The two security parameters plus endpoint configuration.

    - ``pkt_count``: lower bound on TIP packets checked per endpoint
      (30 in the paper — defeats history-flushing unless the attacker
      crafts 30+ NOP-like gadgets that stay on high-credit edges),
    - ``cred_ratio``: minimum fraction of high-credit edges in a passing
      fast-path check.  The paper sets it to 1.0 — *any* low-credit edge
      forwards the window to the slow path,
    - ``require_cross_module`` / ``require_executable``: the checked
      window must stride multiple modules with at least one TIP in the
      executable, closing the return-to-lib endpoint-in-another-module
      gap,
    - ``endpoints``: the intercepted syscall set (PathArmor's by
      default), user-extensible per §7.1.2,
    - ``check_on_pmi``: also treat buffer-full PMIs as endpoints (the
      §7.1.2 worst-case fallback for endpoint-pruning attacks).
    """

    pkt_count: int = 30
    cred_ratio: float = 1.0
    require_cross_module: bool = True
    require_executable: bool = True
    endpoints: FrozenSet[int] = field(
        default_factory=lambda: frozenset(int(s) for s in SENSITIVE_SYSCALLS)
    )
    check_on_pmi: bool = False
    #: cache slow-path negatives as high-credit edges (§7.1.1).
    cache_slow_path_negatives: bool = True
    #: the paper's future-work extension: additionally require every
    #: k-gram of consecutive TIP targets in the window to have been
    #: observed during training (stitching trained edges into novel
    #: orders demotes to the slow path).
    path_sensitive: bool = False
    #: override the PSB sync-point period (bytes); None keeps the RTIT
    #: default.  Finer periods trade trace bytes for smaller decode
    #: windows per check.
    psb_period: int = 0  # 0 = hardware default
    #: content-addressed segment decode cache capacity (entries); 0
    #: disables it.  Shared across every process the monitor protects,
    #: so byte-identical PSB segments decode once per fleet.
    segment_cache_entries: int = 0
    #: per-index (src, dst, tnt) verdict memo capacity; 0 disables it.
    edge_cache_entries: int = 0
    #: fast-path decode engine: ``"columnar"`` (table-driven scan +
    #: batched edge check — the default; identical verdicts and charged
    #: cycles, materially less wall-clock) or ``"objects"`` (the
    #: original per-packet dataclass engine).
    engine: str = "columnar"
    #: columnar scan kernel: ``"auto"`` (use the compiled C kernel when
    #: it builds — the default; inherits the process/env setting),
    #: ``"on"`` (require it; fail fast if unbuildable) or ``"off"``
    #: (force the pure-Python vectorised scan).  All three are
    #: column-identical; only wall-clock differs.
    scan_kernel: str = "auto"
    #: slow-path input lane on the columnar engine: ``"columnar"`` (the
    #: default — replay raw segment bytes via the byte cursor; the
    #: degraded lane never materialises packet objects) or ``"objects"``
    #: (materialise the legacy ``DecodedPacket`` list first).  Verdicts
    #: and cycles are identical; only wall-clock differs.
    slow_lane: str = "columnar"
    #: flow-index sharding: 0 keeps the flat ``FlowSearchIndex``; N >= 1
    #: builds a ``ShardedFlowSearchIndex`` with N per-module promote/
    #: memo domains.  Charges and verdicts are identical (the spine is
    #: shared); only mutable-state layout differs.
    index_shards: int = 0

    def __post_init__(self) -> None:
        if self.scan_kernel not in SCAN_KERNEL_MODES:
            raise ValueError(
                f"unknown scan_kernel mode {self.scan_kernel!r}; "
                f"pick one of {SCAN_KERNEL_MODES}"
            )
        if self.slow_lane not in SLOW_LANES:
            raise ValueError(
                f"unknown slow_lane {self.slow_lane!r}; "
                f"pick one of {SLOW_LANES}"
            )

    # -- serialisation -------------------------------------------------------

    def to_dict(self) -> dict:
        """JSON-ready form (endpoints as a sorted list)."""
        out = {f.name: getattr(self, f.name) for f in fields(self)}
        out["endpoints"] = sorted(self.endpoints)
        return out

    @classmethod
    def from_dict(cls, data: dict) -> "FlowGuardPolicy":
        known = {f.name for f in fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ValueError(
                f"unknown FlowGuardPolicy keys: "
                f"{', '.join(sorted(unknown))}"
            )
        kwargs = dict(data)
        if "endpoints" in kwargs:
            kwargs["endpoints"] = frozenset(
                int(e) for e in kwargs["endpoints"]
            )
        return cls(**kwargs)

    def with_endpoints(self, *extra: int) -> "FlowGuardPolicy":
        """A copy with additional user-specified endpoints."""
        return FlowGuardPolicy(
            pkt_count=self.pkt_count,
            cred_ratio=self.cred_ratio,
            require_cross_module=self.require_cross_module,
            require_executable=self.require_executable,
            endpoints=self.endpoints | frozenset(int(e) for e in extra),
            check_on_pmi=self.check_on_pmi,
            cache_slow_path_negatives=self.cache_slow_path_negatives,
            path_sensitive=self.path_sensitive,
            psb_period=self.psb_period,
            segment_cache_entries=self.segment_cache_entries,
            edge_cache_entries=self.edge_cache_entries,
            engine=self.engine,
            scan_kernel=self.scan_kernel,
            slow_lane=self.slow_lane,
            index_shards=self.index_shards,
        )
