"""The fast path (§5.3): packet-layer decode + ITC-CFG search.

The checker decodes only the *tail* of the ToPA buffer — scanning
backward for the nearest PSB sync point that yields enough TIP packets
and the required module coverage — then verifies every consecutive TIP
pair against the credit-labelled ITC-CFG:

- a pair with no ITC edge  -> **VIOLATION** (attack, no false positives),
- all edges high-credit with matching TNT -> **PASS**,
- otherwise -> **SUSPICIOUS**, forwarded to the slow path.

A segment whose bytes no longer decode (drain corruption) degrades
rather than aborts the check: the tail scan stops at the corrupt
segment and judges the clean suffix that re-synced at the next PSB —
never stitching a window across the gap, which would fabricate
non-adjacent TIP pairs.  Every such downgrade is recorded in the
attached :class:`~repro.resilience.DegradationLedger`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro import costs
from repro.binary.loader import Image
from repro.telemetry import get_telemetry
from repro.ipt.columnar import ColumnarTail, columnar_scan
from repro.ipt.fast_decoder import (
    SegmentDecode,
    TipRecord,
    fast_decode,
    psb_offsets,
)
from repro.ipt.packets import DecodedPacket, PacketError, PacketKind
from repro.itccfg.credits import CreditLevel
from repro.itccfg.paths import PathIndex
from repro.itccfg.searchindex import FlowSearchIndex

#: decode engines a checker can run (``repro.monitor.policy`` and the
#: CLI validate against this).
ENGINES = ("columnar", "objects")


class Verdict(enum.Enum):
    PASS = "pass"
    SUSPICIOUS = "suspicious"  # run the slow path
    VIOLATION = "violation"  # attack detected
    INSUFFICIENT = "insufficient"  # not enough trace to judge


@dataclass
class FastPathResult:
    verdict: Verdict
    checked_pairs: int = 0
    low_credit_pairs: List[Tuple[int, int]] = field(default_factory=list)
    violation_edge: Optional[Tuple[int, int]] = None
    decode_cycles: float = 0.0
    search_cycles: float = 0.0
    #: the decoded window, for hand-off to the slow path.
    window: List[TipRecord] = field(default_factory=list)
    window_offset: int = 0  # stream offset the window decode started at
    #: raw packets of the decoded tail (slow-path input).
    packets: list = field(default_factory=list)
    #: undecodable PSB segments the tail scan stopped at (degradation).
    corrupt_segments: int = 0

    def slow_path_packets(self) -> list:
        """Packets for slow-path hand-off: from the PSB sync point
        nearest *before* the checked window, not the whole tail — the
        slow path only needs to reconstruct the suspicious region."""
        if not self.window:
            return self.packets
        window_start = self.window[0].offset
        begin = 0
        for index, packet in enumerate(self.packets):
            if packet.offset > window_start:
                break
            if packet.kind is PacketKind.PSB:
                begin = index
        return self.packets[begin:]

    def slow_path_source(self):
        """Slow-path input for the configured lane.

        On the columnar engine this returns a
        :class:`~repro.ipt.columnar.ColumnarSlowSource` — the same
        PSB-trim as :meth:`slow_path_packets` but as raw segment bytes,
        so the degraded lane never materialises ``DecodedPacket``
        objects.  On the objects engine (or a pre-columnar ``packets``
        list) it falls back to the packet list.
        """
        slow = getattr(self.packets, "slow_source", None)
        if slow is None:
            return self.slow_path_packets()
        return slow(self.window[0].offset if self.window else None)


class FastPathChecker:
    """Stateless checking logic over a search index."""

    def __init__(
        self,
        index: FlowSearchIndex,
        image: Image,
        pkt_count: int = 30,
        cred_ratio: float = 1.0,
        require_cross_module: bool = True,
        require_executable: bool = True,
        path_index: "PathIndex | None" = None,
        segment_cache=None,
        ledger=None,
        owner_pid: int = -1,
        engine: str = "columnar",
    ) -> None:
        if engine not in ENGINES:
            raise ValueError(
                f"unknown decode engine {engine!r}; pick one of {ENGINES}"
            )
        #: decode engine: ``"columnar"`` (the default — table-driven
        #: scan + batched edge check, same verdicts and charged cycles,
        #: less wall-clock) or ``"objects"`` (the original per-packet
        #: dataclass engine).
        self.engine = engine
        self.index = index
        self.image = image
        self.pkt_count = pkt_count
        self.cred_ratio = cred_ratio
        self.require_cross_module = require_cross_module
        self.require_executable = require_executable
        #: optional context-sensitive extension: trained k-gram paths.
        self.path_index = path_index
        #: optional shared :class:`repro.ipt.SegmentDecodeCache`;
        #: byte-identical PSB segments then decode once across checks
        #: (and across checkers sharing the cache).
        self.segment_cache = segment_cache
        #: optional :class:`~repro.resilience.DegradationLedger` that
        #: audits corrupt-segment recovery, attributed to ``owner_pid``.
        self.ledger = ledger
        self.owner_pid = owner_pid
        #: corrupt segments hit by the most recent / all decode_tail
        #: calls (the 4-tuple return shape predates degradation).
        self.last_corrupt_segments = 0
        self.corrupt_segments = 0

    # -- tail decoding -------------------------------------------------------

    def decode_tail(self, data: bytes):
        """Decode backward-growing tail windows until requirements hold.

        Returns (records, packets, decode_cycles, start_offset).  Only
        the bytes actually decoded are charged — the §5.3 point that the
        whole ToPA buffer need not be decoded.

        Each PSB segment decodes exactly once: the scan walks backward
        from the buffer end, prepending one segment at a time until the
        ``pkt_count``/module-span requirements hold.  (The previous form
        re-ran ``fast_decode(data[start:])`` for every candidate start —
        quadratic in the tail length.)  Segments decode independently
        because PSBs reset IP compression; the dangling TNT bits and
        far-transfer marker a segment ends with are stitched onto the
        first TIP of the already-accumulated suffix.

        A segment that raises :class:`PacketError` (corrupt drain bytes)
        stops the backward scan: the clean suffix already accumulated —
        re-synced at the PSB *after* the corruption — is the window.
        Skipping over the gap instead would pair TIPs that were never
        adjacent and fabricate violations.  The failed decode is still
        charged for the bytes scanned, and the downgrade lands in the
        ledger (``corrupt-segment``, ``cache-bypass``, ``psb-resync``).

        With the columnar engine this 4-tuple shape is served by
        materialising the columnar tail — identical records, packets
        (lazily) and cycles; the engine-native entry point the check
        loop uses is :meth:`decode_tail_columnar`.
        """
        if self.engine == "columnar":
            tail = self.decode_tail_columnar(data)
            return tail.records(), tail.lazy_packets(), tail.cycles, tail.start
        self.last_corrupt_segments = 0
        offsets = psb_offsets(data)
        if not offsets:
            return [], [], 0.0, len(data)
        bounds = offsets + [len(data)]
        view = memoryview(data)
        records: List[TipRecord] = []
        packets: List[DecodedPacket] = []
        cycles = 0.0
        start = offsets[-1]
        for index in range(len(offsets) - 1, -1, -1):
            try:
                seg = self._decode_segment(view, offsets[index],
                                           bounds[index + 1])
            except PacketError:
                cycles += self._corrupt_segment(
                    offsets[index], bounds[index + 1], bool(records)
                )
                break
            if seg.truncated and index < len(offsets) - 1:
                # Only the *final* segment of a clean stream can end
                # mid-packet (the snapshot caught the producer).  A
                # truncated middle segment means its bytes are corrupt
                # in a way that mimics truncation — keeping its prefix
                # records would stitch across the gap and pair TIPs
                # that were never adjacent.
                cycles += seg.cycles + self._corrupt_segment(
                    offsets[index], bounds[index + 1], bool(records)
                )
                break
            cycles += seg.cycles
            if records and (seg.trailing_tnt or seg.trailing_far):
                head = records[0]
                records[0] = TipRecord(
                    head.ip,
                    seg.trailing_tnt + head.tnt_before,
                    head.offset,
                    head.after_far or seg.trailing_far,
                )
            records = seg.records + records
            packets = seg.packets + packets
            start = offsets[index]
            if len(records) > self.pkt_count and self._spans_modules(records):
                break
        return records, packets, cycles, start

    def decode_tail_columnar(self, data: bytes) -> ColumnarTail:
        """Columnar mirror of :meth:`decode_tail`: the same backward
        walk, corrupt/truncated-segment handling and charged cycles (the
        identical accumulation expressions, term for term), but segments
        stay columnar — prepending is O(1) and the TNT stitch is a
        signature composition, with nothing materialised until the check
        loop asks for its window."""
        self.last_corrupt_segments = 0
        tail = ColumnarTail()
        offsets = psb_offsets(data)
        if not offsets:
            tail.start = len(data)
            return tail
        bounds = offsets + [len(data)]
        view = memoryview(data)
        cycles = 0.0
        start = offsets[-1]
        for index in range(len(offsets) - 1, -1, -1):
            try:
                seg, seg_cycles = self._decode_segment_columnar(
                    view, offsets[index], bounds[index + 1]
                )
            except PacketError:
                cycles += self._corrupt_segment(
                    offsets[index], bounds[index + 1], tail.count > 0
                )
                break
            if seg.truncated and index < len(offsets) - 1:
                # Same rule as the object walk: only the final segment
                # of a clean stream may end mid-packet.
                cycles += seg_cycles + self._corrupt_segment(
                    offsets[index], bounds[index + 1], tail.count > 0
                )
                break
            cycles += seg_cycles
            tail.prepend(seg, offsets[index])
            start = offsets[index]
            if tail.count > self.pkt_count and (
                # Evaluate the flags before materialising the ip
                # window — _spans_modules_ips would ignore it anyway
                # when neither module requirement is armed.
                not (self.require_cross_module or self.require_executable)
                or self._spans_modules_ips(
                    tail.last_ips(self.pkt_count + 1)
                )
            ):
                break
        tail.cycles = cycles
        tail.start = start
        return tail

    def _corrupt_segment(self, begin: int, end: int, resynced: bool) -> float:
        """Account one undecodable segment; returns the cycles the
        failed decode burned (the decoder scanned up to the corruption,
        charged conservatively for the whole segment)."""
        self.last_corrupt_segments += 1
        self.corrupt_segments += 1
        if self.ledger is not None:
            self.ledger.record(
                "corrupt-segment", pid=self.owner_pid,
                detail=f"segment@{begin}",
            )
            if self.segment_cache is not None:
                self.ledger.record("cache-bypass", pid=self.owner_pid,
                                   detail=f"segment@{begin}")
            if resynced:
                self.ledger.record("psb-resync", pid=self.owner_pid,
                                   detail=f"resync@{end}")
        tel = get_telemetry()
        if tel.enabled:
            tel.metrics.counter("fastpath.corrupt_segments").inc()
        return (end - begin) * costs.FAST_DECODE_CYCLES_PER_BYTE

    def _decode_segment(self, view, begin: int, end: int) -> SegmentDecode:
        """One PSB segment, rebased to the stream, via the cache if
        one is attached."""
        if self.segment_cache is not None:
            return self.segment_cache.decode_segment(
                view[begin:end], base=begin
            )
        result = fast_decode(view[begin:end]).rebased(begin)
        records, trailing_tnt, trailing_far = (
            result.tip_records_with_state()
        )
        return SegmentDecode(
            result.packets, records, trailing_tnt, trailing_far,
            result.cycles, result.truncated,
        )

    def _decode_segment_columnar(self, view, begin: int, end: int):
        """One PSB segment in columnar form, via the cache if attached;
        returns ``(segment, charged_cycles)`` — the columns stay
        segment-relative, the caller carries ``begin`` as the base."""
        if self.segment_cache is not None:
            return self.segment_cache.decode_segment_columnar(
                view[begin:end]
            )
        seg = columnar_scan(view[begin:end])
        return seg, seg.cycles

    def _spans_modules(self, records: List[TipRecord]) -> bool:
        if not (self.require_cross_module or self.require_executable):
            return True
        return self._spans_modules_ips(
            [record.ip for record in records[-(self.pkt_count + 1):]]
        )

    def _spans_modules_ips(self, ips: list) -> bool:
        if not (self.require_cross_module or self.require_executable):
            return True
        modules = set()
        has_exec = False
        for ip in ips:
            lm = self.image.module_of(ip)
            if lm is None:
                continue
            modules.add(lm.name)
            if lm.is_executable:
                has_exec = True
        if self.require_executable and not has_exec:
            return False
        if self.require_cross_module and len(modules) < 2:
            return False
        return True

    # -- checking -----------------------------------------------------------------

    def check(self, data: bytes) -> FastPathResult:
        """Run the fast path over a ToPA snapshot.

        The check loop itself lives in :meth:`_check`; this wrapper only
        reports the outcome to telemetry, behind a single enabled-flag
        test so a disabled run pays one attribute check per call (the
        near-zero-overhead contract, measured by
        ``benchmarks/test_telemetry_overhead.py``).
        """
        result = self._check(data)
        tel = get_telemetry()
        if tel.enabled:
            m = tel.metrics
            m.counter("fastpath.checks").inc(verdict=result.verdict.value)
            m.counter("fastpath.pairs_checked").inc(result.checked_pairs)
            m.counter("fastpath.low_credit_pairs").inc(
                len(result.low_credit_pairs)
            )
            m.histogram("fastpath.window_tips").observe(len(result.window))
            m.histogram("fastpath.decode_cycles").observe(
                result.decode_cycles
            )
            m.histogram("fastpath.search_cycles").observe(
                result.search_cycles
            )
        return result

    def _check(self, data: bytes) -> FastPathResult:
        if self.engine == "columnar":
            return self._check_columnar(data)
        records, packets, decode_cycles, start = self.decode_tail(data)
        corrupt = self.last_corrupt_segments
        if len(records) < 2:
            return FastPathResult(
                Verdict.INSUFFICIENT,
                decode_cycles=decode_cycles,
                window=records,
                window_offset=start,
                packets=packets,
                corrupt_segments=corrupt,
            )
        window = records[-(self.pkt_count + 1):]
        search_before = self.index.cycles
        low_credit: List[Tuple[int, int]] = []
        checked = 0
        for prev, cur in zip(window, window[1:]):
            lookup = self.index.check_edge(prev.ip, cur.ip, cur.tnt_before)
            checked += 1
            if not lookup.in_graph:
                return FastPathResult(
                    Verdict.VIOLATION,
                    checked_pairs=checked,
                    violation_edge=(prev.ip, cur.ip),
                    decode_cycles=decode_cycles,
                    search_cycles=self.index.cycles - search_before,
                    window=window,
                    window_offset=start,
                    packets=packets,
                    corrupt_segments=corrupt,
                )
            if lookup.credit is not CreditLevel.HIGH or not lookup.tnt_ok:
                low_credit.append((prev.ip, cur.ip))
        search_cycles = self.index.cycles - search_before
        high = checked - len(low_credit)
        ratio = high / checked if checked else 0.0
        verdict = (
            Verdict.PASS if ratio >= self.cred_ratio else Verdict.SUSPICIOUS
        )
        if verdict is Verdict.PASS and self.path_index is not None:
            # Path-sensitive extension: the node sequence itself must
            # have been trained, not just the individual edges.
            nodes = [record.ip for record in window]
            untrained = self.path_index.untrained_grams(nodes)
            if untrained:
                verdict = Verdict.SUSPICIOUS
                low_credit.extend(
                    (gram[0], gram[1]) for gram in untrained[:4]
                )
        return FastPathResult(
            verdict,
            checked_pairs=checked,
            low_credit_pairs=low_credit,
            decode_cycles=decode_cycles,
            search_cycles=search_cycles,
            window=window,
            window_offset=start,
            packets=packets,
            corrupt_segments=corrupt,
        )

    def _check_columnar(self, data: bytes) -> FastPathResult:
        """The columnar fast path: columnar tail + one batched edge
        check.  Window records materialise eagerly (they are at most
        ``pkt_count + 1`` and feed telemetry/slow-path hand-off); the
        tail's packets stay lazy."""
        tail = self.decode_tail_columnar(data)
        corrupt = self.last_corrupt_segments
        decode_cycles = tail.cycles
        start = tail.start
        packets = tail.lazy_packets()
        if tail.count < 2:
            return FastPathResult(
                Verdict.INSUFFICIENT,
                decode_cycles=decode_cycles,
                window=tail.records(),
                window_offset=start,
                packets=packets,
                corrupt_segments=corrupt,
            )
        window, ips, sigs = tail.window(self.pkt_count + 1)
        search_before = self.index.cycles
        batch = self.index.check_batch(ips, sigs)
        search_cycles = self.index.cycles - search_before
        if batch.violation is not None:
            return FastPathResult(
                Verdict.VIOLATION,
                checked_pairs=batch.checked,
                violation_edge=batch.violation,
                decode_cycles=decode_cycles,
                search_cycles=search_cycles,
                window=window,
                window_offset=start,
                packets=packets,
                corrupt_segments=corrupt,
            )
        low_credit = batch.low_credit
        checked = batch.checked
        high = checked - len(low_credit)
        ratio = high / checked if checked else 0.0
        verdict = (
            Verdict.PASS if ratio >= self.cred_ratio else Verdict.SUSPICIOUS
        )
        if verdict is Verdict.PASS and self.path_index is not None:
            untrained = self.path_index.untrained_grams(ips)
            if untrained:
                verdict = Verdict.SUSPICIOUS
                low_credit.extend(
                    (gram[0], gram[1]) for gram in untrained[:4]
                )
        return FastPathResult(
            verdict,
            checked_pairs=checked,
            low_credit_pairs=low_credit,
            decode_cycles=decode_cycles,
            search_cycles=search_cycles,
            window=window,
            window_offset=start,
            packets=packets,
            corrupt_segments=corrupt,
        )
