"""The slow path (§5.3): full decode + context-sensitive checking.

Triggered when the fast path meets a low-credit edge or an unseen TNT
pattern.  The engine runs as an (upcalled) user-level process in the
paper; here the upcall is modelled as a fixed cycle cost.  It:

1. fully decodes the suspicious window at the instruction-flow layer
   (requires the binaries, charges per instruction),
2. enforces fine-grained forward edges: every reconstructed indirect
   call/jump target must be in the TypeArmor-restricted O-CFG set,
3. enforces the single-target backward-edge policy with a shadow stack,
4. on a clean verdict, reports which ITC pairs to promote (negative
   caching, §7.1.1).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro import costs
from repro.analysis.cfg import ControlFlowGraph
from repro.cpu.events import CoFIKind
from repro.cpu.memory import Memory
from repro.ipt.fast_decoder import TipRecord
from repro.ipt.full_decoder import FullDecoder, TraceMismatch
from repro.ipt.packets import DecodedPacket
from repro.monitor.shadowstack import ShadowStack, ShadowStackViolation


@dataclass
class SlowPathResult:
    ok: bool
    reason: Optional[str] = None
    violation_addr: Optional[int] = None
    cycles: float = 0.0
    insns_decoded: int = 0
    #: shadow-stack share of ``cycles`` (telemetry phase attribution).
    shadow_cycles: float = 0.0
    #: (src_ip, dst_ip, tnt) ITC pairs confirmed clean — promotion list.
    confirmed_pairs: List[Tuple[int, int, Tuple[bool, ...]]] = field(
        default_factory=list
    )


class SlowPathEngine:
    """Context-sensitive verification over a fully decoded window."""

    def __init__(self, memory: Memory, ocfg: ControlFlowGraph) -> None:
        self.memory = memory
        self.ocfg = ocfg
        self._decoder = FullDecoder(memory)

    def check(
        self,
        packets: List[DecodedPacket],
        window: Optional[List[TipRecord]] = None,
    ) -> SlowPathResult:
        """Verify a packet window; ``window`` lists the fast-path TIP
        records for promotion bookkeeping.

        ``packets`` is either a ``DecodedPacket`` list or a columnar
        slow source (``FastPathResult.slow_path_source``) — the full
        decoder walks either through the same cursor protocol, with
        identical cycles and verdicts; the columnar lane just skips
        packet-object materialisation.
        """
        cycles = costs.SLOWPATH_UPCALL_CYCLES
        try:
            decoded = self._decoder.decode(packets)
        except TraceMismatch as exc:
            return SlowPathResult(
                ok=False,
                reason=f"decoder desync: {exc}",
                cycles=cycles,
            )
        cycles += decoded.cycles

        shadow = ShadowStack()
        for edge in decoded.edges:
            # Forward edges: fine-grained TypeArmor target sets.
            if edge.kind in (CoFIKind.INDIRECT_CALL, CoFIKind.INDIRECT_JMP):
                allowed = self.ocfg.indirect_targets.get(edge.src)
                if allowed is None or edge.dst not in allowed:
                    return SlowPathResult(
                        ok=False,
                        reason=(
                            f"forward-edge violation: {edge.kind.value} at "
                            f"{edge.src:#x} -> {edge.dst:#x}"
                        ),
                        violation_addr=edge.src,
                        cycles=cycles + shadow.cycles,
                        insns_decoded=decoded.insn_count,
                        shadow_cycles=shadow.cycles,
                    )
            # Backward edges: shadow stack; returns that outrun the
            # window's reconstructed stack fall back to the conservative
            # call/return-matched O-CFG target sets.
            if edge.kind is CoFIKind.RET and shadow.depth == 0:
                allowed = self.ocfg.indirect_targets.get(edge.src)
                if allowed and edge.dst not in allowed:
                    return SlowPathResult(
                        ok=False,
                        reason=(
                            f"backward-edge violation: ret at "
                            f"{edge.src:#x} -> {edge.dst:#x} outside the "
                            f"call/return-matched set"
                        ),
                        violation_addr=edge.src,
                        cycles=cycles + shadow.cycles,
                        insns_decoded=decoded.insn_count,
                        shadow_cycles=shadow.cycles,
                    )
            try:
                shadow.feed(edge)
            except ShadowStackViolation as exc:
                return SlowPathResult(
                    ok=False,
                    reason=str(exc),
                    violation_addr=exc.ret_addr,
                    cycles=cycles + shadow.cycles,
                    insns_decoded=decoded.insn_count,
                    shadow_cycles=shadow.cycles,
                )

        confirmed: List[Tuple[int, int, Tuple[bool, ...]]] = []
        if window:
            for prev, cur in zip(window, window[1:]):
                confirmed.append((prev.ip, cur.ip, cur.tnt_before))
        return SlowPathResult(
            ok=True,
            cycles=cycles + shadow.cycles,
            insns_decoded=decoded.insn_count,
            shadow_cycles=shadow.cycles,
            confirmed_pairs=confirmed,
        )
