"""Slow-path shadow stack (§5.3).

Rebuilt from the full-decoded instruction flow: each call pushes its
return address, each return must pop exactly that address — the
single-target backward-edge policy.  Because a checked window starts
mid-execution, returns that outrun the reconstructed stack are
*unknown* rather than violations; the forward-edge analysis still
covers them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from repro import costs
from repro.cpu.events import CoFIKind
from repro.ipt.full_decoder import FlowEdge

# Encoded lengths of the two call instructions (opcode + operands).
_DIRECT_CALL_LEN = 5
_INDIRECT_CALL_LEN = 2


class ShadowStackViolation(Exception):
    """A return targeted an address other than its call's return site."""

    def __init__(self, ret_addr: int, expected: int, actual: int) -> None:
        super().__init__(
            f"ret at {ret_addr:#x}: expected return to {expected:#x}, "
            f"observed {actual:#x}"
        )
        self.ret_addr = ret_addr
        self.expected = expected
        self.actual = actual


@dataclass
class ShadowStack:
    """Replays call/return discipline over reconstructed flow edges."""

    _stack: List[int] = field(default_factory=list)
    cycles: float = 0.0
    checked_returns: int = 0
    unknown_returns: int = 0

    def feed(self, edge: FlowEdge) -> None:
        """Process one reconstructed edge; raises on a mismatch."""
        if edge.kind is CoFIKind.DIRECT_CALL:
            self._stack.append(edge.src + _DIRECT_CALL_LEN)
            self.cycles += costs.SHADOW_STACK_OP_CYCLES
        elif edge.kind is CoFIKind.INDIRECT_CALL:
            self._stack.append(edge.src + _INDIRECT_CALL_LEN)
            self.cycles += costs.SHADOW_STACK_OP_CYCLES
        elif edge.kind is CoFIKind.RET:
            self.cycles += costs.SHADOW_STACK_OP_CYCLES
            if not self._stack:
                # The window began inside a call we never saw.
                self.unknown_returns += 1
                return
            expected = self._stack.pop()
            self.checked_returns += 1
            if edge.dst != expected:
                raise ShadowStackViolation(edge.src, expected, edge.dst)

    def feed_all(self, edges) -> None:
        for edge in edges:
            self.feed(edge)

    @property
    def depth(self) -> int:
        return len(self._stack)
