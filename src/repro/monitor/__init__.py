"""The FlowGuard runtime monitor (§5).

A kernel module that (i) configures IPT to trace the protected process
(CR3-filtered, user-only, ToPA output), (ii) intercepts the
security-sensitive syscall endpoints by swapping syscall-table entries,
and (iii) checks the traced flow — fast path first (packet-layer decode
searched over the credit-labelled ITC-CFG), falling back to the slow
path (full instruction-flow decode + fine-grained forward edges +
shadow stack) when a low-credit edge or unseen TNT pattern appears.
"""

from repro.monitor.policy import FlowGuardPolicy
from repro.monitor.fastpath import FastPathChecker, FastPathResult, Verdict
from repro.monitor.shadowstack import ShadowStack, ShadowStackViolation
from repro.monitor.slowpath import SlowPathEngine, SlowPathResult
from repro.monitor.flowguard import Detection, FlowGuardMonitor, ProtectedProcess

__all__ = [
    "Detection",
    "FastPathChecker",
    "FastPathResult",
    "FlowGuardMonitor",
    "FlowGuardPolicy",
    "ProtectedProcess",
    "ShadowStack",
    "ShadowStackViolation",
    "SlowPathEngine",
    "SlowPathResult",
    "Verdict",
]
