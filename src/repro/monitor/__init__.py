"""The FlowGuard runtime monitor (§5).

A kernel module that (i) configures IPT to trace the protected process
(CR3-filtered, user-only, ToPA output), (ii) intercepts the
security-sensitive syscall endpoints by swapping syscall-table entries,
and (iii) checks the traced flow — fast path first (packet-layer decode
searched over the credit-labelled ITC-CFG), falling back to the slow
path (full instruction-flow decode + fine-grained forward edges +
shadow stack) when a low-credit edge or unseen TNT pattern appears.

Importing names from this package root is **deprecated**: the stable
public surface is :mod:`repro.api`, and internals live in their
submodules (``repro.monitor.flowguard``, ``repro.monitor.fastpath``,
...).  The lazy shims below keep old imports working, each access
emitting a ``DeprecationWarning``.
"""

import importlib
import warnings

#: old package-root exports -> their canonical submodule home.
_EXPORTS = {
    "Detection": "repro.monitor.flowguard",
    "FastPathChecker": "repro.monitor.fastpath",
    "FastPathResult": "repro.monitor.fastpath",
    "FlowGuardMonitor": "repro.monitor.flowguard",
    "FlowGuardPolicy": "repro.monitor.policy",
    "ProtectedProcess": "repro.monitor.flowguard",
    "ShadowStack": "repro.monitor.shadowstack",
    "ShadowStackViolation": "repro.monitor.shadowstack",
    "SlowPathEngine": "repro.monitor.slowpath",
    "SlowPathResult": "repro.monitor.slowpath",
    "Verdict": "repro.monitor.fastpath",
}

__all__ = sorted(_EXPORTS)


def __getattr__(name):
    home = _EXPORTS.get(name)
    if home is None:
        raise AttributeError(
            f"module {__name__!r} has no attribute {name!r}"
        )
    warnings.warn(
        f"importing {name!r} from {__name__} is deprecated; "
        f"use repro.api or {home}",
        DeprecationWarning,
        stacklevel=2,
    )
    return getattr(importlib.import_module(home), name)


def __dir__():
    return sorted(set(globals()) | set(_EXPORTS))
