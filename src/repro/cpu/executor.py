"""The interpreter: fetch, decode, execute, retire CoFI events.

Decoded instructions are cached per address (code pages are read-only
under the W^X assumption, so the cache never needs invalidation during a
run; :meth:`Executor.flush_icache` exists for loaders that re-map code).

Cycle accounting follows :mod:`repro.costs`; tracing hardware attached to
the event bus keeps its own cycle accounts which the experiment harnesses
combine with the CPU's.
"""

from __future__ import annotations

import enum
from typing import Callable, Dict, List, Optional, Tuple

from repro import costs
from repro.cpu.events import BranchEvent, CoFIKind
from repro.cpu.machine import Machine, U64_MASK, to_signed
from repro.cpu.memory import MemoryError_
from repro.isa.encoding import DecodeError, decode_at, instruction_length
from repro.isa.instructions import Insn, Op
from repro.isa.registers import SP, Cond

Listener = Callable[[BranchEvent], None]


class CPUFault(Exception):
    """A hardware fault: bad fetch, access violation, divide by zero."""

    def __init__(self, message: str, ip: int) -> None:
        super().__init__(f"{message} (ip={ip:#x})")
        self.ip = ip


class HaltReason(enum.Enum):
    HALTED = "halted"
    STEPS_EXHAUSTED = "steps_exhausted"
    INTERRUPTED = "interrupted"


class Executor:
    """Interprets encoded instructions from a machine's memory."""

    def __init__(
        self,
        machine: Machine,
        syscall_handler: Optional[Callable[[Machine], None]] = None,
    ) -> None:
        self.machine = machine
        self.syscall_handler = syscall_handler
        self.listeners: List[Listener] = []
        self.cycles = 0.0
        self.insn_count = 0
        #: Interrupt line: listeners (a ToPA PMI, a scheduler) assert it
        #: to stop :meth:`run` at the next instruction boundary.  The
        #: line auto-deasserts when the run loop observes it.
        self.stop_requested = False
        self._icache: Dict[int, Tuple[Insn, int]] = {}

    # -- instrumentation ---------------------------------------------------

    def add_listener(self, listener: Listener) -> None:
        """Subscribe to retired CoFI events."""
        self.listeners.append(listener)

    def remove_listener(self, listener: Listener) -> None:
        self.listeners.remove(listener)

    def flush_icache(self) -> None:
        """Drop decoded-instruction cache (after remapping code pages)."""
        self._icache.clear()

    def _emit(self, event: BranchEvent) -> None:
        for listener in self.listeners:
            listener(event)

    # -- fetch/decode -------------------------------------------------------

    def _decode(self, ip: int) -> Tuple[Insn, int]:
        cached = self._icache.get(ip)
        if cached is not None:
            return cached
        # Fetch a maximal instruction window; instructions are <= 10 bytes.
        try:
            window = self.machine.memory.fetch(ip, 1)
            op_byte = window[0]
            try:
                length = instruction_length(Op(op_byte))
            except ValueError as exc:
                raise DecodeError(f"invalid opcode {op_byte:#04x}") from exc
            raw = self.machine.memory.fetch(ip, length)
            insn, _ = decode_at(raw, 0)
        except (MemoryError_, DecodeError) as exc:
            raise CPUFault(f"fetch/decode fault: {exc}", ip) from exc
        self._icache[ip] = (insn, length)
        return insn, length

    # -- stack helpers ------------------------------------------------------

    def _push(self, value: int) -> None:
        m = self.machine
        m.set_reg(SP, m.reg(SP) - 8)
        try:
            m.memory.write_u64(m.reg(SP), value)
        except MemoryError_ as exc:
            raise CPUFault(f"stack push fault: {exc}", m.ip) from exc

    def _pop(self) -> int:
        m = self.machine
        try:
            value = m.memory.read_u64(m.reg(SP))
        except MemoryError_ as exc:
            raise CPUFault(f"stack pop fault: {exc}", m.ip) from exc
        m.set_reg(SP, m.reg(SP) + 8)
        return value

    # -- execute ------------------------------------------------------------

    def step(self) -> None:
        """Execute a single instruction."""
        m = self.machine
        ip = m.ip
        insn, length = self._decode(ip)
        op = insn.op
        next_ip = ip + length
        self.cycles += costs.INSN_CYCLES[op]
        self.insn_count += 1

        # Default sequential flow; branch ops overwrite.
        m.ip = next_ip

        if op is Op.NOP:
            return
        if op is Op.HALT:
            m.halted = True
            return
        if op is Op.MOV_RI:
            m.set_reg(insn.rd, insn.imm)
            return
        if op is Op.MOV_RR:
            m.set_reg(insn.rd, m.reg(insn.rs))
            return
        if op is Op.LEA:
            m.set_reg(insn.rd, next_ip + insn.rel)
            return
        if op is Op.LOAD:
            try:
                m.set_reg(insn.rd, m.memory.read_u64(m.reg(insn.rb) + insn.off))
            except MemoryError_ as exc:
                raise CPUFault(f"load fault: {exc}", ip) from exc
            return
        if op is Op.STORE:
            try:
                m.memory.write_u64(m.reg(insn.rb) + insn.off, m.reg(insn.rs))
            except MemoryError_ as exc:
                raise CPUFault(f"store fault: {exc}", ip) from exc
            return
        if op is Op.LOADB:
            try:
                m.set_reg(insn.rd, m.memory.read_u8(m.reg(insn.rb) + insn.off))
            except MemoryError_ as exc:
                raise CPUFault(f"load fault: {exc}", ip) from exc
            return
        if op is Op.STOREB:
            try:
                m.memory.write_u8(m.reg(insn.rb) + insn.off, m.reg(insn.rs))
            except MemoryError_ as exc:
                raise CPUFault(f"store fault: {exc}", ip) from exc
            return
        if op is Op.PUSH:
            self._push(m.reg(insn.rs))
            return
        if op is Op.POP:
            m.set_reg(insn.rd, self._pop())
            return

        if op is Op.ADD or op is Op.ADDI:
            rhs = m.reg(insn.rs) if op is Op.ADD else insn.imm
            res = (m.reg(insn.rd) + rhs) & U64_MASK
            m.set_reg(insn.rd, res)
            m.zf, m.sf = res == 0, bool(res >> 63)
            return
        if op is Op.SUB or op is Op.SUBI:
            rhs = m.reg(insn.rs) if op is Op.SUB else insn.imm
            res = (m.reg(insn.rd) - rhs) & U64_MASK
            m.set_reg(insn.rd, res)
            m.zf, m.sf = res == 0, bool(res >> 63)
            return
        if op is Op.MUL or op is Op.MULI:
            rhs = m.reg(insn.rs) if op is Op.MUL else insn.imm
            res = (to_signed(m.reg(insn.rd)) * rhs) & U64_MASK
            m.set_reg(insn.rd, res)
            m.zf, m.sf = res == 0, bool(res >> 63)
            return
        if op is Op.DIV or op is Op.MOD:
            divisor = to_signed(m.reg(insn.rs))
            if divisor == 0:
                raise CPUFault("divide by zero", ip)
            dividend = to_signed(m.reg(insn.rd))
            quot = int(dividend / divisor)  # truncate toward zero
            res = quot if op is Op.DIV else dividend - quot * divisor
            m.set_reg(insn.rd, res & U64_MASK)
            return
        if op is Op.AND or op is Op.ANDI:
            rhs = m.reg(insn.rs) if op is Op.AND else insn.imm & U64_MASK
            res = m.reg(insn.rd) & rhs
            m.set_reg(insn.rd, res)
            m.zf, m.sf = res == 0, bool(res >> 63)
            return
        if op is Op.OR:
            res = m.reg(insn.rd) | m.reg(insn.rs)
            m.set_reg(insn.rd, res)
            m.zf, m.sf = res == 0, bool(res >> 63)
            return
        if op is Op.XOR:
            res = m.reg(insn.rd) ^ m.reg(insn.rs)
            m.set_reg(insn.rd, res)
            m.zf, m.sf = res == 0, bool(res >> 63)
            return
        if op is Op.SHL:
            res = (m.reg(insn.rd) << (m.reg(insn.rs) & 63)) & U64_MASK
            m.set_reg(insn.rd, res)
            return
        if op is Op.SHR:
            res = m.reg(insn.rd) >> (m.reg(insn.rs) & 63)
            m.set_reg(insn.rd, res)
            return
        if op is Op.CMP or op is Op.CMPI:
            rhs = to_signed(m.reg(insn.rs)) if op is Op.CMP else insn.imm
            diff = to_signed(m.reg(insn.rd)) - rhs
            m.zf, m.sf = diff == 0, diff < 0
            return

        if op is Op.JMP:
            target = next_ip + insn.rel
            m.ip = target
            self._emit(BranchEvent(CoFIKind.DIRECT_JMP, ip, target))
            return
        if op is Op.JCC:
            taken = Cond(insn.cc).holds(m.zf, m.sf)
            target = next_ip + insn.rel if taken else next_ip
            m.ip = target
            self._emit(BranchEvent(CoFIKind.COND_BRANCH, ip, target, taken))
            return
        if op is Op.JMPR:
            target = m.reg(insn.rs)
            m.ip = target
            self._emit(BranchEvent(CoFIKind.INDIRECT_JMP, ip, target))
            return
        if op is Op.CALL:
            target = next_ip + insn.rel
            self._push(next_ip)
            m.ip = target
            self._emit(BranchEvent(CoFIKind.DIRECT_CALL, ip, target))
            return
        if op is Op.CALLR:
            target = m.reg(insn.rs)
            self._push(next_ip)
            m.ip = target
            self._emit(BranchEvent(CoFIKind.INDIRECT_CALL, ip, target))
            return
        if op is Op.RET:
            target = self._pop()
            m.ip = target
            self._emit(BranchEvent(CoFIKind.RET, ip, target))
            return
        if op is Op.SYSCALL:
            self.cycles += costs.SYSCALL_BASE_CYCLES
            if self.syscall_handler is not None:
                # The handler may rewrite machine state (exit, sigreturn).
                self.syscall_handler(m)
            # Far transfer: destination reflects any handler redirection
            # (e.g. sigreturn), matching what IPT would trace on resume.
            self._emit(BranchEvent(CoFIKind.FAR_TRANSFER, ip, m.ip))
            return

        raise CPUFault(f"unimplemented opcode {op.name}", ip)

    def run(self, max_steps: int = 10_000_000) -> HaltReason:
        """Run until halt, interrupt, or ``max_steps`` retirements."""
        m = self.machine
        step = self.step
        for _ in range(max_steps):
            if m.halted:
                return HaltReason.HALTED
            if self.stop_requested:
                self.stop_requested = False
                return HaltReason.INTERRUPTED
            step()
        if m.halted:
            return HaltReason.HALTED
        if self.stop_requested:
            self.stop_requested = False
            return HaltReason.INTERRUPTED
        return HaltReason.STEPS_EXHAUSTED
