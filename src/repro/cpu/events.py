"""Change-of-flow (CoFI) event taxonomy — Table 3 of the paper.

Every retired control-transfer instruction produces one
:class:`BranchEvent`.  The mapping to IPT output packets is:

===================  =======================  ===============
CoFI kind            Scenario                 IPT output
===================  =======================  ===============
DIRECT_JMP           ``jmp label``            *no output*
DIRECT_CALL          ``call label``           *no output*
COND_BRANCH          ``jcc label``            TNT (one bit)
INDIRECT_JMP         ``jmpr reg``             TIP
INDIRECT_CALL        ``callr reg``            TIP
RET                  ``ret``                  TIP
FAR_TRANSFER         syscall, traps           FUP + TIP
===================  =======================  ===============
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class CoFIKind(enum.Enum):
    """The change-of-flow instruction classes of Table 3."""

    DIRECT_JMP = "direct_jmp"
    DIRECT_CALL = "direct_call"
    COND_BRANCH = "cond_branch"
    INDIRECT_JMP = "indirect_jmp"
    INDIRECT_CALL = "indirect_call"
    RET = "ret"
    FAR_TRANSFER = "far_transfer"

    @property
    def is_indirect(self) -> bool:
        """True for kinds whose target is only known at runtime."""
        return self in (
            CoFIKind.INDIRECT_JMP,
            CoFIKind.INDIRECT_CALL,
            CoFIKind.RET,
        )

    @property
    def produces_tip(self) -> bool:
        """True if IPT emits a TIP packet for this kind."""
        return self.is_indirect or self is CoFIKind.FAR_TRANSFER

    @property
    def produces_tnt(self) -> bool:
        """True if IPT emits a TNT bit for this kind."""
        return self is CoFIKind.COND_BRANCH


@dataclass(frozen=True)
class BranchEvent:
    """One retired change-of-flow instruction.

    ``src`` is the address of the CoFI instruction itself, ``dst`` the
    address control transferred to (for a non-taken conditional branch,
    the fall-through address).  ``taken`` is only meaningful for
    conditional branches.
    """

    kind: CoFIKind
    src: int
    dst: int
    taken: bool = True

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        t = "" if self.kind is not CoFIKind.COND_BRANCH else (
            " taken" if self.taken else " not-taken"
        )
        return f"{self.kind.value} {self.src:#x} -> {self.dst:#x}{t}"
