"""Sparse paged memory with page protections.

Pages are 4 KiB and materialised lazily, so address spaces can place
modules at realistic, widely separated bases (executable low, shared
libraries high) without cost.  Protections model the paper's threat-model
assumptions: code pages are read-only+execute (W^X holds, DEP/NX is on),
so control-flow hijacking — not code injection — is the attack surface.
"""

from __future__ import annotations

import struct
from typing import Dict

PAGE_SHIFT = 12
PAGE_SIZE = 1 << PAGE_SHIFT

PROT_READ = 1
PROT_WRITE = 2
PROT_EXEC = 4


class MemoryError_(Exception):
    """Access violation: unmapped address or protection mismatch."""


class Memory:
    """A sparse, paged, protected flat address space."""

    def __init__(self) -> None:
        self._pages: Dict[int, bytearray] = {}
        self._prots: Dict[int, int] = {}

    # -- mapping ---------------------------------------------------------

    def map_region(
        self, base: int, size: int, prot: int = PROT_READ | PROT_WRITE
    ) -> None:
        """Map ``size`` bytes at ``base`` (rounded out to page bounds)."""
        first = base >> PAGE_SHIFT
        last = (base + size - 1) >> PAGE_SHIFT
        for pageno in range(first, last + 1):
            if pageno not in self._pages:
                self._pages[pageno] = bytearray(PAGE_SIZE)
            self._prots[pageno] = prot

    def protect(self, base: int, size: int, prot: int) -> None:
        """Change protection of mapped pages (the mprotect model)."""
        first = base >> PAGE_SHIFT
        last = (base + size - 1) >> PAGE_SHIFT
        for pageno in range(first, last + 1):
            if pageno not in self._pages:
                raise MemoryError_(f"mprotect of unmapped page {pageno:#x}")
            self._prots[pageno] = prot

    def clone(self) -> "Memory":
        """Deep-copy the address space (the fork(2) model)."""
        other = Memory()
        other._pages = {
            pageno: bytearray(page) for pageno, page in self._pages.items()
        }
        other._prots = dict(self._prots)
        return other

    def is_mapped(self, addr: int) -> bool:
        return (addr >> PAGE_SHIFT) in self._pages

    def prot_of(self, addr: int) -> int:
        return self._prots.get(addr >> PAGE_SHIFT, 0)

    # -- raw access (loader-level, ignores protections) -------------------

    def write_raw(self, addr: int, data: bytes) -> None:
        """Loader-level write that bypasses protections."""
        pos = 0
        while pos < len(data):
            pageno = (addr + pos) >> PAGE_SHIFT
            offset = (addr + pos) & (PAGE_SIZE - 1)
            page = self._pages.get(pageno)
            if page is None:
                raise MemoryError_(f"write to unmapped {addr + pos:#x}")
            chunk = min(len(data) - pos, PAGE_SIZE - offset)
            page[offset : offset + chunk] = data[pos : pos + chunk]
            pos += chunk

    def read_raw(self, addr: int, size: int) -> bytes:
        """Loader/debugger-level read that bypasses protections."""
        out = bytearray()
        pos = 0
        while pos < size:
            pageno = (addr + pos) >> PAGE_SHIFT
            offset = (addr + pos) & (PAGE_SIZE - 1)
            page = self._pages.get(pageno)
            if page is None:
                raise MemoryError_(f"read of unmapped {addr + pos:#x}")
            chunk = min(size - pos, PAGE_SIZE - offset)
            out += page[offset : offset + chunk]
            pos += chunk
        return bytes(out)

    # -- checked access (CPU-level) ---------------------------------------

    def _check(self, addr: int, size: int, prot: int, what: str) -> None:
        first = addr >> PAGE_SHIFT
        last = (addr + size - 1) >> PAGE_SHIFT
        for pageno in range(first, last + 1):
            have = self._prots.get(pageno)
            if have is None:
                raise MemoryError_(f"{what} of unmapped address {addr:#x}")
            if not have & prot:
                raise MemoryError_(
                    f"{what} protection violation at {addr:#x} "
                    f"(have {have:#x}, need {prot:#x})"
                )

    def read(self, addr: int, size: int) -> bytes:
        self._check(addr, size, PROT_READ, "read")
        return self.read_raw(addr, size)

    def write(self, addr: int, data: bytes) -> None:
        self._check(addr, len(data), PROT_WRITE, "write")
        self.write_raw(addr, data)

    def fetch(self, addr: int, size: int) -> bytes:
        self._check(addr, size, PROT_EXEC, "fetch")
        return self.read_raw(addr, size)

    # -- word helpers ------------------------------------------------------

    def read_u64(self, addr: int) -> int:
        return struct.unpack("<Q", self.read(addr, 8))[0]

    def write_u64(self, addr: int, value: int) -> None:
        self.write(addr, struct.pack("<Q", value & 0xFFFFFFFFFFFFFFFF))

    def read_u8(self, addr: int) -> int:
        return self.read(addr, 1)[0]

    def write_u8(self, addr: int, value: int) -> None:
        self.write(addr, bytes([value & 0xFF]))

    def read_cstring(self, addr: int, limit: int = 4096) -> bytes:
        """Read a NUL-terminated byte string (for syscall arguments)."""
        out = bytearray()
        for i in range(limit):
            b = self.read_u8(addr + i)
            if b == 0:
                break
            out.append(b)
        return bytes(out)
