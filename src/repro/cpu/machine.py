"""Architectural machine state: registers, flags, instruction pointer."""

from __future__ import annotations

from typing import List, Optional

from repro.cpu.memory import Memory
from repro.isa.registers import NUM_REGS

U64_MASK = 0xFFFFFFFFFFFFFFFF


def to_signed(value: int) -> int:
    """Interpret a 64-bit unsigned value as two's-complement signed."""
    value &= U64_MASK
    return value - (1 << 64) if value >> 63 else value


class Machine:
    """Register file, flags and instruction pointer over a memory."""

    def __init__(self, memory: Optional[Memory] = None) -> None:
        self.memory = memory if memory is not None else Memory()
        self.regs: List[int] = [0] * NUM_REGS
        self.ip = 0
        self.zf = False
        self.sf = False
        self.halted = False
        self.exit_code = 0

    def reg(self, index: int) -> int:
        return self.regs[index]

    def set_reg(self, index: int, value: int) -> None:
        self.regs[index] = value & U64_MASK

    def set_flags_from(self, value: int) -> None:
        """Set ZF/SF from a (signed) result value."""
        self.zf = (value & U64_MASK) == 0
        self.sf = bool((value >> 63) & 1) if value >= 0 else value < 0

    def snapshot(self) -> dict:
        """A shallow snapshot of register state (for signal frames)."""
        return {
            "regs": list(self.regs),
            "ip": self.ip,
            "zf": self.zf,
            "sf": self.sf,
        }

    def restore(self, snap: dict) -> None:
        """Restore register state from :meth:`snapshot` output."""
        self.regs = list(snap["regs"])
        self.ip = snap["ip"]
        self.zf = snap["zf"]
        self.sf = snap["sf"]
