"""CPU model: machine state, interpreter and the CoFI event bus.

The executor retires instructions against a sparse paged memory and
publishes one :class:`~repro.cpu.events.BranchEvent` per change-of-flow
instruction to registered listeners (the IPT packetizer, BTS, LBR, and
the fuzzer's coverage instrumentation all subscribe to this bus).
"""

from repro.cpu.events import BranchEvent, CoFIKind
from repro.cpu.memory import Memory, MemoryError_, PROT_EXEC, PROT_READ, PROT_WRITE
from repro.cpu.machine import Machine
from repro.cpu.executor import CPUFault, Executor, HaltReason

__all__ = [
    "BranchEvent",
    "CPUFault",
    "CoFIKind",
    "Executor",
    "HaltReason",
    "Machine",
    "Memory",
    "MemoryError_",
    "PROT_EXEC",
    "PROT_READ",
    "PROT_WRITE",
]
