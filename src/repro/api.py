"""repro.api — the stable public surface of the FlowGuard reproduction.

Everything an integrator needs lives here, imported from its canonical
submodule home::

    from repro.api import (
        Fleet, FleetConfig, FaultPlan, FlowGuardPolicy, Monitor,
        RetryPolicy, RingPolicy, RunConfig, run_workload,
    )

    # Solo: one protected server, optionally under fault injection.
    run = run_workload("nginx", sessions=4,
                       faults=FaultPlan.standard_mix(seed=7))
    print(run.overhead, run.monitor.degradations.counts())

    # Fleet: N processes / M checker workers, one config tree.
    config = RunConfig(
        policy=FlowGuardPolicy(segment_cache_entries=512),
        fleet=FleetConfig(workers=4, ring_policy=RingPolicy.LOSSY,
                          faults=FaultPlan.standard_mix(seed=7),
                          retry=RetryPolicy(task_timeout=20_000.0)),
    )
    service = Fleet.build(config)
    ...
    result = service.run()
    payload = result.to_dict()          # versioned StatsReport schema

    # Load generation: max throughput under a latency SLO.
    scenario = resolve_scenario("nginx-closed")
    payload = run_bench(scenario)       # `repro report` renders this

    # Multi-tenant serving: isolated fault domains behind one
    # admission-controlled asyncio front-end.
    config = resolve_serve_config("duo-isolation")
    result = run_service(config)
    print(result.tenants["clean"]["digest"])

Importing names from the ``repro.monitor`` / ``repro.fleet`` package
roots still works but is deprecated (each access emits a
``DeprecationWarning``); deep submodule imports remain supported for
internals not re-exported here.  This module itself imports cleanly
under ``-W error::DeprecationWarning`` — the CI check that keeps the
facade honest.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.fleet.rings import RingPolicy
from repro.fleet.service import FleetConfig, FleetResult, FleetService
from repro.monitor.fastpath import Verdict
from repro.monitor.flowguard import FlowGuardMonitor
from repro.monitor.policy import FlowGuardPolicy
from repro.loadgen import (
    LoadPointResult,
    LoadScenario,
    resolve_scenario,
    run_bench,
    slo_search,
    sweep_connections,
)
from repro.osmodel.kernel import Kernel
from repro.pipeline import FlowGuardPipeline
from repro.resilience import (
    FaultPlan,
    FaultSite,
    InjectedFault,
    RetryPolicy,
)
from repro.service import (
    ServeConfig,
    ServiceResult,
    TenantSpec,
    TraceCheckService,
    resolve_serve_config,
    run_service,
)
from repro.stats_report import SCHEMA_VERSION, StatsReport
from repro.telemetry.plane import (
    ObservabilityPlane,
    SLOConfig,
    SLObjective,
)

__all__ = [
    "FaultPlan",
    "FaultSite",
    "Fleet",
    "FleetConfig",
    "FleetResult",
    "FleetService",
    "FlowGuardMonitor",
    "FlowGuardPipeline",
    "FlowGuardPolicy",
    "InjectedFault",
    "Kernel",
    "LoadPointResult",
    "LoadScenario",
    "Monitor",
    "ObservabilityPlane",
    "RetryPolicy",
    "RingPolicy",
    "RunConfig",
    "SCHEMA_VERSION",
    "SLOConfig",
    "SLObjective",
    "ServeConfig",
    "ServiceResult",
    "StatsReport",
    "TenantSpec",
    "TraceCheckService",
    "Verdict",
    "resolve_scenario",
    "resolve_serve_config",
    "run_bench",
    "run_service",
    "run_workload",
    "slo_search",
    "sweep_connections",
]


@dataclass
class RunConfig:
    """The one config tree: checking policy + fleet shape + resilience.

    :class:`FlowGuardPolicy` (what the checker enforces),
    :class:`FleetConfig` (how the fleet is shaped — which itself embeds
    the :class:`FaultPlan` and :class:`RetryPolicy`) compose here and
    round-trip through :meth:`to_dict`/:meth:`from_dict`, so one JSON
    document can describe an entire reproducible run.
    """

    policy: FlowGuardPolicy = field(default_factory=FlowGuardPolicy)
    fleet: FleetConfig = field(default_factory=FleetConfig)

    @property
    def faults(self) -> Optional[FaultPlan]:
        return self.fleet.faults

    @property
    def retry(self) -> Optional[RetryPolicy]:
        return self.fleet.retry

    def to_dict(self) -> dict:
        return {
            "policy": self.policy.to_dict(),
            "fleet": self.fleet.to_dict(),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "RunConfig":
        unknown = set(data) - {"policy", "fleet"}
        if unknown:
            raise ValueError(
                f"unknown RunConfig keys: {', '.join(sorted(unknown))}"
            )
        return cls(
            policy=FlowGuardPolicy.from_dict(data.get("policy") or {}),
            fleet=FleetConfig.from_dict(data.get("fleet") or {}),
        )


class Monitor:
    """Builder facade for the solo (synchronous-verdict) monitor."""

    @staticmethod
    def build(
        policy: Optional[FlowGuardPolicy] = None,
        kernel: Optional[Kernel] = None,
        faults: Optional[FaultPlan] = None,
    ) -> FlowGuardMonitor:
        """An installed :class:`FlowGuardMonitor` on a (new) kernel.

        The returned monitor has its syscall-table hooks in place;
        protect processes with ``monitor.protect(...)`` or deploy a
        :class:`FlowGuardPipeline` against ``monitor.kernel``.
        """
        monitor = FlowGuardMonitor(
            kernel if kernel is not None else Kernel(),
            policy=policy,
            faults=faults,
        )
        monitor.install()
        return monitor


class Fleet:
    """Builder facade for the multi-process fleet service."""

    @staticmethod
    def build(
        config: Optional[RunConfig | FleetConfig] = None,
        kernel: Optional[Kernel] = None,
    ) -> FleetService:
        """A :class:`FleetService` from a :class:`RunConfig` (policy +
        fleet shape) or a bare :class:`FleetConfig` (default policy)."""
        if isinstance(config, RunConfig):
            return FleetService(
                config=config.fleet, kernel=kernel, policy=config.policy
            )
        return FleetService(config=config, kernel=kernel)


def run_workload(
    server: str,
    sessions: int = 4,
    protected: bool = True,
    policy: Optional[FlowGuardPolicy] = None,
    faults: Optional[FaultPlan] = None,
):
    """Run one server workload end to end; returns the ``ServerRun``
    (process, cycles, monitor, stats).

    The convenience entry point for "protect this server and tell me
    the overhead": offline pipeline, deployment, client sessions and
    the run itself are all handled.
    """
    from repro.experiments.common import run_server, server_requests

    return run_server(
        server,
        server_requests(server, sessions),
        protected=protected,
        policy=policy,
        faults=faults,
    )
