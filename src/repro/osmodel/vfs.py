"""A minimal in-memory filesystem for the kernel model."""

from __future__ import annotations

from typing import Dict, List


class FileSystem:
    """Flat path -> bytes store with just enough POSIX semantics."""

    def __init__(self) -> None:
        self._files: Dict[str, bytearray] = {}

    def exists(self, path: str) -> bool:
        return path in self._files

    def create(self, path: str, contents: bytes = b"") -> None:
        self._files[path] = bytearray(contents)

    def truncate(self, path: str) -> None:
        self._files[path] = bytearray()

    def unlink(self, path: str) -> bool:
        """Remove a file; returns False if it did not exist."""
        return self._files.pop(path, None) is not None

    def read_at(self, path: str, offset: int, size: int) -> bytes:
        data = self._files[path]
        return bytes(data[offset : offset + size])

    def write_at(self, path: str, offset: int, data: bytes) -> int:
        buf = self._files[path]
        if offset > len(buf):
            buf.extend(b"\x00" * (offset - len(buf)))
        buf[offset : offset + len(data)] = data
        return len(data)

    def size_of(self, path: str) -> int:
        return len(self._files[path])

    def contents(self, path: str) -> bytes:
        """Whole-file read (test/driver convenience)."""
        return bytes(self._files[path])

    def listdir(self) -> List[str]:
        return sorted(self._files)
