"""Kernel model: processes, syscalls, signals, ptrace.

FlowGuard is a kernel module: it configures IPT per-core, intercepts
security-sensitive syscalls by temporarily rewriting the syscall table,
and SIGKILLs processes on CFI violation.  This package provides exactly
that interception surface:

- every process has a ``CR3`` value (used by IPT filtering),
- the syscall table is a mutable dispatch map whose entries a kernel
  module can replace with wrappers (``Kernel.install_handler``),
- ``fork``/``execve``/``ptrace(TRACEME)`` support the paper's
  Linux-utility experiment, where a parent learns the child's CR3 before
  it runs,
- signals support the SROP attack (forged ``sigreturn`` frames).
"""

from repro.osmodel.syscalls import (
    O_CREAT,
    O_RDONLY,
    O_TRUNC,
    O_WRONLY,
    PTRACE_TRACEME,
    SENSITIVE_SYSCALLS,
    SIGKILL,
    SIGSEGV,
    SIGUSR1,
    Sys,
)
from repro.osmodel.vfs import FileSystem
from repro.osmodel.process import Connection, Process, ProcessState
from repro.osmodel.kernel import Kernel, KernelPanic, StepOutcome

__all__ = [
    "Connection",
    "FileSystem",
    "Kernel",
    "KernelPanic",
    "O_CREAT",
    "O_RDONLY",
    "O_TRUNC",
    "O_WRONLY",
    "PTRACE_TRACEME",
    "Process",
    "ProcessState",
    "SENSITIVE_SYSCALLS",
    "SIGKILL",
    "SIGSEGV",
    "SIGUSR1",
    "StepOutcome",
    "Sys",
]
