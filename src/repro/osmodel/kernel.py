"""The kernel: spawning, syscall dispatch, signals, fork/execve/ptrace.

The syscall table is an ordinary dict from syscall number to handler;
:meth:`Kernel.install_handler` swaps an entry and returns the original —
the exact mechanism FlowGuard's kernel module uses in §5.2 ("temporarily
modifying the syscall table and installing one alternative syscall
handler").

Scheduling is deliberately simple: one process runs at a time, and a
``wait()`` runs the child to completion synchronously (with an exec-stop
for traced children so a monitor can read the fresh CR3 before the new
program runs, as in the paper's Linux-utility experiment).
"""

from __future__ import annotations

import enum
import struct
from typing import Callable, Dict, List, Optional, Tuple

from repro import costs
from repro.telemetry import get_telemetry
from repro.binary.loader import Image, Loader
from repro.binary.module import Module
from repro.cpu.executor import CPUFault, Executor, HaltReason
from repro.cpu.machine import Machine, to_signed
from repro.cpu.memory import (
    Memory,
    MemoryError_,
    PROT_EXEC,
    PROT_READ,
    PROT_WRITE,
)
from repro.isa.registers import R0, R1, R2, R3, SP
from repro.osmodel.process import (
    Connection,
    FDKind,
    FileDescriptor,
    HEAP_BASE,
    MMAP_BASE,
    Process,
    ProcessState,
    STACK_SIZE,
    STACK_TOP,
)
from repro.osmodel.syscalls import (
    O_CREAT,
    O_TRUNC,
    O_WRONLY,
    PTRACE_TRACEME,
    SIGKILL,
    SIGSEGV,
    Sys,
)
from repro.osmodel.vfs import FileSystem

# errno-style results.
EAGAIN = -11
EBADF = -9
EFAULT = -14
ENOENT = -2
EINVAL = -22

SyscallHandler = Callable[["Kernel", Process], Optional[int]]

# Signal frame: magic, 18 registers, ip, flags.
_FRAME_MAGIC = 0x5347464D41524B  # "SGFMARK"
_FRAME_WORDS = 21
FRAME_SIZE = 8 * _FRAME_WORDS


class KernelPanic(Exception):
    """Internal kernel invariant violation."""


class StepOutcome(enum.Enum):
    """Why one :meth:`Kernel.step` quantum ended."""

    EXITED = "exited"
    KILLED = "killed"
    PREEMPTED = "preempted"  # executor interrupt line (PMI, scheduler)
    BUDGET = "budget"  # instruction budget exhausted, still runnable


class Kernel:
    """The machine's single privileged agent."""

    def __init__(self) -> None:
        self.fs = FileSystem()
        self.processes: Dict[int, Process] = {}
        self._next_pid = 1
        self._next_cr3 = 0x1000
        self.programs: Dict[str, Tuple[Module, Loader]] = {}
        self.syscall_table: Dict[int, SyscallHandler] = {
            int(nr): getattr(self, f"_sys_{nr.name.lower()}") for nr in Sys
        }
        # Called with (process,) when a traced child stops at execve;
        # this is where FlowGuard configures the CR3 filter.
        self.exec_stop_hooks: List[Callable[[Process], None]] = []
        # Called with (process,) whenever a process is spawned or
        # replaced by execve.
        self.spawn_hooks: List[Callable[[Process], None]] = []
        self._exec_stop_pending: Dict[int, bool] = {}

    # -- program registry ----------------------------------------------------

    def register_program(
        self,
        name: str,
        exe: Module,
        libraries: Optional[Dict[str, Module]] = None,
        vdso: Optional[Module] = None,
    ) -> None:
        """Make an executable spawnable / execve-able under ``name``."""
        self.programs[name] = (exe, Loader(libraries, vdso=vdso))

    # -- kernel-module API -----------------------------------------------------

    def install_handler(
        self, nr: int, handler: SyscallHandler
    ) -> SyscallHandler:
        """Replace a syscall-table entry; returns the original handler."""
        original = self.syscall_table[int(nr)]
        self.syscall_table[int(nr)] = handler
        return original

    def kill_process(self, proc: Process, sig: int = SIGKILL) -> None:
        """Terminate a process with a signal (monitor enforcement path)."""
        proc.state = ProcessState.KILLED
        proc.killed_by = sig
        proc.machine.halted = True

    # -- spawning ----------------------------------------------------------------

    def spawn(
        self,
        program: str,
        argv: Optional[List[str]] = None,
        stdin: bytes = b"",
    ) -> Process:
        """Create a process running a registered program."""
        if program not in self.programs:
            raise KernelPanic(f"unregistered program: {program}")
        exe, loader = self.programs[program]
        image = loader.load(exe)
        pid = self._next_pid
        self._next_pid += 1
        proc = self._make_process(pid, program, image)
        proc.feed_stdin(stdin)
        self.processes[pid] = proc
        tel = get_telemetry()
        if tel.enabled:
            tel.metrics.counter("kernel.spawns").inc(program=program)
        for hook in self.spawn_hooks:
            hook(proc)
        return proc

    def _make_process(self, pid: int, name: str, image: Image) -> Process:
        memory = image.memory
        memory.map_region(
            STACK_TOP - STACK_SIZE, STACK_SIZE, PROT_READ | PROT_WRITE
        )
        machine = Machine(memory)
        machine.ip = image.entry_address
        machine.set_reg(SP, STACK_TOP - 64)
        executor = Executor(machine)
        cr3 = self._next_cr3
        self._next_cr3 += 0x1000
        proc = Process(
            pid=pid,
            name=name,
            image=image,
            machine=machine,
            executor=executor,
            cr3=cr3,
        )
        executor.syscall_handler = self._make_dispatch(proc)
        return proc

    def _make_dispatch(self, proc: Process) -> Callable[[Machine], None]:
        def dispatch(machine: Machine) -> None:
            self._dispatch_syscall(proc)

        return dispatch

    # -- running --------------------------------------------------------------------

    def step(self, proc: Process, budget: int) -> StepOutcome:
        """Run a process for at most ``budget`` instructions.

        The resumable scheduling primitive: callers (``run``, the fleet
        scheduler) may invoke it repeatedly, interleaving quanta from
        different processes.  Hardware faults become a SIGSEGV
        termination, like a real kernel delivering an unhandleable
        fault — attack payloads that crash mid-chain are reported, not
        propagated as Python errors.  A ``PREEMPTED`` outcome means the
        executor's interrupt line was asserted mid-quantum (e.g. a ToPA
        PMI stalling the process); the process stays runnable.
        """
        if proc.state is ProcessState.KILLED:
            return StepOutcome.KILLED
        if not proc.alive:
            return StepOutcome.EXITED
        try:
            reason = proc.executor.run(budget)
        except CPUFault as fault:
            proc.fault = str(fault)
            self.kill_process(proc, SIGSEGV)
            return StepOutcome.KILLED
        plane = get_telemetry().plane
        if plane is not None:
            plane.on_step(proc)
        if reason is HaltReason.INTERRUPTED:
            return StepOutcome.PREEMPTED
        if reason is HaltReason.STEPS_EXHAUSTED:
            return StepOutcome.BUDGET
        if proc.state is ProcessState.KILLED:
            return StepOutcome.KILLED
        if proc.machine.halted and proc.state is ProcessState.RUNNABLE:
            # halt instruction without exit(): treat as clean exit.
            proc.state = ProcessState.EXITED
        return StepOutcome.EXITED

    def run(self, proc: Process, max_steps: int = 50_000_000) -> ProcessState:
        """Run a process until it exits, is killed, or exhausts steps."""
        self.step(proc, max_steps)
        return proc.state

    # -- syscall dispatch ------------------------------------------------------------

    def _dispatch_syscall(self, proc: Process) -> None:
        nr = proc.machine.reg(R0)
        tel = get_telemetry()
        if tel.enabled:
            try:
                name = Sys(nr).name.lower()
            except ValueError:
                name = f"nr{nr}"
            tel.metrics.counter("kernel.syscalls").inc(name=name)
        handler = self.syscall_table.get(nr)
        if handler is None:
            proc.machine.set_reg(R0, EINVAL)
            return
        result = handler(self, proc)
        if result is not None:
            proc.machine.set_reg(R0, result)

    # -- memory helpers ----------------------------------------------------------------

    @staticmethod
    def _copy_in(proc: Process, addr: int, size: int) -> Optional[bytes]:
        try:
            return proc.machine.memory.read(addr, size)
        except MemoryError_:
            return None

    @staticmethod
    def _copy_out(proc: Process, addr: int, data: bytes) -> bool:
        try:
            proc.machine.memory.write(addr, data)
            return True
        except MemoryError_:
            return False

    @staticmethod
    def _read_path(proc: Process, addr: int) -> Optional[str]:
        try:
            raw = proc.machine.memory.read_cstring(addr)
        except MemoryError_:
            return None
        return raw.decode("utf-8", errors="replace")

    # -- syscall handlers -------------------------------------------------------------

    def _sys_exit(self, kernel: "Kernel", proc: Process) -> Optional[int]:
        proc.exit_code = to_signed(proc.machine.reg(R1))
        proc.state = ProcessState.EXITED
        proc.machine.halted = True
        return None

    def _sys_read(self, kernel: "Kernel", proc: Process) -> int:
        fd_num = proc.machine.reg(R1)
        buf = proc.machine.reg(R2)
        size = proc.machine.reg(R3)
        fd = proc.fds.get(fd_num)
        if fd is None:
            return EBADF
        if fd.kind is FDKind.STDIN:
            data = bytes(proc.stdin_buffer[:size])
            del proc.stdin_buffer[: len(data)]
        elif fd.kind is FDKind.FILE:
            if not self.fs.exists(fd.path):
                return ENOENT
            data = self.fs.read_at(fd.path, fd.pos, size)
            fd.pos += len(data)
        elif fd.kind is FDKind.CONN:
            data = bytes(fd.conn.inbound[:size])
            del fd.conn.inbound[: len(data)]
        else:
            return EBADF
        if data and not self._copy_out(proc, buf, data):
            return EFAULT
        proc.executor.cycles += len(data) * costs.KERNEL_IO_CYCLES_PER_BYTE
        return len(data)

    def _sys_write(self, kernel: "Kernel", proc: Process) -> int:
        fd_num = proc.machine.reg(R1)
        buf = proc.machine.reg(R2)
        size = proc.machine.reg(R3)
        fd = proc.fds.get(fd_num)
        if fd is None:
            return EBADF
        data = self._copy_in(proc, buf, size)
        if data is None:
            return EFAULT
        proc.executor.cycles += len(data) * costs.KERNEL_IO_CYCLES_PER_BYTE
        if fd.kind is FDKind.STDOUT:
            proc.stdout.extend(data)
            return len(data)
        if fd.kind is FDKind.FILE:
            if not fd.writable:
                return EBADF
            written = self.fs.write_at(fd.path, fd.pos, data)
            fd.pos += written
            return written
        if fd.kind is FDKind.CONN:
            fd.conn.outbound.extend(data)
            return len(data)
        return EBADF

    def _sys_open(self, kernel: "Kernel", proc: Process) -> int:
        path = self._read_path(proc, proc.machine.reg(R1))
        if path is None:
            return EFAULT
        flags = proc.machine.reg(R2)
        if not self.fs.exists(path):
            if not flags & O_CREAT:
                return ENOENT
            self.fs.create(path)
        elif flags & O_TRUNC:
            self.fs.truncate(path)
        fd = FileDescriptor(
            FDKind.FILE, path=path, writable=bool(flags & O_WRONLY)
        )
        return proc.allocate_fd(fd)

    def _sys_close(self, kernel: "Kernel", proc: Process) -> int:
        fd = proc.fds.pop(proc.machine.reg(R1), None)
        if fd is None:
            return EBADF
        if fd.kind is FDKind.CONN:
            fd.conn.closed = True
        return 0

    def _sys_mmap(self, kernel: "Kernel", proc: Process) -> int:
        size = proc.machine.reg(R2)
        prot = proc.machine.reg(R3) or (PROT_READ | PROT_WRITE)
        if size == 0:
            return EINVAL
        addr = proc.mmap_next
        aligned = (size + 4095) // 4096 * 4096
        proc.mmap_next += aligned + 4096  # guard gap
        proc.machine.memory.map_region(addr, aligned, prot)
        return addr

    def _sys_mprotect(self, kernel: "Kernel", proc: Process) -> int:
        addr = proc.machine.reg(R1)
        size = proc.machine.reg(R2)
        prot = proc.machine.reg(R3)
        try:
            proc.machine.memory.protect(addr, size, prot)
        except MemoryError_:
            return EINVAL
        if prot & PROT_EXEC:
            proc.executor.flush_icache()
        return 0

    def _sys_execve(self, kernel: "Kernel", proc: Process) -> int:
        path = self._read_path(proc, proc.machine.reg(R1))
        if path is None:
            return EFAULT
        if path not in self.programs:
            return ENOENT
        exe, loader = self.programs[path]
        image = loader.load(exe)
        memory = image.memory
        memory.map_region(
            STACK_TOP - STACK_SIZE, STACK_SIZE, PROT_READ | PROT_WRITE
        )
        proc.image = image
        proc.machine.memory = memory
        proc.machine.regs = [0] * len(proc.machine.regs)
        proc.machine.set_reg(SP, STACK_TOP - 64)
        proc.machine.ip = image.entry_address
        proc.executor.flush_icache()
        proc.name = path
        # A fresh mm means a fresh CR3 — the detail the paper's ptrace
        # trick exists to observe.
        proc.cr3 = self._next_cr3
        self._next_cr3 += 0x1000
        if proc.traced:
            self._exec_stop_pending[proc.pid] = True
        for hook in self.spawn_hooks:
            hook(proc)
        return 0

    def _sys_fork(self, kernel: "Kernel", proc: Process) -> int:
        child_pid = self._next_pid
        self._next_pid += 1
        child = self._clone_process(proc, child_pid)
        self.processes[child_pid] = child
        proc.children.append(child_pid)
        for hook in self.spawn_hooks:
            hook(child)
        return child_pid

    def _clone_process(self, parent: Process, child_pid: int) -> Process:
        memory = parent.machine.memory.clone()
        machine = Machine(memory)
        machine.regs = list(parent.machine.regs)
        machine.ip = parent.machine.ip  # already past the syscall insn
        machine.zf, machine.sf = parent.machine.zf, parent.machine.sf
        machine.set_reg(R0, 0)  # fork returns 0 in the child
        image = Image(memory=memory, modules=list(parent.image.modules),
                      vdso=parent.image.vdso)
        executor = Executor(machine)
        cr3 = self._next_cr3
        self._next_cr3 += 0x1000
        child = Process(
            pid=child_pid,
            name=parent.name,
            image=image,
            machine=machine,
            executor=executor,
            cr3=cr3,
            parent_pid=parent.pid,
        )
        child.stdin_buffer = bytearray(parent.stdin_buffer)
        executor.syscall_handler = self._make_dispatch(child)
        return child

    def _sys_wait(self, kernel: "Kernel", proc: Process) -> int:
        """Run the oldest unfinished child to completion, return status.

        Traced children stop at their next execve so exec-stop hooks (the
        monitor) can observe the post-exec CR3, then continue.
        """
        for child_pid in proc.children:
            child = self.processes.get(child_pid)
            if child is None or not child.alive:
                continue
            stopped_at_exec = self._run_until_exec_stop(child)
            if stopped_at_exec:
                for hook in self.exec_stop_hooks:
                    hook(child)
                self.run(child)
            return child.exit_code if child.killed_by is None else -child.killed_by
        return ENOENT  # no waitable children

    def _run_until_exec_stop(self, child: Process, max_steps: int = 5_000_000
                             ) -> bool:
        """Step a child; True if it stopped at a traced execve."""
        while child.alive:
            if self._exec_stop_pending.pop(child.pid, False):
                return True
            try:
                child.executor.step()
            except CPUFault as fault:
                child.fault = str(fault)
                self.kill_process(child, SIGSEGV)
                return False
            max_steps -= 1
            if max_steps <= 0:
                return False
            if child.machine.halted:
                if child.state is ProcessState.RUNNABLE:
                    child.state = ProcessState.EXITED
                return False
        return False

    def _sys_gettimeofday(self, kernel: "Kernel", proc: Process) -> int:
        return int(proc.executor.cycles)

    def _sys_sigaction(self, kernel: "Kernel", proc: Process) -> int:
        sig = proc.machine.reg(R1)
        handler = proc.machine.reg(R2)
        proc.signal_handlers[sig] = handler
        return 0

    def _sys_sigreturn(self, kernel: "Kernel", proc: Process) -> Optional[int]:
        """Restore register state from the frame at SP.

        Like real kernels, the frame contents are *not* authenticated —
        this is precisely the weakness SROP (Bosman & Bos, S&P'14)
        exploits and that FlowGuard detects at the sigreturn endpoint.
        """
        frame_addr = proc.machine.reg(SP)
        raw = self._copy_in(proc, frame_addr, FRAME_SIZE)
        if raw is None:
            return EFAULT
        words = struct.unpack(f"<{_FRAME_WORDS}Q", raw)
        regs = list(words[1:19])
        ip = words[19]
        flags = words[20]
        proc.machine.regs = [r & 0xFFFFFFFFFFFFFFFF for r in regs]
        proc.machine.ip = ip
        proc.machine.zf = bool(flags & 1)
        proc.machine.sf = bool(flags & 2)
        return None  # r0 comes from the restored frame

    def deliver_signal(self, proc: Process, sig: int) -> None:
        """Deliver a signal: run the handler or terminate."""
        tel = get_telemetry()
        if tel.enabled:
            tel.metrics.counter("kernel.signals").inc(sig=sig)
        handler = proc.signal_handlers.get(sig)
        if sig == SIGKILL or handler is None:
            self.kill_process(proc, sig)
            return
        m = proc.machine
        frame = struct.pack(
            f"<{_FRAME_WORDS}Q",
            _FRAME_MAGIC,
            *[r & 0xFFFFFFFFFFFFFFFF for r in m.regs],
            m.ip,
            (1 if m.zf else 0) | (2 if m.sf else 0),
        )
        sp_new = m.reg(SP) - FRAME_SIZE
        if not self._copy_out(proc, sp_new, frame):
            self.kill_process(proc, SIGSEGV)
            return
        m.set_reg(SP, sp_new)
        m.set_reg(R1, sig)
        m.set_reg(R2, sp_new)
        m.ip = handler

    def _sys_kill(self, kernel: "Kernel", proc: Process) -> int:
        target_pid = proc.machine.reg(R1)
        sig = proc.machine.reg(R2)
        target = self.processes.get(target_pid, proc if target_pid == 0 else None)
        if target is None:
            return ENOENT
        self.deliver_signal(target, sig)
        return 0

    # -- sockets -----------------------------------------------------------------------

    def _sys_socket(self, kernel: "Kernel", proc: Process) -> int:
        return proc.allocate_fd(FileDescriptor(FDKind.LISTEN))

    def _sys_bind(self, kernel: "Kernel", proc: Process) -> int:
        return 0

    def _sys_listen(self, kernel: "Kernel", proc: Process) -> int:
        return 0

    def _sys_accept(self, kernel: "Kernel", proc: Process) -> int:
        listen_fd = proc.fds.get(proc.machine.reg(R1))
        if listen_fd is None or listen_fd.kind is not FDKind.LISTEN:
            return EBADF
        if not proc.pending_connections:
            return EAGAIN
        conn = proc.pending_connections.pop(0)
        proc.accepted_connections.append(conn)
        return proc.allocate_fd(FileDescriptor(FDKind.CONN, conn=conn))

    def _sys_recv(self, kernel: "Kernel", proc: Process) -> int:
        return self._sys_read(kernel, proc)

    def _sys_send(self, kernel: "Kernel", proc: Process) -> int:
        return self._sys_write(kernel, proc)

    # -- misc ---------------------------------------------------------------------------

    def _sys_ptrace(self, kernel: "Kernel", proc: Process) -> int:
        if proc.machine.reg(R1) == PTRACE_TRACEME:
            proc.traced = True
            return 0
        return EINVAL

    def _sys_getpid(self, kernel: "Kernel", proc: Process) -> int:
        return proc.pid

    def _sys_brk(self, kernel: "Kernel", proc: Process) -> int:
        request = proc.machine.reg(R1)
        if request == 0:
            return proc.heap_brk
        if request < HEAP_BASE or request >= MMAP_BASE:
            return EINVAL
        if request > proc.heap_brk:
            proc.machine.memory.map_region(
                proc.heap_brk, request - proc.heap_brk, PROT_READ | PROT_WRITE
            )
        proc.heap_brk = request
        return proc.heap_brk

    def _sys_unlink(self, kernel: "Kernel", proc: Process) -> int:
        path = self._read_path(proc, proc.machine.reg(R1))
        if path is None:
            return EFAULT
        return 0 if self.fs.unlink(path) else ENOENT
