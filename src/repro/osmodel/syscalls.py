"""Syscall numbers, flags, signals, and the sensitive-endpoint set."""

from __future__ import annotations

import enum


class Sys(enum.IntEnum):
    """Syscall numbers.

    The calling convention mirrors Linux: number in ``r0``, arguments in
    ``r1``–``r5``, result back in ``r0`` (negative on error).
    """

    EXIT = 0
    READ = 1
    WRITE = 2
    OPEN = 3
    CLOSE = 4
    MMAP = 5
    MPROTECT = 6
    EXECVE = 7
    FORK = 8
    WAIT = 9
    GETTIMEOFDAY = 10
    SIGACTION = 11
    SIGRETURN = 12
    SOCKET = 13
    BIND = 14
    LISTEN = 15
    ACCEPT = 16
    RECV = 17
    SEND = 18
    PTRACE = 19
    GETPID = 20
    BRK = 21
    UNLINK = 22
    KILL = 23


#: The security-sensitive endpoints FlowGuard intercepts by default —
#: the same policy as PathArmor (§5.2): the syscalls that let an attacker
#: spawn processes, change memory permissions, exfiltrate/overwrite data,
#: or pivot via forged signal frames.
SENSITIVE_SYSCALLS = frozenset(
    {
        Sys.EXECVE,
        Sys.MMAP,
        Sys.MPROTECT,
        Sys.WRITE,
        Sys.SEND,
        Sys.SIGRETURN,
        Sys.UNLINK,
        Sys.KILL,
    }
)

# open(2) flags.
O_RDONLY = 0
O_WRONLY = 1
O_CREAT = 0x40
O_TRUNC = 0x200

# Signals.
SIGKILL = 9
SIGSEGV = 11
SIGUSR1 = 10

# ptrace requests.
PTRACE_TRACEME = 0
