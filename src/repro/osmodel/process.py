"""Process model: address space, file descriptors, signal state."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.binary.loader import Image
from repro.cpu.executor import Executor
from repro.cpu.machine import Machine

STACK_TOP = 0x7FFFFF000000
STACK_SIZE = 0x40000  # 256 KiB
HEAP_BASE = 0x10000000
MMAP_BASE = 0x30000000


class ProcessState(enum.Enum):
    RUNNABLE = "runnable"
    EXITED = "exited"
    KILLED = "killed"


@dataclass
class Connection:
    """A socket connection endpoint as seen by the server."""

    inbound: bytearray = field(default_factory=bytearray)
    outbound: bytearray = field(default_factory=bytearray)
    closed: bool = False

    @classmethod
    def from_request(cls, payload: bytes) -> "Connection":
        """A connection whose client has already sent ``payload``."""
        return cls(inbound=bytearray(payload))


class FDKind(enum.Enum):
    STDIN = "stdin"
    STDOUT = "stdout"
    FILE = "file"
    LISTEN = "listen"
    CONN = "conn"


@dataclass
class FileDescriptor:
    kind: FDKind
    path: Optional[str] = None
    pos: int = 0
    writable: bool = False
    conn: Optional[Connection] = None


@dataclass
class Process:
    """One user process: image + machine + kernel-visible state."""

    pid: int
    name: str
    image: Image
    machine: Machine
    executor: Executor
    cr3: int
    parent_pid: Optional[int] = None
    state: ProcessState = ProcessState.RUNNABLE
    exit_code: int = 0
    killed_by: Optional[int] = None
    fault: Optional[str] = None
    traced: bool = False

    fds: Dict[int, FileDescriptor] = field(default_factory=dict)
    next_fd: int = 3
    stdin_buffer: bytearray = field(default_factory=bytearray)
    stdout: bytearray = field(default_factory=bytearray)
    pending_connections: List[Connection] = field(default_factory=list)
    accepted_connections: List[Connection] = field(default_factory=list)
    signal_handlers: Dict[int, int] = field(default_factory=dict)
    children: List[int] = field(default_factory=list)

    heap_brk: int = HEAP_BASE
    mmap_next: int = MMAP_BASE

    def __post_init__(self) -> None:
        if not self.fds:
            self.fds[0] = FileDescriptor(FDKind.STDIN)
            self.fds[1] = FileDescriptor(FDKind.STDOUT, writable=True)
            self.fds[2] = FileDescriptor(FDKind.STDOUT, writable=True)

    @property
    def alive(self) -> bool:
        return self.state is ProcessState.RUNNABLE

    def allocate_fd(self, fd: FileDescriptor) -> int:
        number = self.next_fd
        self.next_fd += 1
        self.fds[number] = fd
        return number

    def feed_stdin(self, data: bytes) -> None:
        """Queue bytes for the process to read from fd 0."""
        self.stdin_buffer.extend(data)

    def push_connection(self, payload: bytes) -> Connection:
        """Queue an inbound client connection carrying ``payload``."""
        conn = Connection.from_request(payload)
        self.pending_connections.append(conn)
        return conn

    def stdout_text(self) -> str:
        return self.stdout.decode("utf-8", errors="replace")
