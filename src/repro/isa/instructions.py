"""Instruction and opcode definitions.

Every instruction is an :class:`Insn` — a small record with an opcode and
up to three operand slots.  The operand meaning per opcode is documented
in :data:`OPERAND_LAYOUT`; the byte-level encoding lives in
:mod:`repro.isa.encoding`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional


class Op(enum.IntEnum):
    """Opcodes.  The integer value doubles as the encoded opcode byte."""

    NOP = 0x00
    HALT = 0x01
    SYSCALL = 0x02
    RET = 0x03

    MOV_RI = 0x10  # rd <- imm64
    MOV_RR = 0x11  # rd <- rs
    LEA = 0x12  # rd <- next_ip + rel32
    LOAD = 0x13  # rd <- mem64[rb + off32]
    STORE = 0x14  # mem64[rb + off32] <- rs
    LOADB = 0x15  # rd <- mem8[rb + off32]
    STOREB = 0x16  # mem8[rb + off32] <- rs
    PUSH = 0x17  # sp -= 8; mem64[sp] <- rs
    POP = 0x18  # rd <- mem64[sp]; sp += 8

    ADD = 0x20
    SUB = 0x21
    MUL = 0x22
    DIV = 0x23
    MOD = 0x24
    AND = 0x25
    OR = 0x26
    XOR = 0x27
    SHL = 0x28
    SHR = 0x29
    CMP = 0x2A  # sets flags from rd - rs

    ADDI = 0x30
    SUBI = 0x31
    CMPI = 0x32
    MULI = 0x33
    ANDI = 0x34

    JMP = 0x40  # direct unconditional, rel32
    JCC = 0x41  # conditional, cond + rel32
    JMPR = 0x42  # indirect jump through register
    CALL = 0x43  # direct call, rel32
    CALLR = 0x44  # indirect call through register


# Opcodes that change control flow (CoFI — change of flow instructions).
COFI_OPS = frozenset(
    {Op.JMP, Op.JCC, Op.JMPR, Op.CALL, Op.CALLR, Op.RET, Op.SYSCALL}
)

# Operand layout per opcode, used by the encoder, decoder and formatter.
# Slot names:  rd/rs/rb — register indices,  imm64/imm32 — immediates,
# off32 — signed memory displacement,  rel32 — signed branch displacement
# relative to the *next* instruction,  cc — condition code.
OPERAND_LAYOUT = {
    Op.NOP: (),
    Op.HALT: (),
    Op.SYSCALL: (),
    Op.RET: (),
    Op.MOV_RI: ("rd", "imm64"),
    Op.MOV_RR: ("rd", "rs"),
    Op.LEA: ("rd", "rel32"),
    Op.LOAD: ("rd", "rb", "off32"),
    Op.STORE: ("rb", "off32", "rs"),
    Op.LOADB: ("rd", "rb", "off32"),
    Op.STOREB: ("rb", "off32", "rs"),
    Op.PUSH: ("rs",),
    Op.POP: ("rd",),
    Op.ADD: ("rd", "rs"),
    Op.SUB: ("rd", "rs"),
    Op.MUL: ("rd", "rs"),
    Op.DIV: ("rd", "rs"),
    Op.MOD: ("rd", "rs"),
    Op.AND: ("rd", "rs"),
    Op.OR: ("rd", "rs"),
    Op.XOR: ("rd", "rs"),
    Op.SHL: ("rd", "rs"),
    Op.SHR: ("rd", "rs"),
    Op.CMP: ("rd", "rs"),
    Op.ADDI: ("rd", "imm32"),
    Op.SUBI: ("rd", "imm32"),
    Op.CMPI: ("rd", "imm32"),
    Op.MULI: ("rd", "imm32"),
    Op.ANDI: ("rd", "imm32"),
    Op.JMP: ("rel32",),
    Op.JCC: ("cc", "rel32"),
    Op.JMPR: ("rs",),
    Op.CALL: ("rel32",),
    Op.CALLR: ("rs",),
}


@dataclass
class Insn:
    """One decoded (or not-yet-encoded) instruction.

    ``label`` carries a symbolic branch/LEA target for the assembler; it
    is resolved to ``rel`` at assembly time and is ``None`` on decoded
    instructions.
    """

    op: Op
    rd: int = 0
    rs: int = 0
    rb: int = 0
    imm: int = 0
    off: int = 0
    rel: int = 0
    cc: int = 0
    label: Optional[str] = None

    def is_cofi(self) -> bool:
        """True if this instruction can change control flow."""
        return self.op in COFI_OPS


@dataclass(frozen=True)
class Label:
    """A position marker in an assembly stream."""

    name: str


def is_cofi(op: Op) -> bool:
    """True if opcode ``op`` is a change-of-flow instruction."""
    return op in COFI_OPS
