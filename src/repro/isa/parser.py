"""Textual assembly parser.

Accepts conventional assembly text and produces the item stream the
two-pass assembler consumes::

    ; compute 10 * 2 and stop
        mov   r1, 10
    loop:
        addi  r0, 2
        subi  r1, 1
        cmpi  r1, 0
        jcc   gt, loop
        halt

Syntax:

- one instruction or ``label:`` per line; ``;`` and ``#`` start comments,
- registers: ``r0``–``r15``, ``sp``, ``fp``,
- immediates: decimal or ``0x`` hex, optionally negative,
- memory operands: ``[reg]``, ``[reg+imm]``, ``[reg-imm]``,
- conditions: ``eq ne lt le gt ge``,
- branch/``lea`` targets are label names.
"""

from __future__ import annotations

import re
from typing import List, Tuple

from repro.isa.assembler import A, Item
from repro.isa.instructions import Insn, Label, Op
from repro.isa.registers import FP, SP, Cond


class AsmSyntaxError(Exception):
    """Malformed assembly text."""

    def __init__(self, message: str, line_no: int, line: str) -> None:
        super().__init__(f"line {line_no}: {message}: {line.strip()!r}")
        self.line_no = line_no


_REGISTERS = {f"r{i}": i for i in range(16)}
_REGISTERS["sp"] = SP
_REGISTERS["fp"] = FP

_CONDITIONS = {c.name.lower(): c for c in Cond}

_MEM_RE = re.compile(
    r"^\[\s*(?P<reg>\w+)\s*(?:(?P<sign>[+-])\s*(?P<off>0x[0-9a-fA-F]+|\d+))?\s*\]$"
)

_LABEL_RE = re.compile(r"^[A-Za-z_.$][\w.$@]*$")


def _parse_int(token: str, line_no: int, line: str) -> int:
    try:
        return int(token, 0)
    except ValueError as exc:
        raise AsmSyntaxError(f"bad integer {token!r}", line_no, line) from exc


def _parse_reg(token: str, line_no: int, line: str) -> int:
    reg = _REGISTERS.get(token.lower())
    if reg is None:
        raise AsmSyntaxError(f"unknown register {token!r}", line_no, line)
    return reg


def _parse_mem(token: str, line_no: int, line: str) -> Tuple[int, int]:
    match = _MEM_RE.match(token)
    if match is None:
        raise AsmSyntaxError(
            f"bad memory operand {token!r}", line_no, line
        )
    reg = _parse_reg(match.group("reg"), line_no, line)
    offset = 0
    if match.group("off"):
        offset = _parse_int(match.group("off"), line_no, line)
        if match.group("sign") == "-":
            offset = -offset
    return reg, offset


def _split_operands(rest: str) -> List[str]:
    depth = 0
    out: List[str] = []
    current = []
    for ch in rest:
        if ch == "[":
            depth += 1
        elif ch == "]":
            depth -= 1
        if ch == "," and depth == 0:
            out.append("".join(current).strip())
            current = []
        else:
            current.append(ch)
    tail = "".join(current).strip()
    if tail:
        out.append(tail)
    return [op for op in out if op]


def parse_asm(text: str) -> List[Item]:
    """Parse assembly text into an assembler item stream."""
    items: List[Item] = []
    for line_no, raw in enumerate(text.splitlines(), start=1):
        line = raw.split(";")[0].split("#")[0].strip()
        if not line:
            continue
        while ":" in line:
            name, _, line = line.partition(":")
            name = name.strip()
            if not _LABEL_RE.match(name):
                raise AsmSyntaxError(f"bad label {name!r}", line_no, raw)
            items.append(Label(name))
            line = line.strip()
        if not line:
            continue
        parts = line.split(None, 1)
        mnemonic = parts[0].lower()
        operands = _split_operands(parts[1]) if len(parts) > 1 else []
        items.append(_parse_instruction(mnemonic, operands, line_no, raw))
    return items


def _parse_instruction(
    mnemonic: str, ops: List[str], line_no: int, line: str
) -> Insn:
    def need(count: int) -> None:
        if len(ops) != count:
            raise AsmSyntaxError(
                f"{mnemonic} takes {count} operand(s), got {len(ops)}",
                line_no, line,
            )

    if mnemonic in ("nop", "halt", "syscall", "ret"):
        need(0)
        return {
            "nop": A.nop, "halt": A.halt,
            "syscall": A.syscall, "ret": A.ret,
        }[mnemonic]()

    if mnemonic == "mov":
        need(2)
        rd = _parse_reg(ops[0], line_no, line)
        if ops[1].lower() in _REGISTERS:
            return A.movr(rd, _parse_reg(ops[1], line_no, line))
        return A.mov(rd, _parse_int(ops[1], line_no, line))

    if mnemonic == "lea":
        need(2)
        return A.lea(_parse_reg(ops[0], line_no, line), ops[1])

    if mnemonic in ("load", "loadb"):
        need(2)
        rd = _parse_reg(ops[0], line_no, line)
        rb, off = _parse_mem(ops[1], line_no, line)
        ctor = A.load if mnemonic == "load" else A.loadb
        return ctor(rd, rb, off)

    if mnemonic in ("store", "storeb"):
        need(2)
        rb, off = _parse_mem(ops[0], line_no, line)
        rs = _parse_reg(ops[1], line_no, line)
        ctor = A.store if mnemonic == "store" else A.storeb
        return ctor(rb, off, rs)

    if mnemonic == "push":
        need(1)
        return A.push(_parse_reg(ops[0], line_no, line))
    if mnemonic == "pop":
        need(1)
        return A.pop(_parse_reg(ops[0], line_no, line))

    two_reg = {
        "add": A.add, "sub": A.sub, "mul": A.mul, "div": A.div,
        "mod": A.mod, "and": A.and_, "or": A.or_, "xor": A.xor,
        "shl": A.shl, "shr": A.shr, "cmp": A.cmp,
    }
    if mnemonic in two_reg:
        need(2)
        return two_reg[mnemonic](
            _parse_reg(ops[0], line_no, line),
            _parse_reg(ops[1], line_no, line),
        )

    reg_imm = {
        "addi": A.addi, "subi": A.subi, "cmpi": A.cmpi,
        "muli": A.muli, "andi": A.andi,
    }
    if mnemonic in reg_imm:
        need(2)
        return reg_imm[mnemonic](
            _parse_reg(ops[0], line_no, line),
            _parse_int(ops[1], line_no, line),
        )

    if mnemonic == "jmp":
        need(1)
        if ops[0].lower() in _REGISTERS:
            return A.jmpr(_parse_reg(ops[0], line_no, line))
        return A.jmp(ops[0])

    if mnemonic == "call":
        need(1)
        if ops[0].lower() in _REGISTERS:
            return A.callr(_parse_reg(ops[0], line_no, line))
        return A.call(ops[0])

    if mnemonic == "jcc":
        need(2)
        cond = _CONDITIONS.get(ops[0].lower())
        if cond is None:
            raise AsmSyntaxError(
                f"unknown condition {ops[0]!r}", line_no, line
            )
        return A.jcc(cond, ops[1])
    # jeq/jne/... shorthand.
    if mnemonic.startswith("j") and mnemonic[1:] in _CONDITIONS:
        need(1)
        return A.jcc(_CONDITIONS[mnemonic[1:]], ops[0])

    raise AsmSyntaxError(f"unknown mnemonic {mnemonic!r}", line_no, line)
