"""A compact, byte-encoded instruction set architecture.

The ISA stands in for x86-64 in the reproduction.  What matters for the
paper is preserved:

- the full change-of-flow taxonomy of Table 3 (direct/conditional/
  indirect jumps and calls, near returns, far transfers via ``syscall``),
- variable-length byte encoding, so that program binaries are opaque byte
  streams that must be parsed *instruction by instruction* to reconstruct
  control flow from a compressed trace (the property that makes full IPT
  decoding slow), and
- a conventional downward-growing stack with return addresses stored in
  memory, so that stack smashing and ROP behave as on real hardware.
"""

from repro.isa.registers import (
    FP,
    NUM_REGS,
    R0,
    R1,
    R2,
    R3,
    R4,
    R5,
    R6,
    R7,
    R8,
    R9,
    R10,
    R11,
    SP,
    Cond,
    register_name,
)
from repro.isa.instructions import Insn, Label, Op, is_cofi
from repro.isa.encoding import (
    DecodeError,
    decode_at,
    encode,
    instruction_length,
)
from repro.isa.assembler import A, Assembler, AssemblyError, asm
from repro.isa.disassembler import disassemble_range, format_insn
from repro.isa.parser import AsmSyntaxError, parse_asm

__all__ = [
    "A",
    "Assembler",
    "AssemblyError",
    "Cond",
    "DecodeError",
    "FP",
    "Insn",
    "Label",
    "NUM_REGS",
    "Op",
    "R0",
    "R1",
    "R2",
    "R3",
    "R4",
    "R5",
    "R6",
    "R7",
    "R8",
    "R9",
    "R10",
    "R11",
    "SP",
    "AsmSyntaxError",
    "asm",
    "decode_at",
    "disassemble_range",
    "encode",
    "format_insn",
    "instruction_length",
    "is_cofi",
    "parse_asm",
    "register_name",
]
