"""Linear-sweep disassembly helpers and instruction formatting."""

from __future__ import annotations

from typing import Iterator, Tuple

from repro.isa.encoding import decode_at
from repro.isa.instructions import Insn, Op, OPERAND_LAYOUT
from repro.isa.registers import Cond, register_name


def disassemble_range(
    code: bytes, start: int = 0, end: int = -1
) -> Iterator[Tuple[int, Insn, int]]:
    """Linearly decode ``code[start:end]``.

    Yields ``(offset, insn, length)``.  Raises
    :class:`~repro.isa.encoding.DecodeError` if the sweep desynchronises,
    which on a well-formed module only happens when running into data.
    """
    if end < 0:
        end = len(code)
    pos = start
    while pos < end:
        insn, length = decode_at(code, pos)
        yield pos, insn, length
        pos += length


def format_insn(insn: Insn, ip: int = -1) -> str:
    """Render an instruction as assembly text.

    When ``ip`` (the instruction's own address) is supplied, relative
    branch targets are rendered as absolute addresses.
    """
    op = insn.op
    parts = []
    for field in OPERAND_LAYOUT[op]:
        if field == "rd":
            parts.append(register_name(insn.rd))
        elif field == "rs":
            parts.append(register_name(insn.rs))
        elif field == "rb":
            parts.append(f"[{register_name(insn.rb)}{insn.off:+#x}]")
        elif field == "off32":
            continue  # rendered with rb
        elif field == "cc":
            parts.append(Cond(insn.cc).name.lower())
        elif field in ("imm32", "imm64"):
            parts.append(f"{insn.imm:#x}" if insn.imm >= 0 else str(insn.imm))
        elif field == "rel32":
            if insn.label is not None:
                parts.append(insn.label)
            elif ip >= 0:
                from repro.isa.encoding import instruction_length

                parts.append(f"{ip + instruction_length(op) + insn.rel:#x}")
            else:
                parts.append(f".{insn.rel:+}")
    mnemonic = op.name.lower()
    return f"{mnemonic} {', '.join(parts)}".rstrip()
