"""Register file layout and condition codes.

The machine has 16 general-purpose registers plus a stack pointer and a
frame pointer.  The calling convention used by the toolchain is:

- ``R0`` — syscall number / return value,
- ``R1``–``R5`` — the first five arguments,
- ``R6``–``R11`` — caller-saved scratch registers,
- ``SP`` / ``FP`` — stack and frame pointers.
"""

from __future__ import annotations

import enum

NUM_REGS = 18

R0, R1, R2, R3, R4, R5 = 0, 1, 2, 3, 4, 5
R6, R7, R8, R9, R10, R11 = 6, 7, 8, 9, 10, 11
R12, R13, R14, R15 = 12, 13, 14, 15
SP = 16
FP = 17

_NAMES = {SP: "sp", FP: "fp"}


def register_name(reg: int) -> str:
    """Return the assembly name of register index ``reg``."""
    if reg in _NAMES:
        return _NAMES[reg]
    if 0 <= reg < 16:
        return f"r{reg}"
    raise ValueError(f"invalid register index: {reg}")


class Cond(enum.IntEnum):
    """Condition codes for conditional branches (``Jcc``).

    Conditions are evaluated against the flags set by the most recent
    ``CMP``/``CMPI`` (or flag-setting ALU) instruction.
    """

    EQ = 0
    NE = 1
    LT = 2
    LE = 3
    GT = 4
    GE = 5

    def holds(self, zf: bool, sf: bool) -> bool:
        """Evaluate this condition against zero/sign flags."""
        if self is Cond.EQ:
            return zf
        if self is Cond.NE:
            return not zf
        if self is Cond.LT:
            return sf and not zf
        if self is Cond.LE:
            return sf or zf
        if self is Cond.GT:
            return not sf and not zf
        return not sf or zf  # GE
