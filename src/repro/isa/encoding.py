"""Byte-level instruction encoding and decoding.

The encoding is variable length: one opcode byte followed by operand
bytes as dictated by :data:`repro.isa.instructions.OPERAND_LAYOUT`.
Register operands occupy one byte; ``imm32``/``off32``/``rel32`` are
4-byte signed little-endian; ``imm64`` is 8-byte signed little-endian;
condition codes occupy one byte.

Variable-length encoding matters to the reproduction: the IPT full
decoder must walk a binary byte-by-byte from a known instruction
boundary, exactly like Intel's reference decoder, which is what makes
full decoding orders of magnitude slower than packet-level scanning.
"""

from __future__ import annotations

import struct
from typing import Tuple

from repro.isa.instructions import Insn, Op, OPERAND_LAYOUT
from repro.isa.registers import NUM_REGS, Cond


class DecodeError(Exception):
    """Raised when bytes do not decode to a valid instruction."""


_FIELD_SIZE = {
    "rd": 1,
    "rs": 1,
    "rb": 1,
    "cc": 1,
    "imm32": 4,
    "off32": 4,
    "rel32": 4,
    "imm64": 8,
}

# Precomputed total length per opcode.
_LENGTHS = {
    op: 1 + sum(_FIELD_SIZE[f] for f in layout)
    for op, layout in OPERAND_LAYOUT.items()
}

_VALID_OPCODES = {int(op) for op in Op}

# Map layout field -> Insn attribute.
_ATTR = {
    "rd": "rd",
    "rs": "rs",
    "rb": "rb",
    "cc": "cc",
    "imm32": "imm",
    "imm64": "imm",
    "off32": "off",
    "rel32": "rel",
}


def instruction_length(op: Op) -> int:
    """Encoded length in bytes of an instruction with opcode ``op``."""
    return _LENGTHS[op]


def encode(insn: Insn) -> bytes:
    """Encode ``insn`` to its byte representation."""
    parts = [bytes([int(insn.op)])]
    for field in OPERAND_LAYOUT[insn.op]:
        value = getattr(insn, _ATTR[field])
        size = _FIELD_SIZE[field]
        if size == 1:
            if not 0 <= value < 256:
                raise ValueError(
                    f"{field} operand {value} out of range for {insn.op.name}"
                )
            parts.append(bytes([value]))
        elif size == 4:
            try:
                parts.append(struct.pack("<i", value))
            except struct.error as exc:
                raise ValueError(
                    f"{field} operand {value} out of 32-bit range "
                    f"for {insn.op.name}"
                ) from exc
        else:
            # imm64 wraps two's-complement style so that unsigned 64-bit
            # constants (e.g. 0xFFFF_FFFF_FFFF_FFFF) encode as expected.
            wrapped = ((value + (1 << 63)) % (1 << 64)) - (1 << 63)
            parts.append(struct.pack("<q", wrapped))
    return b"".join(parts)


def decode_at(code: bytes, offset: int) -> Tuple[Insn, int]:
    """Decode one instruction at ``offset`` in ``code``.

    Returns the instruction and its encoded length.  Raises
    :class:`DecodeError` on an invalid opcode, a truncated instruction,
    or operand bytes that do not form a valid instruction (bad register
    index / condition code) — the same failure modes a real disassembler
    hits when it desynchronises from the instruction stream.
    """
    if offset >= len(code):
        raise DecodeError(f"offset {offset} beyond end of code")
    opcode = code[offset]
    if opcode not in _VALID_OPCODES:
        raise DecodeError(f"invalid opcode 0x{opcode:02x} at offset {offset}")
    op = Op(opcode)
    length = _LENGTHS[op]
    if offset + length > len(code):
        raise DecodeError(f"truncated {op.name} at offset {offset}")
    insn = Insn(op)
    pos = offset + 1
    for field in OPERAND_LAYOUT[op]:
        size = _FIELD_SIZE[field]
        if size == 1:
            value = code[pos]
            if field in ("rd", "rs", "rb") and value >= NUM_REGS:
                raise DecodeError(
                    f"invalid register {value} in {op.name} at {offset}"
                )
            if field == "cc" and value > int(Cond.GE):
                raise DecodeError(
                    f"invalid condition {value} in {op.name} at {offset}"
                )
        elif size == 4:
            value = struct.unpack_from("<i", code, pos)[0]
        else:
            value = struct.unpack_from("<q", code, pos)[0]
        setattr(insn, _ATTR[field], value)
        pos += size
    return insn, length
