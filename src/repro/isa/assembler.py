"""Two-pass assembler: symbolic instruction streams to code bytes.

The assembler consumes a flat list of :class:`~repro.isa.instructions.Insn`
and :class:`~repro.isa.instructions.Label` items, resolves label
references in branch and ``LEA`` instructions to signed displacements
(relative to the following instruction, as on x86), and emits the encoded
byte stream together with a map of label offsets.

The :class:`A` namespace provides terse constructors so that hand-written
assembly and compiler output read naturally::

    items = [
        Label("loop"),
        A.cmpi(R1, 0),
        A.jcc(Cond.EQ, "done"),
        A.subi(R1, 1),
        A.jmp("loop"),
        Label("done"),
        A.ret(),
    ]
    code, symbols = asm(items)
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

from repro.isa.encoding import encode, instruction_length
from repro.isa.instructions import Insn, Label, Op
from repro.isa.registers import Cond

Item = Union[Insn, Label]


class AssemblyError(Exception):
    """Raised on unresolved or duplicate labels."""


_LABEL_OPS = frozenset({Op.JMP, Op.JCC, Op.CALL, Op.LEA})


class Assembler:
    """Accumulates instructions and labels, then assembles them."""

    def __init__(self) -> None:
        self._items: List[Item] = []

    def emit(self, *items: Item) -> "Assembler":
        """Append instructions/labels to the stream."""
        self._items.extend(items)
        return self

    def extend(self, items: Iterable[Item]) -> "Assembler":
        """Append a sequence of instructions/labels."""
        self._items.extend(items)
        return self

    def label(self, name: str) -> "Assembler":
        """Append a label at the current position."""
        self._items.append(Label(name))
        return self

    @property
    def items(self) -> Sequence[Item]:
        return tuple(self._items)

    def assemble(self, base: int = 0) -> Tuple[bytes, Dict[str, int]]:
        """Assemble the stream.

        Returns the code bytes and a symbol table mapping label names to
        offsets from ``base``.  ``base`` only shifts the reported symbol
        offsets; branch displacements are position independent.
        """
        return assemble(self._items, base=base)


def assemble(
    items: Sequence[Item],
    base: int = 0,
    extra_labels: Optional[Dict[str, int]] = None,
) -> Tuple[bytes, Dict[str, int]]:
    """Assemble ``items``; see :meth:`Assembler.assemble`.

    ``extra_labels`` supplies label bindings defined outside the stream
    (e.g. data-section symbols at link-time-known offsets); stream labels
    shadow them.
    """
    # Pass 1: lay out offsets.
    offsets: List[int] = []
    labels: Dict[str, int] = dict(extra_labels or {})
    pos = 0
    stream_labels: Dict[str, int] = {}
    for item in items:
        if isinstance(item, Label):
            if item.name in stream_labels:
                raise AssemblyError(f"duplicate label: {item.name}")
            stream_labels[item.name] = pos
            labels[item.name] = pos
        else:
            offsets.append(pos)
            pos += instruction_length(item.op)

    # Pass 2: resolve label references and encode.
    out = bytearray()
    index = 0
    for item in items:
        if isinstance(item, Label):
            continue
        insn = item
        if insn.label is not None:
            if insn.op not in _LABEL_OPS:
                raise AssemblyError(
                    f"{insn.op.name} cannot take a label operand"
                )
            if insn.label not in labels:
                raise AssemblyError(f"undefined label: {insn.label}")
            next_ip = offsets[index] + instruction_length(insn.op)
            insn = Insn(
                insn.op,
                rd=insn.rd,
                rs=insn.rs,
                rb=insn.rb,
                imm=insn.imm,
                off=insn.off,
                rel=labels[insn.label] - next_ip,
                cc=insn.cc,
            )
        out += encode(insn)
        index += 1
    return bytes(out), {
        name: base + off for name, off in stream_labels.items()
    }


class A:
    """Terse instruction constructors (static namespace)."""

    @staticmethod
    def nop() -> Insn:
        return Insn(Op.NOP)

    @staticmethod
    def halt() -> Insn:
        return Insn(Op.HALT)

    @staticmethod
    def syscall() -> Insn:
        return Insn(Op.SYSCALL)

    @staticmethod
    def ret() -> Insn:
        return Insn(Op.RET)

    @staticmethod
    def mov(rd: int, imm: int) -> Insn:
        return Insn(Op.MOV_RI, rd=rd, imm=imm)

    @staticmethod
    def movr(rd: int, rs: int) -> Insn:
        return Insn(Op.MOV_RR, rd=rd, rs=rs)

    @staticmethod
    def lea(rd: int, label: str) -> Insn:
        return Insn(Op.LEA, rd=rd, label=label)

    @staticmethod
    def load(rd: int, rb: int, off: int = 0) -> Insn:
        return Insn(Op.LOAD, rd=rd, rb=rb, off=off)

    @staticmethod
    def store(rb: int, off: int, rs: int) -> Insn:
        return Insn(Op.STORE, rb=rb, off=off, rs=rs)

    @staticmethod
    def loadb(rd: int, rb: int, off: int = 0) -> Insn:
        return Insn(Op.LOADB, rd=rd, rb=rb, off=off)

    @staticmethod
    def storeb(rb: int, off: int, rs: int) -> Insn:
        return Insn(Op.STOREB, rb=rb, off=off, rs=rs)

    @staticmethod
    def push(rs: int) -> Insn:
        return Insn(Op.PUSH, rs=rs)

    @staticmethod
    def pop(rd: int) -> Insn:
        return Insn(Op.POP, rd=rd)

    @staticmethod
    def add(rd: int, rs: int) -> Insn:
        return Insn(Op.ADD, rd=rd, rs=rs)

    @staticmethod
    def sub(rd: int, rs: int) -> Insn:
        return Insn(Op.SUB, rd=rd, rs=rs)

    @staticmethod
    def mul(rd: int, rs: int) -> Insn:
        return Insn(Op.MUL, rd=rd, rs=rs)

    @staticmethod
    def div(rd: int, rs: int) -> Insn:
        return Insn(Op.DIV, rd=rd, rs=rs)

    @staticmethod
    def mod(rd: int, rs: int) -> Insn:
        return Insn(Op.MOD, rd=rd, rs=rs)

    @staticmethod
    def and_(rd: int, rs: int) -> Insn:
        return Insn(Op.AND, rd=rd, rs=rs)

    @staticmethod
    def or_(rd: int, rs: int) -> Insn:
        return Insn(Op.OR, rd=rd, rs=rs)

    @staticmethod
    def xor(rd: int, rs: int) -> Insn:
        return Insn(Op.XOR, rd=rd, rs=rs)

    @staticmethod
    def shl(rd: int, rs: int) -> Insn:
        return Insn(Op.SHL, rd=rd, rs=rs)

    @staticmethod
    def shr(rd: int, rs: int) -> Insn:
        return Insn(Op.SHR, rd=rd, rs=rs)

    @staticmethod
    def cmp(rd: int, rs: int) -> Insn:
        return Insn(Op.CMP, rd=rd, rs=rs)

    @staticmethod
    def addi(rd: int, imm: int) -> Insn:
        return Insn(Op.ADDI, rd=rd, imm=imm)

    @staticmethod
    def subi(rd: int, imm: int) -> Insn:
        return Insn(Op.SUBI, rd=rd, imm=imm)

    @staticmethod
    def cmpi(rd: int, imm: int) -> Insn:
        return Insn(Op.CMPI, rd=rd, imm=imm)

    @staticmethod
    def muli(rd: int, imm: int) -> Insn:
        return Insn(Op.MULI, rd=rd, imm=imm)

    @staticmethod
    def andi(rd: int, imm: int) -> Insn:
        return Insn(Op.ANDI, rd=rd, imm=imm)

    @staticmethod
    def jmp(label: str) -> Insn:
        return Insn(Op.JMP, label=label)

    @staticmethod
    def jcc(cc: Cond, label: str) -> Insn:
        return Insn(Op.JCC, cc=int(cc), label=label)

    @staticmethod
    def jmpr(rs: int) -> Insn:
        return Insn(Op.JMPR, rs=rs)

    @staticmethod
    def call(label: str) -> Insn:
        return Insn(Op.CALL, label=label)

    @staticmethod
    def callr(rs: int) -> Insn:
        return Insn(Op.CALLR, rs=rs)


# Convenience alias used throughout the toolchain and tests.
asm = assemble
