"""Round-robin fleet scheduler over ``Kernel.step``.

One simulated CPU time-slices the N protected processes (quantum in
simulated cycles), while M checker workers run on their own simulated
idle cores.  The **fleet clock** is the protected CPU's virtual time:
it advances with every cycle a process executes, and while a quantum is
in flight it is *pinned* to that process's executor so mid-quantum
events (an endpoint check fired from inside a syscall) are timestamped
to the exact cycle, not the quantum boundary.

A quantum ends for one of four reasons, mirroring
:class:`repro.osmodel.kernel.StepOutcome`:

- **BUDGET** — the quantum expired; the process goes to the back of the
  round-robin order.
- **PREEMPTED** — the executor's interrupt line was asserted: either a
  ToPA PMI (stall policy: the process stalls until a worker drains its
  ring) or checker backpressure (queue too deep: the process stalls
  until the earliest in-flight check completes).
- **EXITED / KILLED** — the process is done; any residual ring content
  gets a final exit-drain check so trace emitted after the last
  endpoint is still examined.

When every runnable process is stalled, the clock jumps to the earliest
stall deadline — the fleet is then limited by checker throughput, which
is exactly the regime the stall-vs-lossy experiment measures.

Everything here is deterministic: same fleet, same seed ⇒ identical
schedule log (and digest), verdicts, and cycle totals.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.osmodel.kernel import Kernel, StepOutcome
from repro.osmodel.process import Process
from repro.osmodel.syscalls import SIGKILL
from repro.telemetry import get_telemetry

from repro.fleet.dispatcher import FleetDispatcher
from repro.fleet.rings import ProcessRing


class FleetClock:
    """The protected CPU's virtual time, pinnable to a running quantum."""

    def __init__(self) -> None:
        self._base = 0.0
        self._anchor_executor = None
        self._anchor_cycles = 0.0
        #: optional observability plane; sampled on every clock tick.
        self.plane = None

    @property
    def now(self) -> float:
        if self._anchor_executor is not None:
            return self._base + (
                self._anchor_executor.cycles - self._anchor_cycles
            )
        return self._base

    def pin(self, executor) -> None:
        """Track a quantum in flight: ``now`` follows its cycle count."""
        self._anchor_executor = executor
        self._anchor_cycles = executor.cycles

    def unpin(self) -> None:
        """End the quantum, folding its cycles into the base clock."""
        self._base = self.now
        self._anchor_executor = None
        if self.plane is not None:
            self.plane.maybe_sample(self._base)

    def advance_to(self, when: float) -> None:
        """Jump forward (idle wait); never moves backward."""
        assert self._anchor_executor is None, "cannot jump a pinned clock"
        self._base = max(self._base, when)
        if self.plane is not None:
            self.plane.maybe_sample(self._base)


@dataclass
class FleetEntry:
    """One scheduled process and its fleet-side state."""

    proc: Process
    pp: object  # monitor.ProtectedProcess
    ring: ProcessRing
    index: int
    quarantined: bool = False
    done: bool = False
    started_at: float = 0.0
    finished_at: Optional[float] = None
    quanta: int = 0

    @property
    def schedulable(self) -> bool:
        return not self.done and not self.quarantined


class RoundRobinScheduler:
    """Time-slice the fleet; co-simulate checking and enforcement."""

    def __init__(
        self,
        kernel: Kernel,
        clock: FleetClock,
        dispatcher: FleetDispatcher,
        quantum: float = 2000.0,
        max_rounds: int = 100_000,
    ) -> None:
        if quantum <= 0:
            raise ValueError("quantum must be positive")
        self.kernel = kernel
        self.clock = clock
        self.dispatcher = dispatcher
        self.quantum = float(quantum)
        self.max_rounds = max_rounds
        self.entries: List[FleetEntry] = []
        self._by_pid: Dict[int, FleetEntry] = {}
        self.rounds = 0
        #: (round, pid, cycles, outcome) — the deterministic schedule.
        self.schedule_log: List[tuple] = []

    # -- fleet membership ----------------------------------------------------

    def add(self, entry: FleetEntry) -> None:
        self.entries.append(entry)
        self._by_pid[entry.proc.pid] = entry

    def entry_for(self, pid: int) -> Optional[FleetEntry]:
        return self._by_pid.get(pid)

    # -- main loop -----------------------------------------------------------

    def run(self) -> None:
        while self.step_round():
            pass
        self.finalize()

    def step_round(self) -> bool:
        """Run one scheduler round; ``False`` once the fleet is done.

        This is the historical ``run`` loop body, extracted so a
        serving front-end can interleave several fleets round-by-round
        on one event loop: same verdict application order, same stall
        handling, same idle jumps, so N ``step_round`` calls followed
        by :meth:`finalize` produce a schedule digest byte-identical to
        one ``run``.
        """
        if self.rounds >= self.max_rounds:
            return False
        self._apply_due_verdicts()
        runnable = [e for e in self.entries if e.schedulable]
        if not runnable:
            return False
        progressed = False
        for entry in runnable:
            if not entry.schedulable:  # quarantined mid-round
                continue
            if entry.ring.stalled:
                if self.clock.now >= entry.ring.stall_until:
                    entry.ring.end_stall(self.clock.now)
                else:
                    continue
            self._run_quantum(entry)
            progressed = True
        if not progressed:
            # Whole fleet stalled on checkers: jump to the earliest
            # deadline instead of spinning.
            deadlines = [
                e.ring.stall_until
                for e in self.entries
                if e.schedulable and e.ring.stalled
            ]
            if not deadlines:
                return False
            self.clock.advance_to(min(deadlines))
        self.rounds += 1
        return True

    # -- one quantum ---------------------------------------------------------

    def _run_quantum(self, entry: FleetEntry) -> None:
        proc = entry.proc
        if entry.quanta == 0:
            entry.started_at = self.clock.now
        entry.quanta += 1
        if entry.ring.delayed_pmi:
            # An injected-delay PMI lands at the quantum boundary: the
            # ring-full handling runs now, one scheduling slot late.
            entry.ring.delayed_pmi = False
            entry.pp.stats.pmi_count += 1
            tel_late = get_telemetry()
            if tel_late.enabled:
                tel_late.metrics.counter("monitor.pmi").inc()
            entry.ring.on_pmi()
        start_cycles = proc.executor.cycles
        outcome = StepOutcome.BUDGET
        self.clock.pin(proc.executor)
        try:
            spent = 0.0
            while spent < self.quantum and proc.alive:
                budget = max(1, int(self.quantum - spent))
                outcome = self.kernel.step(proc, budget)
                spent = proc.executor.cycles - start_cycles
                if outcome is not StepOutcome.BUDGET:
                    break
        finally:
            self.clock.unpin()
        spent = proc.executor.cycles - start_cycles
        self.schedule_log.append(
            (self.rounds, proc.pid, round(spent, 6), outcome.value)
        )
        tel = get_telemetry()
        if tel.enabled:
            tel.metrics.counter("fleet.quanta").inc(outcome=outcome.value)

        if outcome is StepOutcome.PREEMPTED:
            if entry.ring.stall_requested:
                self._stall_for_drain(entry)
            else:
                self._stall_for_backpressure(entry)
        elif not proc.alive:
            self._retire(entry)
        elif entry.ring.drain_requested:
            # Lossy PMI: drain asynchronously, never pause the process.
            self._lossy_drain(entry)

    # -- PMI / backpressure handling ----------------------------------------

    def _stall_for_drain(self, entry: FleetEntry) -> None:
        """Stall policy: pause until a worker drains the ring."""
        now = self.clock.now
        entry.pp.encoder.flush()
        data = entry.pp.topa.snapshot()
        task = self.dispatcher.submit(
            entry.pp, -1, "pmi-drain", now,
            data=data, resynced=entry.ring.pending_loss() > 0,
        )
        entry.ring.drain()
        entry.ring.begin_stall(now, task.finished_at)

    def _stall_for_backpressure(self, entry: FleetEntry) -> None:
        """Checker queue too deep: hold the process until it eases."""
        now = self.clock.now
        until = self.dispatcher.earliest_pending_finish()
        entry.ring.begin_stall(now, until if until is not None else now)

    def _lossy_drain(self, entry: FleetEntry) -> None:
        now = self.clock.now
        if self.dispatcher.congested(now):
            self.dispatcher.drop_drain(entry.ring)
            return
        entry.pp.encoder.flush()
        data = entry.pp.topa.snapshot()
        self.dispatcher.submit(
            entry.pp, -1, "pmi-drain", now,
            data=data, resynced=entry.ring.pending_loss() > 0,
        )
        entry.ring.drain()

    # -- retirement / enforcement -------------------------------------------

    def _retire(self, entry: FleetEntry) -> None:
        entry.done = True
        entry.finished_at = self.clock.now
        if entry.quarantined:
            return
        entry.pp.encoder.flush()
        data = entry.pp.topa.snapshot()
        if data:
            # Residual trace after the last endpoint still gets checked.
            self.dispatcher.submit(
                entry.pp, -1, "exit-drain", self.clock.now,
                data=data, resynced=entry.ring.pending_loss() > 0,
            )
            entry.ring.drain()

    def _apply_due_verdicts(self) -> None:
        for task in self.dispatcher.due_tasks(self.clock.now):
            entry = self._by_pid.get(task.pid)
            if task.dead_lettered:
                # The check could never be verified.  Fail closed when
                # the policy says so: an unverifiable window is treated
                # like a violation (quarantine), never like a pass.
                if (
                    self.dispatcher.retry.dead_letter_quarantine
                    and entry is not None
                    and not entry.quarantined
                ):
                    self._quarantine(
                        entry, task,
                        reason=(
                            f"dead-letter: check #{task.task_id} "
                            f"unverifiable after {task.attempts} attempts"
                        ),
                    )
                continue
            if task.verdict != "violation":
                continue
            if entry is None or entry.quarantined:
                continue
            self._quarantine(entry, task)

    def _quarantine(self, entry: FleetEntry, task, reason=None) -> None:
        """Kill + isolate the violator; the fleet keeps running."""
        posthumous = not entry.proc.alive
        entry.quarantined = True
        entry.done = True
        if entry.finished_at is None:
            entry.finished_at = self.clock.now
        if entry.proc.alive:
            self.kernel.kill_process(entry.proc, SIGKILL)
        if entry.ring.stalled:
            entry.ring.end_stall(self.clock.now)
        # Stop tracing the corpse; stats stay for reporting.
        try:
            entry.proc.executor.remove_listener(entry.pp.encoder.on_branch)
        except ValueError:  # pragma: no cover - already detached
            pass
        self.dispatcher.record_quarantine(
            entry.pp, task, self.clock.now, posthumous, reason=reason
        )

    # -- wind-down -----------------------------------------------------------

    def finalize(self) -> None:
        """Let in-flight checks complete and take effect."""
        horizon = self.dispatcher.flush_horizon()
        if horizon > self.clock.now:
            self.clock.advance_to(horizon)
        self._apply_due_verdicts()
        for entry in self.entries:
            if entry.ring.stalled:
                entry.ring.end_stall(self.clock.now)

    # -- reporting -----------------------------------------------------------

    def schedule_digest(self) -> str:
        """Stable hash of the schedule — the determinism witness."""
        blob = "\n".join(
            f"{r}|{pid}|{spent:.6f}|{outcome}"
            for r, pid, spent, outcome in self.schedule_log
        )
        return hashlib.sha256(blob.encode()).hexdigest()
