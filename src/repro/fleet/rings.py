"""Per-process ToPA ring management with buffer-full degradation.

Each fleet process owns one ToPA ring (its core's trace buffer).  When
the ring's interrupt region fills, the PMI fires and one of the §4
degradation policies applies:

- **stall** — the PMI asserts the executor's interrupt line, pausing
  the process at the next instruction boundary until a checker worker
  drains the ring.  Nothing is lost; the process pays the drain latency
  as stall cycles (the conservative, overhead-heavy choice).
- **lossy** — tracing continues and the ring wraps, overwriting the
  oldest bytes (drop-oldest).  The monitor must then perform a forced
  full-path re-sync at the next PSB: the snapshot head may be a packet
  *tail*, so everything before the first PSB is undecodable and counted
  as lost alongside the overwritten bytes.

A few bytes may still land after the PMI and before the executor stops
(the current instruction's packet group finishes emitting) — real PMIs
have the same skid, which is why the paper sizes the interrupt region
below the full ring.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional

from repro.cpu.executor import Executor
from repro.ipt.fast_decoder import sync_to_psb
from repro.ipt.topa import ToPA, ToPARegion


class RingPolicy(enum.Enum):
    """What to do when a process's trace ring fills."""

    STALL = "stall"
    LOSSY = "lossy"


def make_ring_topa(capacity: int, pmi_callback=None) -> ToPA:
    """A fleet ring: two equal regions, PMI on the second — the paper's
    §5.1 shape at a configurable capacity (pressure experiments shrink
    it to force PMIs)."""
    half = max(64, capacity // 2)
    return ToPA(
        regions=[ToPARegion(half), ToPARegion(half, interrupt=True)],
        pmi_callback=pmi_callback,
    )


@dataclass
class DrainResult:
    """One ring drain: the readable bytes plus loss accounting."""

    data: bytes
    #: bytes overwritten by drop-oldest wrapping since the last drain.
    overwritten: int = 0
    #: undecodable pre-PSB head bytes discarded by the forced re-sync.
    resync_dropped: int = 0
    #: True when this drain had to re-sync (ring wrapped since drain).
    resynced: bool = False


@dataclass
class ProcessRing:
    """One process's trace ring plus its degradation-policy state."""

    topa: ToPA
    policy: RingPolicy
    executor: Optional[Executor] = None

    pmi_count: int = 0
    stalls: int = 0
    resyncs: int = 0
    overwritten_bytes: int = 0
    resync_dropped_bytes: int = 0
    drains: int = 0

    #: set by the PMI in stall mode; the scheduler converts it into a
    #: stalled process + a drain task.
    stall_requested: bool = False
    #: an injected delay deferred a PMI: the scheduler delivers it at
    #: the start of the process's next quantum.
    delayed_pmi: bool = False
    #: set by the PMI in lossy mode; the scheduler drains at the next
    #: quantum boundary without pausing the process.
    drain_requested: bool = False
    #: the fleet is currently holding the process off-CPU.
    stalled: bool = False
    #: fleet clock at which the stall began / the drain completes.
    stall_begin: float = 0.0
    stall_until: float = 0.0
    #: cumulative cycles the process spent paused on ring drains.
    stall_cycles: float = 0.0

    _drained_mark: int = field(default=0, repr=False)

    # -- PMI delivery --------------------------------------------------------

    def on_pmi(self) -> None:
        """Ring-full interrupt, delivered from the ToPA write path."""
        self.pmi_count += 1
        if self.policy is RingPolicy.STALL:
            self.stall_requested = True
            if self.executor is not None:
                # Assert the core's interrupt line: the process stops at
                # the next instruction boundary and stays off-CPU until
                # a worker drains the ring.
                self.executor.stop_requested = True
        else:
            # LOSSY: let the ToPA wrap (drop-oldest); ask for an
            # asynchronous drain, and account the loss there (the drain
            # must re-sync at a PSB).
            self.drain_requested = True

    # -- draining ------------------------------------------------------------

    def pending_loss(self) -> int:
        """Bytes already overwritten since the last drain (lossy wrap)."""
        written = self.topa.total_bytes_written - self._drained_mark
        return max(0, written - len(self.topa.snapshot()))

    def drain(self) -> DrainResult:
        """Consume the ring: snapshot, account losses, reset."""
        data = self.topa.snapshot()
        written = self.topa.total_bytes_written - self._drained_mark
        overwritten = max(0, written - len(data))
        resync_dropped = 0
        resynced = False
        if overwritten > 0:
            # Bytes were actually dropped-oldest (``wrapped`` alone only
            # means the last region filled): the snapshot head is now a
            # packet *tail*.  Forced full-path re-sync: drop it, restart
            # decoding at the first PSB.
            resynced = True
            self.resyncs += 1
            first_psb = sync_to_psb(data)
            if first_psb < 0:
                resync_dropped = len(data)
                data = b""
            elif first_psb > 0:
                resync_dropped = first_psb
                data = data[first_psb:]
        self.topa.clear()
        self._drained_mark = self.topa.total_bytes_written
        self.drains += 1
        self.overwritten_bytes += overwritten
        self.resync_dropped_bytes += resync_dropped
        self.stall_requested = False
        self.drain_requested = False
        return DrainResult(
            data=data,
            overwritten=overwritten,
            resync_dropped=resync_dropped,
            resynced=resynced,
        )

    # -- stall bookkeeping ---------------------------------------------------

    def begin_stall(self, now: float, until: float) -> None:
        self.stalled = True
        self.stalls += 1
        self.stall_begin = now
        self.stall_until = max(until, now)

    def end_stall(self, now: float) -> None:
        """Resume the process; charge the cycles it actually waited."""
        self.stall_cycles += max(0.0, now - self.stall_begin)
        self.stalled = False
        self.stall_requested = False
        if self.executor is not None:
            self.executor.stop_requested = False
