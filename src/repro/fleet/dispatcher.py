"""The fleet dispatcher: routes checks to workers, applies verdicts.

The dispatcher sits between the protected processes and the worker
pool.  Every flow check — endpoint interception, PMI ring drain, exit
drain — becomes a :class:`~repro.fleet.workers.CheckTask`:

1. the verdict and its cycle cost are computed through the *same*
   ``FlowGuardMonitor._run_check`` path solo mode uses (so
   ``MonitorStats`` and the cycle profiler stay exact),
2. the cost is split into PSB-aligned decode slices plus a serial
   search phase and list-scheduled onto the simulated worker pool,
3. the verdict takes *effect* only when the fleet clock reaches the
   task's completion time — a violating process keeps running inside
   the detection window, exactly the asynchrony the paper trades for
   transparency.

Backpressure: when more checks are in flight than ``max_queue_depth``,
a stall-policy fleet pauses the submitting process until the queue
drains; a lossy fleet drops PMI-drain checks (endpoint checks are never
dropped — they are the enforcement points).

Violation verdicts become quarantine events: the offending process is
SIGKILLed and isolated from the scheduler while the rest of the fleet
keeps running.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro import costs
from repro.ipt.fast_decoder import psb_boundaries
from repro.resilience.faults import FaultInjector
from repro.resilience.ledger import DegradationLedger
from repro.resilience.retry import DeadLetter, RetryPolicy
from repro.telemetry import get_telemetry

from repro.fleet.rings import ProcessRing, RingPolicy
from repro.fleet.workers import CheckTask, SimulatedWorkerPool


@dataclass
class QuarantineEvent:
    """One enforced violation: kill + isolate, fleet keeps running."""

    pid: int
    name: str
    task_id: int
    detected_at: float  # fleet clock when the verdict landed
    enqueued_at: float
    reason: str
    #: the process had already exited when the verdict landed.
    posthumous: bool = False


def _slice_cycles(data: bytes, decode_cycles: float) -> List[float]:
    """Split a check's decode cost across its PSB-aligned slices.

    Proportional to slice byte length, with the final slice taking the
    remainder so the slices sum to ``decode_cycles`` *exactly* — the
    worker-ledger reconciliation depends on it.
    """
    if decode_cycles <= 0.0:
        return []
    boundaries = psb_boundaries(data)
    lengths = [
        end - begin
        for begin, end in zip(boundaries, boundaries[1:])
        if end > begin
    ]
    total = sum(lengths)
    if total <= 0 or len(lengths) <= 1:
        return [decode_cycles]
    slices = [decode_cycles * length / total for length in lengths[:-1]]
    slices.append(decode_cycles - sum(slices))
    return slices


class FleetDispatcher:
    """Check routing, backpressure, and deferred enforcement."""

    def __init__(
        self,
        pool: SimulatedWorkerPool,
        policy: RingPolicy = RingPolicy.STALL,
        max_queue_depth: int = 64,
        retry: Optional[RetryPolicy] = None,
        injector: Optional[FaultInjector] = None,
        degradations: Optional[DegradationLedger] = None,
    ) -> None:
        self.pool = pool
        self.policy = policy
        self.max_queue_depth = max_queue_depth
        #: retry/backoff/dead-letter policy for failed worker attempts.
        self.retry = retry if retry is not None else RetryPolicy()
        #: fault plane shared with the monitor (None = fault-free).
        self.injector = injector
        #: degradation audit trail shared with the monitor.
        self.degradations = degradations
        self.monitor = None  # bound by the service (FleetMonitor)
        #: optional ThreadedSliceDecoder: re-decodes each submission on
        #: a real thread pool (execution backend only; no accounting).
        self.real_decoder = None
        self.tasks: List[CheckTask] = []
        #: tasks whose verdict has not yet taken effect, by finish time.
        self._pending: List[CheckTask] = []
        self.quarantines: List[QuarantineEvent] = []
        self.dead_letters: List[DeadLetter] = []
        self.dropped_checks: int = 0
        #: endpoint-interception cycles spent on the protected core (not
        #: on a worker) — the reconciliation remainder.
        self.intercept_cycles: float = 0.0
        #: pool cycles wasted by failed attempts (crash/hang/timeout):
        #: in ``busy_cycles`` but charged to no process's MonitorStats.
        self.retry_cycles: float = 0.0
        #: the dual hole: dead-lettered checks were costed eagerly into
        #: MonitorStats at submit() but never ran on any worker.
        self.dead_letter_cycles: float = 0.0
        self._next_task_id = 0

    # -- binding -------------------------------------------------------------

    def bind(self, monitor) -> None:
        """Attach the fleet monitor whose ``_run_check`` computes
        verdicts (done after construction: monitor and dispatcher
        reference each other)."""
        self.monitor = monitor

    # -- queue state ---------------------------------------------------------

    def queue_depth(self, now: float) -> int:
        """Checks still in flight at fleet time ``now``."""
        return sum(1 for task in self._pending if task.finished_at > now)

    def congested(self, now: float) -> bool:
        return self.queue_depth(now) >= self.max_queue_depth

    def earliest_pending_finish(self) -> Optional[float]:
        if not self._pending:
            return None
        return min(task.finished_at for task in self._pending)

    # -- submission ----------------------------------------------------------

    def submit(
        self,
        pp,
        nr: int,
        kind: str,
        now: float,
        data: Optional[bytes] = None,
        resynced: bool = False,
    ) -> CheckTask:
        """Run one check through the monitor and schedule its cost.

        ``data`` is the ring content the check examines (defaults to a
        live ToPA snapshot, which is what ``_run_check`` consumes); the
        verdict is computed eagerly so state matches solo mode, but its
        effect is deferred to the task's completion time.
        """
        assert self.monitor is not None, "dispatcher not bound to a monitor"
        if data is None:
            # Flush first: ``_run_check`` will, and the slice boundaries
            # must be computed over the same bytes it decodes.
            pp.encoder.flush()
            data = pp.topa.snapshot()
        stats = pp.stats
        before = (
            stats.decode_cycles,
            stats.check_cycles,
            stats.other_cycles,
        )
        slow_before = stats.slow_path_runs
        verdict = self.monitor._run_check(pp, nr)
        if self.real_decoder is not None and data:
            self.real_decoder.decode(data, sync=resynced)
        decode_delta = stats.decode_cycles - before[0]
        check_delta = stats.check_cycles - before[1]
        other_delta = stats.other_cycles - before[2]
        # The fixed interception cost is paid in the syscall path on the
        # protected core; everything else runs on a checker worker.
        intercept = min(costs.MONITOR_INTERCEPT_CYCLES, other_delta)
        self.intercept_cycles += intercept
        task = CheckTask(
            task_id=self._next_task_id,
            pid=pp.process.pid,
            kind=kind,
            syscall_nr=nr,
            enqueued_at=now,
            slices=_slice_cycles(data, decode_delta),
            serial_cycles=check_delta + (other_delta - intercept),
            verdict=verdict.value,
            resynced=resynced,
            # A check that upcalled into the slow path (fallback or
            # suspicion) costs orders of magnitude more than a clean
            # fast-path check — the pool serializes it onto the
            # degraded lane so healthy checks never queue behind it.
            # Cheap degradations (drain re-reads, PSB re-syncs) stay
            # on the normal spread: their cost is a small multiple of
            # a clean check.
            degraded=stats.slow_path_runs > slow_before,
        )
        self._next_task_id += 1
        self._dispatch_with_recovery(task)
        self.tasks.append(task)
        self._pending.append(task)
        tel = get_telemetry()
        if tel.enabled:
            m = tel.metrics
            m.counter("fleet.checks").inc(kind=kind, verdict=task.verdict)
            m.histogram("fleet.check_lag").observe(task.lag)
            m.gauge("fleet.queue_depth").set(self.queue_depth(now))
        return task

    def _dispatch_with_recovery(self, task: CheckTask) -> float:
        """Schedule a task on the pool, surviving worker faults.

        Fault-free this is exactly ``pool.dispatch(task)``.  Under
        injection, each attempt may crash (burning ``crash_fraction`` of
        the task's cost), hang (burning ``task_timeout`` when the policy
        sets one, else the plan's ``hang_cycles``), and is then retried
        after an exact exponential backoff —
        ``delay(n) = min(cap, base * factor**(n-1))`` — up to
        ``max_attempts`` total attempts.  A check that exhausts them is
        dead-lettered: recorded, never silently dropped, and handled
        fail-closed by the scheduler when the policy says so.
        """
        inj = self.injector
        if inj is None:
            return self.pool.dispatch(task)
        policy = self.retry
        tel = get_telemetry()
        not_before = task.enqueued_at
        history: List[str] = []
        for attempt in range(1, policy.max_attempts + 1):
            task.attempts = attempt
            fault = inj.worker_fault()
            if fault is None:
                return self.pool.dispatch(task, not_before=not_before)
            if fault == "crash":
                kind = "worker-crash"
                wasted = task.cost * inj.plan.crash_fraction
            elif policy.task_timeout > 0:
                # The watchdog cancels the wedged attempt at the timeout.
                kind = "task-timeout"
                wasted = policy.task_timeout
            else:
                kind = "worker-hang"
                wasted = inj.plan.hang_cycles
            if policy.task_timeout > 0:
                wasted = min(wasted, policy.task_timeout)
            history.append(kind)
            # Hung/timed-out attempts wedge the degraded lane, not a
            # healthy worker — the watchdog will cancel them anyway.
            # A crash is detected immediately and burns only a
            # fraction of the task's cost, wherever it ran.
            failed_at = self.pool.burn(
                not_before, wasted, lane=(fault != "crash")
            )
            self.retry_cycles += wasted
            if self.degradations is not None:
                self.degradations.record(
                    kind, pid=task.pid,
                    detail=f"task={task.task_id} attempt={attempt}",
                    at=failed_at, cycles=wasted,
                )
            if attempt < policy.max_attempts:
                hedged = (
                    kind != "worker-crash" and policy.hedge_delay > 0
                )
                if hedged:
                    # Tail-latency hedge: a wedged attempt is re-issued
                    # a short delay after dispatch instead of waiting
                    # out the watchdog.  The burn above still accrues —
                    # hedging spends spare capacity, it hides nothing.
                    delay = policy.hedge_delay
                    not_before = not_before + delay
                else:
                    delay = policy.delay(attempt)
                    not_before = failed_at + delay
                if self.degradations is not None:
                    self.degradations.record(
                        "hedge" if hedged else "retry", pid=task.pid,
                        detail=f"task={task.task_id} "
                               f"attempt={attempt + 1} delay={delay:g}",
                        at=not_before,
                    )
                if tel.enabled:
                    m = tel.metrics
                    m.counter(
                        "resilience.hedges" if hedged
                        else "resilience.retries"
                    ).inc(kind=kind)
                    m.counter("resilience.backoff_cycles").inc(delay)
            else:
                task.dead_lettered = True
                task.started_at = task.enqueued_at
                task.finished_at = failed_at
                # submit() charged the verdict's cost to MonitorStats
                # eagerly, but no attempt ever ran it on the pool.
                self.dead_letter_cycles += task.cost
                letter = DeadLetter(
                    task_id=task.task_id,
                    pid=task.pid,
                    kind=kind,
                    attempts=attempt,
                    last_fault=",".join(history),
                    at=failed_at,
                )
                self.dead_letters.append(letter)
                if self.degradations is not None:
                    self.degradations.record(
                        "dead-letter", pid=task.pid,
                        detail=f"task={task.task_id} after {attempt} "
                               f"attempts ({letter.last_fault})",
                        at=failed_at,
                    )
                if tel.enabled:
                    tel.metrics.counter("resilience.dead_letters").inc(
                        kind=kind
                    )
        return task.finished_at

    def drop_drain(self, ring: ProcessRing) -> None:
        """Lossy backpressure: skip a PMI drain check entirely.

        The ring is still consumed (its bytes are lost unexamined) so
        tracing continues from a clean buffer."""
        ring.drain()
        self.dropped_checks += 1
        if self.degradations is not None:
            # Audited like every other downgrade (and thereby mirrored
            # into the resilience.events counter).
            self.degradations.record("drop-drain")
        tel = get_telemetry()
        if tel.enabled:
            tel.metrics.counter("fleet.dropped_checks").inc()
            # Symmetric with resilience.retries / resilience.dead_letters:
            # every recovery-plane outcome has a resilience.* counter.
            tel.metrics.counter("resilience.drops").inc(kind="pmi-drain")

    # -- verdict application -------------------------------------------------

    def due_tasks(self, now: float) -> List[CheckTask]:
        """Pop every task whose completion time has been reached, in
        completion order (ties: submission order — both deterministic)."""
        due = [t for t in self._pending if t.finished_at <= now]
        if due:
            self._pending = [t for t in self._pending if t.finished_at > now]
            due.sort(key=lambda t: (t.finished_at, t.task_id))
        return due

    def flush_horizon(self) -> float:
        """Latest completion time among in-flight checks."""
        if not self._pending:
            return 0.0
        return max(task.finished_at for task in self._pending)

    def record_quarantine(
        self,
        pp,
        task: CheckTask,
        now: float,
        posthumous: bool,
        reason: Optional[str] = None,
    ) -> QuarantineEvent:
        event = QuarantineEvent(
            pid=pp.process.pid,
            name=pp.process.name,
            task_id=task.task_id,
            detected_at=now,
            enqueued_at=task.enqueued_at,
            reason=(
                reason if reason is not None
                else self._reason_for(pp.process.pid)
            ),
            posthumous=posthumous,
        )
        self.quarantines.append(event)
        if self.degradations is not None:
            self.degradations.record(
                "quarantine", pid=event.pid, detail=event.reason, at=now
            )
        tel = get_telemetry()
        if tel.enabled:
            tel.metrics.counter("fleet.quarantines").inc(
                program=pp.process.name
            )
            tel.metrics.counter("resilience.quarantines").inc(
                kind="dead-letter" if task.dead_lettered else "violation"
            )
            # Detection window: check enqueued -> enforcement applied.
            # The detection-latency SLO reads this histogram's p99.
            tel.metrics.histogram("fleet.detection_latency").observe(
                now - task.enqueued_at
            )
        return event

    def _reason_for(self, pid: int) -> str:
        assert self.monitor is not None
        for det in reversed(self.monitor.detections):
            if det.pid == pid:
                return det.reason
        return "CFI violation"

    # -- accounting ----------------------------------------------------------

    def ledger(self) -> dict:
        """The worker/interception cycle ledger for reconciliation:
        ``busy - retry + intercept + dead_letter`` must equal the
        summed per-process MonitorStats cycles exactly (retry cycles
        are busy time no stats saw; dead-letter cycles are stats time
        no worker saw)."""
        return {
            "busy_cycles": self.pool.busy_total,
            "intercept_cycles": self.intercept_cycles,
            "retry_cycles": self.retry_cycles,
            "dead_letter_cycles": self.dead_letter_cycles,
        }
