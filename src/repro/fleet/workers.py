"""The checker worker pool: M simulated idle cores.

FlowGuard's monitors run on cores the protected workload leaves idle
(§5.3); checking is therefore *asynchronous* — a check enqueued at fleet
time T completes at some later time, and the gap is the **check lag**
the fleet telemetry tracks.

The simulated pool is a deterministic list scheduler: each check task
carries PSB-aligned decode slices (independently decodable, the §5.3
parallel-decode property) plus a serial phase (ITC search, slow-path
upcall) that runs after the last slice lands.  Slices go to the
earliest-available worker (ties broken by worker index), so two runs of
the same fleet produce byte-identical schedules.

``ThreadedSliceDecoder`` is the optional *real* executor mode: it feeds
the same PSB slices through ``fast_decode_parallel`` on a
``concurrent.futures`` thread pool for wall-clock overlap, while the
simulated pool still does the cycle accounting.
"""

from __future__ import annotations

import hashlib
import struct
from dataclasses import dataclass, field
from typing import List, Optional

from repro.ipt import shm
from repro.ipt.columnar import (
    ColumnarParallelResult,
    columnar_decode_parallel,
    columnar_scan,
)
from repro.ipt.fast_decoder import (
    fast_decode_parallel,
    psb_boundaries,
    sync_to_psb,
)
from repro.ipt.segment_cache import SegmentDecodeCache
from repro.monitor.fastpath import ENGINES

#: decode-pool backends for real (wall-clock) slice decoding.
DECODE_POOLS = ("thread", "process")

#: simulated scheduler disciplines.
POOL_DISCIPLINES = ("spread", "steal")


@dataclass
class CheckTask:
    """One dispatched flow check (endpoint, PMI drain, or exit drain)."""

    task_id: int
    pid: int
    kind: str  # "endpoint" | "pmi-drain" | "exit-drain"
    syscall_nr: int
    enqueued_at: float
    #: decode cycles per PSB-aligned slice (parallelizable).
    slices: List[float] = field(default_factory=list)
    #: search + slow-path cycles (serial, after the last slice decodes).
    serial_cycles: float = 0.0
    verdict: str = "pass"
    resynced: bool = False
    #: dispatch attempts made (>1 when workers crashed/hung under
    #: fault injection and the dispatcher retried).
    attempts: int = 1
    #: every attempt failed: the check is unverifiable and the verdict
    #: never takes normal effect (fail-closed handling applies instead).
    dead_lettered: bool = False
    #: the check took a degraded path (drain re-read, PSB re-sync,
    #: slow-path fallback/upcall) and can cost orders of magnitude
    #: more than a clean fast-path check — the pool serializes it
    #: onto a single worker (the "degraded lane") so healthy checks
    #: never queue behind recovery work.
    degraded: bool = False

    # filled in by the pool:
    started_at: float = 0.0
    finished_at: float = 0.0

    @property
    def lag(self) -> float:
        """Check latency: completion minus enqueue, in fleet cycles."""
        return self.finished_at - self.enqueued_at

    @property
    def cost(self) -> float:
        return sum(self.slices) + self.serial_cycles


class _WorkerIndex:
    """Segment tree over worker free-times.

    ``SimulatedWorkerPool`` used to pick workers with an O(M) scan per
    slice — quadratic total scheduling cost once fleets carry hundreds
    of workers.  This index answers both selection queries in O(log M)
    with the *exact* tie-breaks of the linear oracle (kept below as
    ``_earliest_linear``/``_latest_linear`` and asserted identical by
    the tests):

    - earliest(t0): the lowest-index worker with ``free_at <= t0`` if
      any is idle at t0, else the lexicographic argmin of
      ``(free_at, index)``.
    - latest(): the highest-index argmax of ``free_at``.
    """

    __slots__ = ("size", "tmin", "tmax")

    def __init__(self, free_at: List[float]) -> None:
        size = 1
        while size < len(free_at):
            size *= 2
        self.size = size
        inf = float("inf")
        self.tmin = [inf] * (2 * size)
        self.tmax = [-inf] * (2 * size)
        for index, value in enumerate(free_at):
            self.tmin[size + index] = value
            self.tmax[size + index] = value
        for node in range(size - 1, 0, -1):
            self.tmin[node] = min(self.tmin[2 * node], self.tmin[2 * node + 1])
            self.tmax[node] = max(self.tmax[2 * node], self.tmax[2 * node + 1])

    def update(self, index: int, value: float) -> None:
        node = self.size + index
        self.tmin[node] = value
        self.tmax[node] = value
        node //= 2
        tmin, tmax = self.tmin, self.tmax
        while node:
            tmin[node] = min(tmin[2 * node], tmin[2 * node + 1])
            tmax[node] = max(tmax[2 * node], tmax[2 * node + 1])
            node //= 2

    def earliest(self, not_before: float) -> int:
        tmin = self.tmin
        node = 1
        if tmin[1] <= not_before:
            # Some worker is already idle at t0: every idle worker
            # starts exactly at t0, so the lowest index wins —
            # descend to the leftmost leaf under the threshold.
            while node < self.size:
                left = 2 * node
                node = left if tmin[left] <= not_before else left + 1
        else:
            # All busy: the earliest-free worker starts first; on
            # ties the leftmost argmin is the lowest index.
            target = tmin[1]
            while node < self.size:
                left = 2 * node
                node = left if tmin[left] == target else left + 1
        return node - self.size

    def latest(self) -> int:
        tmax = self.tmax
        node = 1
        target = tmax[1]
        while node < self.size:
            right = 2 * node + 1
            node = right if tmax[right] == target else right - 1
        return node - self.size


class SimulatedWorkerPool:
    """Deterministic M-core list scheduler with a busy-cycle ledger."""

    def __init__(self, workers: int) -> None:
        if workers < 1:
            raise ValueError("worker pool needs at least one core")
        self.workers = workers
        self.free_at = [0.0] * workers
        self.busy_cycles = [0.0] * workers
        self.tasks_run = [0] * workers

    # -- scheduling ----------------------------------------------------------

    @property
    def free_at(self) -> List[float]:
        return self._free_at

    @free_at.setter
    def free_at(self, values) -> None:
        # Whole-list assignment (tests seed schedules this way)
        # rebuilds the selection index; element writes inside the pool
        # go through _set_free to keep it incremental.
        self._free_at = list(values)
        self._index = _WorkerIndex(self._free_at)

    def _set_free(self, index: int, value: float) -> None:
        """Every ``free_at`` write goes through here so the selection
        index stays coherent with the array."""
        self.free_at[index] = value
        self._index.update(index, value)

    def _earliest(self, not_before: float) -> int:
        """Worker index that can start soonest (ties: lowest index)."""
        return self._index.earliest(not_before)

    def _latest(self) -> int:
        """The degraded lane: the worker already booked furthest out
        (ties: highest index).  Piling recovery work onto it costs the
        least healthy capacity, and consecutive degraded checks
        serialize behind each other instead of spreading."""
        return self._index.latest()

    # Linear-scan oracles: the original O(M) selections, kept verbatim
    # so tests can assert the segment tree produces identical schedules.

    def _earliest_linear(self, not_before: float) -> int:
        best = 0
        best_start = max(self.free_at[0], not_before)
        for index in range(1, self.workers):
            start = max(self.free_at[index], not_before)
            if start < best_start:
                best = index
                best_start = start
        return best

    def _latest_linear(self) -> int:
        best = self.workers - 1
        for index in range(self.workers - 2, -1, -1):
            if self.free_at[index] > self.free_at[best]:
                best = index
        return best

    def dispatch(
        self, task: CheckTask, not_before: Optional[float] = None
    ) -> float:
        """Schedule a task's slices then its serial phase; returns the
        completion time on the fleet clock.  ``not_before`` delays the
        earliest start past the enqueue time (retry backoff).

        Degraded tasks do not spread: every slice plus the serial
        phase runs back-to-back on the degraded lane, so one expensive
        re-verification occupies one worker, not the whole pool.
        """
        t0 = task.enqueued_at if not_before is None else not_before
        if task.degraded:
            w = self._latest()
            start = max(self.free_at[w], t0)
            cost = task.cost
            self._set_free(w, start + cost)
            self.busy_cycles[w] += cost
            self.tasks_run[w] += 1
            task.started_at = start
            task.finished_at = start + cost
            return task.finished_at
        first_start = None
        slice_end = t0
        last_worker: Optional[int] = None
        for cycles in task.slices:
            w = self._earliest(t0)
            start = max(self.free_at[w], t0)
            end = start + cycles
            self._set_free(w, end)
            self.busy_cycles[w] += cycles
            if first_start is None or start < first_start:
                first_start = start
            if end > slice_end:
                slice_end = end
                last_worker = w
        # The serial phase (search, upcall) runs on the worker that
        # finished the final slice — the combine step needs its output.
        if task.serial_cycles or not task.slices:
            w = last_worker if last_worker is not None else self._earliest(t0)
            start = max(self.free_at[w], t0, slice_end)
            end = start + task.serial_cycles
            self._set_free(w, end)
            self.busy_cycles[w] += task.serial_cycles
            self.tasks_run[w] += 1
            if first_start is None:
                first_start = start
            slice_end = end
        elif last_worker is not None:
            self.tasks_run[last_worker] += 1
        task.started_at = first_start if first_start is not None else t0
        task.finished_at = slice_end
        return task.finished_at

    def burn(
        self, not_before: float, cycles: float, lane: bool = False
    ) -> float:
        """Occupy a worker with ``cycles`` of *unproductive* work (a
        crashed/hung/timed-out check attempt).  The cycles land in the
        busy ledger like any other work — the dispatcher's
        ``retry_cycles`` entry is what keeps the reconciliation exact.
        ``lane`` sends the burn to the degraded lane instead of the
        earliest worker: a wedged attempt that a watchdog will cancel
        should not hold up healthy capacity.  Returns the burn's end
        time."""
        w = self._latest() if lane else self._earliest(not_before)
        start = max(self.free_at[w], not_before)
        end = start + cycles
        self._set_free(w, end)
        self.busy_cycles[w] += cycles
        return end

    # -- accounting ----------------------------------------------------------

    @property
    def busy_total(self) -> float:
        return sum(self.busy_cycles)

    def earliest_free(self) -> float:
        return min(self.free_at)

    def utilization(self, span: float) -> List[float]:
        """Per-worker busy fraction of the fleet's total span."""
        if span <= 0:
            return [0.0] * self.workers
        return [busy / span for busy in self.busy_cycles]


class WorkStealingPool(SimulatedWorkerPool):
    """Work-stealing discipline over the same simulated cores.

    Each protected process has a *home* worker (``pid % workers``)
    whose backlog its checks join — decode state, segment-cache lines
    and index hot entries for one process stay on one core.  An idle
    worker steals when the home worker's backlog is the bottleneck:
    dispatch places the task on its home queue unless another worker
    can start it strictly earlier, which is exactly the steady state a
    steal-from-the-longest-backlog deque scheduler converges to when
    tasks are handed over one at a time in clock order (the idlest
    worker always takes the next task the most-backlogged queue cannot
    start first).

    Placement is whole-task: slices and the serial phase run
    back-to-back on the chosen worker, trading slice-level spread for
    affinity.  The busy ledger is placement-independent (a task's cost
    lands wherever it runs), so fleet reconciliation stays exact under
    either discipline.  Degraded checks keep the dedicated lane.
    """

    def __init__(self, workers: int) -> None:
        super().__init__(workers)
        self.steals = 0
        self.affinity_hits = 0

    def dispatch(
        self, task: CheckTask, not_before: Optional[float] = None
    ) -> float:
        if task.degraded:
            return super().dispatch(task, not_before)
        t0 = task.enqueued_at if not_before is None else not_before
        home = task.pid % self.workers
        w = home
        start = max(self.free_at[home], t0)
        if start > t0:
            # Home is backlogged past t0 — the earliest-free worker
            # steals if that strictly beats waiting for home.
            thief = self._earliest(t0)
            thief_start = max(self.free_at[thief], t0)
            if thief_start < start:
                w, start = thief, thief_start
        if w == home:
            self.affinity_hits += 1
        else:
            self.steals += 1
        cost = task.cost
        end = start + cost
        self._set_free(w, end)
        self.busy_cycles[w] += cost
        self.tasks_run[w] += 1
        task.started_at = start
        task.finished_at = end
        return end


def make_pool(workers: int, discipline: str = "spread") -> SimulatedWorkerPool:
    """The simulated pool for a scheduling discipline: ``"spread"``
    (slice-level earliest-free list scheduling, the default) or
    ``"steal"`` (per-process affinity with work stealing)."""
    if discipline not in POOL_DISCIPLINES:
        raise ValueError(
            f"unknown pool discipline {discipline!r}; "
            f"pick one of {POOL_DISCIPLINES}"
        )
    if discipline == "steal":
        return WorkStealingPool(workers)
    return SimulatedWorkerPool(workers)


def _fold_columns(digest, result: ColumnarParallelResult) -> None:
    """Fold a columnar decode result into a rolling digest.  Two
    decoders whose digests match produced byte-identical columns in
    the same order — the thread-vs-process parity instrument (the
    real decoder's output feeds no other accounting)."""
    digest.update(struct.pack(
        "<ddqq", result.cycles, result.critical_path_cycles,
        result.synced_offset, result.segments,
    ))
    for seg, base in result.columns:
        digest.update(struct.pack("<q", base))
        digest.update(shm.segment_fingerprint(seg))


class ThreadedSliceDecoder:
    """Optional real-parallel decode of drained rings.

    Wraps a ``concurrent.futures.ThreadPoolExecutor`` around
    ``fast_decode_parallel`` so PSB slices of a snapshot decode
    concurrently in wall-clock time.  Purely an execution backend: the
    packets (and the simulated cycle accounting done elsewhere) are
    identical to the serial path.

    ``cache_entries`` > 0 gives this decoder its *own*
    :class:`~repro.ipt.segment_cache.SegmentDecodeCache`, so repeated
    PSB slices across drained rings decode once.  The cache is private —
    it must not be shared with the checkers' cache, whose hit/miss
    stream feeds the simulated accounting.  Cached decoding runs on the
    caller thread (a hit skips decode work entirely, which beats
    fanning misses out to the pool).

    ``engine`` selects the decode engine the slices run through:
    ``"columnar"`` (default) feeds them to
    :func:`~repro.ipt.columnar.columnar_decode_parallel`, ``"objects"``
    to :func:`~repro.ipt.fast_decoder.fast_decode_parallel`.  Both
    produce the same decode (the columnar one materialises packet
    objects only on demand) — this backend never feeds the simulated
    cycle accounting either way.
    """

    def __init__(
        self, workers: int, cache_entries: int = 0,
        engine: str = "columnar",
    ) -> None:
        from concurrent.futures import ThreadPoolExecutor

        if engine not in ENGINES:
            raise ValueError(
                f"unknown decode engine {engine!r}; pick one of {ENGINES}"
            )
        self.workers = workers
        self.engine = engine
        self._executor = ThreadPoolExecutor(
            max_workers=workers, thread_name_prefix="fleet-decode"
        )
        self.cache = (
            SegmentDecodeCache(cache_entries) if cache_entries > 0
            else None
        )
        self.snapshots_decoded = 0
        self.segments_decoded = 0
        self._digest = hashlib.sha256()

    def decode(self, data: bytes, sync: bool = False):
        decode_parallel = (
            columnar_decode_parallel if self.engine == "columnar"
            else fast_decode_parallel
        )
        result = decode_parallel(data, sync=sync,
                                 executor=self._executor,
                                 cache=self.cache)
        self.snapshots_decoded += 1
        self.segments_decoded += result.segments
        if self.engine == "columnar":
            _fold_columns(self._digest, result)
        return result

    @property
    def column_digest(self) -> str:
        """Rolling digest over every decoded column (columnar engine
        only) — compare across decoder backends for output parity."""
        return self._digest.hexdigest()

    def close(self) -> None:
        self._executor.shutdown(wait=True)

    def __enter__(self) -> "ThreadedSliceDecoder":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def _decode_span_worker(desc, begin: int, end: int):
    """Pool-worker side of process decode: copy one PSB span out of
    the shared snapshot, scan it, and hand the columns back as a
    descriptor — column data never crosses the pipe."""
    registry = shm.get_registry()
    span = shm.attach_bytes(desc, begin, end, registry)
    seg = columnar_scan(span)
    out = shm.share_segment(seg, registry)
    registry.publish(out.block)
    return out


class ProcessPoolSliceDecoder:
    """True process-pool decode of drained rings over shared memory.

    Same decode/close/context-manager surface as
    :class:`ThreadedSliceDecoder`, but the PSB slices fan out to a
    ``concurrent.futures.ProcessPoolExecutor``: the snapshot ships to
    workers as one shared-memory block, each worker scans its span and
    shares the resulting columns back, and only tiny descriptors cross
    the pipe (zero pickling of column data — see ``repro.ipt.shm``).
    The assembled :class:`~repro.ipt.columnar.ColumnarParallelResult`
    is bit-identical to the threaded path: same spans, same per-segment
    ``columnar_scan`` charges, same total/critical-path accounting.

    Columnar engine only — the object engine's packet graphs are
    exactly the pickling cost this backend exists to avoid.  With
    ``cache_entries`` > 0 the private segment cache runs on the caller
    side like the threaded decoder (a hit skips the pool entirely).
    When the pool cannot start (restricted sandboxes), decode falls
    back in-process (``pool_backend == "inline"``) with identical
    results.
    """

    def __init__(
        self, workers: int, cache_entries: int = 0,
        engine: str = "columnar",
    ) -> None:
        if engine != "columnar":
            raise ValueError(
                "ProcessPoolSliceDecoder is columnar-only; engine "
                f"{engine!r} would pickle packet objects across the pool"
            )
        self.workers = workers
        self.engine = engine
        self.cache = (
            SegmentDecodeCache(cache_entries) if cache_entries > 0
            else None
        )
        self.snapshots_decoded = 0
        self.segments_decoded = 0
        self._digest = hashlib.sha256()
        self._registry = shm.get_registry()
        self._executor = None
        self.pool_backend = "inline"
        try:
            import multiprocessing
            from concurrent.futures import ProcessPoolExecutor

            self._executor = ProcessPoolExecutor(
                max_workers=workers,
                mp_context=multiprocessing.get_context("fork"),
            )
            self.pool_backend = "process"
        except (ImportError, OSError, ValueError):
            self._executor = None

    def decode(self, data, sync: bool = False) -> ColumnarParallelResult:
        if self.cache is not None:
            # Cached decode runs caller-side (hits skip the pool), the
            # same policy as the threaded decoder.
            result = columnar_decode_parallel(data, sync=sync,
                                              cache=self.cache)
        else:
            result = self._decode_pooled(bytes(data), sync)
        self.snapshots_decoded += 1
        self.segments_decoded += result.segments
        _fold_columns(self._digest, result)
        return result

    def _decode_pooled(self, data: bytes, sync: bool) -> ColumnarParallelResult:
        start = 0
        if sync:
            start = sync_to_psb(data)
            if start < 0:
                return ColumnarParallelResult([], 0.0, len(data), 1, 0.0)
        boundaries = psb_boundaries(data, start)
        spans = [
            (begin, end)
            for begin, end in zip(boundaries, boundaries[1:])
            if begin < end
        ]
        if not spans or self._executor is None:
            result = columnar_decode_parallel(data, sync=sync)
            return result
        in_desc = shm.share_bytes(data, self._registry)
        descriptors = []
        error: Optional[BaseException] = None
        try:
            futures = [
                self._executor.submit(_decode_span_worker, in_desc, b, e)
                for b, e in spans
            ]
            for future in futures:
                try:
                    descriptors.append(future.result())
                except Exception as exc:  # decode error in one span
                    error = error if error is not None else exc
        finally:
            shm.release(in_desc, self._registry)
        if error is not None:
            # Mirror the threaded path's exception, without leaking
            # the spans that did decode.
            for desc in descriptors:
                shm.release(desc, self._registry)
            raise error
        columns = []
        total = 0.0
        critical = 0.0
        for (begin, _), desc in zip(spans, descriptors):
            seg = shm.consume_segment(desc, self._registry)
            columns.append((seg, begin))
            total += seg.cycles
            critical = max(critical, seg.cycles)
        return ColumnarParallelResult(
            columns, total, start, max(len(spans), 1), critical
        )

    @property
    def column_digest(self) -> str:
        return self._digest.hexdigest()

    def shm_stats(self) -> dict:
        return self._registry.stats()

    def close(self) -> None:
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None

    def __enter__(self) -> "ProcessPoolSliceDecoder":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def make_slice_decoder(
    pool: str, workers: int, cache_entries: int = 0,
    engine: str = "columnar",
):
    """The real decode backend for a ``decode_pool`` knob value."""
    if pool not in DECODE_POOLS:
        raise ValueError(
            f"unknown decode pool {pool!r}; pick one of {DECODE_POOLS}"
        )
    if pool == "process":
        return ProcessPoolSliceDecoder(workers, cache_entries, engine)
    return ThreadedSliceDecoder(workers, cache_entries, engine)
