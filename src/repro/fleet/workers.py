"""The checker worker pool: M simulated idle cores.

FlowGuard's monitors run on cores the protected workload leaves idle
(§5.3); checking is therefore *asynchronous* — a check enqueued at fleet
time T completes at some later time, and the gap is the **check lag**
the fleet telemetry tracks.

The simulated pool is a deterministic list scheduler: each check task
carries PSB-aligned decode slices (independently decodable, the §5.3
parallel-decode property) plus a serial phase (ITC search, slow-path
upcall) that runs after the last slice lands.  Slices go to the
earliest-available worker (ties broken by worker index), so two runs of
the same fleet produce byte-identical schedules.

``ThreadedSliceDecoder`` is the optional *real* executor mode: it feeds
the same PSB slices through ``fast_decode_parallel`` on a
``concurrent.futures`` thread pool for wall-clock overlap, while the
simulated pool still does the cycle accounting.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.ipt.columnar import columnar_decode_parallel
from repro.ipt.fast_decoder import fast_decode_parallel
from repro.ipt.segment_cache import SegmentDecodeCache
from repro.monitor.fastpath import ENGINES


@dataclass
class CheckTask:
    """One dispatched flow check (endpoint, PMI drain, or exit drain)."""

    task_id: int
    pid: int
    kind: str  # "endpoint" | "pmi-drain" | "exit-drain"
    syscall_nr: int
    enqueued_at: float
    #: decode cycles per PSB-aligned slice (parallelizable).
    slices: List[float] = field(default_factory=list)
    #: search + slow-path cycles (serial, after the last slice decodes).
    serial_cycles: float = 0.0
    verdict: str = "pass"
    resynced: bool = False
    #: dispatch attempts made (>1 when workers crashed/hung under
    #: fault injection and the dispatcher retried).
    attempts: int = 1
    #: every attempt failed: the check is unverifiable and the verdict
    #: never takes normal effect (fail-closed handling applies instead).
    dead_lettered: bool = False
    #: the check took a degraded path (drain re-read, PSB re-sync,
    #: slow-path fallback/upcall) and can cost orders of magnitude
    #: more than a clean fast-path check — the pool serializes it
    #: onto a single worker (the "degraded lane") so healthy checks
    #: never queue behind recovery work.
    degraded: bool = False

    # filled in by the pool:
    started_at: float = 0.0
    finished_at: float = 0.0

    @property
    def lag(self) -> float:
        """Check latency: completion minus enqueue, in fleet cycles."""
        return self.finished_at - self.enqueued_at

    @property
    def cost(self) -> float:
        return sum(self.slices) + self.serial_cycles


class SimulatedWorkerPool:
    """Deterministic M-core list scheduler with a busy-cycle ledger."""

    def __init__(self, workers: int) -> None:
        if workers < 1:
            raise ValueError("worker pool needs at least one core")
        self.workers = workers
        self.free_at = [0.0] * workers
        self.busy_cycles = [0.0] * workers
        self.tasks_run = [0] * workers

    # -- scheduling ----------------------------------------------------------

    def _earliest(self, not_before: float) -> int:
        """Worker index that can start soonest (ties: lowest index)."""
        best = 0
        best_start = max(self.free_at[0], not_before)
        for index in range(1, self.workers):
            start = max(self.free_at[index], not_before)
            if start < best_start:
                best = index
                best_start = start
        return best

    def _latest(self) -> int:
        """The degraded lane: the worker already booked furthest out
        (ties: highest index).  Piling recovery work onto it costs the
        least healthy capacity, and consecutive degraded checks
        serialize behind each other instead of spreading."""
        best = self.workers - 1
        for index in range(self.workers - 2, -1, -1):
            if self.free_at[index] > self.free_at[best]:
                best = index
        return best

    def dispatch(
        self, task: CheckTask, not_before: Optional[float] = None
    ) -> float:
        """Schedule a task's slices then its serial phase; returns the
        completion time on the fleet clock.  ``not_before`` delays the
        earliest start past the enqueue time (retry backoff).

        Degraded tasks do not spread: every slice plus the serial
        phase runs back-to-back on the degraded lane, so one expensive
        re-verification occupies one worker, not the whole pool.
        """
        t0 = task.enqueued_at if not_before is None else not_before
        if task.degraded:
            w = self._latest()
            start = max(self.free_at[w], t0)
            cost = task.cost
            self.free_at[w] = start + cost
            self.busy_cycles[w] += cost
            self.tasks_run[w] += 1
            task.started_at = start
            task.finished_at = start + cost
            return task.finished_at
        first_start = None
        slice_end = t0
        last_worker: Optional[int] = None
        for cycles in task.slices:
            w = self._earliest(t0)
            start = max(self.free_at[w], t0)
            end = start + cycles
            self.free_at[w] = end
            self.busy_cycles[w] += cycles
            if first_start is None or start < first_start:
                first_start = start
            if end > slice_end:
                slice_end = end
                last_worker = w
        # The serial phase (search, upcall) runs on the worker that
        # finished the final slice — the combine step needs its output.
        if task.serial_cycles or not task.slices:
            w = last_worker if last_worker is not None else self._earliest(t0)
            start = max(self.free_at[w], t0, slice_end)
            end = start + task.serial_cycles
            self.free_at[w] = end
            self.busy_cycles[w] += task.serial_cycles
            self.tasks_run[w] += 1
            if first_start is None:
                first_start = start
            slice_end = end
        elif last_worker is not None:
            self.tasks_run[last_worker] += 1
        task.started_at = first_start if first_start is not None else t0
        task.finished_at = slice_end
        return task.finished_at

    def burn(
        self, not_before: float, cycles: float, lane: bool = False
    ) -> float:
        """Occupy a worker with ``cycles`` of *unproductive* work (a
        crashed/hung/timed-out check attempt).  The cycles land in the
        busy ledger like any other work — the dispatcher's
        ``retry_cycles`` entry is what keeps the reconciliation exact.
        ``lane`` sends the burn to the degraded lane instead of the
        earliest worker: a wedged attempt that a watchdog will cancel
        should not hold up healthy capacity.  Returns the burn's end
        time."""
        w = self._latest() if lane else self._earliest(not_before)
        start = max(self.free_at[w], not_before)
        end = start + cycles
        self.free_at[w] = end
        self.busy_cycles[w] += cycles
        return end

    # -- accounting ----------------------------------------------------------

    @property
    def busy_total(self) -> float:
        return sum(self.busy_cycles)

    def earliest_free(self) -> float:
        return min(self.free_at)

    def utilization(self, span: float) -> List[float]:
        """Per-worker busy fraction of the fleet's total span."""
        if span <= 0:
            return [0.0] * self.workers
        return [busy / span for busy in self.busy_cycles]


class ThreadedSliceDecoder:
    """Optional real-parallel decode of drained rings.

    Wraps a ``concurrent.futures.ThreadPoolExecutor`` around
    ``fast_decode_parallel`` so PSB slices of a snapshot decode
    concurrently in wall-clock time.  Purely an execution backend: the
    packets (and the simulated cycle accounting done elsewhere) are
    identical to the serial path.

    ``cache_entries`` > 0 gives this decoder its *own*
    :class:`~repro.ipt.segment_cache.SegmentDecodeCache`, so repeated
    PSB slices across drained rings decode once.  The cache is private —
    it must not be shared with the checkers' cache, whose hit/miss
    stream feeds the simulated accounting.  Cached decoding runs on the
    caller thread (a hit skips decode work entirely, which beats
    fanning misses out to the pool).

    ``engine`` selects the decode engine the slices run through:
    ``"columnar"`` (default) feeds them to
    :func:`~repro.ipt.columnar.columnar_decode_parallel`, ``"objects"``
    to :func:`~repro.ipt.fast_decoder.fast_decode_parallel`.  Both
    produce the same decode (the columnar one materialises packet
    objects only on demand) — this backend never feeds the simulated
    cycle accounting either way.
    """

    def __init__(
        self, workers: int, cache_entries: int = 0,
        engine: str = "columnar",
    ) -> None:
        from concurrent.futures import ThreadPoolExecutor

        if engine not in ENGINES:
            raise ValueError(
                f"unknown decode engine {engine!r}; pick one of {ENGINES}"
            )
        self.workers = workers
        self.engine = engine
        self._executor = ThreadPoolExecutor(
            max_workers=workers, thread_name_prefix="fleet-decode"
        )
        self.cache = (
            SegmentDecodeCache(cache_entries) if cache_entries > 0
            else None
        )
        self.snapshots_decoded = 0
        self.segments_decoded = 0

    def decode(self, data: bytes, sync: bool = False):
        decode_parallel = (
            columnar_decode_parallel if self.engine == "columnar"
            else fast_decode_parallel
        )
        result = decode_parallel(data, sync=sync,
                                 executor=self._executor,
                                 cache=self.cache)
        self.snapshots_decoded += 1
        self.segments_decoded += result.segments
        return result

    def close(self) -> None:
        self._executor.shutdown(wait=True)

    def __enter__(self) -> "ThreadedSliceDecoder":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
