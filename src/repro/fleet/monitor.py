"""Asynchronous endpoint interception for the fleet.

``FleetMonitor`` keeps the whole FlowGuard checking stack —
``_run_check``, the fast/slow dispatch, ``MonitorStats``, telemetry —
and changes only *when things happen*:

- endpoint syscalls hand the check to the dispatcher instead of
  blocking on it; the syscall proceeds immediately and a violation
  verdict takes effect when the checker worker finishes (the paper's
  asynchronous detection window),
- PMIs route to the process's :class:`~repro.fleet.rings.ProcessRing`,
  which applies the configured buffer-full policy (stall or lossy)
  rather than checking inline.

Fork/exec inheritance comes for free: ``auto_protect`` flows through
the overridden :meth:`protect`, so children get their own CR3-filtered
IPT unit *and* their own fleet ring.  Children executed inline by a
parent's ``wait()`` are checked through the dispatcher like everyone
else, but only top-level processes the service registered are ever
stalled (their ring has an executor attached).
"""

from __future__ import annotations

from typing import Dict

from repro.monitor.flowguard import FlowGuardMonitor, ProtectedProcess
from repro.osmodel.kernel import Kernel
from repro.osmodel.process import Process

from repro.fleet.dispatcher import FleetDispatcher
from repro.fleet.rings import ProcessRing, RingPolicy, make_ring_topa


class FleetMonitor(FlowGuardMonitor):
    """FlowGuard with deferred verdicts and per-process fleet rings."""

    def __init__(
        self,
        kernel: Kernel,
        dispatcher: FleetDispatcher,
        clock,
        ring_policy: RingPolicy = RingPolicy.STALL,
        ring_bytes: int = 16384,
        policy=None,
        faults=None,
    ) -> None:
        super().__init__(kernel, policy=policy, faults=faults)
        self.dispatcher = dispatcher
        self.clock = clock
        self.ring_policy = ring_policy
        self.ring_bytes = ring_bytes
        self.rings: Dict[int, ProcessRing] = {}  # by pid
        self.topa_factory = (
            lambda pmi_callback: make_ring_topa(self.ring_bytes, pmi_callback)
        )

    # -- protection ----------------------------------------------------------

    def protect(
        self, process: Process, labeled, ocfg, path_index=None
    ) -> ProtectedProcess:
        pp = super().protect(process, labeled, ocfg, path_index=path_index)
        self.rings[process.pid] = ProcessRing(
            topa=pp.topa, policy=self.ring_policy
        )
        return pp

    def attach_executor(self, process: Process) -> ProcessRing:
        """Mark a process as fleet-scheduled: its ring may now assert
        the executor's interrupt line (stall policy).  Inline children
        are never attached, so they can't deadlock a parent's wait()."""
        ring = self.rings[process.pid]
        ring.executor = process.executor
        return ring

    # -- event routing -------------------------------------------------------

    def _on_pmi(self, pp: ProtectedProcess) -> None:
        ring = self.rings.get(pp.process.pid)
        inj = self.fault_injector
        if inj is not None:
            if inj.fire("drop_pmi"):
                # Swallowed interrupt: the ring keeps filling and wraps
                # (drop-oldest); the next drain detects the loss and
                # forces a PSB re-sync — the designed degradation.
                self.degradations.record("pmi-drop", pid=pp.process.pid)
                return
            if ring is not None and inj.fire("delay_pmi"):
                # Interrupt skid beyond the usual: delivery is deferred
                # to the process's next scheduling quantum.
                self.degradations.record("pmi-delay", pid=pp.process.pid)
                ring.delayed_pmi = True
                return
        pp.stats.pmi_count += 1
        if self._telemetry.enabled:
            self._telemetry.metrics.counter("monitor.pmi").inc()
        if ring is not None:
            ring.on_pmi()

    def _make_wrapper(self, nr: int):
        def wrapper(kernel: Kernel, proc: Process):
            pp = self._protected.get(proc.cr3)
            if pp is None or pp.process.pid != proc.pid:
                return self._originals[nr](kernel, proc)
            self.dispatcher.submit(pp, nr, "endpoint", self.clock.now)
            ring = self.rings.get(proc.pid)
            if (
                ring is not None
                and ring.executor is not None
                and self.dispatcher.policy is RingPolicy.STALL
                and self.dispatcher.congested(self.clock.now)
            ):
                # Backpressure: let this syscall complete, then hold the
                # process off-CPU until the check queue eases.
                ring.executor.stop_requested = True
            # Unlike solo mode the syscall always proceeds: enforcement
            # happens when the verdict lands (kill + quarantine).
            return self._originals[nr](kernel, proc)

        return wrapper
