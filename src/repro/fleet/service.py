"""The fleet service: one monitor, N processes, M checker workers.

``FleetService`` wires the pieces together::

    service = FleetService(FleetConfig(workers=4))
    service.add_workload(server_pipeline("nginx"), nginx_requests)
    service.add_workload(server_pipeline("exim"), exim_requests)
    result = service.run()
    result.quarantined_pids        # killed + isolated violators
    result.lag["p99"]              # detection-window tail latency

The result carries everything the scaling experiment and the CLI need:
per-process rows, quarantine events, check-lag percentiles, worker
utilization, and a cycle-accounting block that must reconcile exactly
with the summed per-process ``MonitorStats`` (the invariant
``CycleProfiler.reconcile(..., fleet_workers=...)`` re-verifies).
"""

from __future__ import annotations

import importlib
import math
import warnings
from dataclasses import dataclass, fields
from typing import Dict, List, Optional, Sequence

from repro.monitor.policy import FlowGuardPolicy
from repro.osmodel.kernel import Kernel
from repro.osmodel.process import Process
from repro.resilience.faults import FaultPlan
from repro.resilience.retry import DeadLetter, RetryPolicy
from repro.telemetry import get_telemetry
from repro.telemetry.metrics import percentile as _percentile

from repro.fleet.dispatcher import FleetDispatcher, QuarantineEvent
from repro.fleet.monitor import FleetMonitor
from repro.fleet.rings import RingPolicy
from repro.fleet.scheduler import FleetClock, FleetEntry, RoundRobinScheduler
from repro.fleet.workers import (
    DECODE_POOLS,
    SimulatedWorkerPool,
    ThreadedSliceDecoder,
    make_pool,
    make_slice_decoder,
)

#: symbols this module used to define, now living elsewhere — served
#: through the PEP-562 shim below with a DeprecationWarning.
_RELOCATED = {
    "percentile": "repro.telemetry.metrics",
}


def __getattr__(name):
    home = _RELOCATED.get(name)
    if home is None:
        raise AttributeError(
            f"module {__name__!r} has no attribute {name!r}"
        )
    warnings.warn(
        f"importing {name!r} from {__name__} is deprecated; "
        f"use {home}",
        DeprecationWarning,
        stacklevel=2,
    )
    return getattr(importlib.import_module(home), name)


@dataclass
class FleetConfig:
    """Tuning knobs for one fleet run."""

    workers: int = 4
    #: round-robin time slice, in simulated cycles.
    quantum: float = 2000.0
    #: per-process trace ring capacity (two ToPA regions).
    ring_bytes: int = 16384
    ring_policy: RingPolicy = RingPolicy.STALL
    #: in-flight checks before backpressure kicks in.
    max_queue_depth: int = 64
    max_rounds: int = 100_000
    #: "simulated" (cycle-accurate pool only) or "threads" (also decode
    #: each drained buffer on a real concurrent.futures pool).
    decode_mode: str = "simulated"
    #: real decode backend when ``decode_mode == "threads"``:
    #: ``"thread"`` (in-process ThreadPoolExecutor, the default) or
    #: ``"process"`` (ProcessPoolExecutor over shared-memory columns —
    #: zero pickling of column data; see ``repro.ipt.shm``).
    decode_pool: str = "thread"
    #: simulated scheduling discipline: ``"spread"`` (slice-level
    #: earliest-free, the default) or ``"steal"`` (per-process home
    #: workers with work stealing; whole-task placement).
    pool: str = "spread"
    #: shard the flow index per-module: 0 keeps today's flat
    #: ``FlowSearchIndex``; N >= 1 builds a sharded index with N
    #: promote/memo domains (identical charges and verdicts).
    index_shards: int = 0
    #: fast-path cache capacities applied to the default policy (and to
    #: the threaded decoder's private cache); 0 keeps caching off.
    segment_cache_entries: int = 0
    edge_cache_entries: int = 0
    #: fast-path decode engine for the default policy and the threaded
    #: decoder: ``"columnar"`` (default) or ``"objects"``.
    engine: str = "columnar"
    #: columnar scan-kernel mode for the default policy: ``"auto"``
    #: (default — C kernel when buildable), ``"on"`` or ``"off"``.
    scan_kernel: str = "auto"
    #: slow-path lane for the default policy: ``"columnar"`` (default —
    #: object-free byte replay) or ``"objects"``.
    slow_lane: str = "columnar"
    seed: int = 0
    #: deterministic fault plan (None = fault-free run).
    faults: Optional[FaultPlan] = None
    #: retry/backoff/dead-letter policy (None = defaults).
    retry: Optional[RetryPolicy] = None
    #: fault-domain label: scopes this fleet's degradation ledger and
    #: telemetry series to one serving tenant (None = untenanted).
    tenant: Optional[str] = None

    # -- serialisation -------------------------------------------------------

    def to_dict(self) -> dict:
        out = {f.name: getattr(self, f.name) for f in fields(self)}
        out["ring_policy"] = self.ring_policy.value
        out["faults"] = (
            self.faults.to_dict() if self.faults is not None else None
        )
        out["retry"] = (
            self.retry.to_dict() if self.retry is not None else None
        )
        return out

    @classmethod
    def from_dict(cls, data: dict) -> "FleetConfig":
        known = {f.name for f in fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ValueError(
                f"unknown FleetConfig keys: {', '.join(sorted(unknown))}"
            )
        kwargs = dict(data)
        if "ring_policy" in kwargs and not isinstance(
            kwargs["ring_policy"], RingPolicy
        ):
            kwargs["ring_policy"] = RingPolicy(kwargs["ring_policy"])
        if kwargs.get("faults") is not None and not isinstance(
            kwargs["faults"], FaultPlan
        ):
            kwargs["faults"] = FaultPlan.from_dict(kwargs["faults"])
        if kwargs.get("retry") is not None and not isinstance(
            kwargs["retry"], RetryPolicy
        ):
            kwargs["retry"] = RetryPolicy.from_dict(kwargs["retry"])
        return cls(**kwargs)


@dataclass
class FleetResult:
    """Everything observable about one completed fleet run."""

    config: FleetConfig
    processes: List[dict]
    quarantines: List[QuarantineEvent]
    detections: int
    tasks: int
    dropped_checks: int
    lag: Dict[str, float]
    makespan: float
    rounds: int
    worker_busy: List[float]
    worker_utilization: List[float]
    app_cycles: float
    monitor_cycles: float
    stall_cycles: float
    accounting: dict
    schedule_digest: str
    threaded_decode: Optional[dict] = None
    #: monitor.cache_stats() snapshot (segment + edge caches).
    caches: Optional[dict] = None
    #: checks abandoned after exhausting retries (fail-closed handled).
    dead_letters: Optional[List[DeadLetter]] = None
    #: fault-plane stats + degradation ledger + its reconciliation.
    resilience: Optional[dict] = None
    #: SLO verdicts + plane health (None unless a plane was attached).
    slo: Optional[dict] = None
    #: pool-discipline observables (steals/affinity under "steal").
    scheduling: Optional[dict] = None

    @property
    def quarantined_pids(self) -> List[int]:
        return [event.pid for event in self.quarantines]

    @property
    def overhead(self) -> float:
        """Fleet overhead: monitoring work + stall time over app time."""
        if self.app_cycles <= 0:
            return 0.0
        return (self.monitor_cycles + self.stall_cycles) / self.app_cycles

    def to_dict(self) -> dict:
        """The run in the unified :class:`~repro.stats_report.StatsReport`
        schema: monitor cycle totals under ``monitor``, fleet-specific
        observables under ``fleet``, fault plane under ``resilience``."""
        from repro.stats_report import StatsReport

        monitor = {
            "app_cycles": self.app_cycles,
            "monitor_cycles": self.monitor_cycles,
            "stall_cycles": self.stall_cycles,
            "overhead": self.overhead,
            "detections": self.detections,
            "accounting": self.accounting,
        }
        fleet = {
            "config": self.config.to_dict(),
            "processes": self.processes,
            "quarantines": [
                {
                    "pid": e.pid,
                    "name": e.name,
                    "task_id": e.task_id,
                    "detected_at": e.detected_at,
                    "enqueued_at": e.enqueued_at,
                    "reason": e.reason,
                    "posthumous": e.posthumous,
                }
                for e in self.quarantines
            ],
            "tasks": self.tasks,
            "dropped_checks": self.dropped_checks,
            "lag": self.lag,
            "makespan": self.makespan,
            "rounds": self.rounds,
            "worker_busy": self.worker_busy,
            "worker_utilization": self.worker_utilization,
            "schedule_digest": self.schedule_digest,
            "threaded_decode": self.threaded_decode,
            "scheduling": self.scheduling,
            "dead_letters": [
                letter.to_dict() for letter in (self.dead_letters or [])
            ],
        }
        return StatsReport(
            monitor=monitor,
            caches=self.caches,
            fleet=fleet,
            resilience=self.resilience,
            slo=self.slo,
            context={"kind": "fleet"},
        ).to_dict()


class FleetService:
    """Owns the kernel, monitor, dispatcher, workers, and scheduler."""

    def __init__(
        self,
        config: Optional[FleetConfig] = None,
        kernel: Optional[Kernel] = None,
        policy: Optional[FlowGuardPolicy] = None,
    ) -> None:
        self.config = config if config is not None else FleetConfig()
        self.kernel = kernel if kernel is not None else Kernel()
        if policy is None:
            policy = FlowGuardPolicy(
                segment_cache_entries=self.config.segment_cache_entries,
                edge_cache_entries=self.config.edge_cache_entries,
                engine=self.config.engine,
                scan_kernel=self.config.scan_kernel,
                slow_lane=self.config.slow_lane,
                index_shards=self.config.index_shards,
            )
        self.pool = make_pool(self.config.workers, self.config.pool)
        self.dispatcher = FleetDispatcher(
            self.pool,
            policy=self.config.ring_policy,
            max_queue_depth=self.config.max_queue_depth,
            retry=self.config.retry,
        )
        self.clock = FleetClock()
        self.monitor = FleetMonitor(
            self.kernel,
            self.dispatcher,
            self.clock,
            ring_policy=self.config.ring_policy,
            ring_bytes=self.config.ring_bytes,
            policy=policy,
            faults=self.config.faults,
        )
        self.dispatcher.bind(self.monitor)
        # Monitor and dispatcher share one fault plane (per-site RNG
        # streams stay aligned) and one degradation audit trail.
        self.dispatcher.injector = self.monitor.fault_injector
        self.dispatcher.degradations = self.monitor.degradations
        if self.config.tenant is not None:
            # Tenant-scope the shared ledger before any event lands:
            # every resilience.events series it emits carries the
            # tenant label, and reconciliation reads only that slice.
            self.monitor.degradations.tenant = self.config.tenant
        self.monitor.install()
        self.scheduler = RoundRobinScheduler(
            self.kernel,
            self.clock,
            self.dispatcher,
            quantum=self.config.quantum,
            max_rounds=self.config.max_rounds,
        )
        if self.config.decode_pool not in DECODE_POOLS:
            raise ValueError(
                f"unknown decode_pool {self.config.decode_pool!r}; "
                f"pick one of {DECODE_POOLS}"
            )
        self.decoder = None
        if self.config.decode_mode == "threads":
            self.decoder = make_slice_decoder(
                self.config.decode_pool,
                self.config.workers,
                cache_entries=self.config.segment_cache_entries,
                engine=self.config.engine,
            )
            self.dispatcher.real_decoder = self.decoder
        elif self.config.decode_mode != "simulated":
            raise ValueError(
                f"unknown decode_mode {self.config.decode_mode!r}"
            )
        self._sessions: Dict[int, int] = {}  # pid -> assigned sessions

    # -- fleet membership ----------------------------------------------------

    def add_workload(
        self, pipeline, requests: Sequence[bytes]
    ) -> Process:
        """Spawn one protected instance of ``pipeline``'s program and
        queue its client sessions."""
        _, proc = pipeline.deploy(self.kernel, monitor=self.monitor)
        pp = self.monitor.protected_for(proc)
        ring = self.monitor.attach_executor(proc)
        entry = FleetEntry(
            proc=proc,
            pp=pp,
            ring=ring,
            index=len(self.scheduler.entries),
        )
        self.scheduler.add(entry)
        for request in requests:
            if pipeline.mode == "stdin":
                proc.feed_stdin(request)
            else:
                proc.push_connection(request)
        self._sessions[proc.pid] = len(requests)
        tel = get_telemetry()
        if tel.enabled:
            tel.metrics.counter("fleet.processes").inc(
                program=pipeline.program
            )
        return proc

    # -- running -------------------------------------------------------------

    def run(self) -> FleetResult:
        tel = get_telemetry()
        if tel.plane is not None:
            # The fleet clock becomes the plane's time source; every
            # tick (quantum unpin / idle jump) offers a sample.
            tel.plane.bind_clock(self.clock)
        with tel.tracer.span(
            "fleet.run",
            processes=len(self.scheduler.entries),
            workers=self.config.workers,
            policy=self.config.ring_policy.value,
        ):
            self.scheduler.run()
        if self.decoder is not None:
            self.decoder.close()
        return self._build_result()

    def reconcile(self) -> Optional[dict]:
        """Re-verify the fleet cycle ledger against per-process stats
        through the telemetry profiler (None while telemetry is off)."""
        tel = get_telemetry()
        if not tel.enabled:
            return None
        return tel.profiler.reconcile(
            self.monitor.all_stats(),
            fleet_workers=self.dispatcher.ledger(),
        )

    # -- reporting -----------------------------------------------------------

    def _build_result(self) -> FleetResult:
        makespan = self.clock.now
        quarantined = {e.pid for e in self.dispatcher.quarantines}
        rows = []
        app_cycles = 0.0
        stall_cycles = 0.0
        for entry in self.scheduler.entries:
            proc = entry.proc
            stats = self.monitor.stats_for(proc)  # refreshes trace cycles
            ring = entry.ring
            app = proc.executor.cycles
            app_cycles += app
            stall_cycles += ring.stall_cycles
            rows.append(
                {
                    "pid": proc.pid,
                    "name": proc.name,
                    "sessions": self._sessions.get(proc.pid, 0),
                    "state": proc.state.value,
                    "quarantined": proc.pid in quarantined,
                    "quanta": entry.quanta,
                    "started_at": entry.started_at,
                    "finished_at": entry.finished_at,
                    "app_cycles": app,
                    "monitor_cycles": stats.total_cycles,
                    "checks": stats.checks,
                    "pmi_count": stats.pmi_count,
                    "stalls": ring.stalls,
                    "stall_cycles": ring.stall_cycles,
                    "drains": ring.drains,
                    "overwritten_bytes": ring.overwritten_bytes,
                    "resync_dropped_bytes": ring.resync_dropped_bytes,
                    "resyncs": ring.resyncs,
                }
            )
        # all_stats() covers inline children too — the ledger must.
        stats_list = self.monitor.all_stats()
        monitor_cycles = sum(
            s.decode_cycles + s.check_cycles + s.other_cycles
            for s in stats_list
        )
        ledger = self.dispatcher.ledger()
        # Wasted retry cycles are real pool busy time but were never
        # charged to any process's MonitorStats — subtract them.  The
        # inverse hole: dead-lettered checks were costed into stats at
        # submit() but never ran on a worker — add them back.
        ledger_total = (
            ledger["busy_cycles"]
            - ledger["retry_cycles"]
            + ledger["intercept_cycles"]
            + ledger["dead_letter_cycles"]
        )
        accounting = {
            **ledger,
            "stats_cycles": monitor_cycles,
            "exact": math.isclose(
                ledger_total, monitor_cycles, rel_tol=1e-9, abs_tol=1e-6
            ),
        }
        lags = [task.lag for task in self.dispatcher.tasks]
        lag = {
            "p50": _percentile(lags, 50),
            "p99": _percentile(lags, 99),
            "mean": sum(lags) / len(lags) if lags else 0.0,
            "max": max(lags) if lags else 0.0,
        }
        injector = self.monitor.fault_injector
        resilience = {
            "faults": injector.stats() if injector is not None else None,
            "degradations": self.monitor.degradations.to_dict(),
            "dead_letters": len(self.dispatcher.dead_letters),
            "retry": self.dispatcher.retry.to_dict(),
            "ledger_reconcile": self.monitor.degradations.reconcile(
                retry_cycles=self.dispatcher.retry_cycles
            ),
        }
        plane = get_telemetry().plane
        slo = None
        if plane is not None:
            # Drifting ledgers trigger a flight-recorder dump before
            # the SLO report freezes the plane's view of the run.
            plane.check_reconciliation("fleet-accounting", accounting)
            plane.check_reconciliation(
                "degradation-ledger", resilience["ledger_reconcile"]
            )
            slo = plane.slo_report()
        threaded = None
        if self.decoder is not None:
            threaded = {
                "snapshots": self.decoder.snapshots_decoded,
                "segments": self.decoder.segments_decoded,
                "workers": self.decoder.workers,
                "pool": self.config.decode_pool,
                "column_digest": self.decoder.column_digest,
            }
            if self.decoder.cache is not None:
                threaded["cache"] = self.decoder.cache.stats()
            shm_stats = getattr(self.decoder, "shm_stats", None)
            if shm_stats is not None:
                threaded["shm"] = shm_stats()
        scheduling = {"discipline": self.config.pool}
        if hasattr(self.pool, "steals"):
            scheduling["steals"] = self.pool.steals
            scheduling["affinity_hits"] = self.pool.affinity_hits
        return FleetResult(
            config=self.config,
            processes=rows,
            quarantines=list(self.dispatcher.quarantines),
            detections=len(self.monitor.detections),
            tasks=len(self.dispatcher.tasks),
            dropped_checks=self.dispatcher.dropped_checks,
            lag=lag,
            makespan=makespan,
            rounds=self.scheduler.rounds,
            worker_busy=list(self.pool.busy_cycles),
            worker_utilization=self.pool.utilization(makespan),
            app_cycles=app_cycles,
            monitor_cycles=monitor_cycles,
            stall_cycles=stall_cycles,
            accounting=accounting,
            schedule_digest=self.scheduler.schedule_digest(),
            threaded_decode=threaded,
            caches=self.monitor.cache_stats(),
            dead_letters=list(self.dispatcher.dead_letters),
            resilience=resilience,
            slo=slo,
            scheduling=scheduling,
        )
