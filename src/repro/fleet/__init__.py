"""repro.fleet — multi-process monitoring with parallel checking.

The fleet subsystem scales the single-process FlowGuard monitor to a
service: N protected processes time-sliced round-robin on one simulated
CPU, their trace rings drained by M checker workers on idle cores, with
the paper's §4 buffer-full degradation policies (stall vs lossy) and
violation quarantine.  See DESIGN.md ("Fleet mode") for the
architecture.

Importing names from this package root is **deprecated**: the stable
public surface is :mod:`repro.api`, and internals live in their
submodules (``repro.fleet.service``, ``repro.fleet.rings``, ...).  The
lazy shims below keep old imports working, each access emitting a
``DeprecationWarning``.
"""

import importlib
import warnings

#: old package-root exports -> their canonical submodule home.
_EXPORTS = {
    "CheckTask": "repro.fleet.workers",
    "DrainResult": "repro.fleet.rings",
    "FleetClock": "repro.fleet.scheduler",
    "FleetConfig": "repro.fleet.service",
    "FleetDispatcher": "repro.fleet.dispatcher",
    "FleetEntry": "repro.fleet.scheduler",
    "FleetMonitor": "repro.fleet.monitor",
    "FleetResult": "repro.fleet.service",
    "FleetService": "repro.fleet.service",
    "ProcessRing": "repro.fleet.rings",
    "QuarantineEvent": "repro.fleet.dispatcher",
    "RingPolicy": "repro.fleet.rings",
    "RoundRobinScheduler": "repro.fleet.scheduler",
    "SimulatedWorkerPool": "repro.fleet.workers",
    "ThreadedSliceDecoder": "repro.fleet.workers",
    "make_ring_topa": "repro.fleet.rings",
    "percentile": "repro.telemetry.metrics",
}

__all__ = sorted(_EXPORTS)


def __getattr__(name):
    home = _EXPORTS.get(name)
    if home is None:
        raise AttributeError(
            f"module {__name__!r} has no attribute {name!r}"
        )
    warnings.warn(
        f"importing {name!r} from {__name__} is deprecated; "
        f"use repro.api or {home}",
        DeprecationWarning,
        stacklevel=2,
    )
    return getattr(importlib.import_module(home), name)


def __dir__():
    return sorted(set(globals()) | set(_EXPORTS))
