"""repro.fleet — multi-process monitoring with parallel checking.

The fleet subsystem scales the single-process FlowGuard monitor to a
service: N protected processes time-sliced round-robin on one simulated
CPU, their trace rings drained by M checker workers on idle cores, with
the paper's §4 buffer-full degradation policies (stall vs lossy) and
violation quarantine.  See DESIGN.md ("Fleet mode") for the
architecture.
"""

from repro.fleet.dispatcher import FleetDispatcher, QuarantineEvent
from repro.fleet.monitor import FleetMonitor
from repro.fleet.rings import (
    DrainResult,
    ProcessRing,
    RingPolicy,
    make_ring_topa,
)
from repro.fleet.scheduler import (
    FleetClock,
    FleetEntry,
    RoundRobinScheduler,
)
from repro.fleet.service import (
    FleetConfig,
    FleetResult,
    FleetService,
    percentile,
)
from repro.fleet.workers import (
    CheckTask,
    SimulatedWorkerPool,
    ThreadedSliceDecoder,
)

__all__ = [
    "CheckTask",
    "DrainResult",
    "FleetClock",
    "FleetConfig",
    "FleetDispatcher",
    "FleetEntry",
    "FleetMonitor",
    "FleetResult",
    "FleetService",
    "ProcessRing",
    "QuarantineEvent",
    "RingPolicy",
    "RoundRobinScheduler",
    "SimulatedWorkerPool",
    "ThreadedSliceDecoder",
    "make_ring_topa",
    "percentile",
]
