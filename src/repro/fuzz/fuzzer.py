"""The coverage-oriented fuzzing loop (AFL in miniature).

The target runs inside the CPU interpreter — the stand-in for AFL's
QEMU user-emulation mode — with the coverage tracker subscribed to the
CoFI bus.  Inputs producing new state transitions join the queue for
further mutation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.binary.module import Module
from repro.fuzz.coverage import CoverageMap, CoverageTracker
from repro.fuzz.mutators import MutationEngine
from repro.fuzz.queue import CorpusEntry, FuzzQueue
from repro.osmodel.kernel import Kernel
from repro.osmodel.process import ProcessState


@dataclass
class RunResult:
    hits: Dict[int, int]
    crashed: bool
    steps: int


class TargetRunner:
    """Runs the target program on one input, instrumented for coverage.

    ``mode="stdin"`` feeds the input on fd 0; ``mode="socket"`` channels
    it through a queued connection — the preeny/desock trick the paper
    uses for network software like nginx.
    """

    def __init__(
        self,
        program: str,
        exe: Module,
        libraries: Optional[Dict[str, Module]] = None,
        vdso: Optional[Module] = None,
        mode: str = "stdin",
        max_steps: int = 400_000,
        kernel_setup=None,
    ) -> None:
        if mode not in ("stdin", "socket"):
            raise ValueError(f"unknown runner mode {mode!r}")
        self.program = program
        self.exe = exe
        self.libraries = libraries
        self.vdso = vdso
        self.mode = mode
        self.max_steps = max_steps
        self.kernel_setup = kernel_setup

    def run(self, data: bytes) -> RunResult:
        kernel = Kernel()
        kernel.register_program(
            self.program, self.exe, self.libraries, vdso=self.vdso
        )
        if self.kernel_setup is not None:
            self.kernel_setup(kernel)
        proc = kernel.spawn(self.program)
        if self.mode == "stdin":
            proc.feed_stdin(data)
        else:
            proc.push_connection(data)
        tracker = CoverageTracker()
        proc.executor.add_listener(tracker.on_branch)
        state = kernel.run(proc, max_steps=self.max_steps)
        return RunResult(
            hits=tracker.hits,
            crashed=state is ProcessState.KILLED,
            steps=proc.executor.insn_count,
        )


@dataclass
class FuzzStats:
    executions: int = 0
    crashes: int = 0
    #: snapshots of (executions, queue size, coverage edges).
    history: List[Tuple[int, int, int]] = field(default_factory=list)


class Fuzzer:
    """The queue-driven mutation loop."""

    def __init__(
        self,
        runner: TargetRunner,
        seeds: Sequence[bytes],
        engine: Optional[MutationEngine] = None,
    ) -> None:
        self.runner = runner
        self.seeds = list(seeds)
        self.engine = engine if engine is not None else MutationEngine()
        self.queue = FuzzQueue()
        self.coverage = CoverageMap()
        self.stats = FuzzStats()

    def _execute(self, data: bytes, depth: int) -> bool:
        """Run one input; queue it if it found new transitions."""
        result = self.runner.run(data)
        self.stats.executions += 1
        if result.crashed:
            self.stats.crashes += 1
        new = self.coverage.merge(result.hits)
        if new:
            self.queue.push(CorpusEntry(data=data, depth=depth))
        return new

    def run(
        self,
        max_executions: int = 2000,
        havoc_rounds: int = 16,
        snapshot_every: int = 100,
    ) -> FuzzQueue:
        """Fuzz until the execution budget is spent; returns the queue."""
        for seed in self.seeds:
            self._execute(seed, depth=0)
        if len(self.queue) == 0 and self.seeds:
            # Keep at least one seed even without fresh coverage.
            self.queue.push(CorpusEntry(data=self.seeds[0], depth=0))

        while self.stats.executions < max_executions and len(self.queue):
            entry = self.queue.next_unfuzzed()
            if entry is None:
                entry = self.queue.cycle()
                # Splice stage: cross with a random other entry.
                other = self.queue.cycle()
                spliced = self.engine.splice(entry.data, other.data)
                candidates = self.engine.havoc(spliced, rounds=havoc_rounds)
            else:
                candidates = self.engine.mutations(
                    entry.data, havoc_rounds=havoc_rounds
                )
                entry.fuzzed = True
            for mutant in candidates:
                if self.stats.executions >= max_executions:
                    break
                self._execute(mutant, depth=entry.depth + 1)
                if self.stats.executions % snapshot_every == 0:
                    self.stats.history.append(
                        (
                            self.stats.executions,
                            len(self.queue),
                            self.coverage.edge_count,
                        )
                    )
        return self.queue
