"""Classic fuzzing mutation strategies.

A "balanced and well-researched variety of traditional fuzzing
strategies" (§4.3): deterministic bit/byte flips, arithmetic
increments, interesting-value substitution, and randomised havoc
stacking, plus corpus splicing.
"""

from __future__ import annotations

import random
from typing import Iterator

INTERESTING_8 = [0, 1, 16, 32, 64, 100, 127, 128, 255]
INTERESTING_16 = [0, 128, 255, 256, 512, 1000, 1024, 4096, 32767, 65535]

HAVOC_STACK = 4


class MutationEngine:
    """Deterministic first-pass mutators plus a havoc stage."""

    def __init__(self, seed: int = 0x5EED) -> None:
        self.rng = random.Random(seed)

    # -- deterministic stages ------------------------------------------------

    @staticmethod
    def bitflips(data: bytes) -> Iterator[bytes]:
        for bit in range(min(len(data) * 8, 256)):
            out = bytearray(data)
            out[bit // 8] ^= 1 << (bit % 8)
            yield bytes(out)

    @staticmethod
    def byteflips(data: bytes) -> Iterator[bytes]:
        for index in range(min(len(data), 64)):
            out = bytearray(data)
            out[index] ^= 0xFF
            yield bytes(out)

    @staticmethod
    def arithmetic(data: bytes, bound: int = 8) -> Iterator[bytes]:
        for index in range(min(len(data), 32)):
            for delta in range(1, bound + 1):
                for sign in (1, -1):
                    out = bytearray(data)
                    out[index] = (out[index] + sign * delta) & 0xFF
                    yield bytes(out)

    @staticmethod
    def interesting(data: bytes) -> Iterator[bytes]:
        for index in range(min(len(data), 32)):
            for value in INTERESTING_8:
                out = bytearray(data)
                out[index] = value
                yield bytes(out)

    # -- randomised stages -----------------------------------------------------

    def havoc(self, data: bytes, rounds: int = 32) -> Iterator[bytes]:
        for _ in range(rounds):
            out = bytearray(data) or bytearray(b"\x00")
            for _ in range(self.rng.randint(1, HAVOC_STACK)):
                choice = self.rng.randrange(6)
                index = self.rng.randrange(len(out))
                if choice == 0:
                    out[index] ^= 1 << self.rng.randrange(8)
                elif choice == 1:
                    out[index] = self.rng.choice(INTERESTING_8)
                elif choice == 2:
                    out[index] = (out[index] + self.rng.randint(-16, 16)) & 0xFF
                elif choice == 3 and len(out) < 512:
                    out.insert(index, self.rng.randrange(256))
                elif choice == 4 and len(out) > 1:
                    del out[index]
                else:
                    out[index] = self.rng.randrange(256)
            yield bytes(out)

    def splice(self, first: bytes, second: bytes) -> bytes:
        """Cross two corpus entries at random split points."""
        if not first or not second:
            return first or second
        cut_a = self.rng.randrange(len(first))
        cut_b = self.rng.randrange(len(second))
        return first[:cut_a] + second[cut_b:]

    # -- the full pipeline ---------------------------------------------------------

    def mutations(self, data: bytes, havoc_rounds: int = 32
                  ) -> Iterator[bytes]:
        """All stages for one queue entry, deterministic first."""
        if data:
            yield from self.bitflips(data)
            yield from self.byteflips(data)
            yield from self.arithmetic(data)
            yield from self.interesting(data)
        yield from self.havoc(data, rounds=havoc_rounds)
