"""The fuzzing queue: test cases that produced new transitions."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional


@dataclass
class CorpusEntry:
    """One queued input."""

    data: bytes
    #: number of new (edge, bucket) pairs it contributed when queued.
    novelty: int = 0
    #: generation depth (seed = 0).
    depth: int = 0
    fuzzed: bool = False


class FuzzQueue:
    """FIFO of interesting inputs, as in AFL's queue directory."""

    def __init__(self) -> None:
        self._entries: List[CorpusEntry] = []
        self._cursor = 0

    def push(self, entry: CorpusEntry) -> None:
        self._entries.append(entry)

    def next_unfuzzed(self) -> Optional[CorpusEntry]:
        """The next entry that has not been through the mutators."""
        for entry in self._entries:
            if not entry.fuzzed:
                return entry
        return None

    def cycle(self) -> CorpusEntry:
        """Round-robin over the whole queue (post-deterministic phase)."""
        entry = self._entries[self._cursor % len(self._entries)]
        self._cursor += 1
        return entry

    def __len__(self) -> int:
        return len(self._entries)

    def entries(self) -> List[CorpusEntry]:
        return list(self._entries)

    def corpus(self) -> List[bytes]:
        return [entry.data for entry in self._entries]
