"""Coverage-oriented fuzzing and the credit-training phase (§4.3).

The paper trains edge credits in three steps:

1. run the target under QEMU user emulation with transition-discovery
   instrumentation — here, the CPU interpreter with an AFL-style edge
   coverage bitmap (:mod:`repro.fuzz.coverage`),
2. mutate queued test cases with classic fuzzing strategies
   (:mod:`repro.fuzz.mutators`), keeping inputs that reach new
   transitions (:mod:`repro.fuzz.fuzzer`),
3. replay the resulting corpus on the traced "real hardware" (CPU +
   IPT), fast-decode the traces and label the observed ITC edges with
   high credits and TNT information (:mod:`repro.fuzz.training`).

Network software is fuzzed through a preeny/desock-style adapter that
channels the fuzz input into a socket connection.
"""

from repro.fuzz.coverage import CoverageMap, CoverageTracker
from repro.fuzz.mutators import MutationEngine
from repro.fuzz.queue import CorpusEntry, FuzzQueue
from repro.fuzz.fuzzer import Fuzzer, FuzzStats, TargetRunner
from repro.fuzz.training import TrainingReport, train_credits

__all__ = [
    "CorpusEntry",
    "CoverageMap",
    "CoverageTracker",
    "FuzzQueue",
    "FuzzStats",
    "Fuzzer",
    "MutationEngine",
    "TargetRunner",
    "TrainingReport",
    "train_credits",
]
