"""Training step 3: replay the corpus under IPT and label edge credits.

Each corpus input is replayed on the "real hardware" — the CPU with the
IPT packetizer attached — the trace is fast-decoded, and every observed
consecutive-TIP pair labels its ITC edge with a high credit plus the
TNT sequence seen between the two TIPs (§4.3).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Tuple

from repro.telemetry import get_telemetry
from repro.binary.module import Module
from repro.ipt.encoder import IPTEncoder
from repro.ipt.fast_decoder import fast_decode
from repro.ipt.msr import IPTConfig
from repro.ipt.topa import ToPA, ToPARegion
from repro.itccfg.credits import CreditLabeledITC
from repro.itccfg.paths import PathIndex
from repro.osmodel.kernel import Kernel


@dataclass
class TrainingReport:
    """Outcome of a training pass."""

    inputs_replayed: int = 0
    edges_observed: int = 0
    #: trained-ratio after each replayed input (Figure 5d's curve).
    ratio_history: List[float] = field(default_factory=list)

    @property
    def final_ratio(self) -> float:
        return self.ratio_history[-1] if self.ratio_history else 0.0


def train_credits(
    labeled: CreditLabeledITC,
    program: str,
    exe: Module,
    corpus: Iterable[bytes],
    libraries: Optional[Dict[str, Module]] = None,
    vdso: Optional[Module] = None,
    mode: str = "stdin",
    max_steps: int = 400_000,
    kernel_setup: Optional[Callable[[Kernel], None]] = None,
    path_index: Optional[PathIndex] = None,
) -> TrainingReport:
    """Replay ``corpus`` with IPT tracing and label ``labeled`` in place.

    ``kernel_setup`` seeds each training kernel (filesystem inputs etc.)
    so training exercises the same paths deployment will.

    Training runs are trusted (pre-deployment), so unknown edges are
    ignored rather than flagged — the conservative ITC-CFG should make
    them impossible, but a crashed run can truncate mid-trace.
    """
    tel = get_telemetry()
    report = TrainingReport()
    for index, data in enumerate(corpus):
        with tel.tracer.span(
            "training.replay", program=program, input=index,
        ):
            kernel = Kernel()
            kernel.register_program(program, exe, libraries, vdso=vdso)
            if kernel_setup is not None:
                kernel_setup(kernel)
            proc = kernel.spawn(program)
            # A corpus entry may be a single payload or a sequence of
            # payloads served by one process — multi-connection sessions
            # train the inter-request flow (accept-loop wrap-around)
            # that single-shot runs never exercise.
            payloads = (
                list(data) if isinstance(data, (list, tuple)) else [data]
            )
            if mode == "socket":
                for payload in payloads:
                    proc.push_connection(payload)
            else:
                for payload in payloads:
                    proc.feed_stdin(payload)
            config = IPTConfig.flowguard_defaults(proc.cr3)
            encoder = IPTEncoder(
                config,
                output=ToPA([ToPARegion(1 << 22)]),
                current_cr3=lambda p=proc: p.cr3,
            )
            proc.executor.add_listener(encoder.on_branch)
            kernel.run(proc, max_steps=max_steps)
            encoder.flush()
            records = fast_decode(
                encoder.output.snapshot(), sync=encoder.output.wrapped
            ).tip_records()
            edges = labeled.observe_trace(
                ((r.ip, r.tnt_before) for r in records), strict=False
            )
            report.edges_observed += edges
            if path_index is not None:
                path_index.observe_sequence([r.ip for r in records])
            report.inputs_replayed += 1
            report.ratio_history.append(labeled.trained_ratio())
        if tel.enabled:
            m = tel.metrics
            m.counter("training.inputs").inc(program=program)
            m.counter("training.edges_observed").inc(edges, program=program)
            m.gauge("training.trained_ratio").set(
                labeled.trained_ratio(), program=program
            )
    return report
