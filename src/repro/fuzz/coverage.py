"""AFL-style edge-coverage instrumentation.

The QEMU user-emulation instrumentation of the paper discovers "new
state transitions"; the classic AFL realisation is a 64 KiB bitmap
indexed by a hash of (previous block, current block), with hit counts
bucketed into power-of-two classes so loop-count changes register as
new coverage.
"""

from __future__ import annotations

from typing import Set

from repro.cpu.events import BranchEvent

MAP_SIZE = 1 << 16


def _bucket(count: int) -> int:
    """AFL hit-count bucketing."""
    if count <= 3:
        return count
    if count <= 7:
        return 4
    if count <= 15:
        return 8
    if count <= 31:
        return 16
    if count <= 127:
        return 32
    return 64


class CoverageMap:
    """The shared-bitmap coverage accumulator across runs."""

    def __init__(self) -> None:
        self._virgin: Set[int] = set()  # (index << 7) | bucket keys seen

    def merge(self, run_map: dict) -> bool:
        """Fold one run's {index: count} map in; True if new coverage."""
        new = False
        for index, count in run_map.items():
            key = (index << 7) | _bucket(count)
            if key not in self._virgin:
                self._virgin.add(key)
                new = True
        return new

    @property
    def edge_count(self) -> int:
        """Distinct (edge, bucket) pairs observed so far."""
        return len(self._virgin)


class CoverageTracker:
    """Per-run instrumentation: a CoFI listener filling a hit map."""

    def __init__(self) -> None:
        self.hits: dict = {}
        self._prev = 0

    def on_branch(self, event: BranchEvent) -> None:
        cur = (event.dst * 0x9E3779B1) & 0xFFFFFFFF
        index = (cur ^ self._prev) & (MAP_SIZE - 1)
        self.hits[index] = self.hits.get(index, 0) + 1
        self._prev = (cur >> 1) & 0xFFFFFFFF

    def reset(self) -> None:
        self.hits = {}
        self._prev = 0
