"""FlowGuard reproduction.

A full-system Python reproduction of "Transparent and Efficient CFI
Enforcement with Intel Processor Trace" (HPCA 2017).  The package is
organised bottom-up:

- :mod:`repro.isa` / :mod:`repro.cpu` — a byte-encoded instruction set and
  an interpreter that retires change-of-flow (CoFI) events.
- :mod:`repro.binary` / :mod:`repro.lang` — modules, a loader with
  PLT/GOT/VDSO dynamic linking, and a mini structured-language compiler.
- :mod:`repro.osmodel` — a kernel model: processes with CR3, a syscall
  table that can be intercepted, signals, ptrace.
- :mod:`repro.ipt` — the Intel Processor Trace hardware model: packetizer,
  ToPA output buffers, RTIT MSR configuration, and the fast (packet-layer)
  and full (instruction-flow-layer) decoders.
- :mod:`repro.hardware` — BTS and LBR, the other tracing mechanisms the
  paper compares against.
- :mod:`repro.analysis` / :mod:`repro.itccfg` — conservative O-CFG
  construction and the IPT-compatible ITC-CFG with credit labels.
- :mod:`repro.fuzz` — the AFL-like coverage-oriented trainer.
- :mod:`repro.monitor` — the FlowGuard runtime: syscall endpoints, fast
  path, slow path (shadow stack + fine-grained forward edges).
- :mod:`repro.defenses`, :mod:`repro.attacks`, :mod:`repro.workloads`,
  :mod:`repro.experiments` — baselines, exploits, applications and the
  table/figure harnesses.
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
