"""Binary-search "max throughput under SLO" (the wrk/ampere idiom).

PerfKitBenchmarker's nginx benchmark walks ``connections_lower_bound``
/ ``connections_upper_bound`` with a bisection: a probe at the
midpoint either meets the p99-latency SLO (search up) or misses it
(search down).  :func:`search_max_under_slo` is that loop, generic
over any probe so a synthetic latency curve can unit-test convergence;
:func:`slo_search` binds it to real measured load points and emits the
convergence trace the bench report renders.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.loadgen.engine import LoadPointResult
from repro.loadgen.scenario import LoadScenario
from repro.loadgen.sweep import ProbeFn, cached_probe


@dataclass
class SearchResult:
    """Outcome of one max-throughput-under-SLO search."""

    #: the largest connection count meeting the SLO (None: even the
    #: lower bound misses it).
    best_connections: Optional[int]
    best: Optional[LoadPointResult]
    #: probe-by-probe convergence log.
    trace: List[dict] = field(default_factory=list)
    probes: int = 0
    converged: bool = False
    lower: int = 0
    upper: int = 0
    slo_latency: float = 0.0
    slo_percentile: float = 99.0

    @property
    def max_throughput(self) -> float:
        return self.best.throughput if self.best is not None else 0.0

    def to_dict(self) -> dict:
        return {
            "best_connections": self.best_connections,
            "best": self.best.to_dict() if self.best is not None else None,
            "max_throughput": self.max_throughput,
            "trace": list(self.trace),
            "probes": self.probes,
            "converged": self.converged,
            "lower": self.lower,
            "upper": self.upper,
            "slo_latency": self.slo_latency,
            "slo_percentile": self.slo_percentile,
        }


def probe_budget(lower: int, upper: int) -> int:
    """The bisection's worst case: ⌈log2(range)⌉ + 1 probes."""
    span = max(upper - lower + 1, 1)
    return int(math.ceil(math.log2(span))) + 1


def search_max_under_slo(
    probe: Callable[[int], Tuple[object, bool]],
    lower: int,
    upper: int,
) -> Tuple[Optional[int], Optional[object], List[dict]]:
    """Bisect for the largest ``c`` in [lower, upper] whose probe
    meets the SLO.

    ``probe(c)`` returns ``(result, met)``.  Assumes the usual load
    monotonicity (latency grows with offered load); returns
    ``(best_c, best_result, trace)`` with ``best_c`` None when even
    ``lower`` misses.
    """
    if lower > upper:
        raise ValueError("lower bound above upper bound")
    best_c: Optional[int] = None
    best: Optional[object] = None
    trace: List[dict] = []
    lo, hi = lower, upper
    while lo <= hi:
        mid = (lo + hi) // 2
        result, met = probe(mid)
        trace.append({
            "probe": len(trace) + 1,
            "connections": mid,
            "met": bool(met),
            "lower": lo,
            "upper": hi,
        })
        if met:
            best_c, best = mid, result
            lo = mid + 1
        else:
            hi = mid - 1
    return best_c, best, trace


def slo_search(
    scenario: LoadScenario,
    seed: Optional[int] = None,
    probe: Optional[ProbeFn] = None,
) -> SearchResult:
    """Max measured throughput with latency p-``slo_percentile`` at or
    under ``scenario.slo_latency`` cycles."""
    if probe is None:
        probe = cached_probe(scenario, seed=seed)
    lower = scenario.connections_lower_bound
    upper = scenario.connections_upper_bound

    def judged(connections: int) -> Tuple[LoadPointResult, bool]:
        point = probe(connections)
        return point, point.slo_value <= scenario.slo_latency

    best_c, best, trace = search_max_under_slo(judged, lower, upper)
    for row in trace:
        point = probe(row["connections"])  # memoised: no extra run
        row["latency"] = point.slo_value
        row["throughput"] = point.throughput
    return SearchResult(
        best_connections=best_c,
        best=best,
        trace=trace,
        probes=len(trace),
        converged=len(trace) <= probe_budget(lower, upper),
        lower=lower,
        upper=upper,
        slo_latency=scenario.slo_latency,
        slo_percentile=scenario.slo_percentile,
    )
