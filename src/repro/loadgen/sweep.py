"""The connection sweep: offered load stepped across the scenario's
bounds, one measured :class:`~repro.loadgen.engine.LoadPointResult`
per step.

On the one-CPU fleet the curve has the classic wrk shape: throughput
rises while added concurrency overlaps ring-stall and checker time,
saturates at the *knee*, and the latency percentiles keep growing with
queueing — which is what the SLO search trades against.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence

from repro.loadgen.engine import LoadPointResult, run_load_point
from repro.loadgen.scenario import LoadScenario

#: probe signature shared with the search: connections -> result.
ProbeFn = Callable[[int], LoadPointResult]


def cached_probe(
    scenario: LoadScenario,
    seed: Optional[int] = None,
    cache: Optional[Dict[int, LoadPointResult]] = None,
) -> ProbeFn:
    """A memoised load-point prober, so the sweep and the binary
    search share measurements instead of re-running fleets."""
    store: Dict[int, LoadPointResult] = cache if cache is not None else {}

    def probe(connections: int) -> LoadPointResult:
        if connections not in store:
            store[connections] = run_load_point(
                scenario, connections, seed=seed
            )
        return store[connections]

    return probe


def sweep_connections(
    scenario: LoadScenario,
    seed: Optional[int] = None,
    probe: Optional[ProbeFn] = None,
) -> List[LoadPointResult]:
    """Measure every connection step in the scenario's sweep bounds."""
    if probe is None:
        probe = cached_probe(scenario, seed=seed)
    points = list(
        range(
            scenario.connections_lower_bound,
            scenario.connections_upper_bound + 1,
            scenario.sweep_step,
        )
    )
    if points and points[-1] != scenario.connections_upper_bound:
        points.append(scenario.connections_upper_bound)
    return [probe(c) for c in points]


def knee_index(results: Sequence[LoadPointResult]) -> int:
    """The saturation knee: the first sweep index achieving the
    maximum throughput (offered load beyond it buys latency, not
    requests/sec)."""
    if not results:
        raise ValueError("empty sweep")
    best = max(r.throughput for r in results)
    for index, r in enumerate(results):
        if r.throughput >= best:
            return index
    return len(results) - 1  # pragma: no cover - unreachable


def monotone_to_knee(
    results: Sequence[LoadPointResult], tolerance: float = 0.02
) -> bool:
    """True when throughput is non-decreasing (within ``tolerance``)
    up to the knee — the shape a healthy closed-loop sweep must have."""
    knee = knee_index(results)
    for i in range(knee):
        if results[i + 1].throughput < results[i].throughput * (
            1.0 - tolerance
        ):
            return False
    return True
