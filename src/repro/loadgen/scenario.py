"""Declarative load scenarios: one JSON document per benchmark shape.

A :class:`LoadScenario` describes everything a bench run needs —
server mix, request mix, loop mode, attack and fault plans, the
latency SLO, and the sweep/search bounds — and round-trips through
JSON exactly like :class:`~repro.telemetry.plane.SLOConfig` and
:class:`~repro.fleet.service.FleetConfig` (unknown keys rejected,
``load``/``save``/``default``).

Builtin scenarios live in :data:`BUILTIN_SCENARIOS`; the bundled
copies under ``examples/scenarios/`` are generated from the same
factories (a test keeps them in sync).  ``resolve_scenario`` accepts
either a builtin name or a JSON file path — the ``repro bench
--scenario`` contract.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field, fields, replace
from typing import Callable, Dict, Optional, Tuple

from repro.fleet.rings import RingPolicy
from repro.loadgen.mixes import MIX_NAMES
from repro.resilience import FaultPlan, RetryPolicy

_MODES = ("closed", "open")
_SERVERS = ("nginx", "vsftpd", "openssh", "exim")
_ATTACKS = ("rop",)


@dataclass
class LoadScenario:
    """Everything one bench run needs, as data."""

    name: str = "nginx-closed"
    #: ``closed`` — each connection issues its next request at the
    #: previous completion; ``open`` — requests arrive on a fixed
    #: schedule regardless of completions (overload is measurable).
    mode: str = "closed"
    #: server programs assigned round-robin across connections.
    servers: Tuple[str, ...] = ("nginx",)
    #: request mix name (see :mod:`repro.loadgen.mixes`).
    mix: str = "varied"
    #: requests per connection (closed loop) / arrivals per
    #: connection (open loop).
    sessions: int = 3
    #: open loop only: cycles between consecutive arrivals on one
    #: connection's schedule.
    interarrival: float = 60_000.0
    #: open loop only: arrivals land in back-to-back clusters of this
    #: size, ``burst * interarrival`` apart — the same average offered
    #: load as ``burst=1``, but clumped (queueing pressure at the same
    #: rate).  1 = the classic evenly-spaced schedule.
    burst: int = 1
    #: attack injection: kind (``rop`` or None) and how many
    #: connections get one mid-stream exploit request each.
    attack_kind: Optional[str] = None
    attack_count: int = 0
    #: deterministic fault plan + retry policy (None = clean run).
    faults: Optional[FaultPlan] = None
    retry: Optional[RetryPolicy] = None
    #: the latency SLO: ``percentile`` of per-request latency must stay
    #: at or under ``slo_latency`` fleet-clock cycles.
    slo_latency: float = 60_000.0
    slo_percentile: float = 99.0
    #: sweep/search bounds over concurrent connections (the ampere
    #: ``connections_lower_bound``/``upper_bound`` idiom).
    connections_lower_bound: int = 1
    connections_upper_bound: int = 8
    sweep_step: int = 1
    #: fleet shape per load point.
    workers: int = 2
    quantum: float = 2000.0
    ring_bytes: int = 2048
    ring_policy: str = "stall"
    max_queue_depth: int = 64
    engine: str = "columnar"
    seed: int = 0

    # -- validation ----------------------------------------------------------

    def validate(self) -> None:
        if self.mode not in _MODES:
            raise ValueError(f"unknown mode {self.mode!r}")
        if not self.servers:
            raise ValueError("scenario needs at least one server")
        for server in self.servers:
            if server not in _SERVERS:
                raise ValueError(f"unknown server {server!r}")
        if self.mix not in MIX_NAMES:
            raise ValueError(f"unknown mix {self.mix!r}")
        if self.attack_kind is not None and self.attack_kind not in _ATTACKS:
            raise ValueError(f"unknown attack kind {self.attack_kind!r}")
        if self.attack_count > 0 and self.attack_kind is None:
            raise ValueError("attack_count set without attack_kind")
        if self.attack_count > 0 and "nginx" not in self.servers:
            raise ValueError("rop attack injection needs nginx in servers")
        if self.connections_lower_bound < 1:
            raise ValueError("connections_lower_bound must be >= 1")
        if self.connections_upper_bound < self.connections_lower_bound:
            raise ValueError("connections_upper_bound < lower bound")
        if self.sweep_step < 1:
            raise ValueError("sweep_step must be >= 1")
        if self.sessions < 1:
            raise ValueError("sessions must be >= 1")
        if self.interarrival <= 0:
            raise ValueError("interarrival must be positive")
        if self.burst < 1:
            raise ValueError("burst must be >= 1")
        if self.slo_latency <= 0:
            raise ValueError("slo_latency must be positive")
        RingPolicy(self.ring_policy)  # raises on unknown value

    def with_seed(self, seed: int) -> "LoadScenario":
        """A copy reseeded end to end (mixes + fleet + fault streams)."""
        out = replace(self, seed=seed)
        if out.faults is not None:
            out = replace(out, faults=out.faults.with_seed(seed))
        return out

    # -- serialisation -------------------------------------------------------

    def to_dict(self) -> dict:
        out = {f.name: getattr(self, f.name) for f in fields(self)}
        out["servers"] = list(self.servers)
        out["faults"] = (
            self.faults.to_dict() if self.faults is not None else None
        )
        out["retry"] = (
            self.retry.to_dict() if self.retry is not None else None
        )
        return out

    @classmethod
    def from_dict(cls, data: dict) -> "LoadScenario":
        known = {f.name for f in fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ValueError(
                f"unknown LoadScenario keys: {', '.join(sorted(unknown))}"
            )
        kwargs = dict(data)
        if "servers" in kwargs:
            kwargs["servers"] = tuple(kwargs["servers"])
        if kwargs.get("faults") is not None and not isinstance(
            kwargs["faults"], FaultPlan
        ):
            kwargs["faults"] = FaultPlan.from_dict(kwargs["faults"])
        if kwargs.get("retry") is not None and not isinstance(
            kwargs["retry"], RetryPolicy
        ):
            kwargs["retry"] = RetryPolicy.from_dict(kwargs["retry"])
        scenario = cls(**kwargs)
        scenario.validate()
        return scenario

    def save(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(self.to_dict(), fh, indent=2, sort_keys=True)
            fh.write("\n")

    @classmethod
    def load(cls, path: str) -> "LoadScenario":
        with open(path, "r", encoding="utf-8") as fh:
            return cls.from_dict(json.load(fh))

    @classmethod
    def default(cls) -> "LoadScenario":
        return builtin_scenario("nginx-closed")


# -- builtin registry --------------------------------------------------------


def _nginx_closed() -> LoadScenario:
    """The ab/wrk analogue: one nginx farm, closed-loop clients."""
    return LoadScenario(name="nginx-closed")


def _mixed_open() -> LoadScenario:
    """Open-loop arrivals against a mixed nginx+exim fleet — offered
    load keeps coming whether or not the servers keep up."""
    return LoadScenario(
        name="mixed-open",
        mode="open",
        servers=("nginx", "exim"),
        sessions=3,
        interarrival=60_000.0,
        connections_upper_bound=6,
        slo_latency=200_000.0,
    )


def _faulted_closed() -> LoadScenario:
    """The resilience scenario: closed loop under the standard fault
    mix, lossy rings, retries armed — throughput degrades but the
    ledgers must still reconcile exactly."""
    return LoadScenario(
        name="faulted-closed",
        servers=("nginx", "exim"),
        ring_policy="lossy",
        connections_upper_bound=4,
        faults=FaultPlan.standard_mix(seed=42),
        retry=RetryPolicy(
            max_attempts=4,
            task_timeout=2_000.0,
            backoff_base=50.0,
            backoff_cap=400.0,
            hedge_delay=250.0,
        ),
    )


def _bursty_open() -> LoadScenario:
    """Bursty open-loop arrivals against a vsftpd+openssh mix: requests
    land in back-to-back clusters of three, same average rate as the
    evenly-spaced schedule — measures how the fleet absorbs clumped
    offered load without dropping the SLO."""
    return LoadScenario(
        name="bursty-open",
        mode="open",
        servers=("vsftpd", "openssh"),
        sessions=3,
        interarrival=60_000.0,
        burst=3,
        connections_upper_bound=6,
        slo_latency=200_000.0,
    )


def _smoke() -> LoadScenario:
    """Tiny CI scenario: seconds, not minutes."""
    return LoadScenario(
        name="smoke",
        sessions=2,
        connections_upper_bound=2,
        workers=1,
    )


BUILTIN_SCENARIOS: Dict[str, Callable[[], LoadScenario]] = {
    "nginx-closed": _nginx_closed,
    "mixed-open": _mixed_open,
    "bursty-open": _bursty_open,
    "faulted-closed": _faulted_closed,
    "smoke": _smoke,
}


def builtin_scenario(name: str) -> LoadScenario:
    try:
        factory = BUILTIN_SCENARIOS[name]
    except KeyError:
        raise KeyError(
            f"unknown builtin scenario {name!r} "
            f"(have: {', '.join(sorted(BUILTIN_SCENARIOS))})"
        ) from None
    scenario = factory()
    scenario.validate()
    return scenario


def resolve_scenario(ref: str) -> LoadScenario:
    """A scenario from a builtin name or a JSON file path."""
    if ref in BUILTIN_SCENARIOS:
        return builtin_scenario(ref)
    if os.path.exists(ref):
        return LoadScenario.load(ref)
    raise ValueError(
        f"no such scenario: {ref!r} is neither a builtin "
        f"({', '.join(sorted(BUILTIN_SCENARIOS))}) nor a file"
    )
