"""One load point: build the fleet for C connections, run, measure.

A *load point* is the unit both the sweep and the SLO search probe:
``connections`` concurrent client sessions (one protected server
process per connection, time-sliced on the one simulated CPU) against
``workers`` checker workers, with the scenario's request mix, attack
mix, and fault plan applied.  The result carries the wrk-style
numbers — requests per megacycle, exact latency percentiles, monitor
overhead with open-loop idle time excluded — plus the security-side
observables (detection rate and latency for injected attacks, false
quarantines, ledger exactness) and a digest of the whole outcome for
bit-identity gates.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from functools import lru_cache
from typing import Dict, List, Optional, Tuple

from repro.experiments.common import seed_server_fs, server_pipeline
from repro.fleet.rings import RingPolicy
from repro.fleet.service import FleetConfig, FleetService
from repro.loadgen.clients import LoadTracker
from repro.loadgen.mixes import mix_requests
from repro.loadgen.scenario import LoadScenario
from repro.telemetry import get_telemetry


@lru_cache(maxsize=None)
def _rop_request() -> bytes:
    """The planted nginx exploit (recon is a one-time effort)."""
    from repro.attacks import build_rop_request, run_recon
    from repro.experiments.common import libraries
    from repro.workloads import build_nginx, build_vdso

    recon = run_recon(build_nginx(), libraries(), vdso=build_vdso())
    return build_rop_request(recon)


@dataclass
class LoadPointResult:
    """Everything measured at one (connections, workers) point."""

    connections: int
    workers: int
    mode: str
    #: offered load: concurrent connections (closed loop) or arrivals
    #: per megacycle across the fleet (open loop).
    offered_load: float
    offered: int
    completed: int
    makespan: float
    #: completed sessions per megacycle of fleet-clock time.
    throughput: float
    latency: Dict[str, float]
    #: (monitor + stall cycles) / busy app cycles (idle excluded).
    overhead: float
    app_cycles: float
    idle_cycles: float
    monitor_cycles: float
    stall_cycles: float
    attacked_pids: List[int] = field(default_factory=list)
    quarantined_pids: List[int] = field(default_factory=list)
    detection_rate: float = 1.0
    detection_latency: Optional[Dict[str, float]] = None
    false_quarantines: int = 0
    accounting_exact: bool = True
    ledger_exact: bool = True
    digest: str = ""
    lag_p99: float = 0.0

    @property
    def slo_value(self) -> float:
        """The latency number the SLO judges (set by the caller's
        percentile via ``latency['slo']``)."""
        return self.latency.get("slo", self.latency.get("p99", 0.0))

    def to_dict(self) -> dict:
        return {
            "connections": self.connections,
            "workers": self.workers,
            "mode": self.mode,
            "offered_load": self.offered_load,
            "offered": self.offered,
            "completed": self.completed,
            "makespan": self.makespan,
            "throughput": self.throughput,
            "latency": dict(self.latency),
            "overhead": self.overhead,
            "app_cycles": self.app_cycles,
            "idle_cycles": self.idle_cycles,
            "monitor_cycles": self.monitor_cycles,
            "stall_cycles": self.stall_cycles,
            "attacked_pids": list(self.attacked_pids),
            "quarantined_pids": list(self.quarantined_pids),
            "detection_rate": self.detection_rate,
            "detection_latency": self.detection_latency,
            "false_quarantines": self.false_quarantines,
            "accounting_exact": self.accounting_exact,
            "ledger_exact": self.ledger_exact,
            "digest": self.digest,
            "lag_p99": self.lag_p99,
        }


def _connection_seed(seed: int, index: int) -> int:
    # Distinct deterministic stream per connection slot.
    return seed * 100_003 + index


def build_load_service(
    scenario: LoadScenario,
    connections: int,
    workers: Optional[int] = None,
    seed: Optional[int] = None,
    tenant: Optional[str] = None,
    max_sessions: int = 0,
) -> Tuple[FleetService, LoadTracker, List[int]]:
    """A fleet shaped for one load point, with the tracker installed.

    Returns ``(service, tracker, attacked_pids)``; the caller runs
    ``service.run()`` (or hands the service to ``repro top``).

    ``tenant`` labels the fleet as one serving fault domain (its
    degradation ledger and loadgen metrics carry the tenant tag).
    ``max_sessions`` is the serving admission cap: sessions beyond it
    (counted across connections, in connection order) are *shed* at
    admission — each shed session records a ``shed-load`` ledger event
    and bumps ``service.shed`` — rather than queued.  0 admits
    everything, leaving the build byte-identical to the pre-serving
    behavior.
    """
    scenario.validate()
    if connections < 1:
        raise ValueError("connections must be >= 1")
    seed_val = scenario.seed if seed is None else seed
    config = FleetConfig(
        workers=workers if workers is not None else scenario.workers,
        quantum=scenario.quantum,
        ring_bytes=scenario.ring_bytes,
        ring_policy=RingPolicy(scenario.ring_policy),
        max_queue_depth=scenario.max_queue_depth,
        engine=scenario.engine,
        seed=seed_val,
        faults=scenario.faults,
        retry=scenario.retry,
        tenant=tenant,
    )
    service = FleetService(config)
    seed_server_fs(service.kernel)
    tracker = LoadTracker(
        service.clock,
        slo_latency=scenario.slo_latency,
        slo_percentile=scenario.slo_percentile,
        tenant=tenant,
    )
    tel = get_telemetry()
    attacked: List[int] = []
    remaining_attacks = scenario.attack_count
    session_budget = max_sessions if max_sessions > 0 else None
    for index in range(connections):
        server = scenario.servers[index % len(scenario.servers)]
        payloads = mix_requests(
            server,
            scenario.sessions,
            seed=_connection_seed(seed_val, index),
            mix=scenario.mix,
        )
        if session_budget is not None:
            admitted = min(len(payloads), session_budget)
            for k in range(admitted, len(payloads)):
                service.monitor.degradations.record(
                    "shed-load",
                    detail=f"connection {index} session {k}",
                )
                if tel.enabled:
                    tel.metrics.counter("service.shed").inc(
                        **({"tenant": tenant} if tenant else {})
                    )
            payloads = payloads[:admitted]
            session_budget -= admitted
        inject = (
            remaining_attacks > 0
            and scenario.attack_kind == "rop"
            and server == "nginx"
        )
        mid = len(payloads) // 2
        if scenario.mode == "closed":
            flags = [False] * len(payloads)
            if inject:
                payloads = list(payloads)
                payloads.insert(mid, _rop_request())
                flags.insert(mid, True)
            proc = service.add_workload(server_pipeline(server), payloads)
            tracker.track_closed(proc, flags)
        else:
            # Staggered deterministic arrival schedule: connection i's
            # k-th request lands at (k//burst + 1)·interarrival·burst
            # + i's phase — bursts of ``burst`` back-to-back arrivals
            # at the same average rate; burst=1 is the classic
            # evenly-spaced (k+1)·interarrival schedule.
            burst = scenario.burst
            phase = index * scenario.interarrival / max(connections, 1)
            schedule = [
                (
                    (k // burst + 1) * scenario.interarrival * burst
                    + phase,
                    payload,
                    False,
                )
                for k, payload in enumerate(payloads)
            ]
            if inject:
                schedule.insert(
                    mid, (schedule[mid][0], _rop_request(), True)
                )
            proc = service.add_workload(server_pipeline(server), [])
            tracker.track_open(proc, schedule)
        if inject:
            attacked.append(proc.pid)
            remaining_attacks -= 1
    if tel.enabled:
        tel.metrics.gauge("loadgen.offered_load").set(
            _offered_load(scenario, connections)
        )
    tracker.install(service.kernel)
    return service, tracker, attacked


def _offered_load(scenario: LoadScenario, connections: int) -> float:
    if scenario.mode == "open":
        return connections * 1e6 / scenario.interarrival
    return float(connections)


def _digest(result, service, tracker: LoadTracker) -> str:
    """The run outcome — schedule, every verdict, quarantines, cycle
    totals, and the full request timeline — hashed."""
    blob = json.dumps(
        {
            "schedule": result.schedule_digest,
            "verdicts": [
                (t.task_id, t.pid, t.kind, t.verdict)
                for t in service.dispatcher.tasks
            ],
            "quarantined": sorted(result.quarantined_pids),
            "detections": result.detections,
            "cycles": [
                round(result.makespan, 6),
                round(result.app_cycles, 6),
                round(result.monitor_cycles, 6),
                round(result.stall_cycles, 6),
            ],
            "timeline": tracker.timeline_digest(),
        },
        sort_keys=True,
    )
    return hashlib.sha256(blob.encode()).hexdigest()


def run_load_point(
    scenario: LoadScenario,
    connections: int,
    workers: Optional[int] = None,
    seed: Optional[int] = None,
) -> LoadPointResult:
    """Build, run, and summarize one load point."""
    tel = get_telemetry()
    if tel.enabled and tel.plane is None:
        # Fresh counters per point so the degradation ledger's
        # counter-vs-event reconciliation stays per-run exact.
        tel.reset()
    service, tracker, attacked = build_load_service(
        scenario, connections, workers=workers, seed=seed,
    )
    result = service.run()
    return summarize_load_point(
        scenario, connections, service, tracker, attacked, result
    )


def summarize_load_point(
    scenario: LoadScenario,
    connections: int,
    service: FleetService,
    tracker: LoadTracker,
    attacked: List[int],
    result,
) -> LoadPointResult:
    """Distill one completed run into a :class:`LoadPointResult`.

    Shared by :func:`run_load_point` (which calls ``service.run()``)
    and the serving front-end (which drives the scheduler round-by-
    round itself and builds the result when its tenant drains).
    """
    makespan = result.makespan
    idle = tracker.total_idle_cycles
    busy_app = max(result.app_cycles - idle, 1e-9)
    throughput = (
        tracker.completed / makespan * 1e6 if makespan > 0 else 0.0
    )
    latency = tracker.latency_summary()
    latency["slo"] = tracker.latency_percentile(scenario.slo_percentile)

    quarantined = sorted(result.quarantined_pids)
    attacked_set = set(attacked)
    caught = [pid for pid in attacked if pid in set(quarantined)]
    detection_latency = None
    if attacked:
        waits = sorted(
            event.detected_at - event.enqueued_at
            for event in result.quarantines
            if event.pid in attacked_set
        )
        if waits:
            detection_latency = {
                "mean": sum(waits) / len(waits),
                "max": waits[-1],
            }
    ledger = (result.resilience or {}).get("ledger_reconcile") or {}
    return LoadPointResult(
        connections=connections,
        workers=service.config.workers,
        mode=scenario.mode,
        offered_load=_offered_load(scenario, connections),
        offered=tracker.offered,
        completed=tracker.completed,
        makespan=makespan,
        throughput=throughput,
        latency=latency,
        overhead=(result.monitor_cycles + result.stall_cycles) / busy_app,
        app_cycles=result.app_cycles,
        idle_cycles=idle,
        monitor_cycles=result.monitor_cycles,
        stall_cycles=result.stall_cycles,
        attacked_pids=list(attacked),
        quarantined_pids=quarantined,
        detection_rate=(
            len(caught) / len(attacked) if attacked else 1.0
        ),
        detection_latency=detection_latency,
        false_quarantines=len(
            [pid for pid in quarantined if pid not in attacked_set]
        ),
        accounting_exact=bool(result.accounting["exact"]),
        ledger_exact=bool(ledger.get("exact", True)),
        digest=_digest(result, service, tracker),
        lag_p99=result.lag["p99"],
    )


def warm_pipelines(
    scenario: LoadScenario, connections: Optional[int] = None
) -> None:
    """One throwaway run at full width, settling shared pipeline state.

    The cached server pipelines are shared across runs and the first
    slow-path excursion *promotes* verified ITC pairs back into them,
    so measured runs after this warm-up differ only by what is being
    measured (the same trick ``experiments/observability.py`` uses).
    """
    run_load_point(
        scenario,
        connections
        if connections is not None
        else scenario.connections_upper_bound,
    )
