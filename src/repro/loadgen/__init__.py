"""repro.loadgen — closed/open-loop load generation for the protected
servers, with a max-throughput-under-SLO binary search.

The wrk/PerfKitBenchmarker idiom, ported onto the simulator's virtual
clock:

- :mod:`repro.loadgen.mixes` — seeded per-server request mixes drawn
  from the trained corpus behaviors.
- :mod:`repro.loadgen.scenario` — declarative :class:`LoadScenario`
  configs (JSON round-trip, bundled examples, builtin registry).
- :mod:`repro.loadgen.clients` — the :class:`LoadTracker` client
  generator: closed-loop (next request issued at the previous
  completion) and open-loop (fixed arrival schedule) timing over the
  fleet clock, via accept/close syscall instrumentation.
- :mod:`repro.loadgen.engine` — one load point: build the fleet, run
  it, measure throughput / latency percentiles / monitor overhead /
  detection latency, and digest the outcome.
- :mod:`repro.loadgen.sweep` — the connection sweep and its knee.
- :mod:`repro.loadgen.search` — binary-search max throughput under a
  p99-latency SLO (the ampere ``connections_lower_bound`` /
  ``upper_bound`` idiom), with a convergence trace.
- :mod:`repro.loadgen.bench` — the `repro bench` orchestration that
  ties sweep + search into one report payload.
"""

from repro.loadgen.bench import run_bench
from repro.loadgen.clients import LoadTracker, RequestRecord
from repro.loadgen.engine import (
    LoadPointResult,
    build_load_service,
    run_load_point,
    summarize_load_point,
)
from repro.loadgen.mixes import MIX_NAMES, mix_requests
from repro.loadgen.scenario import (
    BUILTIN_SCENARIOS,
    LoadScenario,
    builtin_scenario,
    resolve_scenario,
)
from repro.loadgen.search import SearchResult, search_max_under_slo, slo_search
from repro.loadgen.sweep import knee_index, sweep_connections

__all__ = [
    "BUILTIN_SCENARIOS",
    "LoadPointResult",
    "LoadScenario",
    "LoadTracker",
    "MIX_NAMES",
    "RequestRecord",
    "SearchResult",
    "build_load_service",
    "builtin_scenario",
    "knee_index",
    "mix_requests",
    "resolve_scenario",
    "run_bench",
    "run_load_point",
    "search_max_under_slo",
    "slo_search",
    "summarize_load_point",
    "sweep_connections",
]
