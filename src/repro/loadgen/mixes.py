"""Seeded request mixes: what the simulated clients actually send.

A mix is a weighted set of request builders per server.  Every entry
is drawn from the offline *training corpus* behaviors
(:func:`repro.experiments.common.training_corpus`), so a clean load
run exercises only trained control flow — mixes shape the traffic, not
the verdicts.

Two mixes ship:

- ``steady`` — the legacy constant workload (identical requests, the
  ab-style driver every experiment has used since PR 1).  Seed-free:
  the same list regardless of seed, so historical digests are
  untouched.
- ``varied`` — a seeded weighted sample over the trained request
  shapes (different paths, methods, session lengths).  Deterministic:
  the same ``(server, count, seed)`` always yields the same byte-exact
  request list, which is what makes bench runs replayable.
"""

from __future__ import annotations

import random
from typing import Callable, Dict, List, Sequence, Tuple

from repro.workloads import (
    exim_session,
    nginx_request,
    openssh_session,
    vsftpd_session,
)

MIX_NAMES = ("steady", "varied")

_Builder = Callable[[], bytes]

#: the steady (legacy) request per server — one constant session shape.
_STEADY: Dict[str, _Builder] = {
    "nginx": lambda: nginx_request("/index.html"),
    "vsftpd": lambda: vsftpd_session(files=("/srv/file.bin",)),
    "openssh": lambda: openssh_session(("whoami", "uptime")),
    "exim": lambda: exim_session(rcpts=2),
}

#: weighted trained-behavior variants per server.  Weights skew toward
#: the cheap hot path (the ab-style small-file GET) with a tail of
#: heavier sessions, like a real access log.
_VARIED: Dict[str, Sequence[Tuple[int, _Builder]]] = {
    "nginx": (
        (4, lambda: nginx_request("/index.html")),
        (2, lambda: nginx_request("/other.txt")),
        (1, lambda: nginx_request("/index.html", "HEAD")),
        (1, lambda: nginx_request("/p", "POST", b"form-data")),
        (1, lambda: nginx_request("/missing")),
    ),
    "vsftpd": (
        (3, lambda: vsftpd_session(files=("/srv/file.bin",))),
        (1, lambda: vsftpd_session(files=("/srv/file.bin",) * 2)),
        (1, lambda: vsftpd_session(files=("/srv/file.bin",), store=True)),
        (1, lambda: vsftpd_session(files=("/srv/missing",))),
    ),
    "openssh": (
        (3, lambda: openssh_session(("whoami", "uptime"))),
        (2, lambda: openssh_session(("whoami",))),
        (1, lambda: openssh_session(("uptime",))),
        (1, lambda: openssh_session(())),
    ),
    "exim": (
        (3, lambda: exim_session(rcpts=2)),
        (2, lambda: exim_session(rcpts=1)),
        (1, lambda: exim_session(rcpts=3)),
    ),
}


def _rng(server: str, mix: str, seed: int) -> random.Random:
    # String seeding hashes the bytes (seed version 2), so the stream
    # is stable across processes and PYTHONHASHSEED values.
    return random.Random(f"loadgen:{mix}:{server}:{seed}")


def mix_requests(
    server: str,
    count: int,
    seed: int = 0,
    mix: str = "varied",
) -> List[bytes]:
    """``count`` deterministic session payloads for ``server``."""
    if mix == "steady":
        builder = _STEADY.get(server)
        if builder is None:
            raise KeyError(server)
        return [builder() for _ in range(count)]
    if mix != "varied":
        raise KeyError(f"unknown request mix: {mix!r}")
    entries = _VARIED.get(server)
    if entries is None:
        raise KeyError(server)
    rng = _rng(server, mix, seed)
    weights = [w for w, _ in entries]
    builders = [b for _, b in entries]
    return [b() for b in rng.choices(builders, weights=weights, k=count)]
