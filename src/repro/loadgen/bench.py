"""`repro bench` orchestration: sweep + knee + SLO search, one payload.

The returned dict is the ``kind: "loadgen-bench"`` document `repro
report` renders and ``experiments/loadgen.py`` extends with its
acceptance gates.  Sweep and search share one memoised prober, so a
connection count measured by the sweep is never re-run by the search.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.loadgen.engine import LoadPointResult, warm_pipelines
from repro.loadgen.scenario import LoadScenario
from repro.loadgen.search import slo_search
from repro.loadgen.sweep import (
    cached_probe,
    knee_index,
    monotone_to_knee,
    sweep_connections,
)

PAYLOAD_KIND = "loadgen-bench"


def run_bench(
    scenario: LoadScenario,
    seed: Optional[int] = None,
    warm: bool = True,
) -> dict:
    """Run the full bench for one scenario; returns the report payload."""
    scenario.validate()
    if seed is not None:
        scenario = scenario.with_seed(seed)
    if warm:
        warm_pipelines(scenario)
    cache: Dict[int, LoadPointResult] = {}
    probe = cached_probe(scenario, cache=cache)
    sweep = sweep_connections(scenario, probe=probe)
    knee = knee_index(sweep)
    search = slo_search(scenario, probe=probe)
    return {
        "kind": PAYLOAD_KIND,
        "scenario": scenario.to_dict(),
        "sweep": [point.to_dict() for point in sweep],
        "knee": {
            "index": knee,
            "connections": sweep[knee].connections,
            "throughput": sweep[knee].throughput,
            "latency": sweep[knee].slo_value,
        },
        "monotone_to_knee": monotone_to_knee(sweep),
        "search": search.to_dict(),
        "fleet_runs": len(cache) + (1 if warm else 0),
    }
