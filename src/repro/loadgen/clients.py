"""Closed/open-loop client generators over the virtual clock.

The simulator has no real clients — connections are queued onto a
process and the server's accept loop drains them.  The
:class:`LoadTracker` turns that into a measured load generator by
wrapping the ``accept``/``close`` syscall-table entries (the same
kernel-module mechanism the monitor uses) and timestamping each
request's lifecycle against the fleet clock:

- **closed loop** — all requests are queued up front; a connection's
  request *k* is considered issued the instant request *k−1*
  completed (zero think time), so per-request latency is the service
  time the client actually experiences, including scheduling,
  monitor interception, and ring stalls.
- **open loop** — requests arrive on a fixed schedule.  Due arrivals
  are moved into the process's pending queue when it calls
  ``accept``; if the queue is empty and the next arrival is in the
  future, the accept *blocks*: the process's cycle counter jumps to
  the arrival time (charged separately as ``idle_cycles``, excluded
  from overhead denominators).  Latency is measured from the
  scheduled arrival, so an overloaded server shows unbounded queueing
  delay — exactly what closed loops cannot show.

Everything is deterministic: the wrappers read the pinned fleet clock
(exact cycle resolution mid-quantum) and touch no RNG.  Telemetry
emission is guarded by ``tel.enabled`` so an uninstrumented bench run
stays bit-identical to an instrumented one.
"""

from __future__ import annotations

import bisect
import hashlib
import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.isa.registers import R1
from repro.osmodel.kernel import Kernel
from repro.osmodel.process import FDKind, Process
from repro.osmodel.syscalls import Sys
from repro.telemetry import get_telemetry
from repro.telemetry.metrics import nearest_rank


@dataclass
class RequestRecord:
    """One request's measured lifecycle on the fleet clock."""

    pid: int
    server: str
    index: int  # per-connection sequence number
    attack: bool
    issued_at: float
    accepted_at: float = -1.0
    completed_at: float = -1.0

    @property
    def completed(self) -> bool:
        return self.completed_at >= 0.0

    @property
    def latency(self) -> float:
        """Issue-to-completion latency (0 until completed)."""
        if not self.completed:
            return 0.0
        return self.completed_at - self.issued_at

    def to_dict(self) -> dict:
        return {
            "pid": self.pid,
            "server": self.server,
            "index": self.index,
            "attack": self.attack,
            "issued_at": self.issued_at,
            "accepted_at": self.accepted_at,
            "completed_at": self.completed_at,
            "latency": self.latency,
        }


@dataclass
class _Arrival:
    at: float
    payload: bytes
    attack: bool = False


@dataclass
class _PidState:
    server: str
    mode: str  # "closed" | "open"
    #: open loop: arrivals not yet delivered, ascending by ``at``.
    schedule: List[_Arrival] = field(default_factory=list)
    #: open loop: issue metadata for delivered-but-unaccepted arrivals,
    #: in delivery (= accept) order.
    delivered: List[_Arrival] = field(default_factory=list)
    #: closed loop: attack flag per request index (push order).
    attack_flags: List[bool] = field(default_factory=list)
    accept_seq: int = 0
    last_completion: Optional[float] = None
    #: id(connection) -> in-flight record.
    inflight: Dict[int, RequestRecord] = field(default_factory=dict)
    idle_cycles: float = 0.0


class LoadTracker:
    """Per-request timing + loadgen telemetry for one fleet run."""

    def __init__(
        self,
        clock,
        slo_latency: Optional[float] = None,
        slo_percentile: float = 99.0,
        tenant: Optional[str] = None,
    ) -> None:
        self.clock = clock
        self.slo_latency = slo_latency
        self.slo_percentile = slo_percentile
        self.tenant = tenant
        #: extra labels on every loadgen metric (service mode tags the
        #: tenant so per-tenant series fan out of the shared registry).
        self._labels: Dict[str, str] = (
            {} if tenant is None else {"tenant": tenant}
        )
        self.records: List[RequestRecord] = []
        self.offered = 0
        self.completed = 0
        self._pids: Dict[int, _PidState] = {}
        self._latencies: List[float] = []  # kept sorted (bisect.insort)
        self._installed = False

    # -- registration --------------------------------------------------------

    def track_closed(
        self, proc: Process, attack_flags: Sequence[bool]
    ) -> None:
        """Track a process whose requests are already queued (closed
        loop); ``attack_flags[k]`` marks request *k* as an exploit."""
        self._pids[proc.pid] = _PidState(
            server=proc.name, mode="closed",
            attack_flags=list(attack_flags),
        )

    def track_open(
        self, proc: Process, schedule: Sequence[Tuple[float, bytes, bool]]
    ) -> None:
        """Track a process fed by an arrival schedule (open loop):
        ``(arrival_cycle, payload, is_attack)`` tuples, ascending."""
        arrivals = [_Arrival(at, payload, attack)
                    for at, payload, attack in schedule]
        arrivals.sort(key=lambda a: a.at)
        self._pids[proc.pid] = _PidState(
            server=proc.name, mode="open", schedule=arrivals,
        )

    # -- kernel instrumentation ----------------------------------------------

    def install(self, kernel: Kernel) -> None:
        """Wrap accept/close *outermost* (after the monitor installs),
        chaining to whatever handler is already in the table."""
        if self._installed:
            return
        orig_accept = kernel.install_handler(
            Sys.ACCEPT,
            lambda k, p: self._on_accept(k, p),
        )
        orig_close = kernel.install_handler(
            Sys.CLOSE,
            lambda k, p: self._on_close(k, p),
        )
        self._orig_accept = orig_accept
        self._orig_close = orig_close
        self._installed = True

    def _feed_due(self, proc: Process, st: _PidState, now: float) -> None:
        while st.schedule and st.schedule[0].at <= now:
            arrival = st.schedule.pop(0)
            proc.push_connection(arrival.payload)
            st.delivered.append(arrival)
            self._on_issue(st)

    def _on_accept(self, kernel: Kernel, proc: Process) -> int:
        st = self._pids.get(proc.pid)
        if st is None:
            return self._orig_accept(kernel, proc)
        if st.mode == "open" and st.schedule:
            now = self.clock.now
            self._feed_due(proc, st, now)
            if not proc.pending_connections and st.schedule:
                # Blocking accept: sleep (spin, on this one-CPU fleet)
                # until the next scheduled arrival.
                gap = st.schedule[0].at - now
                st.idle_cycles += gap
                proc.executor.cycles += gap
                tel = get_telemetry()
                if tel.enabled:
                    tel.metrics.counter("loadgen.idle_cycles").inc(
                        gap, server=st.server, **self._labels
                    )
                self._feed_due(proc, st, self.clock.now)
        rc = self._orig_accept(kernel, proc)
        if rc >= 0:
            fd = proc.fds.get(rc)
            if fd is not None and fd.conn is not None:
                self._record_accept(proc, st, fd.conn)
        return rc

    def _on_close(self, kernel: Kernel, proc: Process) -> int:
        rec = None
        st = self._pids.get(proc.pid)
        if st is not None:
            fd = proc.fds.get(proc.machine.reg(R1))
            if (
                fd is not None
                and fd.kind is FDKind.CONN
                and fd.conn is not None
            ):
                rec = st.inflight.pop(id(fd.conn), None)
        rc = self._orig_close(kernel, proc)
        if rec is not None and rc == 0:
            self._record_completion(st, rec)
        return rc

    # -- lifecycle events ----------------------------------------------------

    def _on_issue(self, st: _PidState) -> None:
        self.offered += 1
        tel = get_telemetry()
        if tel.enabled:
            tel.metrics.counter("loadgen.offered").inc(
                server=st.server, **self._labels
            )
            tel.metrics.gauge("loadgen.inflight").set(
                self.offered - self.completed, **self._labels
            )

    def _record_accept(self, proc, st: _PidState, conn) -> None:
        now = self.clock.now
        index = st.accept_seq
        st.accept_seq += 1
        if st.mode == "open":
            if not st.delivered:  # a connection we did not schedule
                return
            arrival = st.delivered.pop(0)
            issued, attack = arrival.at, arrival.attack
        else:
            # Zero-think-time client: the next request is issued the
            # instant the previous one completed.  The first request is
            # issued at its own accept, so latency excludes startup.
            issued = (
                st.last_completion
                if st.last_completion is not None
                else now
            )
            attack = (
                st.attack_flags[index]
                if index < len(st.attack_flags)
                else False
            )
            self._on_issue(st)
        rec = RequestRecord(
            pid=proc.pid, server=st.server, index=index,
            attack=attack, issued_at=issued, accepted_at=now,
        )
        st.inflight[id(conn)] = rec
        self.records.append(rec)

    def _record_completion(self, st: _PidState, rec: RequestRecord) -> None:
        now = self.clock.now
        rec.completed_at = now
        st.last_completion = now
        self.completed += 1
        bisect.insort(self._latencies, rec.latency)
        tel = get_telemetry()
        if tel.enabled:
            tel.metrics.counter("loadgen.completed").inc(
                server=st.server, **self._labels
            )
            tel.metrics.histogram("loadgen.latency").observe(
                rec.latency, server=st.server, **self._labels
            )
            tel.metrics.gauge("loadgen.inflight").set(
                self.offered - self.completed, **self._labels
            )
            if self.slo_latency is not None:
                tel.metrics.gauge("loadgen.slo_headroom").set(
                    self.slo_latency
                    - self.latency_percentile(self.slo_percentile),
                    **self._labels,
                )

    # -- results -------------------------------------------------------------

    @property
    def total_idle_cycles(self) -> float:
        return sum(st.idle_cycles for st in self._pids.values())

    def idle_cycles_for(self, pid: int) -> float:
        st = self._pids.get(pid)
        return st.idle_cycles if st is not None else 0.0

    def latency_percentile(self, q: float) -> float:
        """Exact nearest-rank percentile over completed requests."""
        return nearest_rank(self._latencies, q)

    def latency_summary(self) -> Dict[str, float]:
        lats = self._latencies
        return {
            "count": float(len(lats)),
            "mean": sum(lats) / len(lats) if lats else 0.0,
            "p50": nearest_rank(lats, 50),
            "p95": nearest_rank(lats, 95),
            "p99": nearest_rank(lats, 99),
            "max": lats[-1] if lats else 0.0,
        }

    def timeline_digest(self) -> str:
        """The full request timeline, hashed — the witness that two
        runs served identical load identically."""
        blob = json.dumps(
            [
                (
                    r.pid, r.server, r.index, r.attack,
                    round(r.issued_at, 6),
                    round(r.accepted_at, 6),
                    round(r.completed_at, 6),
                )
                for r in self.records
            ],
            sort_keys=True,
        )
        return hashlib.sha256(blob.encode()).hexdigest()
