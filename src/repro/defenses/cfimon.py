"""CFIMon (Xia et al., DSN'12): BTS-based transparent CFI.

BTS records *every* control transfer, so the checker sees the complete
history and verifies each indirect transfer against the CFG target
sets — precise, transparent, and ~50x slower at tracing time (Table 1),
which is the trade-off FlowGuard's IPT reuse eliminates.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.analysis.cfg import ControlFlowGraph
from repro.cpu.events import BranchEvent, CoFIKind
from repro.defenses.base import EndpointDefense
from repro.hardware.bts import BTSBuffer, BTSTracer
from repro.osmodel.kernel import Kernel
from repro.osmodel.process import Process


class _ClassifyingBTS(BTSTracer):
    """BTS tracer that also remembers each record's CoFI kind.

    (Real CFIMon post-classifies records by disassembling the source;
    keeping the kind at capture time is equivalent and cheaper to
    model.)
    """

    def __init__(self) -> None:
        super().__init__(BTSBuffer(capacity=1 << 16))
        self.kinds = []

    def on_branch(self, event: BranchEvent) -> None:
        super().on_branch(event)
        self.kinds.append(event.kind)
        if len(self.kinds) > self.buffer.capacity:
            del self.kinds[: len(self.kinds) - self.buffer.capacity]


class CFIMon(EndpointDefense):
    name = "cfimon"

    def __init__(self, kernel: Kernel, endpoints=None) -> None:
        super().__init__(kernel, endpoints)
        self._tracers: Dict[int, _ClassifyingBTS] = {}
        self._cfgs: Dict[int, ControlFlowGraph] = {}
        self._checked_upto: Dict[int, int] = {}

    def protect(self, proc: Process, ocfg: ControlFlowGraph) -> BTSTracer:
        tracer = _ClassifyingBTS()
        proc.executor.add_listener(tracer.on_branch)
        self._tracers[proc.pid] = tracer
        self._cfgs[proc.pid] = ocfg
        self._checked_upto[proc.pid] = 0
        return tracer

    @property
    def tracer_cycles(self) -> float:
        return sum(t.cycles for t in self._tracers.values())

    def check(self, proc: Process, nr: int) -> Optional[str]:
        tracer = self._tracers.get(proc.pid)
        ocfg = self._cfgs.get(proc.pid)
        if tracer is None or ocfg is None:
            return None
        records = tracer.buffer.records
        start = self._checked_upto.get(proc.pid, 0)
        start = min(start, len(records))
        for record, kind in zip(records[start:], tracer.kinds[start:]):
            if kind in (CoFIKind.RET, CoFIKind.INDIRECT_JMP,
                        CoFIKind.INDIRECT_CALL):
                allowed = ocfg.indirect_targets.get(record.src)
                if allowed is None:
                    continue
                target_block = ocfg.block_at(record.dst)
                if target_block is None or (
                    target_block.start not in allowed
                    and record.dst not in allowed
                ):
                    return (
                        f"transfer {record.src:#x} -> {record.dst:#x} "
                        f"outside the CFG target set"
                    )
        self._checked_upto[proc.pid] = len(records)
        return None
