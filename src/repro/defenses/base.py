"""Shared scaffolding for endpoint-triggered baseline defenses."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.osmodel.kernel import Kernel
from repro.osmodel.process import Process
from repro.osmodel.syscalls import SENSITIVE_SYSCALLS, SIGKILL


@dataclass
class BaselineDetection:
    pid: int
    syscall_nr: int
    reason: str


class EndpointDefense:
    """Base class: intercept sensitive syscalls, delegate to _check."""

    name = "baseline"

    def __init__(self, kernel: Kernel, endpoints=None) -> None:
        self.kernel = kernel
        self.endpoints = frozenset(
            int(nr) for nr in (endpoints or SENSITIVE_SYSCALLS)
        )
        self.detections: List[BaselineDetection] = []
        self._originals: Dict[int, object] = {}
        self._installed = False

    def install(self) -> None:
        if self._installed:
            return
        for nr in self.endpoints:
            self._originals[nr] = self.kernel.install_handler(
                nr, self._make_wrapper(nr)
            )
        self._installed = True

    def uninstall(self) -> None:
        for nr, original in self._originals.items():
            self.kernel.install_handler(nr, original)
        self._originals.clear()
        self._installed = False

    def _make_wrapper(self, nr: int):
        def wrapper(kernel: Kernel, proc: Process):
            reason = self.check(proc, nr)
            if reason is not None:
                self.detections.append(
                    BaselineDetection(proc.pid, nr, reason)
                )
                kernel.kill_process(proc, SIGKILL)
                return -1
            return self._originals[nr](kernel, proc)

        return wrapper

    # -- to override -------------------------------------------------------

    def check(self, proc: Process, nr: int) -> Optional[str]:
        """Return a violation reason, or None if the flow looks clean."""
        raise NotImplementedError


def is_call_preceded(memory, target: int) -> bool:
    """Whether the instruction *before* ``target`` is a call.

    Variable-length encoding means checking both call widths — exactly
    the check kBouncer performs on x86 return targets.
    """
    from repro.isa.encoding import DecodeError, decode_at
    from repro.isa.instructions import Op

    for width, op in ((5, Op.CALL), (2, Op.CALLR)):
        try:
            raw = memory.read_raw(target - width, width)
            insn, length = decode_at(raw, 0)
        except Exception:  # unmapped or undecodable
            continue
        if insn.op is op and length == width:
            return True
    return False
