"""kBouncer (Pappas et al., USENIX Sec'13): LBR checks at endpoints.

Two heuristics over the 16-entry LBR window:

1. every recorded return must target a *call-preceded* address,
2. a run of ``chain_threshold``+ consecutive returns whose targets are
   followed by at most ``gadget_span`` bytes before the next recorded
   branch source is flagged as a gadget chain.

Precise by construction it is not — the window is tiny and attackers
can flush it (§7.1.1), which the history-flushing attack demonstrates.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.cpu.events import CoFIKind
from repro.defenses.base import EndpointDefense, is_call_preceded
from repro.hardware.lbr import LBRStack
from repro.osmodel.kernel import Kernel
from repro.osmodel.process import Process


class KBouncer(EndpointDefense):
    name = "kbouncer"

    def __init__(
        self,
        kernel: Kernel,
        chain_threshold: int = 8,
        gadget_span: int = 40,
        endpoints=None,
    ) -> None:
        super().__init__(kernel, endpoints)
        self.chain_threshold = chain_threshold
        self.gadget_span = gadget_span
        self._lbrs: Dict[int, LBRStack] = {}

    def protect(self, proc: Process, depth: int = 16) -> LBRStack:
        lbr = LBRStack(depth=depth)
        proc.executor.add_listener(lbr.on_branch)
        self._lbrs[proc.pid] = lbr
        return lbr

    @property
    def tracer_cycles(self) -> float:
        return sum(lbr.cycles for lbr in self._lbrs.values())

    def check(self, proc: Process, nr: int) -> Optional[str]:
        lbr = self._lbrs.get(proc.pid)
        if lbr is None:
            return None
        entries = lbr.entries()
        # Heuristic 1: call-preceded returns.
        for src, dst, kind in entries:
            if kind is CoFIKind.RET and not is_call_preceded(
                proc.machine.memory, dst
            ):
                return f"return to non-call-preceded address {dst:#x}"
        # Heuristic 2: gadget-chain length.
        run = 0
        previous_dst = None
        for src, dst, kind in entries:
            if kind is CoFIKind.RET:
                if (
                    previous_dst is not None
                    and 0 <= src - previous_dst <= self.gadget_span
                ):
                    run += 1
                else:
                    run = 1
                previous_dst = dst
                if run >= self.chain_threshold:
                    return f"gadget chain of length {run}"
            else:
                previous_dst = None
                run = 0
        return None
