"""PathArmor-lite (van der Veen et al., CCS'15): context-sensitive CFI
over the LBR window.

At each endpoint, every indirect hop recorded in the LBR is verified
against the per-branch O-CFG target sets (the context-sensitive path
check reduced to its edge-verification core).  Precise for what the
window holds — but it only holds 16 entries, and unmonitored code
pollutes it; the real system had to instrument libraries to work around
exactly this ("it suffers from the problem of LBR pollution, thus has
to resort to instrumenting libraries", §1).
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.analysis.cfg import ControlFlowGraph
from repro.cpu.events import CoFIKind
from repro.defenses.base import EndpointDefense
from repro.hardware.lbr import LBRStack
from repro.osmodel.kernel import Kernel
from repro.osmodel.process import Process


class PathArmorLite(EndpointDefense):
    name = "patharmor"

    def __init__(self, kernel: Kernel, endpoints=None) -> None:
        super().__init__(kernel, endpoints)
        self._lbrs: Dict[int, LBRStack] = {}
        self._cfgs: Dict[int, ControlFlowGraph] = {}

    def protect(self, proc: Process, ocfg: ControlFlowGraph) -> LBRStack:
        lbr = LBRStack(depth=16)
        proc.executor.add_listener(lbr.on_branch)
        self._lbrs[proc.pid] = lbr
        self._cfgs[proc.pid] = ocfg
        return lbr

    def check(self, proc: Process, nr: int) -> Optional[str]:
        lbr = self._lbrs.get(proc.pid)
        ocfg = self._cfgs.get(proc.pid)
        if lbr is None or ocfg is None:
            return None
        for src, dst, kind in lbr.entries():
            if kind in (CoFIKind.RET, CoFIKind.INDIRECT_JMP,
                        CoFIKind.INDIRECT_CALL):
                allowed = ocfg.indirect_targets.get(src)
                if allowed is None:
                    continue  # branch not in the analysed image
                target_block = ocfg.block_at(dst)
                if target_block is None or (
                    target_block.start not in allowed and dst not in allowed
                ):
                    return (
                        f"indirect branch {src:#x} -> {dst:#x} outside "
                        f"the CFG target set"
                    )
        return None
