"""ROPecker (Cheng et al., NDSS'14): gadget-run heuristics over LBR.

Flags an endpoint when the recent indirect-branch window contains a run
of ``run_threshold``+ hops whose code spans are gadget-sized (at most
``max_gadget_insns`` instructions from landing point to the next
recorded branch source).  Like kBouncer it inspects only a sliding
hardware window, so it shares the history-flushing weakness.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.cpu.events import CoFIKind
from repro.defenses.base import EndpointDefense
from repro.hardware.lbr import LBRFilter, LBRStack
from repro.isa.encoding import decode_at
from repro.osmodel.kernel import Kernel
from repro.osmodel.process import Process


class ROPecker(EndpointDefense):
    name = "ropecker"

    def __init__(
        self,
        kernel: Kernel,
        run_threshold: int = 6,
        max_gadget_insns: int = 6,
        endpoints=None,
    ) -> None:
        super().__init__(kernel, endpoints)
        self.run_threshold = run_threshold
        self.max_gadget_insns = max_gadget_insns
        self._lbrs: Dict[int, LBRStack] = {}

    def protect(self, proc: Process) -> LBRStack:
        # ROPecker filters conditional branches out of the LBR.
        lbr = LBRStack(depth=16, filter_=LBRFilter(record_cond=False))
        proc.executor.add_listener(lbr.on_branch)
        self._lbrs[proc.pid] = lbr
        return lbr

    def _gadget_sized(self, proc: Process, start: int, end_src: int) -> bool:
        """At most max_gadget_insns instructions from start to end_src."""
        if end_src < start:
            return False
        pos = start
        for _ in range(self.max_gadget_insns + 1):
            if pos >= end_src:
                return True
            try:
                raw = proc.machine.memory.read_raw(pos, 10)
                _, length = decode_at(raw, 0)
            except Exception:
                return False
            pos += length
        return False

    def check(self, proc: Process, nr: int) -> Optional[str]:
        lbr = self._lbrs.get(proc.pid)
        if lbr is None:
            return None
        entries = [
            (src, dst, kind)
            for src, dst, kind in lbr.entries()
            if kind in (CoFIKind.RET, CoFIKind.INDIRECT_JMP,
                        CoFIKind.INDIRECT_CALL)
        ]
        run = 0
        for index in range(len(entries) - 1):
            _, dst, _ = entries[index]
            next_src, _, _ = entries[index + 1]
            if self._gadget_sized(proc, dst, next_src):
                run += 1
                if run >= self.run_threshold:
                    return f"gadget run of length {run}"
            else:
                run = 0
        return None
