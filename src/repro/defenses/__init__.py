"""Baseline defenses the paper positions FlowGuard against (§8.2).

All are endpoint-triggered monitors over cheaper tracing hardware:

- :class:`~repro.defenses.kbouncer.KBouncer` — LBR at endpoints with a
  call-preceded-return check plus a gadget-chain-length heuristic,
- :class:`~repro.defenses.ropecker.ROPecker` — LBR sliding window with a
  short-gadget run heuristic,
- :class:`~repro.defenses.patharmor.PathArmorLite` — LBR entries checked
  against the O-CFG (context-sensitive but window-limited; suffers LBR
  pollution),
- :class:`~repro.defenses.cfimon.CFIMon` — BTS full trace checked
  against per-branch target sets (precise but ~50x tracing overhead).

They exist to reproduce the Table 1 trade-offs and the history-flushing
comparison: small-window heuristics miss flushed chains that FlowGuard's
30+-TIP ITC check catches.
"""

from repro.defenses.kbouncer import KBouncer
from repro.defenses.ropecker import ROPecker
from repro.defenses.patharmor import PathArmorLite
from repro.defenses.cfimon import CFIMon

__all__ = ["CFIMon", "KBouncer", "PathArmorLite", "ROPecker"]
