"""Per-PR performance trajectory: the knee curve over time, not a point.

``experiments/loadgen.py`` measures one PR's saturation knee and
max-throughput-under-SLO; this module keeps the *history*.  Each perf
PR appends one entry to ``BENCH_trajectory.json`` — an append-only
record extracted from that PR's ``BENCH_loadgen.json`` — so a reviewer
sees the curve (did the knee move? did max-under-SLO regress?) instead
of a single number with no baseline.

Contract:

- **append-only** — existing entries are never rewritten; re-running
  the driver with a label that is already recorded replaces only that
  entry (the latest run of a PR supersedes its own earlier run), every
  other entry survives byte-for-byte.
- **gated** — the newest entry's knee throughput must clear the
  recorded floor (the PR 7 baseline, 75.5 req/Mcycle) and must not
  regress below the first recorded entry.

The driver (``experiments/trajectory.py`` at the repo root) reads the
already-written ``BENCH_loadgen.json`` rather than re-running the load
harness, so recording the trajectory costs nothing beyond the loadgen
run the PR already pays for.
"""

from __future__ import annotations

import json
import os
from typing import Dict, List, Optional

KIND = "loadgen-trajectory"

#: The knee floor every recorded entry must clear (req/Mcycle).  Set
#: by the PR 7 baseline; raise it when the curve moves up for good.
KNEE_FLOOR = 75.5

#: The PR 7 baseline, transcribed from that PR's ``BENCH_loadgen.json``
#: (nginx-closed, seed 0).  Used to seed a trajectory file that does
#: not exist yet so the curve always starts at the first measured PR.
BASELINE_ENTRY: Dict[str, object] = {
    "label": "pr7",
    "scenario": "nginx-closed",
    "knee_connections": 3,
    "knee_throughput": 75.52748768083352,
    "best_connections": 3,
    "max_under_slo": 75.52748768083352,
    "probes": 3,
    "slo_latency": 60000.0,
    "slo_percentile": 99.0,
    "gates_green": True,
    "quick": False,
}

_ENTRY_KEYS = tuple(BASELINE_ENTRY)


def new_trajectory() -> Dict[str, object]:
    """An empty trajectory document seeded with the PR 7 baseline."""
    return {"kind": KIND, "entries": [dict(BASELINE_ENTRY)]}


def load_trajectory(path: str) -> Dict[str, object]:
    """The trajectory at ``path``, or a freshly seeded one if absent."""
    if not os.path.exists(path):
        return new_trajectory()
    with open(path, "r", encoding="utf-8") as fh:
        doc = json.load(fh)
    if doc.get("kind") != KIND:
        raise ValueError(
            f"{path} is not a {KIND} document (kind={doc.get('kind')!r})"
        )
    for entry in doc.get("entries", []):
        missing = [k for k in _ENTRY_KEYS if k not in entry]
        if missing:
            raise ValueError(
                f"trajectory entry {entry.get('label')!r} is missing "
                f"keys: {', '.join(missing)}"
            )
    return doc


def save_trajectory(doc: Dict[str, object], path: str) -> None:
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(doc, fh, indent=2, sort_keys=True)
        fh.write("\n")


def entry_from_loadgen(
    results: Dict[str, object], label: str
) -> Dict[str, object]:
    """One trajectory entry distilled from a loadgen results payload
    (the in-memory dict or the parsed ``BENCH_loadgen.json``)."""
    knee = results["knee"]
    search = results["search"]
    scenario = results["scenario"]
    gates = results.get("gates", {})
    return {
        "label": label,
        "scenario": scenario["name"],
        "knee_connections": knee["connections"],
        "knee_throughput": knee["throughput"],
        "best_connections": search["best_connections"],
        "max_under_slo": search["max_throughput"],
        "probes": search["probes"],
        "slo_latency": search["slo_latency"],
        "slo_percentile": search["slo_percentile"],
        "gates_green": all(
            ok for ok in gates.values() if isinstance(ok, bool)
        ),
        "quick": bool(results.get("quick", False)),
    }


def append_entry(
    doc: Dict[str, object], entry: Dict[str, object]
) -> Dict[str, object]:
    """``doc`` with ``entry`` recorded, append-only.

    Every entry whose label differs from ``entry['label']`` is carried
    over untouched; an entry with the same label is replaced in place
    (a PR re-running its own driver supersedes itself, never history).
    """
    entries: List[Dict[str, object]] = []
    replaced = False
    for existing in doc.get("entries", []):
        if existing.get("label") == entry["label"]:
            entries.append(dict(entry))
            replaced = True
        else:
            entries.append(dict(existing))
    if not replaced:
        entries.append(dict(entry))
    return {"kind": KIND, "entries": entries}


def trajectory_gates(doc: Dict[str, object]) -> Dict[str, bool]:
    """The acceptance gates over the recorded curve."""
    entries = list(doc.get("entries", []))
    if not entries:
        return {
            "has_entries": False,
            "knee_at_or_above_floor": False,
            "no_regression_vs_first": False,
            "all_entries_green": False,
        }
    latest = entries[-1]
    first = entries[0]
    return {
        "has_entries": True,
        "knee_at_or_above_floor": (
            latest["knee_throughput"] >= KNEE_FLOOR
        ),
        "no_regression_vs_first": (
            latest["knee_throughput"] >= first["knee_throughput"]
            # Quick entries probe a smaller sweep; only full runs are
            # comparable against the full-run baseline.
            or bool(latest.get("quick"))
        ),
        "all_entries_green": all(
            e.get("gates_green", False) for e in entries
        ),
    }


def gates_passed(doc: Dict[str, object]) -> List[str]:
    """Names of the gates that failed (empty = all green)."""
    return [
        name for name, ok in trajectory_gates(doc).items() if not ok
    ]


def format_table(doc: Dict[str, object]) -> str:
    from repro.experiments.common import format_rows

    entries = doc.get("entries", [])
    table = format_rows(
        ["label", "scenario", "knee@conns", "req/Mcyc",
         "max-under-SLO", "best", "green"],
        [[e["label"], e["scenario"], e["knee_connections"],
          f"{e['knee_throughput']:.2f}",
          f"{e['max_under_slo']:.2f}", e["best_connections"],
          "yes" if e["gates_green"] else "NO"]
         for e in entries],
    )
    gates = trajectory_gates(doc)
    return (
        f"Performance trajectory — knee floor "
        f"{KNEE_FLOOR:.1f} req/Mcycle, {len(entries)} entries\n"
        + table
        + "\n\nGates: "
        + ", ".join(
            f"{name}={'ok' if ok else 'FAIL'}"
            for name, ok in gates.items()
        )
    )


def record(
    loadgen_path: str,
    trajectory_path: str,
    label: str,
    results: Optional[Dict[str, object]] = None,
) -> Dict[str, object]:
    """Read loadgen results, append one entry, write the trajectory.

    ``results`` short-circuits the read when the caller already holds
    the loadgen payload in memory (the bench drivers chain this way).
    """
    if results is None:
        with open(loadgen_path, "r", encoding="utf-8") as fh:
            results = json.load(fh)
    doc = load_trajectory(trajectory_path)
    doc = append_entry(doc, entry_from_loadgen(results, label))
    save_trajectory(doc, trajectory_path)
    return doc
