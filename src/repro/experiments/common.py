"""Shared experiment plumbing: pipelines, drivers, client generators."""

from __future__ import annotations

import math
from dataclasses import dataclass
from functools import lru_cache
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro import telemetry
from repro.monitor.flowguard import FlowGuardMonitor, MonitorStats
from repro.monitor.policy import FlowGuardPolicy
from repro.osmodel.kernel import Kernel
from repro.osmodel.process import Process
from repro.pipeline import FlowGuardPipeline
from repro.workloads import (
    SERVER_BUILDERS,
    build_libsim,
    build_vdso,
    exim_session,
    nginx_request,
    openssh_session,
    vsftpd_session,
)

SERVER_NAMES = ("nginx", "vsftpd", "openssh", "exim")


def geomean(values: Sequence[float]) -> float:
    """Geometric mean, tolerant of zeros (clamped to a tiny epsilon)."""
    if not values:
        return 0.0
    return math.exp(
        sum(math.log(max(v, 1e-9)) for v in values) / len(values)
    )


def libraries() -> Dict[str, object]:
    return {"libsim.so": build_libsim()}


# -- per-server client workloads (the ab / pyftpbench / script drivers) --


def server_requests(
    name: str, count: int, seed: Optional[int] = None
) -> List[bytes]:
    """The §7.2.1 client workloads, scaled down to ``count`` sessions.

    ``seed=None`` keeps the legacy constant workload (every historical
    digest depends on it).  A seed switches to the load generator's
    deterministic ``varied`` mix — the same seed always replays the
    same byte-exact request list (``repro serve --seed``).
    """
    if seed is not None:
        from repro.loadgen.mixes import mix_requests

        return mix_requests(name, count, seed=seed, mix="varied")
    if name == "nginx":
        # ab-like: constant requests for one small file.
        return [nginx_request("/index.html") for _ in range(count)]
    if name == "vsftpd":
        return [vsftpd_session(files=("/srv/file.bin",))
                for _ in range(count)]
    if name == "openssh":
        return [openssh_session(("whoami", "uptime"))
                for _ in range(count)]
    if name == "exim":
        return [exim_session(rcpts=2) for _ in range(count)]
    raise KeyError(name)


def training_corpus(name: str) -> List[bytes]:
    """Offline training inputs per server (fuzzing-derived stand-ins)."""
    if name == "nginx":
        return [
            nginx_request("/index.html"),
            nginx_request("/other.txt"),
            nginx_request("/missing"),
            nginx_request("/p", "POST", b"form-data"),
            nginx_request("/index.html", "HEAD"),
            b"junk request\n",
        ]
    if name == "vsftpd":
        return [
            vsftpd_session(files=("/srv/file.bin",)),
            vsftpd_session(files=("/srv/missing",)),
            vsftpd_session(files=("/srv/file.bin",), store=True),
            b"NOPE\nQUIT\n",
        ]
    if name == "openssh":
        return [
            openssh_session(("whoami",)),
            openssh_session(("uptime",)),
            openssh_session(()),
            b"baduser\nbadpass\n",
        ]
    if name == "exim":
        return [
            exim_session(rcpts=1),
            exim_session(rcpts=3),
            b"HELO x\nQUIT\n",
            b"RCPT early\nQUIT\n",
        ]
    raise KeyError(name)


def seed_server_fs(kernel: Kernel) -> None:
    kernel.fs.create("/index.html", b"<html>benchmark page</html>" * 70)
    kernel.fs.create("/other.txt", b"other" * 100)
    kernel.fs.create("/srv/file.bin", bytes(range(256)) * 16)


@lru_cache(maxsize=None)
def server_pipeline(name: str) -> FlowGuardPipeline:
    """Offline phase for one server (cached — it is a one-time effort).

    Training kernels are seeded with the same filesystem the runtime
    drivers use, so trained TNT patterns match deployment (a deployment
    would train against production-like content for the same reason).
    """
    return FlowGuardPipeline.offline(
        name,
        SERVER_BUILDERS[name](),
        libraries(),
        vdso=build_vdso(),
        corpus=training_corpus(name),
        mode="socket",
        kernel_setup=seed_server_fs,
    )


# -- run drivers -------------------------------------------------------------


@dataclass
class ServerRun:
    """Outcome of one server run (protected or baseline)."""

    proc: Process
    app_cycles: float
    monitor: Optional[FlowGuardMonitor] = None
    stats: Optional[MonitorStats] = None
    #: telemetry snapshot taken right after the run (None when disabled).
    telemetry: Optional[dict] = None

    @property
    def overhead(self) -> float:
        if self.stats is None or self.app_cycles <= 0:
            return 0.0
        return self.stats.total_cycles / self.app_cycles


def telemetry_snapshot() -> Optional[dict]:
    """The process-wide telemetry snapshot, or None while disabled.

    Experiments attach this to their results so every table/figure
    carries the metrics that produced it.
    """
    tel = telemetry.get_telemetry()
    return tel.snapshot() if tel.enabled else None


def run_server(
    name: str,
    requests: Sequence[bytes],
    protected: bool,
    policy: Optional[FlowGuardPolicy] = None,
    max_steps: int = 40_000_000,
    faults=None,
) -> ServerRun:
    """Run one server over a batch of connections.

    ``faults`` optionally arms a :class:`~repro.resilience.FaultPlan`
    on the protecting monitor (ignored for unprotected runs).
    """
    tel = telemetry.get_telemetry()
    pipeline = server_pipeline(name)
    kernel = Kernel()
    seed_server_fs(kernel)
    if protected:
        monitor, proc = pipeline.deploy(kernel, policy=policy,
                                        faults=faults)
    else:
        monitor, proc = None, pipeline.spawn_unprotected(kernel)
    for request in requests:
        proc.push_connection(request)
    with tel.tracer.span(
        "server.run", server=name, protected=protected,
        sessions=len(requests),
    ):
        kernel.run(proc, max_steps=max_steps)
    stats = monitor.stats_for(proc) if monitor is not None else None
    return ServerRun(
        proc=proc,
        app_cycles=proc.executor.cycles,
        monitor=monitor,
        stats=stats,
        telemetry=telemetry_snapshot(),
    )


def run_server_overhead(
    name: str, sessions: int = 10,
    policy: Optional[FlowGuardPolicy] = None,
) -> Tuple[float, MonitorStats, float]:
    """(relative overhead, monitor stats, baseline cycles)."""
    requests = server_requests(name, sessions)
    protected = run_server(name, requests, protected=True, policy=policy)
    assert protected.monitor is not None
    assert not protected.monitor.detections, (
        f"false positive on {name}: {protected.monitor.detections}"
    )
    return protected.overhead, protected.stats, protected.app_cycles


def run_spec_program(
    name: str,
    scale: int = 1,
    listeners: Sequence[Callable] = (),
    max_steps: int = 40_000_000,
) -> Process:
    """Run one SPEC-like program to completion, with optional tracers
    subscribed to its CoFI bus."""
    from repro.workloads.spec import build_spec_program

    kernel = Kernel()
    kernel.register_program(name, build_spec_program(name, scale),
                            libraries())
    proc = kernel.spawn(name)
    for listener in listeners:
        proc.executor.add_listener(listener)
    tel = telemetry.get_telemetry()
    with tel.tracer.span("spec.run", program=name, protected=False):
        kernel.run(proc, max_steps=max_steps)
    return proc


def run_spec_protected(
    name: str,
    scale: int = 1,
    policy: Optional[FlowGuardPolicy] = None,
) -> Tuple[Process, FlowGuardMonitor]:
    """Run one SPEC-like program under FlowGuard protection."""
    pipeline = spec_pipeline(name, scale)
    kernel = Kernel()
    monitor, proc = pipeline.deploy(kernel, policy=policy)
    tel = telemetry.get_telemetry()
    with tel.tracer.span("spec.run", program=name, protected=True):
        kernel.run(proc, max_steps=40_000_000)
    return proc, monitor


@lru_cache(maxsize=None)
def spec_pipeline(name: str, scale: int = 1) -> FlowGuardPipeline:
    from repro.workloads.spec import build_spec_program

    return FlowGuardPipeline.offline(
        name,
        build_spec_program(name, scale),
        libraries(),
        corpus=[b""],  # CPU-bound: one training run covers the hot loop
        mode="stdin",
    )


def format_rows(
    headers: Sequence[str], rows: Sequence[Sequence[object]]
) -> str:
    """Plain-text table rendering shared by all experiments."""
    table = [list(map(str, headers))] + [
        [f"{c:.2f}" if isinstance(c, float) else str(c) for c in row]
        for row in rows
    ]
    widths = [
        max(len(row[i]) for row in table) for i in range(len(headers))
    ]
    lines = []
    for index, row in enumerate(table):
        lines.append(
            "  ".join(cell.rjust(width) for cell, width in zip(row, widths))
        )
        if index == 0:
            lines.append("  ".join("-" * width for width in widths))
    return "\n".join(lines)
