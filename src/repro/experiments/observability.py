"""Observability-plane acceptance: transparency, verdicts, exactness.

The plane's contract has three legs, all gated by
``experiments/observability.py`` (→ ``BENCH_observability.json``):

- **transparency** — attaching the plane must not perturb the run.
  Each scenario executes twice, uninstrumented (telemetry fully off)
  and with the plane attached; the verdict digests (schedule digest +
  every task's verdict + quarantined pids + cycle totals) must be
  bit-identical.
- **verdicts** — a clean fleet run must meet every stock SLO; a
  fault-injected run with a planted ROP exploit must burn
  ``degradation-free`` error budget and capture at least one
  flight-recorder dump (the VIOLATION auto-dump).
- **exactness** — the plane's own reconciliation (sampled profiler
  phases vs ``MonitorStats``, flight tallies vs the
  ``DegradationLedger`` vs the ``resilience.events`` counter) must come
  back exact, alongside the fleet's cycle-accounting and ledger checks.

A quick ``psb_period × engine`` ablation grid rides along so the run
report can chart the trace-granularity tradeoff, with its own gate:
the engines must charge identical cycles at every period.
"""

from __future__ import annotations

import hashlib
import json
import math
from typing import Dict, List, Optional

from repro import telemetry
from repro.attacks import build_rop_request, run_recon
from repro.experiments.ablations import sweep_psb_engine
from repro.experiments.common import (
    format_rows,
    libraries,
    server_pipeline,
    server_requests,
)
from repro.experiments.fleet_scaling import build_fleet
from repro.fleet.rings import RingPolicy
from repro.resilience import FaultPlan, RetryPolicy
from repro.telemetry.plane import ObservabilityPlane, SLOConfig
from repro.workloads import build_nginx, build_vdso

#: fleet shape shared with the resilience experiment.
PROCESSES = 4
WORKERS = 2
RING_BYTES = 8192

#: sampler cadence in fleet-clock cycles.
INTERVAL = 5_000.0

RETRY = RetryPolicy(
    max_attempts=4,
    task_timeout=2_000.0,
    backoff_base=50.0,
    backoff_cap=400.0,
    hedge_delay=250.0,
)


def _build(sessions: int, faults=None, retry=None, seed: int = 0,
           inject_rop: bool = False):
    """One fleet, optionally with a mid-stream ROP in the first nginx."""
    service = build_fleet(
        0, WORKERS, sessions,
        policy=RingPolicy.LOSSY if faults is not None else RingPolicy.STALL,
        ring_bytes=RING_BYTES, seed=seed, faults=faults, retry=retry,
    )
    rop = None
    if inject_rop:
        recon = run_recon(build_nginx(), libraries(), vdso=build_vdso())
        rop = build_rop_request(recon)
    attacked_pid = None
    for index in range(PROCESSES):
        name = ("nginx", "exim")[index % 2]
        requests = list(server_requests(name, sessions))
        if index == 0 and rop is not None:
            requests.insert(len(requests) // 2, rop)
        proc = service.add_workload(server_pipeline(name), requests)
        if index == 0 and rop is not None:
            attacked_pid = proc.pid
    return service, attacked_pid


def _digest(result, service) -> str:
    """Everything a reader would call *the run's outcome*, hashed."""
    blob = json.dumps(
        {
            "schedule": result.schedule_digest,
            "verdicts": [
                (t.task_id, t.pid, t.kind, t.verdict)
                for t in service.dispatcher.tasks
            ],
            "quarantined": sorted(result.quarantined_pids),
            "detections": result.detections,
            "cycles": [
                round(result.makespan, 6),
                round(result.app_cycles, 6),
                round(result.monitor_cycles, 6),
                round(result.stall_cycles, 6),
            ],
        },
        sort_keys=True,
    )
    return hashlib.sha256(blob.encode()).hexdigest()


def _run_scenario(
    sessions: int,
    faults=None,
    retry=None,
    seed: int = 0,
    inject_rop: bool = False,
    plane: bool = False,
    slo: Optional[SLOConfig] = None,
) -> dict:
    """One fleet run, uninstrumented or plane-attached, summarized."""
    tel = telemetry.get_telemetry()
    tel.reset()
    plane_obj = None
    if plane:
        plane_obj = ObservabilityPlane(
            interval=INTERVAL, sampler_capacity=256, slo=slo,
        )
        tel.attach_plane(plane_obj)
    else:
        tel.disable()
    try:
        service, attacked_pid = _build(
            sessions, faults=faults, retry=retry, seed=seed,
            inject_rop=inject_rop,
        )
        result = service.run()
        row: Dict[str, object] = {
            "digest": _digest(result, service),
            "tasks": result.tasks,
            "quarantined": sorted(result.quarantined_pids),
            "attacked_pid": attacked_pid,
            "makespan": result.makespan,
            "overhead": result.overhead,
            "lag_p99": result.lag["p99"],
            "accounting_exact": result.accounting["exact"],
        }
        if plane_obj is not None:
            profiler = service.reconcile()
            audit = plane_obj.reconcile(
                service.monitor.all_stats(), service.monitor.degradations
            )
            ledger = (result.resilience or {}).get("ledger_reconcile") or {}
            row.update({
                "profiler_exact": bool(profiler and profiler["exact"]),
                "ledger_exact": ledger.get("exact", True),
                "plane_exact": audit["exact"],
                "slo": result.slo,
                "samples": plane_obj.sampler.taken,
                "flight_events": plane_obj.flight.seq,
                "dumps": len(plane_obj.flight.dumps),
                "plane_dump": plane_obj.to_dict(),
            })
    finally:
        if plane_obj is not None:
            tel.detach_plane()
        tel.disable()
    return row


def run(quick: bool = False) -> Dict[str, object]:
    sessions = 2 if quick else 3
    results: Dict[str, object] = {"quick": quick, "sessions": sessions}
    faults = FaultPlan.standard_mix(seed=42)

    # -- clean fleet: uninstrumented vs plane-attached --------------------
    clean_ref = _run_scenario(sessions)
    clean = _run_scenario(sessions, plane=True)
    results["scenarios"] = {
        "clean_reference": clean_ref,
        "clean_plane": clean,
    }

    # -- faulted fleet + planted ROP: same pairing ------------------------
    # The cached server pipelines are shared across runs and the first
    # slow-path excursion *promotes* verified ITC pairs back into them
    # (flowguard's clean-verdict feedback), so one throwaway faulted
    # run settles that state — the measured reference/plane pair must
    # differ by the plane alone.
    _run_scenario(sessions, faults=faults, retry=RETRY, inject_rop=True)
    faulted_ref = _run_scenario(
        sessions, faults=faults, retry=RETRY, inject_rop=True,
    )
    faulted = _run_scenario(
        sessions, faults=faults, retry=RETRY, inject_rop=True, plane=True,
    )
    results["scenarios"]["faulted_reference"] = faulted_ref
    results["scenarios"]["faulted_plane"] = faulted

    # -- psb_period × engine ablation (recorded in the run report) --------
    tel = telemetry.get_telemetry()
    tel.reset()
    tel.disable()
    grid = sweep_psb_engine(
        periods=(128, 1024) if quick else (128, 256, 1024),
        engines=("columnar", "objects"),
        sessions=2 if quick else 4,
    )
    results["ablation"] = [p.to_dict() for p in grid]
    by_period: Dict[int, List[float]] = {}
    for p in grid:
        by_period.setdefault(p.psb_period, []).append(p.overhead)
    engines_neutral = all(
        math.isclose(min(vals), max(vals), rel_tol=1e-9, abs_tol=1e-12)
        for vals in by_period.values()
    )

    # -- acceptance gates -------------------------------------------------
    faulted_burn = sum(
        o["budget_burn"] for o in faulted["slo"]["objectives"]
    )
    results["gates"] = {
        "clean_bit_identical": clean_ref["digest"] == clean["digest"],
        "faulted_bit_identical": faulted_ref["digest"] == faulted["digest"],
        "clean_slo_met": bool(clean["slo"]["met"]),
        "faulted_budget_burned": faulted_burn > 0.0,
        "faulted_dump_captured": faulted["dumps"] >= 1,
        "attack_quarantined": (
            faulted["attacked_pid"] in faulted["quarantined"]
        ),
        "reconciled_exact": all(
            row[k]
            for row in (clean, faulted)
            for k in ("accounting_exact", "profiler_exact",
                      "ledger_exact", "plane_exact")
        ),
        "engines_cost_neutral": engines_neutral,
    }
    return results


def gates_passed(results: Dict[str, object]) -> List[str]:
    """Names of the gates that failed (empty = all green)."""
    return [
        name for name, ok in results["gates"].items()
        if isinstance(ok, bool) and not ok
    ]


def format_table(results: Dict[str, object]) -> str:
    sections = []
    rows = []
    for key, row in results["scenarios"].items():
        slo = row.get("slo")
        rows.append([
            key,
            row["tasks"],
            len(row["quarantined"]),
            f"{row['overhead'] * 100:.1f}%",
            row.get("samples", "-"),
            row.get("dumps", "-"),
            ("met" if slo["met"] else f"burn {sum(o['budget_burn'] for o in slo['objectives']):.2f}")
            if slo else "-",
            row["digest"][:12],
        ])
    sections.append(
        f"Observability plane ({PROCESSES} processes / {WORKERS} workers, "
        f"sampler every {INTERVAL:.0f} cycles)\n"
        + format_rows(
            ["scenario", "tasks", "quar", "overhead", "samples",
             "dumps", "slo", "digest"],
            rows,
        )
    )
    sections.append(
        "psb_period × engine grid\n"
        + format_rows(
            ["period", "engine", "trace share", "overhead"],
            [[p["psb_period"], p["engine"],
              f"{p['trace_share'] * 100:.0f}%",
              f"{p['overhead'] * 100:.2f}%"]
             for p in results["ablation"]],
        )
    )
    gates = results["gates"]
    sections.append(
        "Gates: " + ", ".join(
            f"{name}={'ok' if ok else 'FAIL'}"
            if isinstance(ok, bool) else f"{name}={ok}"
            for name, ok in gates.items()
        )
    )
    return "\n\n".join(sections)
