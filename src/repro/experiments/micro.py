"""§7.2.2 micro-benchmarks: fast-path vs slow-path checking time.

Measures, over windows containing 100 TIP packets from a real nginx
trace, the fast path's cost (packet scan + ITC search) against the slow
path's (upcall + instruction-flow decode + forward edges + shadow
stack).  Paper: slow ≈ 0.23 ms ≈ 60x the fast path; the reproduced
ratio is larger (our functions are shorter, so each TIP covers fewer
instructions relative to search cost) but preserves the ordering and
the order-of-magnitude gap.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.common import seed_server_fs, server_pipeline
from repro.ipt.fast_decoder import fast_decode
from repro.itccfg.searchindex import FlowSearchIndex
from repro.monitor.fastpath import FastPathChecker
from repro.monitor.slowpath import SlowPathEngine
from repro.osmodel.kernel import Kernel
from repro.workloads import nginx_request


@dataclass
class MicroResult:
    fast_cycles: float
    slow_cycles: float
    tips_checked: int
    insns_decoded: int

    @property
    def slowdown(self) -> float:
        return self.slow_cycles / self.fast_cycles if self.fast_cycles else 0.0


def capture_trace(sessions: int = 8):
    """Run protected nginx traffic; return (pipeline, proc, topa data)."""
    pipeline = server_pipeline("nginx")
    kernel = Kernel()
    seed_server_fs(kernel)
    monitor, proc = pipeline.deploy(kernel)
    for _ in range(sessions):
        proc.push_connection(nginx_request("/index.html"))
    kernel.run(proc)
    pp = monitor.protected_for(proc)
    pp.encoder.flush()
    return pipeline, proc, pp.topa.snapshot()


def run(tip_window: int = 100) -> MicroResult:
    pipeline, proc, data = capture_trace()
    index = FlowSearchIndex(pipeline.labeled)
    checker = FastPathChecker(
        index, proc.image, pkt_count=tip_window,
        require_cross_module=False, require_executable=False,
    )
    fast = checker.check(data)
    fast_cycles = fast.decode_cycles + fast.search_cycles

    slow_engine = SlowPathEngine(proc.machine.memory, pipeline.ocfg)
    slow = slow_engine.check(fast.packets, window=fast.window)
    return MicroResult(
        fast_cycles=fast_cycles,
        slow_cycles=slow.cycles,
        tips_checked=fast.checked_pairs,
        insns_decoded=slow.insns_decoded,
    )


def format_table(result: MicroResult) -> str:
    return (
        "§7.2.2 — checking time per window "
        f"({result.tips_checked} TIP pairs)\n"
        f"  fast path: {result.fast_cycles:10.0f} cycles\n"
        f"  slow path: {result.slow_cycles:10.0f} cycles "
        f"({result.insns_decoded} instructions decoded)\n"
        f"  slowdown:  {result.slowdown:10.0f}x"
    )
