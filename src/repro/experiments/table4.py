"""Table 4 — CFG statistics and AIA across the server applications.

Columns reproduced per server: dependent-library count, basic blocks /
edges split into executable vs libraries, O-CFG AIA, ITC-CFG |V|/|E| and
AIA (with the TNT-recovered figure in parentheses), and the deployed
FlowGuard AIA from the §7.1.1 combination formula with cred_ratio = 1.

Paper's shape: AIA(ITC, no TNT) > AIA(O-CFG) = AIA(ITC w/ TNT) >
AIA(FlowGuard); average FlowGuard AIA well below the O-CFG's.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from repro.analysis import (
    aia_fine,
    aia_itc,
    aia_itc_with_tnt,
    aia_ocfg,
    flowguard_aia,
)
from repro.experiments.common import (
    SERVER_NAMES,
    format_rows,
    server_pipeline,
)


@dataclass
class Table4Row:
    application: str
    libraries: int
    exec_blocks: int
    lib_blocks: int
    exec_edges: int
    lib_edges: int
    ocfg_aia: float
    itc_nodes: int
    itc_edges: int
    itc_aia: float
    itc_aia_with_tnt: float
    flowguard_aia: float


@dataclass
class Table4Result:
    rows: List[Table4Row]

    @property
    def average_ocfg_aia(self) -> float:
        return sum(r.ocfg_aia for r in self.rows) / len(self.rows)

    @property
    def average_flowguard_aia(self) -> float:
        return sum(r.flowguard_aia for r in self.rows) / len(self.rows)


def run(servers: Sequence[str] = SERVER_NAMES,
        cred_ratio: float = 1.0) -> Table4Result:
    rows: List[Table4Row] = []
    for name in servers:
        pipeline = server_pipeline(name)
        stats = pipeline.ocfg.stats()
        itc = pipeline.itc
        ocfg_value = aia_ocfg(pipeline.ocfg)
        itc_value = aia_itc(itc)
        fine = aia_fine(pipeline.ocfg)
        rows.append(
            Table4Row(
                application=name,
                libraries=len(pipeline.libraries)
                + (1 if pipeline.vdso is not None else 0),
                exec_blocks=stats["exec_blocks"],
                lib_blocks=stats["lib_blocks"],
                exec_edges=stats["exec_edges"],
                lib_edges=stats["lib_edges"],
                ocfg_aia=ocfg_value,
                itc_nodes=len(itc.nodes),
                itc_edges=itc.edge_count,
                itc_aia=itc_value,
                itc_aia_with_tnt=aia_itc_with_tnt(itc),
                flowguard_aia=flowguard_aia(cred_ratio, fine, itc_value),
            )
        )
    return Table4Result(rows=rows)


def format_table(result: Table4Result) -> str:
    header = [
        "App", "Lib#", "BB(exec)", "BB(lib)", "Edge(exec)", "Edge(lib)",
        "O-CFG AIA", "|V|", "|E|", "ITC AIA (w/ tnt)", "FlowGuard AIA",
    ]
    rows = [
        [
            r.application, r.libraries, r.exec_blocks, r.lib_blocks,
            r.exec_edges, r.lib_edges, f"{r.ocfg_aia:.2f}",
            r.itc_nodes, r.itc_edges,
            f"{r.itc_aia:.2f} ({r.itc_aia_with_tnt:.2f})",
            f"{r.flowguard_aia:.2f}",
        ]
        for r in result.rows
    ]
    footer = (
        f"\naverage AIA: O-CFG {result.average_ocfg_aia:.1f} -> "
        f"FlowGuard {result.average_flowguard_aia:.1f}"
    )
    return "Table 4 — CFG statistics and AIA\n" + format_rows(
        header, rows
    ) + footer
