"""Table 1 — comparison of hardware control-flow tracing mechanisms.

Measures, on the SPEC-like suite:

- tracing overhead per mechanism (BTS per-record stalls, LBR register
  rotation, IPT compressed packet stores),
- decoding overhead (BTS/LBR need none; IPT's full decode is charged at
  the instruction-flow layer),

and reports the qualitative columns (precision, filtering) from the
mechanism models.  Paper's shape: BTS ~50x trace / no decode; LBR <1% /
no decode; IPT ~3% trace / high decode.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

from repro.experiments.common import format_rows, geomean, run_spec_program
from repro.hardware.bts import BTSTracer
from repro.hardware.lbr import LBRStack
from repro.ipt.encoder import IPTEncoder
from repro.ipt.fast_decoder import fast_decode
from repro.ipt.full_decoder import FullDecoder
from repro.ipt.msr import IPTConfig, RTIT_CTL
from repro.ipt.topa import ToPA, ToPARegion

DEFAULT_SUITE = (
    "perlbench", "bzip2", "gcc", "mcf", "milc", "gobmk",
    "hmmer", "sjeng", "libquantum", "h264ref", "lbm", "sphinx3",
)


@dataclass
class MechanismRow:
    name: str
    precise: str
    trace_overhead: float  # relative (1.0 == 100%)
    decode_overhead: float
    filtering: str


@dataclass
class Table1Result:
    rows: List[MechanismRow]
    per_benchmark: Dict[str, Dict[str, float]]


def _plain_ipt_config() -> IPTConfig:
    config = IPTConfig()
    config.write_ctl(RTIT_CTL.TRACE_EN | RTIT_CTL.BRANCH_EN | RTIT_CTL.USER)
    return config


def run(suite: Sequence[str] = DEFAULT_SUITE, scale: int = 1
        ) -> Table1Result:
    per_benchmark: Dict[str, Dict[str, float]] = {}
    bts_trace, lbr_trace, ipt_trace, ipt_decode = [], [], [], []

    for name in suite:
        bts = BTSTracer()
        lbr = LBRStack(depth=16)
        encoder = IPTEncoder(
            _plain_ipt_config(), output=ToPA([ToPARegion(1 << 22)])
        )
        proc = run_spec_program(
            name, scale, listeners=[bts.on_branch, lbr.on_branch,
                                    encoder.on_branch]
        )
        encoder.flush()
        app = proc.executor.cycles
        # IPT decode: the §2 pause-and-full-decode protocol.
        packets = fast_decode(encoder.output.snapshot()).packets
        full = FullDecoder(proc.machine.memory).decode(packets)
        row = {
            "bts_trace": bts.cycles / app,
            "lbr_trace": lbr.cycles / app,
            "ipt_trace": encoder.cycles / app,
            "ipt_decode": full.cycles / app,
        }
        per_benchmark[name] = row
        bts_trace.append(row["bts_trace"])
        lbr_trace.append(row["lbr_trace"])
        ipt_trace.append(row["ipt_trace"])
        ipt_decode.append(row["ipt_decode"])

    rows = [
        MechanismRow("BTS", "Full", geomean(bts_trace), 0.0, "None"),
        MechanismRow("LBR", "16/32 branches", geomean(lbr_trace), 0.0,
                     "CPL, CoFI type"),
        MechanismRow("IPT", "Full", geomean(ipt_trace),
                     geomean(ipt_decode), "CPL, CR3, IP"),
    ]
    return Table1Result(rows=rows, per_benchmark=per_benchmark)


def format_table(result: Table1Result) -> str:
    header = ["Mechanism", "Precise", "Trace overhead",
              "Decode overhead", "Filtering"]
    rows = [
        [
            row.name,
            row.precise,
            f"{row.trace_overhead * 100:.2f}%"
            if row.trace_overhead < 5
            else f"{row.trace_overhead:.1f}x",
            "None" if row.decode_overhead == 0
            else f"{row.decode_overhead:.0f}x",
            row.filtering,
        ]
        for row in result.rows
    ]
    return "Table 1 — hardware tracing mechanisms\n" + format_rows(
        header, rows
    )
