"""Fleet scaling: check-lag vs workers, fleet size, and ring policy.

Three sweeps over the :mod:`repro.fleet` service, all deterministic:

- **worker sweep** — an 8-process fleet checked by 1..4 workers.  The
  p99 check lag (the tail of the asynchronous detection window) must
  fall monotonically as workers are added: PSB-sliced checks spread
  across the pool, which is the §5.3 parallel-decode claim at fleet
  scale.
- **process sweep** — fleet sizes at a fixed pool, showing how lag and
  worker utilization grow as one monitor serves more processes.
- **policy pressure** — stall vs lossy rings sized small enough to
  force PMIs every few quanta.  Stall pays for losslessness in stall
  cycles (higher overhead); lossy keeps the fleet moving but drops
  bytes and forces PSB re-syncs.

The aggregate result is written to ``BENCH_fleet.json`` by
``experiments/fleet_scaling.py`` and asserted by ``tests/test_fleet.py``.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.experiments.common import (
    format_rows,
    run_server_overhead,
    seed_server_fs,
    server_pipeline,
    server_requests,
)
from repro.fleet.rings import RingPolicy
from repro.fleet.service import FleetConfig, FleetService

#: the two concurrently-served workloads (ISSUE: "two different server
#: workloads"); alternated across fleet slots.
FLEET_SERVERS = ("nginx", "exim")


def build_fleet(
    processes: int,
    workers: int,
    sessions: int,
    policy: RingPolicy = RingPolicy.LOSSY,
    ring_bytes: int = 8192,
    max_queue_depth: int = 1_000_000,
    servers: Sequence[str] = FLEET_SERVERS,
    seed: int = 0,
    faults=None,
    retry=None,
) -> FleetService:
    """A fleet with the standard alternating server mix.

    Lag sweeps default to lossy rings and an unbounded queue so the
    submitted work is *identical* across worker counts — stall-mode
    feedback would change the schedule itself and confound the sweep.
    ``faults``/``retry`` arm the resilience plane (see
    :mod:`repro.experiments.resilience`).
    """
    config = FleetConfig(
        workers=workers,
        ring_bytes=ring_bytes,
        ring_policy=policy,
        max_queue_depth=max_queue_depth,
        seed=seed,
        faults=faults,
        retry=retry,
    )
    service = FleetService(config)
    seed_server_fs(service.kernel)
    for index in range(processes):
        name = servers[index % len(servers)]
        service.add_workload(
            server_pipeline(name), server_requests(name, sessions)
        )
    return service


def _fleet_row(result) -> dict:
    sessions = sum(p["sessions"] for p in result.processes)
    throughput = (
        sessions / result.makespan * 1e6 if result.makespan > 0 else 0.0
    )
    return {
        "processes": len(result.processes),
        "workers": result.config.workers,
        "policy": result.config.ring_policy.value,
        "ring_bytes": result.config.ring_bytes,
        "sessions": sessions,
        "tasks": result.tasks,
        "dropped_checks": result.dropped_checks,
        "makespan": result.makespan,
        "throughput_per_mcycle": throughput,
        "lag_p50": result.lag["p50"],
        "lag_p99": result.lag["p99"],
        "lag_mean": result.lag["mean"],
        "overhead": result.overhead,
        "stall_cycles": result.stall_cycles,
        "utilization_mean": (
            sum(result.worker_utilization) / len(result.worker_utilization)
        ),
        "accounting_exact": result.accounting["exact"],
        "schedule_digest": result.schedule_digest,
    }


def run(quick: bool = False) -> Dict[str, object]:
    sessions = 2 if quick else 3
    results: Dict[str, object] = {"quick": quick, "sessions": sessions}

    # -- worker sweep: 8 processes, 1..4 workers ---------------------------
    worker_rows: List[dict] = []
    for workers in (1, 2, 3, 4):
        service = build_fleet(8, workers, sessions)
        worker_rows.append(_fleet_row(service.run()))
    results["worker_sweep"] = worker_rows

    # -- process sweep: 4 workers, growing fleet ---------------------------
    process_rows: List[dict] = []
    for processes in (2, 4, 8) if not quick else (2, 8):
        service = build_fleet(processes, 4, sessions)
        process_rows.append(_fleet_row(service.run()))
    results["process_sweep"] = process_rows

    # -- policy pressure: small rings force PMIs every few quanta ----------
    pressure_rows: List[dict] = []
    for policy in (RingPolicy.STALL, RingPolicy.LOSSY):
        service = build_fleet(
            4, 2, sessions, policy=policy, ring_bytes=1024,
            max_queue_depth=64,
        )
        result = service.run()
        row = _fleet_row(result)
        row["pmis"] = sum(p["pmi_count"] for p in result.processes)
        row["stalls"] = sum(p["stalls"] for p in result.processes)
        row["lost_bytes"] = sum(
            p["overwritten_bytes"] + p["resync_dropped_bytes"]
            for p in result.processes
        )
        row["resyncs"] = sum(p["resyncs"] for p in result.processes)
        pressure_rows.append(row)
    results["policy_pressure"] = pressure_rows

    # -- overhead vs solo: same servers, one monitor each ------------------
    solo: Dict[str, float] = {}
    for name in FLEET_SERVERS:
        overhead, _, _ = run_server_overhead(name, sessions=sessions)
        solo[name] = overhead
    fleet_service = build_fleet(8, 4, sessions)
    fleet_result = fleet_service.run()
    per_server: Dict[str, dict] = {}
    for row in fleet_result.processes:
        cell = per_server.setdefault(
            row["name"], {"monitor": 0.0, "stall": 0.0, "app": 0.0}
        )
        cell["monitor"] += row["monitor_cycles"]
        cell["stall"] += row["stall_cycles"]
        cell["app"] += row["app_cycles"]
    results["overhead_vs_solo"] = {
        name: {
            "solo": solo[name],
            "fleet": (cell["monitor"] + cell["stall"]) / cell["app"],
        }
        for name, cell in per_server.items()
    }
    return results


def format_table(results: Dict[str, object]) -> str:
    sections = []
    headers = ["procs", "workers", "policy", "lag p50", "lag p99",
               "overhead", "util", "thru/Mcyc"]

    def rows_of(sweep):
        return [
            [
                row["processes"],
                row["workers"],
                row["policy"],
                row["lag_p50"],
                row["lag_p99"],
                row["overhead"],
                row["utilization_mean"],
                row["throughput_per_mcycle"],
            ]
            for row in sweep
        ]

    sections.append("Fleet scaling: worker sweep (8 processes)\n"
                    + format_rows(headers, rows_of(results["worker_sweep"])))
    sections.append("Fleet scaling: process sweep (4 workers)\n"
                    + format_rows(headers, rows_of(results["process_sweep"])))
    pressure = results["policy_pressure"]
    sections.append(
        "Ring pressure: stall vs lossy (1 KiB rings)\n"
        + format_rows(
            ["policy", "overhead", "stall cyc", "PMIs", "lost B",
             "resyncs", "dropped"],
            [
                [
                    row["policy"],
                    row["overhead"],
                    row["stall_cycles"],
                    row["pmis"],
                    row["lost_bytes"],
                    row["resyncs"],
                    row["dropped_checks"],
                ]
                for row in pressure
            ],
        )
    )
    solo = results["overhead_vs_solo"]
    sections.append(
        "Overhead: fleet (8p/4w) vs solo\n"
        + format_rows(
            ["server", "solo", "fleet"],
            [[name, cell["solo"], cell["fleet"]]
             for name, cell in sorted(solo.items())],
        )
    )
    return "\n\n".join(sections)
