"""Fleet scaling: check-lag vs workers, fleet size, and ring policy.

Three sweeps over the :mod:`repro.fleet` service, all deterministic:

- **worker sweep** — an 8-process fleet checked by 1..4 workers.  The
  p99 check lag (the tail of the asynchronous detection window) must
  fall monotonically as workers are added: PSB-sliced checks spread
  across the pool, which is the §5.3 parallel-decode claim at fleet
  scale.
- **process sweep** — fleet sizes at a fixed pool, showing how lag and
  worker utilization grow as one monitor serves more processes.
- **policy pressure** — stall vs lossy rings sized small enough to
  force PMIs every few quanta.  Stall pays for losslessness in stall
  cycles (higher overhead); lossy keeps the fleet moving but drops
  bytes and forces PSB re-syncs.

The aggregate result is written to ``BENCH_fleet.json`` by
``experiments/fleet_scaling.py`` and asserted by ``tests/test_fleet.py``.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.experiments.common import (
    format_rows,
    run_server_overhead,
    seed_server_fs,
    server_pipeline,
    server_requests,
)
from repro.fleet.rings import RingPolicy
from repro.fleet.service import FleetConfig, FleetService

#: the two concurrently-served workloads (ISSUE: "two different server
#: workloads"); alternated across fleet slots.
FLEET_SERVERS = ("nginx", "exim")


def build_fleet(
    processes: int,
    workers: int,
    sessions: int,
    policy: RingPolicy = RingPolicy.LOSSY,
    ring_bytes: int = 8192,
    max_queue_depth: int = 1_000_000,
    servers: Sequence[str] = FLEET_SERVERS,
    seed: int = 0,
    faults=None,
    retry=None,
    decode_mode: str = "simulated",
    decode_pool: str = "thread",
    pool: str = "spread",
    index_shards: int = 0,
) -> FleetService:
    """A fleet with the standard alternating server mix.

    Lag sweeps default to lossy rings and an unbounded queue so the
    submitted work is *identical* across worker counts — stall-mode
    feedback would change the schedule itself and confound the sweep.
    ``faults``/``retry`` arm the resilience plane (see
    :mod:`repro.experiments.resilience`).  ``decode_mode``/
    ``decode_pool``/``pool``/``index_shards`` select the real decode
    backend, simulated scheduling discipline, and flow-index layout
    for the 100× scale runs.
    """
    config = FleetConfig(
        workers=workers,
        ring_bytes=ring_bytes,
        ring_policy=policy,
        max_queue_depth=max_queue_depth,
        seed=seed,
        faults=faults,
        retry=retry,
        decode_mode=decode_mode,
        decode_pool=decode_pool,
        pool=pool,
        index_shards=index_shards,
    )
    service = FleetService(config)
    seed_server_fs(service.kernel)
    for index in range(processes):
        name = servers[index % len(servers)]
        service.add_workload(
            server_pipeline(name), server_requests(name, sessions)
        )
    return service


def _fleet_row(result) -> dict:
    sessions = sum(p["sessions"] for p in result.processes)
    throughput = (
        sessions / result.makespan * 1e6 if result.makespan > 0 else 0.0
    )
    return {
        "processes": len(result.processes),
        "workers": result.config.workers,
        "policy": result.config.ring_policy.value,
        "ring_bytes": result.config.ring_bytes,
        "sessions": sessions,
        "tasks": result.tasks,
        "dropped_checks": result.dropped_checks,
        "makespan": result.makespan,
        "throughput_per_mcycle": throughput,
        "lag_p50": result.lag["p50"],
        "lag_p99": result.lag["p99"],
        "lag_mean": result.lag["mean"],
        "overhead": result.overhead,
        "stall_cycles": result.stall_cycles,
        "utilization_mean": (
            sum(result.worker_utilization) / len(result.worker_utilization)
        ),
        "accounting_exact": result.accounting["exact"],
        "schedule_digest": result.schedule_digest,
    }


def run(quick: bool = False) -> Dict[str, object]:
    sessions = 2 if quick else 3
    results: Dict[str, object] = {"quick": quick, "sessions": sessions}

    # -- worker sweep: 8 processes, 1..4 workers ---------------------------
    worker_rows: List[dict] = []
    for workers in (1, 2, 3, 4):
        service = build_fleet(8, workers, sessions)
        worker_rows.append(_fleet_row(service.run()))
    results["worker_sweep"] = worker_rows

    # -- process sweep: 4 workers, growing fleet ---------------------------
    process_rows: List[dict] = []
    for processes in (2, 4, 8) if not quick else (2, 8):
        service = build_fleet(processes, 4, sessions)
        process_rows.append(_fleet_row(service.run()))
    results["process_sweep"] = process_rows

    # -- policy pressure: small rings force PMIs every few quanta ----------
    pressure_rows: List[dict] = []
    for policy in (RingPolicy.STALL, RingPolicy.LOSSY):
        service = build_fleet(
            4, 2, sessions, policy=policy, ring_bytes=1024,
            max_queue_depth=64,
        )
        result = service.run()
        row = _fleet_row(result)
        row["pmis"] = sum(p["pmi_count"] for p in result.processes)
        row["stalls"] = sum(p["stalls"] for p in result.processes)
        row["lost_bytes"] = sum(
            p["overwritten_bytes"] + p["resync_dropped_bytes"]
            for p in result.processes
        )
        row["resyncs"] = sum(p["resyncs"] for p in result.processes)
        pressure_rows.append(row)
    results["policy_pressure"] = pressure_rows

    # -- overhead vs solo: same servers, one monitor each ------------------
    solo: Dict[str, float] = {}
    for name in FLEET_SERVERS:
        overhead, _, _ = run_server_overhead(name, sessions=sessions)
        solo[name] = overhead
    fleet_service = build_fleet(8, 4, sessions)
    fleet_result = fleet_service.run()
    per_server: Dict[str, dict] = {}
    for row in fleet_result.processes:
        cell = per_server.setdefault(
            row["name"], {"monitor": 0.0, "stall": 0.0, "app": 0.0}
        )
        cell["monitor"] += row["monitor_cycles"]
        cell["stall"] += row["stall_cycles"]
        cell["app"] += row["app_cycles"]
    results["overhead_vs_solo"] = {
        name: {
            "solo": solo[name],
            "fleet": (cell["monitor"] + cell["stall"]) / cell["app"],
        }
        for name, cell in per_server.items()
    }
    return results


def run_scale(max_processes: int = 100) -> Dict[str, object]:
    """The 100× sweep: hundreds of protected processes over shared
    memory, process-pool decode, work stealing, and a sharded index.

    Three gates, all computed here and asserted by the wrapper:

    - **sublinear lag** — across the sweep (workers scaled at one per
      four processes), lag_p99 must grow strictly slower than fleet
      size between consecutive sizes.
    - **thread/process parity** — on an 8-process subset, the process
      pool must be observationally identical to the threaded pool:
      same schedule digest, verdicts, cycle accounting, ledger, *and*
      decoded column digest (the shm path reproduces every column
      byte-for-byte).
    - **zero leaks** — the shm registry must end every process-pool
      run with no live blocks.
    """
    from repro.ipt import shm

    results: Dict[str, object] = {"max_processes": max_processes}

    # -- scale sweep: steal discipline, sharded index, process decode ------
    sizes = [16, 32, 64, 100, 128]
    sizes = [size for size in sizes if size <= max_processes]
    if sizes[-1] != max_processes:
        sizes.append(max_processes)
    scale_rows: List[dict] = []
    leaked: List[str] = []
    for processes in sizes:
        workers = max(4, processes // 4)
        service = build_fleet(
            processes, workers, 1,
            decode_mode="threads", decode_pool="process",
            pool="steal", index_shards=8,
        )
        result = service.run()
        row = _fleet_row(result)
        row["lag_p99_per_process"] = row["lag_p99"] / processes
        row["steals"] = (result.scheduling or {}).get("steals")
        row["shm"] = (result.threaded_decode or {}).get("shm")
        scale_rows.append(row)
        leaked.extend(shm.get_registry().live_blocks())
    results["scale_sweep"] = scale_rows
    results["leaked_blocks"] = leaked
    growth = []
    for prev, cur in zip(scale_rows, scale_rows[1:]):
        size_ratio = cur["processes"] / prev["processes"]
        lag_ratio = (
            cur["lag_p99"] / prev["lag_p99"] if prev["lag_p99"] > 0
            else 0.0
        )
        growth.append({
            "from": prev["processes"],
            "to": cur["processes"],
            "size_ratio": size_ratio,
            "lag_ratio": lag_ratio,
            "sublinear": lag_ratio < size_ratio,
        })
    results["lag_growth"] = growth
    results["lag_sublinear"] = all(g["sublinear"] for g in growth)

    # -- steal pressure: PMI-heavy rings, spread vs steal ------------------
    # Small lossy rings cluster PMI drains, which is what builds the
    # per-worker backlog that work stealing exists for.  (Simulated
    # decode: desynchronised lossy drains are not decodable by the real
    # backends — thread and process pools reject them identically.)
    pressure_procs = min(64, max_processes)
    steal_rows: List[dict] = []
    for discipline in ("spread", "steal"):
        service = build_fleet(
            pressure_procs, 2, 2, ring_bytes=1024,
            pool=discipline, index_shards=8,
        )
        result = service.run()
        row = _fleet_row(result)
        row["discipline"] = discipline
        row.update(result.scheduling or {})
        steal_rows.append(row)
    results["steal_pressure"] = steal_rows
    results["steals_observed"] = any(
        row.get("steals", 0) > 0 for row in steal_rows
    )

    # -- thread/process decode parity on the 8-process subset --------------
    def parity_run(decode_pool: str):
        service = build_fleet(
            8, 2, 2, decode_mode="threads", decode_pool=decode_pool,
        )
        result = service.run()
        return {
            "decode_pool": decode_pool,
            "schedule_digest": result.schedule_digest,
            "detections": result.detections,
            "tasks": result.tasks,
            "makespan": result.makespan,
            "accounting": result.accounting,
            "monitor_cycles": result.monitor_cycles,
            "column_digest": result.threaded_decode["column_digest"],
            "snapshots": result.threaded_decode["snapshots"],
            "segments": result.threaded_decode["segments"],
        }

    threaded = parity_run("thread")
    pooled = parity_run("process")
    results["parity"] = {
        "thread": threaded,
        "process": pooled,
        "identical": all(
            threaded[key] == pooled[key]
            for key in (
                "schedule_digest", "detections", "tasks", "makespan",
                "accounting", "monitor_cycles", "column_digest",
                "snapshots", "segments",
            )
        ),
    }
    leaked_after_parity = shm.get_registry().live_blocks()
    results["leaked_blocks"] = leaked + leaked_after_parity

    # -- sharded index parity: same fleet, flat vs 8 shards ----------------
    flat = build_fleet(8, 2, 2).run()
    sharded = build_fleet(8, 2, 2, index_shards=8).run()
    results["shard_parity"] = {
        "flat_digest": flat.schedule_digest,
        "sharded_digest": sharded.schedule_digest,
        "identical": (
            flat.schedule_digest == sharded.schedule_digest
            and flat.detections == sharded.detections
            and flat.makespan == sharded.makespan
            and flat.accounting == sharded.accounting
        ),
    }
    results["accounting_exact"] = (
        all(row["accounting_exact"] for row in scale_rows)
        and all(row["accounting_exact"] for row in steal_rows)
        and results["parity"]["thread"]["accounting"]["exact"]
    )
    return results


def format_scale_table(results: Dict[str, object]) -> str:
    rows = [
        [
            row["processes"],
            row["workers"],
            row["lag_p99"],
            row["lag_p99_per_process"],
            row["steals"],
            row["throughput_per_mcycle"],
            row["utilization_mean"],
        ]
        for row in results["scale_sweep"]
    ]
    table = format_rows(
        ["procs", "workers", "lag p99", "lag/proc", "steals",
         "thru/Mcyc", "util"],
        rows,
    )
    steal = format_rows(
        ["discipline", "lag p99", "steals", "affinity", "thru/Mcyc"],
        [
            [
                row["discipline"],
                row["lag_p99"],
                row.get("steals", "-"),
                row.get("affinity_hits", "-"),
                row["throughput_per_mcycle"],
            ]
            for row in results["steal_pressure"]
        ],
    )
    parity = results["parity"]["identical"]
    shard = results["shard_parity"]["identical"]
    return (
        "Fleet at 100x: process-pool decode over shared memory\n"
        + table
        + "\n\nSteal pressure (PMI-heavy rings, 2 workers)\n"
        + steal
        + f"\n\nlag p99 sublinear: {results['lag_sublinear']}"
        + f"\nthread/process parity: {parity}"
        + f"\nflat/sharded index parity: {shard}"
        + f"\nleaked shm blocks: {len(results['leaked_blocks'])}"
    )


def format_table(results: Dict[str, object]) -> str:
    sections = []
    headers = ["procs", "workers", "policy", "lag p50", "lag p99",
               "overhead", "util", "thru/Mcyc"]

    def rows_of(sweep):
        return [
            [
                row["processes"],
                row["workers"],
                row["policy"],
                row["lag_p50"],
                row["lag_p99"],
                row["overhead"],
                row["utilization_mean"],
                row["throughput_per_mcycle"],
            ]
            for row in sweep
        ]

    sections.append("Fleet scaling: worker sweep (8 processes)\n"
                    + format_rows(headers, rows_of(results["worker_sweep"])))
    sections.append("Fleet scaling: process sweep (4 workers)\n"
                    + format_rows(headers, rows_of(results["process_sweep"])))
    pressure = results["policy_pressure"]
    sections.append(
        "Ring pressure: stall vs lossy (1 KiB rings)\n"
        + format_rows(
            ["policy", "overhead", "stall cyc", "PMIs", "lost B",
             "resyncs", "dropped"],
            [
                [
                    row["policy"],
                    row["overhead"],
                    row["stall_cycles"],
                    row["pmis"],
                    row["lost_bytes"],
                    row["resyncs"],
                    row["dropped_checks"],
                ]
                for row in pressure
            ],
        )
    )
    solo = results["overhead_vs_solo"]
    sections.append(
        "Overhead: fleet (8p/4w) vs solo\n"
        + format_rows(
            ["server", "solo", "fleet"],
            [[name, cell["solo"], cell["fleet"]]
             for name, cell in sorted(solo.items())],
        )
    )
    return "\n\n".join(sections)
