"""Load-generation acceptance: knee shape, SLO search, security under load.

The harness's contract has four legs, all gated by
``experiments/loadgen.py`` (→ ``BENCH_loadgen.json``):

- **throughput shape** — the closed-loop connection sweep must grow
  monotonically (within tolerance) up to its saturation knee: more
  concurrency overlaps ring-stall and checker idle time until the one
  simulated CPU saturates.
- **search** — the max-throughput-under-SLO bisection must converge
  within its ⌈log2(range)⌉+1 probe budget, and two independently
  seeded searches over the same scenario must agree on the best
  connection count (the knee is a property of the system, not of one
  request sample).
- **security under load** — at the saturation point with planted ROP
  exploits, every attacked process must be quarantined with zero
  false quarantines, and two identical runs must produce bit-identical
  outcome digests (schedule + every verdict + the full request
  timeline).  A scenario-exact warm-up run settles the shared
  pipelines' promote state first — the first slow-path excursion
  around an attack feeds verified ITC pairs back into the cached
  pipeline, so run 0 legitimately differs from every run after it.
- **exactness** — a faulted, lossy-ring load point run with telemetry
  enabled must still reconcile both the fleet cycle ledger and the
  degradation ledger exactly, as must every point of the clean sweep.

The written JSON is the ``kind: "loadgen-bench"`` payload ``repro
report`` renders, extended with the extra scenarios and the gates.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, List

from repro import telemetry
from repro.experiments.common import format_rows
from repro.loadgen import builtin_scenario, run_bench, slo_search
from repro.loadgen.engine import run_load_point, warm_pipelines
from repro.loadgen.search import probe_budget


def run(quick: bool = False) -> Dict[str, object]:
    base = builtin_scenario("nginx-closed")
    if quick:
        base = replace(base, sessions=2, connections_upper_bound=4)

    # -- sweep + knee + SLO search (the `repro bench` payload) ------------
    results: Dict[str, object] = dict(run_bench(base))
    results["quick"] = quick
    search = results["search"]

    # -- search stability: an independently seeded second search ----------
    reseeded = base.with_seed(1)
    warm_pipelines(reseeded)
    search_seed1 = slo_search(reseeded)
    results["search_seed1"] = search_seed1.to_dict()

    # -- saturation + attack: detection and bit-identity under load -------
    attack = replace(
        base,
        name=f"{base.name}+rop",
        attack_kind="rop",
        attack_count=1 if quick else 2,
    )
    saturation_c = attack.connections_upper_bound
    warm_pipelines(attack)
    run_a = run_load_point(attack, saturation_c)
    run_b = run_load_point(attack, saturation_c)
    results["saturation"] = {
        "connections": saturation_c,
        "attacks": attack.attack_count,
        "run_a": run_a.to_dict(),
        "run_b": run_b.to_dict(),
    }

    # -- faulted lossy-ring point, telemetry on: ledgers stay exact -------
    faulted = builtin_scenario("faulted-closed")
    faulted_c = 2 if quick else faulted.connections_upper_bound
    tel = telemetry.get_telemetry()
    tel.enable()
    try:
        faulted_point = run_load_point(faulted, faulted_c)
    finally:
        tel.disable()
    results["faulted"] = {
        "connections": faulted_c,
        "point": faulted_point.to_dict(),
    }

    # -- acceptance gates -------------------------------------------------
    budget = probe_budget(
        base.connections_lower_bound, base.connections_upper_bound
    )
    results["gates"] = {
        "throughput_monotone_to_knee": bool(results["monotone_to_knee"]),
        "search_converged": (
            bool(search["converged"])
            and search["probes"] <= budget
            and search_seed1.converged
        ),
        "search_stable_across_seeds": (
            search["best_connections"] == search_seed1.best_connections
        ),
        "detection_under_load": all(
            r.detection_rate == 1.0 and r.false_quarantines == 0
            for r in (run_a, run_b)
        ),
        "verdicts_bit_identical_under_load": run_a.digest == run_b.digest,
        "ledger_exact_under_faults": (
            faulted_point.accounting_exact and faulted_point.ledger_exact
        ),
        "sweep_points_exact": all(
            p["accounting_exact"] and p["ledger_exact"]
            for p in results["sweep"]
        ),
    }
    return results


def gates_passed(results: Dict[str, object]) -> List[str]:
    """Names of the gates that failed (empty = all green)."""
    return [
        name for name, ok in results["gates"].items()
        if isinstance(ok, bool) and not ok
    ]


def format_table(results: Dict[str, object]) -> str:
    sections = []
    scenario = results["scenario"]
    sections.append(
        f"Load generation — {scenario['name']} ({scenario['mode']} loop, "
        f"SLO p{scenario['slo_percentile']:.0f} <= "
        f"{scenario['slo_latency']:,.0f} cycles)\n"
        + format_rows(
            ["conns", "offered", "done", "req/Mcyc", "p50", "p99",
             "overhead", "exact"],
            [[p["connections"], f"{p['offered_load']:.1f}",
              p["completed"], f"{p['throughput']:.1f}",
              f"{p['latency'].get('p50', 0.0):.0f}",
              f"{p['latency'].get('p99', 0.0):.0f}",
              f"{p['overhead'] * 100:.1f}%",
              "yes" if p["accounting_exact"] and p["ledger_exact"]
              else "NO"]
             for p in results["sweep"]],
        )
    )
    knee = results["knee"]
    search = results["search"]
    seed1 = results["search_seed1"]
    sections.append(
        f"knee: {knee['connections']} connections at "
        f"{knee['throughput']:.1f} req/Mcycle\n"
        f"search (seed {scenario['seed']}): best "
        f"{search['best_connections']} connections in "
        f"{search['probes']} probes; reseeded search (seed 1): best "
        f"{seed1['best_connections']} in {seed1['probes']} probes"
    )
    sat = results["saturation"]
    sections.append(
        f"saturation (+{sat['attacks']} rop @ {sat['connections']} "
        f"conns): detection {sat['run_a']['detection_rate']:.0%}, "
        f"{sat['run_a']['false_quarantines']} false quarantines, "
        f"digests {sat['run_a']['digest'][:12]} / "
        f"{sat['run_b']['digest'][:12]}\n"
        f"faulted ({results['faulted']['connections']} conns, lossy): "
        f"throughput {results['faulted']['point']['throughput']:.1f} "
        f"req/Mcycle, ledger "
        f"{'exact' if results['faulted']['point']['ledger_exact'] else 'DRIFT'}"
    )
    sections.append(
        "Gates: " + ", ".join(
            f"{name}={'ok' if ok else 'FAIL'}"
            for name, ok in results["gates"].items()
        )
    )
    return "\n\n".join(sections)
