"""Figure 5d — fuzzing-training benefit over time.

The paper's protocol on nginx: as fuzzing discovers more inputs, feed
each growing corpus prefix into the training phase, then measure the
ratio of high-credit edges hit while serving the ab-like benchmark
workload.  Shape: the discovered-path count grows with fuzzing effort
and the runtime high-credit hit ratio climbs above ~97%.

Here the x-axis is fuzzing executions rather than hours — the simulated
fuzzer gets through a campaign in seconds.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from repro.experiments.common import libraries, seed_server_fs
from repro.fuzz import Fuzzer, TargetRunner
from repro.fuzz.training import train_credits
from repro.itccfg.credits import CreditLabeledITC
from repro.monitor.flowguard import FlowGuardMonitor
from repro.osmodel.kernel import Kernel
from repro.pipeline import FlowGuardPipeline
from repro.workloads import build_nginx, build_vdso, nginx_request


@dataclass
class TrainingPoint:
    executions: int
    paths: int  # queue size: inputs that found new transitions
    cred_ratio: float  # high-credit edge hits while serving ab traffic


@dataclass
class Fig5dResult:
    points: List[TrainingPoint]

    @property
    def final_cred_ratio(self) -> float:
        return self.points[-1].cred_ratio if self.points else 0.0


# The junk seed comes first so that early corpus prefixes do not yet
# cover the GET-success flow the benchmark exercises — the measured
# curve then shows the paper's growth toward ~100%.
SEEDS = [
    b"ZZZZ zz\n",
    nginx_request("/missing.bin"),
    nginx_request("/p", "POST", b"data"),
    nginx_request("/index.html"),
]


def _runtime_cred_ratio(
    pipeline: FlowGuardPipeline, labeled: CreditLabeledITC,
    sessions: int = 6,
) -> float:
    """Serve ab-like traffic; fraction of checked edges on high credit."""
    from repro.itccfg.searchindex import FlowSearchIndex
    from repro.monitor.policy import FlowGuardPolicy

    kernel = Kernel()
    seed_server_fs(kernel)
    # Disable negative caching so the measurement reflects the training
    # corpus alone, not runtime promotion.
    policy = FlowGuardPolicy(cache_slow_path_negatives=False)
    monitor = FlowGuardMonitor(kernel, policy=policy)
    monitor.install()
    kernel.register_program(
        pipeline.program, pipeline.exe, pipeline.libraries,
        vdso=pipeline.vdso,
    )
    proc = kernel.spawn(pipeline.program)
    pp = monitor.protect(proc, labeled, pipeline.ocfg)
    for _ in range(sessions):
        proc.push_connection(nginx_request("/index.html"))
    kernel.run(proc)
    stats = monitor.stats_for(proc)
    return stats.high_credit_edge_ratio


def run(
    fuzz_budget: int = 400,
    prefix_counts: Sequence[int] = (1, 2, 4, 0),
    sessions: int = 6,
) -> Fig5dResult:
    """One fuzz campaign; train on growing corpus prefixes.

    The queue is ordered by discovery time, so training on its prefixes
    replays the paper's time axis: each point uses the inputs known
    after that much fuzzing.  A prefix count of 0 means the full queue.
    """
    exe = build_nginx()
    libs = libraries()
    vdso = build_vdso()
    pipeline = FlowGuardPipeline.offline(
        "nginx", exe, libs, vdso=vdso, corpus=(), mode="socket"
    )
    runner = TargetRunner(
        "nginx", exe, libs, vdso=vdso, mode="socket",
        max_steps=200_000, kernel_setup=lambda k: seed_server_fs(k),
    )
    fuzzer = Fuzzer(runner, SEEDS)
    queue = fuzzer.run(max_executions=fuzz_budget, havoc_rounds=8)
    corpus = queue.corpus()

    points: List[TrainingPoint] = []
    for count in prefix_counts:
        prefix = corpus if count == 0 else corpus[:count]
        labeled = CreditLabeledITC(itc=pipeline.itc)
        train_credits(
            labeled, "nginx", exe, prefix,
            libraries=libs, vdso=vdso, mode="socket",
            kernel_setup=lambda k: seed_server_fs(k),
        )
        ratio = _runtime_cred_ratio(pipeline, labeled, sessions)
        points.append(
            TrainingPoint(
                executions=len(prefix),
                paths=len(prefix),
                cred_ratio=ratio,
            )
        )
    return Fig5dResult(points=points)


def format_table(result: Fig5dResult) -> str:
    from repro.experiments.common import format_rows

    header = ["corpus inputs", "paths covered", "high-credit hit ratio"]
    rows = [
        [p.executions, p.paths, f"{p.cred_ratio * 100:.1f}%"]
        for p in result.points
    ]
    return "Figure 5d — fuzzing training benefit\n" + format_rows(
        header, rows
    )
