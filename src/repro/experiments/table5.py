"""Table 5 — memory usage and CFG generation time.

Memory: the resident size of the trained ITC-CFG plus the runtime
search index, and the per-core ToPA buffers (16 KiB per core in the
paper's configuration).  Time: wall-clock for the full offline phase
(disassembly, O-CFG, ITC reconstruction), split so the paper's
observation that >90% of the time goes to the shared libraries can be
verified — the motivation for caching per-library CFGs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from repro.telemetry import get_telemetry
from repro.analysis.build import build_ocfg
from repro.binary.loader import Loader
from repro.experiments.common import (
    SERVER_NAMES,
    format_rows,
    libraries,
    server_pipeline,
)
from repro.itccfg.construct import build_itccfg
from repro.itccfg.searchindex import FlowSearchIndex
from repro.itccfg.serialize import itccfg_memory_bytes
from repro.workloads import SERVER_BUILDERS, build_vdso


@dataclass
class Table5Row:
    application: str
    memory_kib: float
    generation_seconds: float
    library_fraction: float  # share of blocks contributed by libraries


@dataclass
class Table5Result:
    rows: List[Table5Row]
    topa_kib_per_core: float = 16.0


def run(servers: Sequence[str] = SERVER_NAMES) -> Table5Result:
    tracer = get_telemetry().tracer
    rows: List[Table5Row] = []
    for name in servers:
        # Wall-clock flows through the telemetry span — the same code
        # path that feeds trace exports when telemetry is enabled.
        with tracer.span("table5.offline_build", app=name) as span:
            image = Loader(libraries(), vdso=build_vdso()).load(
                SERVER_BUILDERS[name]()
            )
            ocfg = build_ocfg(image)
            itc = build_itccfg(ocfg)
        elapsed = span.duration_s

        pipeline = server_pipeline(name)  # trained labels for memory
        index = FlowSearchIndex(pipeline.labeled)
        memory = itccfg_memory_bytes(pipeline.labeled) + index.memory_bytes()
        stats = ocfg.stats()
        lib_fraction = (
            stats["lib_blocks"] / stats["blocks"] if stats["blocks"] else 0.0
        )
        rows.append(
            Table5Row(
                application=name,
                memory_kib=memory / 1024.0,
                generation_seconds=elapsed,
                library_fraction=lib_fraction,
            )
        )
    return Table5Result(rows=rows)


def format_table(result: Table5Result) -> str:
    header = ["App", "ITC-CFG memory (KiB)", "CFG generation (s)",
              "library share"]
    rows = [
        [
            r.application,
            f"{r.memory_kib:.1f}",
            f"{r.generation_seconds:.2f}",
            f"{r.library_fraction * 100:.0f}%",
        ]
        for r in result.rows
    ]
    return (
        "Table 5 — memory usage and CFG generation time "
        f"(+{result.topa_kib_per_core:.0f} KiB ToPA per core)\n"
        + format_rows(header, rows)
    )
