"""Resilience under fault injection: detection, degradation, recovery.

Four deterministic scenarios over the :mod:`repro.resilience` plane,
all asserted by ``experiments/resilience.py`` (→ ``BENCH_resilience.json``)
and ``tests/test_resilience.py``:

- **baseline** — the fault-free fleet the faulted runs are judged
  against (same workload, same shape, no plan armed).
- **faulted** — the same fleet under the standard fault mix (corrupt /
  truncated drains, dropped and delayed PMIs, crashing and hanging
  checker workers, fast-path decode errors).  Gates: no clean process
  is ever quarantined (graceful degradation, not false positives), the
  fleet finishes (degrades, never wedges), p99 verdict lag stays within
  ``LAG_BOUND``× the fault-free baseline, and every ledger — fleet
  cycle accounting, degradation ledger vs telemetry counters, profiler
  — reconciles exactly.
- **dead letter** — a scheduled fault kills every retry of one check;
  the task must be dead-lettered (never silently dropped) and the
  policy's fail-closed quarantine must isolate the unverifiable
  process while the rest of the fleet completes.
- **detection** — the fleet runs with an injected ROP exploit *and*
  the fault mix armed, across several fault seeds.  Gate: 100% of the
  attacked processes are quarantined (faults never mask an attack —
  the corrupt-segment re-sync never stitches a window across a gap,
  and drain re-reads recover the true bytes), with zero false
  positives on the clean processes.

A solo-monitor scenario rides along: one protected server under the
same mix, whose degradation ledger must reconcile and whose monitor
must report no detections.
"""

from __future__ import annotations

from typing import Dict, List

from repro import telemetry
from repro.attacks import build_rop_request, run_recon
from repro.experiments.common import (
    format_rows,
    libraries,
    run_server,
    server_pipeline,
    server_requests,
)
from repro.experiments.fleet_scaling import build_fleet
from repro.fleet.rings import RingPolicy
from repro.resilience import FaultPlan, FaultSite, RetryPolicy
from repro.workloads import build_nginx, build_vdso

#: p99 verdict lag under faults may grow at most this much over the
#: fault-free baseline (the graceful-degradation latency gate).
LAG_BOUND = 3.0

#: fleet shape shared by every scenario (lossy rings: the fault mix
#: includes dropped PMIs, which only degrade meaningfully when the
#: ring is allowed to wrap).
PROCESSES = 4
WORKERS = 2
RING_BYTES = 8192

#: retry policy for the probabilistic scenarios: enough attempts that
#: the standard mix never exhausts them (dead-lettering is exercised
#: by its own scheduled scenario, not left to chance).  The watchdog
#: is a small multiple of a typical check cost, and hung attempts are
#: hedged after ``hedge_delay`` cycles rather than waited out — the
#: two knobs that keep the p99 verdict-lag gate bounded.
RETRY = RetryPolicy(
    max_attempts=4,
    task_timeout=2_000.0,
    backoff_base=50.0,
    backoff_cap=400.0,
    hedge_delay=250.0,
)


def _run_reconciled(service) -> tuple:
    """Run a fleet under telemetry; returns (result, profiler_report)."""
    result = service.run()
    profiler = service.reconcile()
    return result, profiler


def _fleet(sessions: int, faults=None, retry=None,
           seed: int = 0, processes: int = PROCESSES):
    return build_fleet(
        processes, WORKERS, sessions,
        policy=RingPolicy.LOSSY, ring_bytes=RING_BYTES,
        seed=seed, faults=faults, retry=retry,
    )


def _row(result, profiler) -> dict:
    resilience = result.resilience or {}
    ledger = resilience.get("ledger_reconcile") or {}
    return {
        "processes": len(result.processes),
        "workers": result.config.workers,
        "tasks": result.tasks,
        "quarantined": len(result.quarantines),
        "dead_letters": len(result.dead_letters or []),
        "finished": all(
            p["state"] in ("exited", "killed") for p in result.processes
        ),
        "rounds": result.rounds,
        "makespan": result.makespan,
        "lag_p50": result.lag["p50"],
        "lag_p99": result.lag["p99"],
        "overhead": result.overhead,
        "accounting_exact": result.accounting["exact"],
        "ledger_exact": ledger.get("exact", True),
        "profiler_exact": profiler["exact"] if profiler else True,
        "degradations": (resilience.get("degradations") or {}).get(
            "counts", {}
        ),
        "faults_fired": (resilience.get("faults") or {}).get("fired", {}),
    }


def _attack_fleet(sessions: int, faults, retry, seed: int):
    """The detection scenario: one nginx instance gets a mid-stream
    ROP exploit; everyone else serves clean sessions."""
    # processes=0: build_fleet seeds the filesystem but leaves the
    # fleet empty — we add the workloads ourselves to plant the rop
    # payload mid-stream in the first instance.
    service = _fleet(sessions, faults=faults, retry=retry,
                     seed=seed, processes=0)
    recon = run_recon(build_nginx(), libraries(), vdso=build_vdso())
    rop = build_rop_request(recon)
    attacked_pid = None
    for index in range(PROCESSES):
        name = ("nginx", "exim")[index % 2]
        requests = list(server_requests(name, sessions))
        if index == 0:
            requests.insert(len(requests) // 2, rop)
        proc = service.add_workload(server_pipeline(name), requests)
        if index == 0:
            attacked_pid = proc.pid
    return service, attacked_pid


def run(quick: bool = False) -> Dict[str, object]:
    sessions = 2 if quick else 3
    seeds = (42, 1337) if quick else (42, 1337, 2024)
    results: Dict[str, object] = {"quick": quick, "sessions": sessions}
    tel = telemetry.get_telemetry()
    enabled_here = not tel.enabled
    if enabled_here:
        tel.enable()
    try:
        # -- baseline: same fleet, no faults ------------------------------
        tel.reset()
        service = _fleet(sessions)
        base_result, base_prof = _run_reconciled(service)
        results["baseline"] = _row(base_result, base_prof)

        # -- faulted: standard mix over the identical workload ------------
        tel.reset()
        service = _fleet(
            sessions, faults=FaultPlan.standard_mix(seed=42), retry=RETRY,
        )
        faulted_result, faulted_prof = _run_reconciled(service)
        faulted = _row(faulted_result, faulted_prof)
        base_p99 = max(results["baseline"]["lag_p99"], 1.0)
        faulted["lag_p99_ratio"] = faulted["lag_p99"] / base_p99
        results["faulted"] = faulted

        # -- dead letter: one check's every retry is killed ---------------
        tel.reset()
        plan = FaultPlan(
            seed=7,
            worker_crash=FaultSite(
                at=tuple(range(RETRY.max_attempts))
            ),
        )
        service = _fleet(sessions, faults=plan, retry=RETRY)
        dl_result, dl_prof = _run_reconciled(service)
        dl = _row(dl_result, dl_prof)
        dl["quarantine_reasons"] = [
            e.reason for e in dl_result.quarantines
        ]
        results["dead_letter"] = dl

        # -- detection: injected ROP under faults, several seeds ----------
        detection_rows: List[dict] = []
        for seed in seeds:
            tel.reset()
            service, attacked_pid = _attack_fleet(
                sessions, FaultPlan.standard_mix(seed=seed), RETRY, seed,
            )
            result, profiler = _run_reconciled(service)
            row = _row(result, profiler)
            row["seed"] = seed
            row["attacked_pid"] = attacked_pid
            row["detected"] = attacked_pid in result.quarantined_pids
            row["false_positives"] = sum(
                1 for e in result.quarantines if e.pid != attacked_pid
            )
            detection_rows.append(row)
        results["detection"] = detection_rows

        # -- solo monitor under the same mix ------------------------------
        tel.reset()
        solo = run_server(
            "exim", server_requests("exim", sessions), protected=True,
            faults=FaultPlan.standard_mix(seed=42),
        )
        assert solo.monitor is not None
        ledger = solo.monitor.degradations
        results["solo"] = {
            "server": "exim",
            "detections": len(solo.monitor.detections),
            "degradations": ledger.counts(),
            "faults_fired": (
                solo.monitor.fault_injector.stats()["fired"]
                if solo.monitor.fault_injector is not None else {}
            ),
            "ledger_exact": ledger.reconcile()["exact"],
            "overhead": solo.overhead,
        }
    finally:
        if enabled_here:
            tel.disable()

    # -- acceptance gates -------------------------------------------------
    detection = results["detection"]
    dl = results["dead_letter"]
    faulted = results["faulted"]
    results["gates"] = {
        "detection_rate": (
            sum(1 for r in detection if r["detected"]) / len(detection)
        ),
        "false_positives": (
            sum(r["false_positives"] for r in detection)
            + faulted["quarantined"]
            + results["solo"]["detections"]
        ),
        "dead_letters_quarantined": (
            dl["dead_letters"] > 0
            and dl["quarantined"] == dl["dead_letters"]
            and all(
                "dead-letter" in (r or "")
                for r in dl["quarantine_reasons"]
            )
        ),
        "never_wedged": all(
            results[k]["finished"]
            for k in ("baseline", "faulted", "dead_letter")
        ) and all(r["finished"] for r in detection),
        "lag_p99_ratio": faulted["lag_p99_ratio"],
        "lag_bound": LAG_BOUND,
        "lag_within_bound": faulted["lag_p99_ratio"] <= LAG_BOUND,
        "ledgers_exact": all(
            row["accounting_exact"] and row["ledger_exact"]
            and row["profiler_exact"]
            for row in (
                [results["baseline"], faulted, dl] + detection
            )
        ) and results["solo"]["ledger_exact"],
    }
    return results


def format_table(results: Dict[str, object]) -> str:
    sections = []
    headers = ["scenario", "tasks", "quar", "dead", "lag p99",
               "overhead", "ledgers"]
    rows = []
    for key in ("baseline", "faulted", "dead_letter"):
        row = results[key]
        rows.append([
            key,
            row["tasks"],
            row["quarantined"],
            row["dead_letters"],
            row["lag_p99"],
            row["overhead"],
            "exact" if (
                row["accounting_exact"] and row["ledger_exact"]
                and row["profiler_exact"]
            ) else "DRIFT",
        ])
    for row in results["detection"]:
        rows.append([
            f"attack(seed={row['seed']})",
            row["tasks"],
            row["quarantined"],
            row["dead_letters"],
            row["lag_p99"],
            row["overhead"],
            "exact" if (
                row["accounting_exact"] and row["ledger_exact"]
                and row["profiler_exact"]
            ) else "DRIFT",
        ])
    sections.append(
        "Resilience under fault injection "
        f"({PROCESSES} processes / {WORKERS} workers, lossy rings)\n"
        + format_rows(headers, rows)
    )
    faulted = results["faulted"]
    degr = ", ".join(
        f"{k}={v}" for k, v in sorted(faulted["degradations"].items())
    )
    sections.append(f"Faulted-run degradations: {degr or 'none'}")
    gates = results["gates"]
    sections.append(
        "Gates: "
        f"detection {gates['detection_rate']:.0%}, "
        f"false positives {gates['false_positives']}, "
        f"dead letters quarantined "
        f"{'yes' if gates['dead_letters_quarantined'] else 'NO'}, "
        f"p99 ratio {gates['lag_p99_ratio']:.2f} "
        f"(bound {gates['lag_bound']:.1f}), "
        f"ledgers {'exact' if gates['ledgers_exact'] else 'DRIFT'}, "
        f"wedged {'never' if gates['never_wedged'] else 'YES'}"
    )
    return "\n\n".join(sections)
