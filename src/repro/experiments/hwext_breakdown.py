"""§7.2.4 — benefits from the suggested hardware extensions.

Re-measures the Figure 5a server breakdown and projects the totals with
the §6 extensions: the dedicated packet decoder removes most of the
decode slice ("decoding contributes more than 30% of the overhead for
server applications"), the multi-CR3 filter trims tracing for
multi-process setups, and in-hardware simple CFI offloads part of the
checking.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from repro.experiments.common import (
    SERVER_NAMES,
    format_rows,
    geomean,
    run_server_overhead,
)
from repro.hwext.model import HardwareExtensionModel


@dataclass
class HwExtRow:
    server: str
    software_overhead: float
    decode_share: float
    hw_decoder_overhead: float
    all_ext_overhead: float


@dataclass
class HwExtResult:
    rows: List[HwExtRow]

    @property
    def geomean_software(self) -> float:
        return geomean([r.software_overhead for r in self.rows])

    @property
    def geomean_hw_decoder(self) -> float:
        return geomean([r.hw_decoder_overhead for r in self.rows])


def run(servers: Sequence[str] = SERVER_NAMES, sessions: int = 10
        ) -> HwExtResult:
    decoder_only = HardwareExtensionModel(hw_decoder=True)
    all_ext = HardwareExtensionModel(
        hw_decoder=True, multi_cr3=True, hw_cfi_logic=True
    )
    rows: List[HwExtRow] = []
    for name in servers:
        overhead, stats, app_cycles = run_server_overhead(name, sessions)
        decode_share = (
            stats.decode_cycles / stats.total_cycles
            if stats.total_cycles
            else 0.0
        )
        rows.append(
            HwExtRow(
                server=name,
                software_overhead=overhead,
                decode_share=decode_share,
                hw_decoder_overhead=(
                    decoder_only.apply(stats).total_cycles / app_cycles
                ),
                all_ext_overhead=(
                    all_ext.apply(stats).total_cycles / app_cycles
                ),
            )
        )
    return HwExtResult(rows=rows)


def format_table(result: HwExtResult) -> str:
    header = ["Server", "software", "decode share", "+hw decoder",
              "+all extensions"]
    rows = [
        [
            r.server,
            f"{r.software_overhead * 100:.2f}%",
            f"{r.decode_share * 100:.0f}%",
            f"{r.hw_decoder_overhead * 100:.2f}%",
            f"{r.all_ext_overhead * 100:.2f}%",
        ]
        for r in result.rows
    ]
    rows.append(
        ["geomean", f"{result.geomean_software * 100:.2f}%", "",
         f"{result.geomean_hw_decoder * 100:.2f}%", ""]
    )
    return "§7.2.4 — hardware-extension projections\n" + format_rows(
        header, rows
    )
