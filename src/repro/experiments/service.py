"""Multi-tenant serving acceptance: isolation, reload, drain, quotas.

The serving front-end's contract has five legs, all gated by
``experiments/service.py`` (→ ``BENCH_service.json``):

- **tenant isolation** — a clean tenant served next to a noisy
  neighbor (the lossy ``faulted-closed`` scenario under a 0.5 quota)
  must produce a verdict digest *bit-identical* to its solo run, with
  identical latency percentiles, and none of the neighbor's
  degradation kinds in its ledger.  Isolation is structural (each
  tenant is a whole fleet stack), so the gate is equality, not a
  tolerance band.
- **hot reload** — a tenant that swaps a freshly built O-CFG/ITC-CFG
  pipeline version in mid-run must drop zero in-flight checks (every
  submitted check keeps its verdict), drain and retire the displaced
  version, and repeat bit-identically.
- **graceful drain** — a drain requested mid-run stops new rounds but
  applies every already-submitted check; streams end with a
  ``drained`` marker and the books still reconcile.
- **exact books under observability** — the full duo run with the
  plane attached must reconcile every tenant's cycle ledger and
  degradation ledger exactly, and the plane's own audit (profiler
  phases, check counts, per-kind flight/counter/ledger tallies summed
  across tenants) must come back exact.
- **admission control** — a capped tenant sheds exactly the sessions
  over its budget (one ``shed-load`` ledger event each), throttles
  show up only in the throttled tenant's books, and the loadgen knee
  recorded in ``BENCH_loadgen.json`` stays at or above the trajectory
  floor (serving must not have taxed the single-tenant path).
"""

from __future__ import annotations

import asyncio
import json
import os
from typing import Dict, List, Optional

from repro import telemetry
from repro.experiments.common import format_rows
from repro.experiments.trajectory import KNEE_FLOOR
from repro.loadgen import builtin_scenario
from repro.loadgen.engine import warm_pipelines
from repro.service import (
    ServeConfig,
    TenantSpec,
    TraceCheckService,
    builtin_serve_config,
    run_service,
)

#: fault kinds the noisy tenant's lossy scenario can emit — none of
#: which may ever appear in the clean tenant's ledger.
_FAULT_KINDS = (
    "corrupt-drain", "truncate-drain", "worker-crash", "worker-hang",
    "retry", "task-timeout", "hedge", "dead-letter",
)


def _drain_run(config: ServeConfig, after_yields: int):
    """Serve ``config`` with a drain requested after a few loop turns."""
    service = TraceCheckService(config)

    async def drive():
        async def trigger():
            for _ in range(after_yields):
                await asyncio.sleep(0)
            service.request_drain()
        result, _ = await asyncio.gather(
            service.serve(), trigger()
        )
        return result

    return service, asyncio.run(drive())


def run(
    quick: bool = False,
    loadgen_path: str = "BENCH_loadgen.json",
) -> Dict[str, object]:
    results: Dict[str, object] = {"kind": "service-bench", "quick": quick}

    # The shared pipeline cache promotes verified ITC pairs on first
    # use; settle it per scenario so measured runs differ only by what
    # is being measured (same warm-up the loadgen bench uses).
    warm_pipelines(builtin_scenario("smoke"))
    warm_pipelines(builtin_scenario("faulted-closed"))

    # -- isolation: clean tenant solo vs next to a noisy neighbor ---------
    duo_config = builtin_serve_config("duo-isolation")
    clean_spec = duo_config.tenants[0]
    solo = run_service(
        ServeConfig(name="solo-clean", tenants=(clean_spec,))
    )
    duo = run_service(duo_config)
    solo_clean = solo.tenants["clean"]
    duo_clean = duo.tenants["clean"]
    duo_noisy = duo.tenants["noisy"]
    results["isolation"] = {
        "solo_clean": solo_clean,
        "duo_clean": duo_clean,
        "duo_noisy": duo_noisy,
    }

    # -- hot reload: swap mid-run, drop nothing, repeat bit-identically ---
    reload_config = builtin_serve_config("reload")
    baseline_spec = TenantSpec(
        name=reload_config.tenants[0].name,
        scenario=reload_config.tenants[0].scenario,
        connections=reload_config.tenants[0].connections,
    )
    no_reload = run_service(
        ServeConfig(name="no-reload", tenants=(baseline_spec,))
    )
    reload_a = run_service(reload_config)
    reload_b = run_service(reload_config)
    results["reload"] = {
        "baseline": no_reload.tenants["rolling"],
        "run_a": reload_a.tenants["rolling"],
        "run_b": reload_b.tenants["rolling"],
    }

    # -- graceful drain ---------------------------------------------------
    drain_service, drain_result = _drain_run(
        builtin_serve_config("smoke"), after_yields=2
    )
    drain_report = drain_result.tenants["acme"]
    drain_markers = [
        events[-1]["type"] for events in drain_result.events.values()
    ]
    drain_verdicts = [
        sum(1 for e in events if e["type"] == "verdict")
        for events in drain_result.events.values()
    ]
    results["drain"] = {
        "drained": drain_result.drained,
        "markers": drain_markers,
        "verdict_events": drain_verdicts,
        "tenant": drain_report,
    }

    # -- exact books with the observability plane attached ----------------
    tel = telemetry.get_telemetry()
    tel.reset()
    from repro.telemetry.plane import ObservabilityPlane

    plane = ObservabilityPlane(interval=2000.0)
    tel.attach_plane(plane)
    try:
        observed_service = TraceCheckService(duo_config, plane=plane)
        observed = asyncio.run(observed_service.serve())
        plane_audit = plane.reconcile(
            [stats
             for rt in observed_service.runtimes
             for stats in rt.fleet.monitor.all_stats()],
            [rt.fleet.monitor.degradations
             for rt in observed_service.runtimes],
        )
    finally:
        tel.detach_plane()
        tel.disable()
    results["observed"] = {
        "tenants": observed.to_dict()["tenants"],
        "plane_audit": plane_audit,
    }

    # -- admission control: shed + throttle accounting --------------------
    shed_config = builtin_serve_config("quota-shed")
    shed = run_service(shed_config)
    capped_spec = shed_config.tenants[1]
    # smoke drives sessions-per-connection sessions on each connection;
    # everything over the cap must be shed, exactly once each.
    offered_uncapped = (
        builtin_scenario(capped_spec.scenario).sessions
        * capped_spec.connections
    )
    results["quota"] = {
        "uncapped": shed.tenants["uncapped"],
        "capped": shed.tenants["capped"],
        "expected_shed": offered_uncapped - capped_spec.max_sessions,
    }

    # -- loadgen knee non-regression --------------------------------------
    knee: Optional[float] = None
    if os.path.exists(loadgen_path):
        with open(loadgen_path, "r", encoding="utf-8") as fh:
            knee = float(json.load(fh)["knee"]["throughput"])
    results["loadgen_knee"] = {
        "path": loadgen_path,
        "throughput": knee,
        "floor": KNEE_FLOOR,
    }

    # -- acceptance gates -------------------------------------------------
    capped = shed.tenants["capped"]
    uncapped = shed.tenants["uncapped"]
    observed_tenants = results["observed"]["tenants"]
    results["gates"] = {
        "isolation_digest_bit_identical": (
            solo_clean["digest"] == duo_clean["digest"]
        ),
        "isolation_latency_unperturbed": (
            solo_clean["latency"] == duo_clean["latency"]
        ),
        "fault_domains_isolated": (
            not any(k in duo_clean["degradations"] for k in _FAULT_KINDS)
            and any(k in duo_noisy["degradations"] for k in _FAULT_KINDS)
            and duo_noisy["quota"]["throttles"] > 0
            and duo_clean["quota"]["throttles"] == 0
        ),
        "reload_zero_dropped": (
            reload_a.tenants["rolling"]["reloads"]["count"] >= 1
            and reload_a.tenants["rolling"]["dropped_checks"] == 0
            and reload_a.tenants["rolling"]["checks"]
            == no_reload.tenants["rolling"]["checks"]
            and reload_a.tenants["rolling"]["completed"]
            == reload_a.tenants["rolling"]["offered"]
        ),
        "reload_old_version_retired": (
            reload_a.tenants["rolling"]["reloads"]["undrained"] == 0
        ),
        "reload_deterministic": (
            reload_a.tenants["rolling"]["digest"]
            == reload_b.tenants["rolling"]["digest"]
        ),
        "drain_graceful": (
            drain_result.drained
            and all(marker == "drained" for marker in drain_markers)
            and drain_verdicts[0] == drain_report["checks"]
            and drain_report["dropped_checks"] == 0
            and drain_report["accounting_exact"]
            and drain_report["ledger_exact"]
        ),
        "ledgers_exact_under_plane": all(
            t["accounting_exact"] and t["ledger_exact"]
            for t in observed_tenants.values()
        ),
        "plane_reconciles": bool(plane_audit["exact"]),
        "shed_accounted_exactly": (
            capped["shed"] == results["quota"]["expected_shed"]
            and capped["offered"] == capped_spec.max_sessions
            and capped["completed"] == capped_spec.max_sessions
            and uncapped["shed"] == 0
            and capped["quota"]["throttles"] > 0
            and uncapped["quota"]["throttles"] == 0
        ),
        "loadgen_knee_not_regressed": (
            knee is None or knee >= KNEE_FLOOR
        ),
    }
    return results


def gates_passed(results: Dict[str, object]) -> List[str]:
    """Names of the gates that failed (empty = all green)."""
    return [
        name for name, ok in results["gates"].items()
        if isinstance(ok, bool) and not ok
    ]


def format_table(results: Dict[str, object]) -> str:
    sections = []

    def tenant_rows(tenants: Dict[str, dict]) -> str:
        return format_rows(
            ["tenant", "scenario", "offered", "done", "shed", "p99",
             "throttles", "reloads", "burn", "digest", "exact"],
            [[name, t["scenario"], t["offered"], t["completed"],
              t["shed"], f"{t['latency'].get('p99', 0.0):.0f}",
              t["quota"]["throttles"], t["reloads"]["count"],
              f"{t['error_budget']['burn']:.2f}", t["digest"][:12],
              "yes" if t["accounting_exact"] and t["ledger_exact"]
              else "NO"]
             for name, t in tenants.items()],
        )

    iso = results["isolation"]
    sections.append(
        "Tenant isolation — clean next to a lossy, throttled neighbor\n"
        + tenant_rows({
            "clean(solo)": iso["solo_clean"],
            "clean(duo)": iso["duo_clean"],
            "noisy(duo)": iso["duo_noisy"],
        })
    )
    rel = results["reload"]
    sections.append(
        "Hot reload — fresh pipeline version swapped in mid-run\n"
        + tenant_rows({
            "no-reload": rel["baseline"],
            "reload(a)": rel["run_a"],
            "reload(b)": rel["run_b"],
        })
    )
    drain = results["drain"]
    sections.append(
        f"drain: markers={','.join(drain['markers'])} "
        f"verdict events={drain['verdict_events'][0]} "
        f"of {drain['tenant']['checks']} checks, "
        f"completed {drain['tenant']['completed']}/"
        f"{drain['tenant']['offered']} sessions\n"
        f"quota: capped shed {results['quota']['capped']['shed']} "
        f"(expected {results['quota']['expected_shed']}), "
        f"throttles {results['quota']['capped']['quota']['throttles']}; "
        f"uncapped shed {results['quota']['uncapped']['shed']}"
    )
    knee = results["loadgen_knee"]
    sections.append(
        "loadgen knee: "
        + ("not measured (no BENCH_loadgen.json)"
           if knee["throughput"] is None
           else f"{knee['throughput']:.1f} req/Mcycle "
                f"(floor {knee['floor']:.1f})")
    )
    sections.append(
        "Gates: " + ", ".join(
            f"{name}={'ok' if ok else 'FAIL'}"
            for name, ok in results["gates"].items()
        )
    )
    return "\n\n".join(sections)
