"""Fast-path caching benchmark: incremental tail decode + caches.

Two deterministic workloads compare the fast path with the
content-addressed segment decode cache + edge-verdict memo against the
uncached baseline:

- **tail** — a repeated-snapshot checker workload: one real captured
  nginx trace, checked as a series of growing ring snapshots (the shape
  of consecutive endpoint checks on a filling ToPA ring) across several
  simulated processes running the same binary.  Measures decoded bytes,
  wall-clock decode time, and asserts the cached verdicts (windows,
  low-credit pairs, packets) are bit-identical to the uncached run.
- **fleet** — two full :class:`repro.fleet.FleetService` runs (stall
  rings, unbounded queue so the submitted work is identical), caches
  off vs on.  Asserts per-process verdict sequences match, the cycle
  ledger still reconciles exactly through ``CycleProfiler``, and the
  shared cache actually absorbs repeated slices across processes.

``experiments/fastpath_cache.py`` writes the result to
``BENCH_fastpath_cache.json`` and gates on the ≥2x reductions.
"""

from __future__ import annotations

import time
from typing import Dict, List, Tuple

from repro import costs, telemetry
from repro.experiments.common import (
    seed_server_fs,
    server_pipeline,
    server_requests,
)
from repro.fleet.rings import RingPolicy
from repro.fleet.service import FleetConfig, FleetService
from repro.ipt.segment_cache import SegmentDecodeCache
from repro.itccfg.searchindex import FlowSearchIndex
from repro.monitor.fastpath import FastPathChecker
from repro.osmodel.kernel import Kernel
from repro.workloads import nginx_request

#: cache sizes used by both workloads (also the CLI defaults to quote).
SEGMENT_CACHE_ENTRIES = 512
EDGE_CACHE_ENTRIES = 4096


def capture_trace(sessions: int = 8):
    """Run protected nginx traffic; return (pipeline, proc, topa data)."""
    pipeline = server_pipeline("nginx")
    kernel = Kernel()
    seed_server_fs(kernel)
    monitor, proc = pipeline.deploy(kernel)
    for _ in range(sessions):
        proc.push_connection(nginx_request("/index.html"))
    kernel.run(proc)
    pp = monitor.protected_for(proc)
    pp.encoder.flush()
    return pipeline, proc, pp.topa.snapshot()


class _TimedChecker(FastPathChecker):
    """FastPathChecker that wall-clocks its tail decoding.

    The instrumentation (and the cached-vs-uncached wall gate) targets
    the object engine's ``decode_tail``; the columnar engine's cache
    interplay is measured separately by ``BENCH_columnar.json``."""

    decode_wall: float = 0.0

    def decode_tail(self, data):
        t0 = time.perf_counter()
        out = super().decode_tail(data)
        self.decode_wall += time.perf_counter() - t0
        return out


def _fingerprint(result) -> Tuple:
    """Everything verdict-relevant about a FastPathResult (cycles and
    probe counts excluded — the cache changes costs, never verdicts)."""
    return (
        result.verdict.value,
        result.checked_pairs,
        tuple(result.low_credit_pairs),
        result.violation_edge,
        result.window_offset,
        tuple(
            (r.ip, r.tnt_before, r.offset, r.after_far)
            for r in result.window
        ),
        tuple(
            (p.kind.value, p.offset, p.bits, p.ip)
            for p in result.packets
        ),
    )


def _run_tail(
    data: bytes,
    pipeline,
    proc,
    processes: int,
    cuts: List[int],
    cached: bool,
) -> Tuple[dict, List[Tuple]]:
    cache = SegmentDecodeCache(SEGMENT_CACHE_ENTRIES) if cached else None
    index = FlowSearchIndex(
        pipeline.labeled,
        edge_cache_entries=EDGE_CACHE_ENTRIES if cached else 0,
    )
    checker = _TimedChecker(
        index, proc.image, pkt_count=60,
        require_cross_module=False, require_executable=False,
        segment_cache=cache, engine="objects",
    )
    fingerprints: List[Tuple] = []
    decode_cycles = 0.0
    search_cycles = 0.0
    for _ in range(processes):
        for cut in cuts:
            result = checker.check(data[:cut])
            decode_cycles += result.decode_cycles
            search_cycles += result.search_cycles
            fingerprints.append(_fingerprint(result))
    if cached:
        decoded_bytes = float(cache.bytes_decoded)
    else:
        # Uncached decode charges exactly per byte scanned.
        decoded_bytes = decode_cycles / costs.FAST_DECODE_CYCLES_PER_BYTE
    row = {
        "cached": cached,
        "checks": processes * len(cuts),
        "decoded_bytes": decoded_bytes,
        "decode_cycles": decode_cycles,
        "search_cycles": search_cycles,
        "decode_wall_s": checker.decode_wall,
    }
    if cache is not None:
        row["segment_cache"] = cache.stats()
        row["edge_cache"] = index.edge_cache_stats()
    return row, fingerprints


def run_tail_workload(processes: int, snapshots: int) -> dict:
    """The repeated-snapshot checker workload, cached vs uncached."""
    pipeline, proc, data = capture_trace()
    step = max(256, len(data) // snapshots)
    cuts = list(range(step, len(data), step)) + [len(data)]
    uncached, base_prints = _run_tail(
        data, pipeline, proc, processes, cuts, cached=False
    )
    cached, cache_prints = _run_tail(
        data, pipeline, proc, processes, cuts, cached=True
    )
    wall = uncached["decode_wall_s"]
    return {
        "trace_bytes": len(data),
        "processes": processes,
        "snapshots_per_process": len(cuts),
        "uncached": uncached,
        "cached": cached,
        "verdicts_identical": base_prints == cache_prints,
        "bytes_ratio": (
            uncached["decoded_bytes"] / cached["decoded_bytes"]
            if cached["decoded_bytes"] else float("inf")
        ),
        "wall_ratio": (
            wall / cached["decode_wall_s"]
            if cached["decode_wall_s"] else float("inf")
        ),
    }


def _fleet_verdicts(service: FleetService) -> Dict[int, List[Tuple]]:
    verdicts: Dict[int, List[Tuple]] = {}
    for task in service.dispatcher.tasks:
        verdicts.setdefault(task.pid, []).append(
            (task.kind, task.syscall_nr, task.verdict)
        )
    return verdicts


def _run_fleet(processes: int, sessions: int, cached: bool) -> dict:
    config = FleetConfig(
        workers=2,
        ring_policy=RingPolicy.STALL,
        # Unbounded queue: backpressure feedback would make the
        # submitted work depend on check latency, confounding the
        # cached-vs-uncached comparison.
        max_queue_depth=1_000_000,
        segment_cache_entries=SEGMENT_CACHE_ENTRIES if cached else 0,
        edge_cache_entries=EDGE_CACHE_ENTRIES if cached else 0,
    )
    with telemetry.capture() as tel:
        service = FleetService(config)
        seed_server_fs(service.kernel)
        for index in range(processes):
            name = ("nginx", "exim")[index % 2]
            service.add_workload(
                server_pipeline(name), server_requests(name, sessions)
            )
        counter = tel.metrics.counter("ipt.fast_decode.bytes")
        before = counter.total()
        result = service.run()
        decoded_bytes = counter.total() - before
        reconciliation = service.reconcile()
    return {
        "cached": cached,
        "decoded_bytes": decoded_bytes,
        "tasks": result.tasks,
        "detections": result.detections,
        "quarantined_pids": result.quarantined_pids,
        "lag_p99": result.lag["p99"],
        "monitor_cycles": result.monitor_cycles,
        "overhead": result.overhead,
        "accounting_exact": result.accounting["exact"],
        "reconcile_exact": bool(
            reconciliation and reconciliation["exact"]
        ),
        "caches": result.caches,
        "verdicts": _fleet_verdicts(service),
    }


def run_fleet_workload(processes: int, sessions: int) -> dict:
    uncached = _run_fleet(processes, sessions, cached=False)
    cached = _run_fleet(processes, sessions, cached=True)
    verdicts_identical = uncached.pop("verdicts") == cached.pop("verdicts")
    segment = (cached["caches"] or {}).get("segment") or {}
    return {
        "processes": processes,
        "sessions": sessions,
        "uncached": uncached,
        "cached": cached,
        "verdicts_identical": verdicts_identical,
        "segment_cache_hits": segment.get("hits", 0),
        "bytes_ratio": (
            uncached["decoded_bytes"] / cached["decoded_bytes"]
            if cached["decoded_bytes"] else float("inf")
        ),
    }


def run(quick: bool = False) -> dict:
    tail = run_tail_workload(
        processes=3 if quick else 6,
        snapshots=12 if quick else 24,
    )
    fleet = run_fleet_workload(
        processes=4 if quick else 6,
        sessions=1 if quick else 2,
    )
    return {
        "quick": quick,
        "segment_cache_entries": SEGMENT_CACHE_ENTRIES,
        "edge_cache_entries": EDGE_CACHE_ENTRIES,
        "tail": tail,
        "fleet": fleet,
        "gates": {
            "tail_bytes_ratio_2x": tail["bytes_ratio"] >= 2.0,
            "tail_wall_ratio_2x": tail["wall_ratio"] >= 2.0,
            "tail_verdicts_identical": tail["verdicts_identical"],
            "fleet_bytes_ratio_2x": fleet["bytes_ratio"] >= 2.0,
            "fleet_verdicts_identical": fleet["verdicts_identical"],
            "fleet_cache_hits": fleet["segment_cache_hits"] > 0,
            "fleet_reconcile_exact": (
                fleet["cached"]["reconcile_exact"]
                and fleet["uncached"]["reconcile_exact"]
            ),
        },
    }


def format_table(results: dict) -> str:
    tail = results["tail"]
    fleet = results["fleet"]
    lines = [
        "Fast-path caching: repeated-snapshot tail workload "
        f"({tail['processes']} procs x "
        f"{tail['snapshots_per_process']} snapshots, "
        f"{tail['trace_bytes']} trace bytes)",
        f"  decoded bytes: {tail['uncached']['decoded_bytes']:>12.0f} "
        f"uncached -> {tail['cached']['decoded_bytes']:>10.0f} cached "
        f"({tail['bytes_ratio']:.1f}x)",
        "  decode wall:   "
        f"{tail['uncached']['decode_wall_s'] * 1e3:>12.1f} ms -> "
        f"{tail['cached']['decode_wall_s'] * 1e3:>10.1f} ms "
        f"({tail['wall_ratio']:.1f}x)",
        f"  verdicts identical: {tail['verdicts_identical']}",
        "",
        f"Fleet ({fleet['processes']} procs, stall rings), "
        "caches off -> on:",
        f"  decoded bytes: {fleet['uncached']['decoded_bytes']:>12.0f} "
        f"-> {fleet['cached']['decoded_bytes']:>10.0f} "
        f"({fleet['bytes_ratio']:.1f}x)",
        f"  segment cache hits: {fleet['segment_cache_hits']}, "
        f"verdicts identical: {fleet['verdicts_identical']}, "
        f"ledger exact: {fleet['cached']['reconcile_exact']}",
    ]
    gates = results["gates"]
    failed = [name for name, ok in gates.items() if not ok]
    lines.append("")
    lines.append(
        "gates: all passed" if not failed
        else f"gates FAILED: {', '.join(failed)}"
    )
    return "\n".join(lines)
