"""Figure 5b — Linux-utility overhead through the fork/ptrace harness.

Each utility is launched the paper's way: a parent forks, the child
calls ``ptrace(PTRACE_TRACEME)`` and ``execve``s the utility; at the
exec stop the monitor reads the child's fresh CR3 and attaches
CR3-filtered IPT before the utility runs.

Paper shape: negligible overheads (geomean 0.82%), with dd lowest —
few branch instructions and few syscalls per byte moved.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import List, Sequence

from repro.experiments.common import format_rows, geomean, libraries
from repro.osmodel.kernel import Kernel
from repro.pipeline import FlowGuardPipeline
from repro.workloads import UTILITY_BUILDERS, build_launcher
from repro.workloads.utilities import seed_utility_inputs

UTILITY_NAMES = ("tar", "make", "scp", "dd")


@lru_cache(maxsize=None)
def utility_pipeline(name: str) -> FlowGuardPipeline:
    return FlowGuardPipeline.offline(
        name,
        UTILITY_BUILDERS[name](),
        libraries(),
        corpus=[b""],
        mode="stdin",
        kernel_setup=lambda kernel: seed_utility_inputs(kernel.fs),
    )


@dataclass
class UtilityRow:
    utility: str
    overhead: float
    checks: int
    app_cycles: float


@dataclass
class Fig5bResult:
    rows: List[UtilityRow]

    @property
    def geomean_overhead(self) -> float:
        return geomean([row.overhead for row in self.rows])


def run_utility_protected(name: str):
    """Launch one utility under protection; returns (child, monitor)."""
    pipeline = utility_pipeline(name)
    kernel = Kernel()
    seed_utility_inputs(kernel.fs)
    kernel.register_program(name, pipeline.exe, pipeline.libraries)
    kernel.register_program(
        f"launch-{name}", build_launcher(name), libraries()
    )
    monitor = pipeline.make_monitor(kernel)

    protected = []

    def on_exec_stop(child):
        # The parent's ptrace observation point: the child has a fresh
        # CR3 for the utility image — configure the filter now.
        if child.name == name:
            monitor.protect(child, pipeline.labeled, pipeline.ocfg)
            protected.append(child)

    kernel.exec_stop_hooks.append(on_exec_stop)
    launcher = kernel.spawn(f"launch-{name}")
    kernel.run(launcher)
    if not protected:
        raise RuntimeError(f"{name}: child never reached its exec stop")
    return protected[0], monitor, launcher


def run(utilities: Sequence[str] = UTILITY_NAMES) -> Fig5bResult:
    rows: List[UtilityRow] = []
    for name in utilities:
        child, monitor, launcher = run_utility_protected(name)
        assert not monitor.detections, (
            f"false positive on {name}: {monitor.detections}"
        )
        stats = monitor.stats_for(child)
        app = child.executor.cycles
        rows.append(
            UtilityRow(
                utility=name,
                overhead=stats.total_cycles / app if app else 0.0,
                checks=stats.checks,
                app_cycles=app,
            )
        )
    return Fig5bResult(rows=rows)


def format_table(result: Fig5bResult) -> str:
    header = ["Utility", "Overhead", "checks", "app cycles"]
    rows = [
        [r.utility, f"{r.overhead * 100:.2f}%", r.checks,
         f"{r.app_cycles:.0f}"]
        for r in result.rows
    ]
    rows.append(["geomean", f"{result.geomean_overhead * 100:.2f}%",
                 "", ""])
    return "Figure 5b — Linux utility overhead\n" + format_rows(
        header, rows
    )
