"""§2 decode-slowdown measurement.

The paper's protocol: trace SPECCPU with IPT, pause whenever the buffer
fills, fully decode the packets with the instruction-flow layer; report
decode time relative to execution time.  Paper numbers: geometric mean
~230x, 8 of 12 benchmarks above 500x.  The reproduced shape: decoding
is two orders of magnitude above execution and vastly above the ~3%
tracing cost.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

from repro.experiments.common import format_rows, geomean, run_spec_program
from repro.experiments.table1 import DEFAULT_SUITE, _plain_ipt_config
from repro.ipt.encoder import IPTEncoder
from repro.ipt.fast_decoder import fast_decode
from repro.ipt.full_decoder import FullDecoder
from repro.ipt.topa import ToPA, ToPARegion


@dataclass
class DecodeOverheadResult:
    #: benchmark -> decode_cycles / app_cycles
    per_benchmark: Dict[str, float]
    geomean_x: float
    above_100x: int
    trace_geomean: float


def run(suite: Sequence[str] = DEFAULT_SUITE, scale: int = 1
        ) -> DecodeOverheadResult:
    per_benchmark: Dict[str, float] = {}
    traces: List[float] = []
    for name in suite:
        encoder = IPTEncoder(
            _plain_ipt_config(), output=ToPA([ToPARegion(1 << 22)])
        )
        proc = run_spec_program(name, scale, listeners=[encoder.on_branch])
        encoder.flush()
        packets = fast_decode(encoder.output.snapshot()).packets
        full = FullDecoder(
            proc.machine.memory, max_insns=50_000_000
        ).decode(packets)
        app = proc.executor.cycles
        per_benchmark[name] = full.cycles / app
        traces.append(encoder.cycles / app)
    ratios = list(per_benchmark.values())
    return DecodeOverheadResult(
        per_benchmark=per_benchmark,
        geomean_x=geomean(ratios),
        above_100x=sum(1 for r in ratios if r > 100),
        trace_geomean=geomean(traces),
    )


def format_table(result: DecodeOverheadResult) -> str:
    rows = [
        [name, f"{ratio:.0f}x"]
        for name, ratio in sorted(result.per_benchmark.items())
    ]
    rows.append(["geomean", f"{result.geomean_x:.0f}x"])
    return (
        "§2 — IPT full-decode overhead vs execution "
        f"(tracing geomean {result.trace_geomean * 100:.2f}%)\n"
        + format_rows(["Benchmark", "Decode overhead"], rows)
    )
