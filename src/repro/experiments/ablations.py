"""Ablations over FlowGuard's design knobs.

Quantifies the trade-offs the paper discusses qualitatively:

- ``pkt_count`` (§7.1.1): the checked-window size is the
  history-flushing bar; sweeping it shows the overhead each extra
  checked packet costs.
- ``cred_ratio`` (§7.1.1 formula): the AIA of the deployed mix as the
  high-credit fraction grows, including the crossover ratio beyond
  which FlowGuard beats plain O-CFG protection (the paper reports
  ~70% on its binaries).
- ``psb_period``: finer sync points cost trace bytes but shrink the
  tail the fast path must decode per check.
- PSB-parallel decode (§5.3): total work vs critical-path latency.
- the path-sensitive extension: stronger fast path vs extra slow-path
  traffic (the §7.1.2 future-work trade-off).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from repro.analysis import aia_fine, aia_itc, aia_ocfg, flowguard_aia
from repro.experiments.common import (
    format_rows,
    run_server,
    server_pipeline,
    server_requests,
)
from repro.monitor.policy import FlowGuardPolicy


# -- pkt_count sweep ----------------------------------------------------------


@dataclass
class PktCountPoint:
    pkt_count: int
    overhead: float
    decode_share: float


def sweep_pkt_count(
    counts: Sequence[int] = (5, 10, 30, 60),
    sessions: int = 6,
) -> List[PktCountPoint]:
    points = []
    for count in counts:
        policy = FlowGuardPolicy(pkt_count=count)
        run = run_server(
            "nginx", server_requests("nginx", sessions), protected=True,
            policy=policy,
        )
        stats = run.stats
        points.append(
            PktCountPoint(
                pkt_count=count,
                overhead=run.overhead,
                decode_share=(
                    stats.decode_cycles / stats.total_cycles
                    if stats.total_cycles else 0.0
                ),
            )
        )
    return points


# -- cred_ratio sweep -----------------------------------------------------------


@dataclass
class CredRatioCurve:
    ratios: List[float]
    aia_values: List[float]
    aia_ocfg: float
    crossover_ratio: float  # smallest swept ratio beating the O-CFG


def sweep_cred_ratio(
    server: str = "nginx",
    ratios: Sequence[float] = (0.0, 0.2, 0.4, 0.6, 0.7, 0.8, 1.0),
) -> CredRatioCurve:
    pipeline = server_pipeline(server)
    ocfg_value = aia_ocfg(pipeline.ocfg)
    itc_value = aia_itc(pipeline.itc)
    fine = aia_fine(pipeline.ocfg)
    values = [flowguard_aia(r, fine, itc_value) for r in ratios]
    crossover = next(
        (r for r, v in zip(ratios, values) if v < ocfg_value), 1.0
    )
    return CredRatioCurve(
        ratios=list(ratios),
        aia_values=values,
        aia_ocfg=ocfg_value,
        crossover_ratio=crossover,
    )


# -- psb_period sweep --------------------------------------------------------------


@dataclass
class PsbPoint:
    psb_period: int
    trace_share: float
    decode_share: float
    overhead: float


def sweep_psb_period(
    periods: Sequence[int] = (128, 256, 1024),
    sessions: int = 6,
) -> List[PsbPoint]:
    points = []
    for period in periods:
        run = run_server(
            "nginx", server_requests("nginx", sessions),
            protected=True,
            policy=FlowGuardPolicy(psb_period=period),
        )
        stats = run.stats
        total = stats.total_cycles or 1.0
        points.append(
            PsbPoint(
                psb_period=period,
                trace_share=stats.trace_cycles / total,
                decode_share=stats.decode_cycles / total,
                overhead=run.overhead,
            )
        )
    return points


@dataclass
class PsbEnginePoint:
    psb_period: int
    engine: str
    trace_share: float
    decode_share: float
    overhead: float
    checks: int

    def to_dict(self) -> dict:
        return {
            "psb_period": self.psb_period,
            "engine": self.engine,
            "trace_share": self.trace_share,
            "decode_share": self.decode_share,
            "overhead": self.overhead,
            "checks": self.checks,
        }


def sweep_psb_engine(
    periods: Sequence[int] = (128, 256, 1024),
    engines: Sequence[str] = ("columnar", "objects"),
    sessions: int = 5,
) -> List[PsbEnginePoint]:
    """The psb_period × engine grid.

    Finer PSB periods shrink segments, raising trace share and
    per-segment decode overhead; the engine axis must be cost-neutral —
    columnar and objects charge identical cycles at every period (the
    engines differ in wall-clock only).
    """
    points = []
    for period in periods:
        for engine in engines:
            run = run_server(
                "nginx", server_requests("nginx", sessions),
                protected=True,
                policy=FlowGuardPolicy(psb_period=period, engine=engine),
            )
            stats = run.stats
            total = stats.total_cycles or 1.0
            points.append(
                PsbEnginePoint(
                    psb_period=period,
                    engine=engine,
                    trace_share=stats.trace_cycles / total,
                    decode_share=stats.decode_cycles / total,
                    overhead=run.overhead,
                    checks=stats.checks,
                )
            )
    return points


# -- parallel decode -----------------------------------------------------------------


@dataclass
class ParallelDecodeAblation:
    serial_cycles: float
    critical_path_cycles: float
    segments: int

    @property
    def speedup(self) -> float:
        if self.critical_path_cycles <= 0:
            return 1.0
        return self.serial_cycles / self.critical_path_cycles


def measure_parallel_decode(sessions: int = 8) -> ParallelDecodeAblation:
    from repro.experiments.micro import capture_trace
    from repro.ipt.fast_decoder import fast_decode, fast_decode_parallel

    _, _, data = capture_trace(sessions)
    serial = fast_decode(data)
    parallel = fast_decode_parallel(data)
    return ParallelDecodeAblation(
        serial_cycles=serial.cycles,
        critical_path_cycles=parallel.critical_path_cycles,
        segments=parallel.segments,
    )


# -- path sensitivity -------------------------------------------------------------------


@dataclass
class PathSensitivityAblation:
    edge_slow_rate: float
    path_slow_rate: float
    trained_grams: int


def measure_path_sensitivity(sessions: int = 8) -> PathSensitivityAblation:
    pipeline = server_pipeline("nginx")
    requests = server_requests("nginx", sessions)
    edge = run_server(
        "nginx", requests, protected=True,
        policy=FlowGuardPolicy(cache_slow_path_negatives=False),
    )
    path = run_server(
        "nginx", requests, protected=True,
        policy=FlowGuardPolicy(
            path_sensitive=True, cache_slow_path_negatives=False
        ),
    )
    return PathSensitivityAblation(
        edge_slow_rate=edge.stats.slow_path_rate,
        path_slow_rate=path.stats.slow_path_rate,
        trained_grams=(
            pipeline.path_index.trained_gram_count
            if pipeline.path_index else 0
        ),
    )


# -- rendering -------------------------------------------------------------------------


def format_all() -> str:
    sections = []
    points = sweep_pkt_count()
    sections.append(
        "pkt_count sweep (checked window vs overhead)\n"
        + format_rows(
            ["pkt_count", "overhead", "decode share"],
            [[p.pkt_count, f"{p.overhead * 100:.2f}%",
              f"{p.decode_share * 100:.0f}%"] for p in points],
        )
    )
    curve = sweep_cred_ratio()
    sections.append(
        "cred_ratio sweep (AIA formula, §7.1.1) — "
        f"O-CFG AIA {curve.aia_ocfg:.2f}, "
        f"crossover at ratio {curve.crossover_ratio:.1f}\n"
        + format_rows(
            ["cred_ratio", "AIA"],
            [[f"{r:.1f}", f"{v:.2f}"]
             for r, v in zip(curve.ratios, curve.aia_values)],
        )
    )
    psb = sweep_psb_period()
    sections.append(
        "psb_period sweep (sync granularity)\n"
        + format_rows(
            ["period", "trace share", "decode share", "overhead"],
            [[p.psb_period, f"{p.trace_share * 100:.0f}%",
              f"{p.decode_share * 100:.0f}%",
              f"{p.overhead * 100:.2f}%"] for p in psb],
        )
    )
    grid = sweep_psb_engine()
    sections.append(
        "psb_period × engine grid (engines must be cost-neutral)\n"
        + format_rows(
            ["period", "engine", "trace share", "overhead"],
            [[p.psb_period, p.engine, f"{p.trace_share * 100:.0f}%",
              f"{p.overhead * 100:.2f}%"] for p in grid],
        )
    )
    par = measure_parallel_decode()
    sections.append(
        f"PSB-parallel decode: {par.segments} segments, "
        f"{par.serial_cycles:.0f} serial cycles -> "
        f"{par.critical_path_cycles:.0f} critical path "
        f"({par.speedup:.1f}x)"
    )
    sensitivity = measure_path_sensitivity()
    sections.append(
        "path-sensitive fast path: slow-path rate "
        f"{sensitivity.edge_slow_rate * 100:.1f}% (edges) -> "
        f"{sensitivity.path_slow_rate * 100:.1f}% (paths), "
        f"{sensitivity.trained_grams} trained grams"
    )
    return "\n\n".join(sections)
