"""Figure 5c — SPEC-like suite under FlowGuard.

CPU-bound programs syscall rarely, so the overhead is dominated by
tracing bandwidth.  Paper shape: geomean 3.79%, most below 10%, with
h264ref the outlier — its indirect-call-dense core loop generates far
more trace than the others.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from repro.experiments.common import (
    format_rows,
    geomean,
    run_spec_protected,
)
from repro.experiments.table1 import DEFAULT_SUITE


@dataclass
class SpecRow:
    benchmark: str
    overhead: float
    trace_share: float  # tracing's share of the monitoring cost
    trace_bytes_per_kinsn: float


@dataclass
class Fig5cResult:
    rows: List[SpecRow]

    @property
    def geomean_overhead(self) -> float:
        return geomean([row.overhead for row in self.rows])

    def row(self, name: str) -> SpecRow:
        return next(r for r in self.rows if r.benchmark == name)


def run(suite: Sequence[str] = DEFAULT_SUITE, scale: int = 1
        ) -> Fig5cResult:
    rows: List[SpecRow] = []
    for name in suite:
        proc, monitor = run_spec_protected(name, scale)
        assert not monitor.detections, (
            f"false positive on {name}: {monitor.detections}"
        )
        stats = monitor.stats_for(proc)
        app = proc.executor.cycles
        pp = monitor.protected_for(proc)
        trace_bytes = pp.encoder.output.total_bytes_written
        rows.append(
            SpecRow(
                benchmark=name,
                overhead=stats.total_cycles / app if app else 0.0,
                trace_share=(
                    stats.trace_cycles / stats.total_cycles
                    if stats.total_cycles
                    else 0.0
                ),
                trace_bytes_per_kinsn=(
                    1000.0 * trace_bytes / proc.executor.insn_count
                    if proc.executor.insn_count
                    else 0.0
                ),
            )
        )
    return Fig5cResult(rows=rows)


def format_table(result: Fig5cResult) -> str:
    header = ["Benchmark", "Overhead", "trace share",
              "trace bytes/kinsn"]
    rows = [
        [
            r.benchmark,
            f"{r.overhead * 100:.2f}%",
            f"{r.trace_share * 100:.0f}%",
            f"{r.trace_bytes_per_kinsn:.0f}",
        ]
        for r in result.rows
    ]
    rows.append(["geomean", f"{result.geomean_overhead * 100:.2f}%",
                 "", ""])
    return "Figure 5c — SPEC-like overhead\n" + format_rows(header, rows)
