"""Figure 5a — server macro-benchmark: overhead with phase breakdown.

For each server, drive a batch of client sessions against a protected
instance and report the monitoring overhead relative to the application
cycles, broken into the paper's four phases (trace / decode / check /
other).  Paper shape: small single-digit geomean (4.37%), decode the
largest monitor slice, slow path <1% of checks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from repro.experiments.common import (
    SERVER_NAMES,
    format_rows,
    geomean,
    run_server_overhead,
)


@dataclass
class ServerOverheadRow:
    server: str
    overhead: float
    trace: float
    decode: float
    check: float
    other: float
    checks: int
    slow_path_rate: float


@dataclass
class Fig5aResult:
    rows: List[ServerOverheadRow]

    @property
    def geomean_overhead(self) -> float:
        return geomean([row.overhead for row in self.rows])


def run(servers: Sequence[str] = SERVER_NAMES, sessions: int = 10
        ) -> Fig5aResult:
    rows: List[ServerOverheadRow] = []
    for name in servers:
        overhead, stats, app_cycles = run_server_overhead(name, sessions)
        rows.append(
            ServerOverheadRow(
                server=name,
                overhead=overhead,
                trace=stats.trace_cycles / app_cycles,
                decode=stats.decode_cycles / app_cycles,
                check=stats.check_cycles / app_cycles,
                other=stats.other_cycles / app_cycles,
                checks=stats.checks,
                slow_path_rate=stats.slow_path_rate,
            )
        )
    return Fig5aResult(rows=rows)


def format_table(result: Fig5aResult) -> str:
    header = ["Server", "Overhead", "trace", "decode", "check", "other",
              "checks", "slow-path"]
    rows = [
        [
            r.server,
            f"{r.overhead * 100:.2f}%",
            f"{r.trace * 100:.2f}%",
            f"{r.decode * 100:.2f}%",
            f"{r.check * 100:.2f}%",
            f"{r.other * 100:.2f}%",
            r.checks,
            f"{r.slow_path_rate * 100:.1f}%",
        ]
        for r in result.rows
    ]
    rows.append(
        ["geomean", f"{result.geomean_overhead * 100:.2f}%",
         "", "", "", "", "", ""]
    )
    return "Figure 5a — server overhead breakdown\n" + format_rows(
        header, rows
    )
