"""§7.1.2 security matrix: attacks vs FlowGuard and the baselines.

Runs each attack (ROP, SROP, return-to-lib, history flushing) against
nginx under every defense and reports who detects what:

- FlowGuard detects all four (ROP at write, SROP at sigreturn),
- the LBR heuristics (kBouncer/ROPecker) miss the flushed chain — their
  16-entry window only sees the NOP-gadget tail,
- PathArmor-lite and CFIMon detect CFG violations they can still see
  (full history for CFIMon; window-limited for PathArmor).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from repro.attacks import (
    build_flushing_request,
    build_retlib_request,
    build_rop_request,
    build_srop_request,
    run_recon,
)
from repro.defenses import CFIMon, KBouncer, PathArmorLite, ROPecker
from repro.experiments.common import format_rows, server_pipeline
from repro.osmodel.kernel import Kernel
from repro.workloads import build_libsim, build_nginx, build_vdso

ATTACKS = ("rop", "srop", "retlib", "flushing")
DEFENSES = ("flowguard", "kbouncer", "ropecker", "patharmor", "cfimon")


@dataclass
class SecurityResult:
    #: detected[attack][defense] -> bool
    detected: Dict[str, Dict[str, bool]] = field(default_factory=dict)


def _attack_request(recon, attack: str) -> bytes:
    builders = {
        "rop": build_rop_request,
        "srop": build_srop_request,
        "retlib": build_retlib_request,
        "flushing": lambda r: build_flushing_request(r, nop_gadgets=40),
    }
    return builders[attack](recon)


def _run_flowguard(pipeline, request: bytes) -> bool:
    kernel = Kernel()
    kernel.fs.create("/index.html", b"x")
    monitor, proc = pipeline.deploy(kernel)
    proc.push_connection(request)
    kernel.run(proc)
    return bool(monitor.detections)


def _run_baseline(name: str, pipeline, request: bytes) -> bool:
    kernel = Kernel()
    kernel.fs.create("/index.html", b"x")
    kernel.register_program(
        "nginx", pipeline.exe, pipeline.libraries, vdso=pipeline.vdso
    )
    if name == "kbouncer":
        defense = KBouncer(kernel)
    elif name == "ropecker":
        defense = ROPecker(kernel)
    elif name == "patharmor":
        defense = PathArmorLite(kernel)
    else:
        defense = CFIMon(kernel)
    defense.install()
    proc = kernel.spawn("nginx")
    if name in ("patharmor", "cfimon"):
        defense.protect(proc, pipeline.ocfg)
    else:
        defense.protect(proc)
    proc.push_connection(request)
    kernel.run(proc)
    return bool(defense.detections)


def run() -> SecurityResult:
    libs = {"libsim.so": build_libsim()}
    recon = run_recon(build_nginx(), libs, vdso=build_vdso())
    pipeline = server_pipeline("nginx")
    result = SecurityResult()
    for attack in ATTACKS:
        request = _attack_request(recon, attack)
        result.detected[attack] = {
            "flowguard": _run_flowguard(pipeline, request),
        }
        for defense in DEFENSES[1:]:
            result.detected[attack][defense] = _run_baseline(
                defense, pipeline, request
            )
    return result


def format_table(result: SecurityResult) -> str:
    header = ["Attack"] + list(DEFENSES)
    rows = [
        [attack] + [
            "detected" if result.detected[attack][d] else "MISSED"
            for d in DEFENSES
        ]
        for attack in ATTACKS
    ]
    return "§7.1.2 — attack detection matrix\n" + format_rows(header, rows)
