"""Experiment harnesses: one module per paper table/figure.

Every module exposes a ``run(...)`` returning a structured result and a
``format_table(result)`` that renders the same rows/series the paper
reports.  See DESIGN.md's experiment index and EXPERIMENTS.md for
paper-vs-measured records.

- :mod:`repro.experiments.table1` — hardware tracing comparison
- :mod:`repro.experiments.sec2_decode` — full-decode slowdown (§2)
- :mod:`repro.experiments.table4` — CFG statistics and AIA
- :mod:`repro.experiments.table5` — memory usage / CFG generation time
- :mod:`repro.experiments.fig5a` — server overhead + breakdown
- :mod:`repro.experiments.fig5b` — Linux-utility overhead
- :mod:`repro.experiments.fig5c` — SPEC-like overhead
- :mod:`repro.experiments.fig5d` — fuzzing-training curve
- :mod:`repro.experiments.micro` — fast vs slow path checking time
- :mod:`repro.experiments.hwext_breakdown` — §7.2.4 projections
- :mod:`repro.experiments.security` — §7.1.2 attack matrix
"""

from repro.experiments import common

__all__ = ["common"]
