"""Columnar decode engine benchmark: table-driven scan + batched check.

Compares the two fast-path decode engines on identical work:

- **objects** — the original engine: every packet becomes a
  ``DecodedPacket`` dataclass, every TIP a ``TipRecord``, and every
  consecutive pair goes through ``FlowSearchIndex.check_edge``.
- **columnar** — the table-driven engine: one dispatch-table scan emits
  packed offset/IP columns and a TNT bitstream, and the whole window is
  verified in one ``FlowSearchIndex.check_batch`` call.  Packet objects
  materialise lazily, only when something actually reads them.

Two deterministic workloads:

- **tail** — the Fig. 5 server shape: one real captured nginx trace
  checked as a series of growing ring snapshots (consecutive endpoint
  checks on a filling ToPA ring) across several simulated processes.
  The decode+check loop is wall-clocked per engine (best of several
  repeats, fresh checker each repeat); verdicts, charged decode/search
  cycles, and the ``ipt.fast_decode.*`` telemetry counters must be
  **identical** — only wall-clock may differ.  Run uncached and again
  with the segment + edge caches on.
- **fleet** — two full :class:`repro.fleet.FleetService` runs per
  engine pair, clean and under the standard fault mix.  Per-process
  verdict sequences, total monitor cycles, the ``CycleProfiler``
  reconciliation, and the :class:`~repro.resilience.DegradationLedger`
  (counts and its own reconciliation) must all match exactly.

``experiments/columnar.py`` writes ``BENCH_columnar.json`` and gates on
the >=2x uncached wall-clock speedup plus every identity listed above.
"""

from __future__ import annotations

import time
from typing import Dict, List, Tuple

from repro import telemetry
from repro.experiments.common import (
    seed_server_fs,
    server_pipeline,
    server_requests,
)
from repro.experiments.fastpath_cache import capture_trace
from repro.fleet.rings import RingPolicy
from repro.fleet.service import FleetConfig, FleetService
from repro.ipt.segment_cache import SegmentDecodeCache
from repro.itccfg.searchindex import FlowSearchIndex
from repro.monitor.fastpath import (
    ENGINES,
    FastPathChecker,
    FastPathResult,
    Verdict,
)
from repro.monitor.slowpath import SlowPathEngine
from repro.monitor.policy import SLOW_LANES, FlowGuardPolicy
from repro.osmodel.kernel import Kernel
from repro.resilience import FaultPlan
from repro.resilience.faults import FaultSite

SEGMENT_CACHE_ENTRIES = 512
EDGE_CACHE_ENTRIES = 4096

#: telemetry counters that must agree between engines on the same work.
_DECODE_COUNTERS = (
    "ipt.fast_decode.calls",
    "ipt.fast_decode.bytes",
    "ipt.fast_decode.packets",
    "ipt.segment_cache.hits",
    "ipt.segment_cache.misses",
)


def _fingerprint(result) -> Tuple:
    """Everything verdict-relevant about a FastPathResult.  Forcing
    ``result.packets`` here (after the timed loop) materialises the
    columnar engine's lazy packets, so packet parity is part of the
    comparison without polluting the wall-clock measurement."""
    return (
        result.verdict.value,
        result.checked_pairs,
        tuple(result.low_credit_pairs),
        result.violation_edge,
        result.window_offset,
        result.corrupt_segments,
        tuple(
            (r.ip, r.tnt_before, r.offset, r.after_far)
            for r in result.window
        ),
        tuple(
            (p.kind.value, p.offset, p.bits, p.ip)
            for p in result.packets
        ),
    )


def _make_checker(pipeline, proc, engine: str, cached: bool):
    cache = SegmentDecodeCache(SEGMENT_CACHE_ENTRIES) if cached else None
    index = FlowSearchIndex(
        pipeline.labeled,
        edge_cache_entries=EDGE_CACHE_ENTRIES if cached else 0,
    )
    return FastPathChecker(
        index, proc.image, pkt_count=60,
        require_cross_module=False, require_executable=False,
        segment_cache=cache, engine=engine,
    )


def _run_tail_engine(
    data: bytes,
    pipeline,
    proc,
    processes: int,
    cuts: List[int],
    engine: str,
    cached: bool,
    repeats: int,
) -> Tuple[dict, List[Tuple], Dict[str, float]]:
    """One engine over the snapshot loop.  Returns (row, fingerprints,
    telemetry counter totals)."""
    # Measured pass: telemetry on, cycles + fingerprints collected.
    with telemetry.capture() as tel:
        checker = _make_checker(pipeline, proc, engine, cached)
        results = []
        decode_cycles = 0.0
        search_cycles = 0.0
        for _ in range(processes):
            for cut in cuts:
                result = checker.check(data[:cut])
                decode_cycles += result.decode_cycles
                search_cycles += result.search_cycles
                results.append(result)
        counters = {
            name: tel.metrics.counter(name).total()
            for name in _DECODE_COUNTERS
        }
    # Fingerprinting forces the lazy packets — outside any timing.
    fingerprints = [_fingerprint(r) for r in results]
    # Timing passes: telemetry off, fresh checker per repeat (so cache
    # warm-up repeats identically), best-of to shed scheduler noise.
    wall = float("inf")
    for _ in range(repeats):
        checker = _make_checker(pipeline, proc, engine, cached)
        t0 = time.perf_counter()
        for _ in range(processes):
            for cut in cuts:
                checker.check(data[:cut])
        wall = min(wall, time.perf_counter() - t0)
    row = {
        "engine": engine,
        "cached": cached,
        "checks": processes * len(cuts),
        "decode_cycles": decode_cycles,
        "search_cycles": search_cycles,
        "wall_s": wall,
        "counters": counters,
    }
    return row, fingerprints, counters


def run_tail_workload(
    processes: int, snapshots: int, repeats: int
) -> dict:
    """The Fig. 5 decode+check loop, objects vs columnar."""
    pipeline, proc, data = capture_trace()
    step = max(256, len(data) // snapshots)
    cuts = list(range(step, len(data), step)) + [len(data)]

    rows: Dict[str, dict] = {}
    prints: Dict[str, List[Tuple]] = {}
    counters: Dict[str, Dict[str, float]] = {}
    for cached in (False, True):
        for engine in ENGINES:
            key = f"{engine}_{'cached' if cached else 'uncached'}"
            rows[key], prints[key], counters[key] = _run_tail_engine(
                data, pipeline, proc, processes, cuts, engine, cached,
                repeats,
            )

    def ratio(a: str, b: str) -> float:
        return (
            rows[a]["wall_s"] / rows[b]["wall_s"]
            if rows[b]["wall_s"] else float("inf")
        )

    def cycles_equal(a: str, b: str) -> bool:
        return (
            rows[a]["decode_cycles"] == rows[b]["decode_cycles"]
            and rows[a]["search_cycles"] == rows[b]["search_cycles"]
        )

    return {
        "trace_bytes": len(data),
        "processes": processes,
        "snapshots_per_process": len(cuts),
        "repeats": repeats,
        "runs": rows,
        "wall_ratio_uncached": ratio(
            "objects_uncached", "columnar_uncached"
        ),
        "wall_ratio_cached": ratio("objects_cached", "columnar_cached"),
        "verdicts_identical_uncached": (
            prints["objects_uncached"] == prints["columnar_uncached"]
        ),
        "verdicts_identical_cached": (
            prints["objects_cached"] == prints["columnar_cached"]
        ),
        "cycles_identical_uncached": cycles_equal(
            "objects_uncached", "columnar_uncached"
        ),
        "cycles_identical_cached": cycles_equal(
            "objects_cached", "columnar_cached"
        ),
        "telemetry_identical": (
            counters["objects_uncached"] == counters["columnar_uncached"]
            and counters["objects_cached"] == counters["columnar_cached"]
        ),
    }


def _run_lane(server: str, lane: str, pushes: int) -> Tuple[dict, dict, float]:
    """One degraded-lane run: a fault plan that crashes the fast path on
    every endpoint check, so each verdict comes from the slow path over
    the chosen ``slow_lane``.  Returns (row, fingerprint, wall)."""
    pipeline = server_pipeline(server)
    kernel = Kernel()
    seed_server_fs(kernel)
    plan = FaultPlan(seed=3, fastpath_error=FaultSite(probability=1.0))
    policy = FlowGuardPolicy(slow_lane=lane)
    monitor, proc = pipeline.deploy(kernel, policy=policy, faults=plan)
    for request in server_requests(server, pushes):
        proc.push_connection(request)
    t0 = time.perf_counter()
    kernel.run(proc)
    wall = time.perf_counter() - t0
    stats = monitor.protected_for(proc).stats
    # Everything verdict/cycle/ledger-observable about the run — the
    # two lanes must be bit-identical on all of it.
    fingerprint = {
        "state": proc.state.name,
        "detections": [
            (d.pid, d.syscall_nr, d.path, d.reason, d.edge)
            for d in monitor.detections
        ],
        "checks": stats.checks,
        "slow_path_runs": stats.slow_path_runs,
        "trace_cycles": stats.trace_cycles,
        "decode_cycles": stats.decode_cycles,
        "check_cycles": stats.check_cycles,
        "other_cycles": stats.other_cycles,
        "ledger": monitor.degradations.counts(),
    }
    row = {
        "lane": lane,
        "server": server,
        "slow_path_runs": stats.slow_path_runs,
        "wall_s": wall,
    }
    return row, fingerprint, wall


def _surrogate_results(checker, data: bytes, cuts: List[int]):
    """Fresh SUSPICIOUS windows, the shape ``_fastpath_surrogate``
    produces when the fast path crashes mid-check: every snapshot's
    whole tail window goes to the slow path.  Fresh per call so the
    objects lane's forced ``LazyPackets`` cannot leak across lanes."""
    results = []
    for cut in cuts:
        tail = checker.decode_tail_columnar(data[:cut])
        if tail.count < 2:
            continue
        results.append(
            FastPathResult(
                Verdict.SUSPICIOUS,
                decode_cycles=tail.cycles,
                window=tail.window(checker.pkt_count + 1)[0],
                window_offset=tail.start,
                packets=tail.lazy_packets(),
            )
        )
    return results


def _slow_fingerprint(sr) -> Tuple:
    return (
        sr.ok, sr.reason, sr.violation_addr, sr.cycles,
        sr.insns_decoded, sr.shadow_cycles, tuple(sr.confirmed_pairs),
    )


def _lane_source(result: FastPathResult, lane: str):
    if lane == "objects":
        return result.slow_path_packets()
    return result.slow_path_source()


def run_slowlane_workload(
    pushes: int, snapshots: int, repeats: int
) -> dict:
    """The degraded lane: fault-crashed fast-path checks re-verified on
    the slow path.  The ``objects`` lane materialises the lazy
    ``DecodedPacket`` list first; the ``columnar`` lane replays the raw
    segment bytes through the byte cursor.  Two comparisons:

    - **isolated** — surrogate SUSPICIOUS windows over the captured
      trace's snapshots, the slow check wall-clocked per lane with
      full :class:`SlowPathResult` bit-identity asserted;
    - **end-to-end** — one protected run per server per lane under the
      PR 4 ``fastpath_error`` plan (probability 1.0: *every* endpoint
      check downgrades), asserting verdicts, cycle stats and the
      degradation ledger match exactly through the whole monitor.
    """
    pipeline, proc, data = capture_trace()
    slow_engine = SlowPathEngine(proc.machine.memory, pipeline.ocfg)
    step = max(256, len(data) // snapshots)
    cuts = list(range(step, len(data), step)) + [len(data)]
    checker = _make_checker(pipeline, proc, "columnar", False)

    # Identity pass (also warms the decoder's insn cache for both
    # lanes' timing passes equally).
    prints: Dict[str, List[Tuple]] = {}
    for lane in SLOW_LANES:
        prints[lane] = [
            _slow_fingerprint(
                slow_engine.check(
                    _lane_source(result, lane), window=result.window
                )
            )
            for result in _surrogate_results(checker, data, cuts)
        ]
    slow_runs = len(prints["columnar"])

    # Timing passes: fresh surrogate windows per repeat, best-of.
    walls: Dict[str, float] = {}
    for lane in SLOW_LANES:
        best = float("inf")
        for _ in range(repeats):
            results = _surrogate_results(checker, data, cuts)
            t0 = time.perf_counter()
            for result in results:
                slow_engine.check(
                    _lane_source(result, lane), window=result.window
                )
            best = min(best, time.perf_counter() - t0)
        walls[lane] = best

    # End-to-end: every check downgraded, whole-monitor identity.
    rows: Dict[str, dict] = {}
    e2e_prints: Dict[str, list] = {}
    for lane in SLOW_LANES:
        lane_prints = []
        for server in ("nginx", "exim"):
            row, fingerprint, _ = _run_lane(server, lane, pushes)
            rows[f"{lane}_{server}"] = row
            lane_prints.append(fingerprint)
        e2e_prints[lane] = lane_prints
    e2e_slow_runs = sum(
        rows[f"columnar_{server}"]["slow_path_runs"]
        for server in ("nginx", "exim")
    )

    return {
        "pushes": pushes,
        "snapshots": len(cuts),
        "repeats": repeats,
        "slow_path_runs": slow_runs,
        "e2e_slow_path_runs": e2e_slow_runs,
        "runs": rows,
        "wall_objects_s": walls["objects"],
        "wall_columnar_s": walls["columnar"],
        "wall_ratio": (
            walls["objects"] / walls["columnar"]
            if walls["columnar"] else float("inf")
        ),
        "identical": (
            prints["objects"] == prints["columnar"]
            and slow_runs > 0
        ),
        "e2e_identical": (
            e2e_prints["objects"] == e2e_prints["columnar"]
            and e2e_slow_runs > 0
        ),
    }


def _fleet_verdicts(service: FleetService) -> Dict[int, List[Tuple]]:
    verdicts: Dict[int, List[Tuple]] = {}
    for task in service.dispatcher.tasks:
        verdicts.setdefault(task.pid, []).append(
            (task.kind, task.syscall_nr, task.verdict,
             task.resynced, task.degraded, task.dead_lettered)
        )
    return verdicts


def _run_fleet(
    processes: int, sessions: int, engine: str, faulted: bool
) -> dict:
    config = FleetConfig(
        workers=2,
        ring_policy=RingPolicy.STALL,
        max_queue_depth=1_000_000,
        segment_cache_entries=SEGMENT_CACHE_ENTRIES,
        edge_cache_entries=EDGE_CACHE_ENTRIES,
        engine=engine,
        faults=FaultPlan.standard_mix(seed=7) if faulted else None,
    )
    with telemetry.capture():
        service = FleetService(config)
        seed_server_fs(service.kernel)
        for index in range(processes):
            name = ("nginx", "exim")[index % 2]
            service.add_workload(
                server_pipeline(name), server_requests(name, sessions)
            )
        result = service.run()
        reconciliation = service.reconcile()
    resilience = result.resilience or {}
    ledger = resilience.get("degradations") or {}
    ledger_reconcile = resilience.get("ledger_reconcile") or {}
    return {
        "engine": engine,
        "faulted": faulted,
        "tasks": result.tasks,
        "detections": result.detections,
        "quarantined_pids": result.quarantined_pids,
        "monitor_cycles": result.monitor_cycles,
        "lag_p99": result.lag["p99"],
        "accounting_exact": result.accounting["exact"],
        "reconcile_exact": bool(
            reconciliation and reconciliation["exact"]
        ),
        "ledger": ledger,
        "ledger_exact": bool(
            not ledger_reconcile or ledger_reconcile.get("exact", True)
        ),
        "verdicts": _fleet_verdicts(service),
    }


def run_fleet_workload(processes: int, sessions: int) -> dict:
    comparisons = {}
    for faulted in (False, True):
        objects = _run_fleet(processes, sessions, "objects", faulted)
        columnar = _run_fleet(processes, sessions, "columnar", faulted)
        label = "faulted" if faulted else "clean"
        comparisons[label] = {
            "objects": {
                k: v for k, v in objects.items() if k != "verdicts"
            },
            "columnar": {
                k: v for k, v in columnar.items() if k != "verdicts"
            },
            "verdicts_identical": (
                objects["verdicts"] == columnar["verdicts"]
            ),
            "cycles_identical": (
                objects["monitor_cycles"] == columnar["monitor_cycles"]
            ),
            "ledger_identical": objects["ledger"] == columnar["ledger"],
            "reconcile_exact": (
                objects["reconcile_exact"] and columnar["reconcile_exact"]
                and objects["ledger_exact"] and columnar["ledger_exact"]
            ),
        }
    return {
        "processes": processes,
        "sessions": sessions,
        **comparisons,
    }


def run(quick: bool = False) -> dict:
    tail = run_tail_workload(
        processes=3 if quick else 6,
        snapshots=12 if quick else 24,
        repeats=2 if quick else 3,
    )
    slowlane = run_slowlane_workload(
        pushes=3 if quick else 6,
        snapshots=12 if quick else 24,
        repeats=2 if quick else 3,
    )
    fleet = run_fleet_workload(
        processes=2 if quick else 4,
        sessions=1 if quick else 2,
    )
    return {
        "quick": quick,
        "segment_cache_entries": SEGMENT_CACHE_ENTRIES,
        "edge_cache_entries": EDGE_CACHE_ENTRIES,
        "tail": tail,
        "slowlane": slowlane,
        "fleet": fleet,
        "gates": {
            "tail_wall_ratio_2x": tail["wall_ratio_uncached"] >= 2.0,
            "tail_wall_ratio_cached_2x": tail["wall_ratio_cached"] >= 2.0,
            "slowlane_columnar_faster": slowlane["wall_ratio"] > 1.0,
            "slowlane_identical": (
                slowlane["identical"] and slowlane["e2e_identical"]
            ),
            "tail_verdicts_identical": (
                tail["verdicts_identical_uncached"]
                and tail["verdicts_identical_cached"]
            ),
            "tail_cycles_identical": (
                tail["cycles_identical_uncached"]
                and tail["cycles_identical_cached"]
            ),
            "tail_telemetry_identical": tail["telemetry_identical"],
            "fleet_verdicts_identical": (
                fleet["clean"]["verdicts_identical"]
                and fleet["faulted"]["verdicts_identical"]
            ),
            "fleet_cycles_identical": (
                fleet["clean"]["cycles_identical"]
                and fleet["faulted"]["cycles_identical"]
            ),
            "fleet_ledger_identical": (
                fleet["clean"]["ledger_identical"]
                and fleet["faulted"]["ledger_identical"]
            ),
            "fleet_reconcile_exact": (
                fleet["clean"]["reconcile_exact"]
                and fleet["faulted"]["reconcile_exact"]
            ),
        },
    }


def format_table(results: dict) -> str:
    tail = results["tail"]
    runs = tail["runs"]
    lines = [
        "Columnar engine: Fig. 5 tail decode+check loop "
        f"({tail['processes']} procs x "
        f"{tail['snapshots_per_process']} snapshots, "
        f"{tail['trace_bytes']} trace bytes, "
        f"best of {tail['repeats']})",
    ]
    for mode, ratio_key in (
        ("uncached", "wall_ratio_uncached"),
        ("cached", "wall_ratio_cached"),
    ):
        obj = runs[f"objects_{mode}"]
        col = runs[f"columnar_{mode}"]
        lines.append(
            f"  {mode:>8}: {obj['wall_s'] * 1e3:>8.2f} ms objects -> "
            f"{col['wall_s'] * 1e3:>8.2f} ms columnar "
            f"({tail[ratio_key]:.2f}x)"
        )
    lines.append(
        "  verdicts identical: "
        f"{tail['verdicts_identical_uncached']} (uncached) / "
        f"{tail['verdicts_identical_cached']} (cached), "
        f"cycles identical: {tail['cycles_identical_uncached']} / "
        f"{tail['cycles_identical_cached']}, "
        f"telemetry identical: {tail['telemetry_identical']}"
    )
    slowlane = results["slowlane"]
    lines.append("")
    lines.append(
        "Degraded lane (fast path crashed, slow-path re-verification, "
        f"{slowlane['slow_path_runs']} slow runs):"
    )
    lines.append(
        f"  {slowlane['wall_objects_s'] * 1e3:>8.2f} ms objects lane -> "
        f"{slowlane['wall_columnar_s'] * 1e3:>8.2f} ms columnar lane "
        f"({slowlane['wall_ratio']:.2f}x), "
        f"results identical: {slowlane['identical']}, "
        f"end-to-end identical: {slowlane['e2e_identical']} "
        f"({slowlane['e2e_slow_path_runs']} downgraded checks)"
    )
    fleet = results["fleet"]
    lines.append("")
    lines.append(
        f"Fleet ({fleet['processes']} procs, stall rings), "
        "objects vs columnar:"
    )
    for label in ("clean", "faulted"):
        cmp = fleet[label]
        lines.append(
            f"  {label:>8}: verdicts identical {cmp['verdicts_identical']}, "
            f"cycles identical {cmp['cycles_identical']}, "
            f"ledger identical {cmp['ledger_identical']}, "
            f"reconcile exact {cmp['reconcile_exact']}"
        )
    gates = results["gates"]
    failed = [name for name, ok in gates.items() if not ok]
    lines.append("")
    lines.append(
        "gates: all passed" if not failed
        else f"gates FAILED: {', '.join(failed)}"
    )
    return "\n".join(lines)
