"""Columnar decode engine benchmark: table-driven scan + batched check.

Compares the two fast-path decode engines on identical work:

- **objects** — the original engine: every packet becomes a
  ``DecodedPacket`` dataclass, every TIP a ``TipRecord``, and every
  consecutive pair goes through ``FlowSearchIndex.check_edge``.
- **columnar** — the table-driven engine: one dispatch-table scan emits
  packed offset/IP columns and a TNT bitstream, and the whole window is
  verified in one ``FlowSearchIndex.check_batch`` call.  Packet objects
  materialise lazily, only when something actually reads them.

Two deterministic workloads:

- **tail** — the Fig. 5 server shape: one real captured nginx trace
  checked as a series of growing ring snapshots (consecutive endpoint
  checks on a filling ToPA ring) across several simulated processes.
  The decode+check loop is wall-clocked per engine (best of several
  repeats, fresh checker each repeat); verdicts, charged decode/search
  cycles, and the ``ipt.fast_decode.*`` telemetry counters must be
  **identical** — only wall-clock may differ.  Run uncached and again
  with the segment + edge caches on.
- **fleet** — two full :class:`repro.fleet.FleetService` runs per
  engine pair, clean and under the standard fault mix.  Per-process
  verdict sequences, total monitor cycles, the ``CycleProfiler``
  reconciliation, and the :class:`~repro.resilience.DegradationLedger`
  (counts and its own reconciliation) must all match exactly.

``experiments/columnar.py`` writes ``BENCH_columnar.json`` and gates on
the >=2x uncached wall-clock speedup plus every identity listed above.
"""

from __future__ import annotations

import time
from typing import Dict, List, Tuple

from repro import telemetry
from repro.experiments.common import (
    seed_server_fs,
    server_pipeline,
    server_requests,
)
from repro.experiments.fastpath_cache import capture_trace
from repro.fleet.rings import RingPolicy
from repro.fleet.service import FleetConfig, FleetService
from repro.ipt.segment_cache import SegmentDecodeCache
from repro.itccfg.searchindex import FlowSearchIndex
from repro.monitor.fastpath import ENGINES, FastPathChecker
from repro.resilience import FaultPlan

SEGMENT_CACHE_ENTRIES = 512
EDGE_CACHE_ENTRIES = 4096

#: telemetry counters that must agree between engines on the same work.
_DECODE_COUNTERS = (
    "ipt.fast_decode.calls",
    "ipt.fast_decode.bytes",
    "ipt.fast_decode.packets",
    "ipt.segment_cache.hits",
    "ipt.segment_cache.misses",
)


def _fingerprint(result) -> Tuple:
    """Everything verdict-relevant about a FastPathResult.  Forcing
    ``result.packets`` here (after the timed loop) materialises the
    columnar engine's lazy packets, so packet parity is part of the
    comparison without polluting the wall-clock measurement."""
    return (
        result.verdict.value,
        result.checked_pairs,
        tuple(result.low_credit_pairs),
        result.violation_edge,
        result.window_offset,
        result.corrupt_segments,
        tuple(
            (r.ip, r.tnt_before, r.offset, r.after_far)
            for r in result.window
        ),
        tuple(
            (p.kind.value, p.offset, p.bits, p.ip)
            for p in result.packets
        ),
    )


def _make_checker(pipeline, proc, engine: str, cached: bool):
    cache = SegmentDecodeCache(SEGMENT_CACHE_ENTRIES) if cached else None
    index = FlowSearchIndex(
        pipeline.labeled,
        edge_cache_entries=EDGE_CACHE_ENTRIES if cached else 0,
    )
    return FastPathChecker(
        index, proc.image, pkt_count=60,
        require_cross_module=False, require_executable=False,
        segment_cache=cache, engine=engine,
    )


def _run_tail_engine(
    data: bytes,
    pipeline,
    proc,
    processes: int,
    cuts: List[int],
    engine: str,
    cached: bool,
    repeats: int,
) -> Tuple[dict, List[Tuple], Dict[str, float]]:
    """One engine over the snapshot loop.  Returns (row, fingerprints,
    telemetry counter totals)."""
    # Measured pass: telemetry on, cycles + fingerprints collected.
    with telemetry.capture() as tel:
        checker = _make_checker(pipeline, proc, engine, cached)
        results = []
        decode_cycles = 0.0
        search_cycles = 0.0
        for _ in range(processes):
            for cut in cuts:
                result = checker.check(data[:cut])
                decode_cycles += result.decode_cycles
                search_cycles += result.search_cycles
                results.append(result)
        counters = {
            name: tel.metrics.counter(name).total()
            for name in _DECODE_COUNTERS
        }
    # Fingerprinting forces the lazy packets — outside any timing.
    fingerprints = [_fingerprint(r) for r in results]
    # Timing passes: telemetry off, fresh checker per repeat (so cache
    # warm-up repeats identically), best-of to shed scheduler noise.
    wall = float("inf")
    for _ in range(repeats):
        checker = _make_checker(pipeline, proc, engine, cached)
        t0 = time.perf_counter()
        for _ in range(processes):
            for cut in cuts:
                checker.check(data[:cut])
        wall = min(wall, time.perf_counter() - t0)
    row = {
        "engine": engine,
        "cached": cached,
        "checks": processes * len(cuts),
        "decode_cycles": decode_cycles,
        "search_cycles": search_cycles,
        "wall_s": wall,
        "counters": counters,
    }
    return row, fingerprints, counters


def run_tail_workload(
    processes: int, snapshots: int, repeats: int
) -> dict:
    """The Fig. 5 decode+check loop, objects vs columnar."""
    pipeline, proc, data = capture_trace()
    step = max(256, len(data) // snapshots)
    cuts = list(range(step, len(data), step)) + [len(data)]

    rows: Dict[str, dict] = {}
    prints: Dict[str, List[Tuple]] = {}
    counters: Dict[str, Dict[str, float]] = {}
    for cached in (False, True):
        for engine in ENGINES:
            key = f"{engine}_{'cached' if cached else 'uncached'}"
            rows[key], prints[key], counters[key] = _run_tail_engine(
                data, pipeline, proc, processes, cuts, engine, cached,
                repeats,
            )

    def ratio(a: str, b: str) -> float:
        return (
            rows[a]["wall_s"] / rows[b]["wall_s"]
            if rows[b]["wall_s"] else float("inf")
        )

    def cycles_equal(a: str, b: str) -> bool:
        return (
            rows[a]["decode_cycles"] == rows[b]["decode_cycles"]
            and rows[a]["search_cycles"] == rows[b]["search_cycles"]
        )

    return {
        "trace_bytes": len(data),
        "processes": processes,
        "snapshots_per_process": len(cuts),
        "repeats": repeats,
        "runs": rows,
        "wall_ratio_uncached": ratio(
            "objects_uncached", "columnar_uncached"
        ),
        "wall_ratio_cached": ratio("objects_cached", "columnar_cached"),
        "verdicts_identical_uncached": (
            prints["objects_uncached"] == prints["columnar_uncached"]
        ),
        "verdicts_identical_cached": (
            prints["objects_cached"] == prints["columnar_cached"]
        ),
        "cycles_identical_uncached": cycles_equal(
            "objects_uncached", "columnar_uncached"
        ),
        "cycles_identical_cached": cycles_equal(
            "objects_cached", "columnar_cached"
        ),
        "telemetry_identical": (
            counters["objects_uncached"] == counters["columnar_uncached"]
            and counters["objects_cached"] == counters["columnar_cached"]
        ),
    }


def _fleet_verdicts(service: FleetService) -> Dict[int, List[Tuple]]:
    verdicts: Dict[int, List[Tuple]] = {}
    for task in service.dispatcher.tasks:
        verdicts.setdefault(task.pid, []).append(
            (task.kind, task.syscall_nr, task.verdict,
             task.resynced, task.degraded, task.dead_lettered)
        )
    return verdicts


def _run_fleet(
    processes: int, sessions: int, engine: str, faulted: bool
) -> dict:
    config = FleetConfig(
        workers=2,
        ring_policy=RingPolicy.STALL,
        max_queue_depth=1_000_000,
        segment_cache_entries=SEGMENT_CACHE_ENTRIES,
        edge_cache_entries=EDGE_CACHE_ENTRIES,
        engine=engine,
        faults=FaultPlan.standard_mix(seed=7) if faulted else None,
    )
    with telemetry.capture():
        service = FleetService(config)
        seed_server_fs(service.kernel)
        for index in range(processes):
            name = ("nginx", "exim")[index % 2]
            service.add_workload(
                server_pipeline(name), server_requests(name, sessions)
            )
        result = service.run()
        reconciliation = service.reconcile()
    resilience = result.resilience or {}
    ledger = resilience.get("degradations") or {}
    ledger_reconcile = resilience.get("ledger_reconcile") or {}
    return {
        "engine": engine,
        "faulted": faulted,
        "tasks": result.tasks,
        "detections": result.detections,
        "quarantined_pids": result.quarantined_pids,
        "monitor_cycles": result.monitor_cycles,
        "lag_p99": result.lag["p99"],
        "accounting_exact": result.accounting["exact"],
        "reconcile_exact": bool(
            reconciliation and reconciliation["exact"]
        ),
        "ledger": ledger,
        "ledger_exact": bool(
            not ledger_reconcile or ledger_reconcile.get("exact", True)
        ),
        "verdicts": _fleet_verdicts(service),
    }


def run_fleet_workload(processes: int, sessions: int) -> dict:
    comparisons = {}
    for faulted in (False, True):
        objects = _run_fleet(processes, sessions, "objects", faulted)
        columnar = _run_fleet(processes, sessions, "columnar", faulted)
        label = "faulted" if faulted else "clean"
        comparisons[label] = {
            "objects": {
                k: v for k, v in objects.items() if k != "verdicts"
            },
            "columnar": {
                k: v for k, v in columnar.items() if k != "verdicts"
            },
            "verdicts_identical": (
                objects["verdicts"] == columnar["verdicts"]
            ),
            "cycles_identical": (
                objects["monitor_cycles"] == columnar["monitor_cycles"]
            ),
            "ledger_identical": objects["ledger"] == columnar["ledger"],
            "reconcile_exact": (
                objects["reconcile_exact"] and columnar["reconcile_exact"]
                and objects["ledger_exact"] and columnar["ledger_exact"]
            ),
        }
    return {
        "processes": processes,
        "sessions": sessions,
        **comparisons,
    }


def run(quick: bool = False) -> dict:
    tail = run_tail_workload(
        processes=3 if quick else 6,
        snapshots=12 if quick else 24,
        repeats=2 if quick else 3,
    )
    fleet = run_fleet_workload(
        processes=2 if quick else 4,
        sessions=1 if quick else 2,
    )
    return {
        "quick": quick,
        "segment_cache_entries": SEGMENT_CACHE_ENTRIES,
        "edge_cache_entries": EDGE_CACHE_ENTRIES,
        "tail": tail,
        "fleet": fleet,
        "gates": {
            "tail_wall_ratio_2x": tail["wall_ratio_uncached"] >= 2.0,
            "tail_verdicts_identical": (
                tail["verdicts_identical_uncached"]
                and tail["verdicts_identical_cached"]
            ),
            "tail_cycles_identical": (
                tail["cycles_identical_uncached"]
                and tail["cycles_identical_cached"]
            ),
            "tail_telemetry_identical": tail["telemetry_identical"],
            "fleet_verdicts_identical": (
                fleet["clean"]["verdicts_identical"]
                and fleet["faulted"]["verdicts_identical"]
            ),
            "fleet_cycles_identical": (
                fleet["clean"]["cycles_identical"]
                and fleet["faulted"]["cycles_identical"]
            ),
            "fleet_ledger_identical": (
                fleet["clean"]["ledger_identical"]
                and fleet["faulted"]["ledger_identical"]
            ),
            "fleet_reconcile_exact": (
                fleet["clean"]["reconcile_exact"]
                and fleet["faulted"]["reconcile_exact"]
            ),
        },
    }


def format_table(results: dict) -> str:
    tail = results["tail"]
    runs = tail["runs"]
    lines = [
        "Columnar engine: Fig. 5 tail decode+check loop "
        f"({tail['processes']} procs x "
        f"{tail['snapshots_per_process']} snapshots, "
        f"{tail['trace_bytes']} trace bytes, "
        f"best of {tail['repeats']})",
    ]
    for mode, ratio_key in (
        ("uncached", "wall_ratio_uncached"),
        ("cached", "wall_ratio_cached"),
    ):
        obj = runs[f"objects_{mode}"]
        col = runs[f"columnar_{mode}"]
        lines.append(
            f"  {mode:>8}: {obj['wall_s'] * 1e3:>8.2f} ms objects -> "
            f"{col['wall_s'] * 1e3:>8.2f} ms columnar "
            f"({tail[ratio_key]:.2f}x)"
        )
    lines.append(
        "  verdicts identical: "
        f"{tail['verdicts_identical_uncached']} (uncached) / "
        f"{tail['verdicts_identical_cached']} (cached), "
        f"cycles identical: {tail['cycles_identical_uncached']} / "
        f"{tail['cycles_identical_cached']}, "
        f"telemetry identical: {tail['telemetry_identical']}"
    )
    fleet = results["fleet"]
    lines.append("")
    lines.append(
        f"Fleet ({fleet['processes']} procs, stall rings), "
        "objects vs columnar:"
    )
    for label in ("clean", "faulted"):
        cmp = fleet[label]
        lines.append(
            f"  {label:>8}: verdicts identical {cmp['verdicts_identical']}, "
            f"cycles identical {cmp['cycles_identical']}, "
            f"ledger identical {cmp['ledger_identical']}, "
            f"reconcile exact {cmp['reconcile_exact']}"
        )
    gates = results["gates"]
    failed = [name for name, ok in gates.items() if not ok]
    lines.append("")
    lines.append(
        "gates: all passed" if not failed
        else f"gates FAILED: {', '.join(failed)}"
    )
    return "\n".join(lines)
