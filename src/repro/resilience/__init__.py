"""repro.resilience — deterministic fault injection and recovery.

The paper's monitor must stay correct under hostile runtime conditions:
ToPA stalls and lossy PMIs are *environmental* pressure the fleet
already simulates, but a production monitor also survives failures of
its own components — corrupted trace bytes, crashed checker workers,
decode timeouts.  This package provides:

- :class:`FaultPlan` / :class:`FaultInjector` — a seedable,
  bit-reproducible fault plane.  Every site (drain corruption, PMI
  drop/delay, worker crash/hang, fast/slow-path decode errors) draws
  from its own deterministic RNG stream, so the same plan and seed
  produce the same fault sequence regardless of how sites interleave.
- :class:`RetryPolicy` / :class:`DeadLetter` — bounded retry with an
  exact exponential-backoff schedule, per-task timeouts, and a
  dead-letter queue for checks that can never be verified (fail-closed:
  the owning process is quarantined rather than left unverified).
- :class:`DegradationLedger` — the audit trail of every downgrade the
  monitor takes (cache bypass, PSB re-sync, fast→slow fallback, retry,
  dead-letter, drop, quarantine), reconciling exactly with the
  ``resilience.*`` telemetry counters and the fleet cycle ledger.

See DESIGN.md ("Resilience") for the fault taxonomy and the
degradation state machine.
"""

from repro.resilience.faults import (
    FAULT_SITES,
    FaultInjector,
    FaultPlan,
    FaultSite,
    InjectedFault,
)
from repro.resilience.ledger import DegradationEvent, DegradationLedger
from repro.resilience.retry import DeadLetter, RetryPolicy

__all__ = [
    "FAULT_SITES",
    "DeadLetter",
    "DegradationEvent",
    "DegradationLedger",
    "FaultInjector",
    "FaultPlan",
    "FaultSite",
    "InjectedFault",
    "RetryPolicy",
]
