"""Deterministic, seedable fault injection.

A :class:`FaultPlan` names the sites faults can fire at and how often;
a :class:`FaultInjector` executes the plan.  Determinism is the core
contract: every site owns an independent ``random.Random`` stream
seeded from ``(plan seed, site name)``, and every consultation of a
site advances only that site's stream.  Two runs of the same plan over
the same workload therefore inject byte-identical faults — the
property ``tests/test_resilience.py`` asserts — and changing how one
site is exercised never perturbs another site's draws.

Corruption is *loud by construction*: the injector stamps a run of
``0xFF`` bytes longer than the longest legal packet, so the fast
decoder is guaranteed to raise :class:`~repro.ipt.packets.PacketError`
at the stamp instead of silently reinterpreting garbage as control
flow (which would turn an injected integrity fault into a spurious CFI
violation).  The monitor's recovery path — bypass the segment cache,
re-sync at the next PSB, fall back to the slow path — is what the
injection exists to exercise.
"""

from __future__ import annotations

import json
import random
from dataclasses import dataclass, field, fields
from typing import Dict, List, Optional, Tuple

#: every site a FaultPlan can arm, with the subsystem it targets.
FAULT_SITES: Tuple[str, ...] = (
    "corrupt_drain",   # ToPA drain: stamp undecodable bytes
    "truncate_drain",  # ToPA drain: cut the snapshot tail
    "drop_pmi",        # swallow a buffer-full interrupt entirely
    "delay_pmi",       # deliver a buffer-full interrupt one quantum late
    "worker_crash",    # a checker worker dies mid-attempt
    "worker_hang",     # a checker worker wedges until the task timeout
    "fastpath_error",  # decode exception inside the fast path
    "slowpath_error",  # decode exception inside the slow path
)

#: longer than the longest legal packet (2-byte header + 8-byte IP), so
#: a stamp can never hide entirely inside one packet's payload.
_CORRUPT_STAMP_LEN = 16
_CORRUPT_BYTE = 0xFF


class InjectedFault(Exception):
    """An injected component failure (distinct from real decode errors
    so tests can tell the two apart; handled identically)."""


@dataclass(frozen=True)
class FaultSite:
    """When one site fires.

    ``probability`` arms the site's RNG stream; ``at`` instead names
    the exact consultation indices (0-based) that fire — a schedule,
    for tests that need a fault at a known point.  ``limit`` caps the
    total number of firings either way.
    """

    probability: float = 0.0
    at: Optional[Tuple[int, ...]] = None
    limit: Optional[int] = None

    def __post_init__(self) -> None:
        if not 0.0 <= self.probability <= 1.0:
            raise ValueError(
                f"probability must be in [0, 1], got {self.probability}"
            )
        if self.at is not None and not isinstance(self.at, tuple):
            object.__setattr__(self, "at", tuple(self.at))

    @property
    def armed(self) -> bool:
        return self.probability > 0.0 or bool(self.at)

    def to_dict(self) -> dict:
        out: dict = {"probability": self.probability}
        if self.at is not None:
            out["at"] = list(self.at)
        if self.limit is not None:
            out["limit"] = self.limit
        return out

    @classmethod
    def from_dict(cls, data: dict) -> "FaultSite":
        return cls(
            probability=float(data.get("probability", 0.0)),
            at=tuple(data["at"]) if data.get("at") is not None else None,
            limit=data.get("limit"),
        )


def _site_field() -> FaultSite:
    return FaultSite()


@dataclass(frozen=True)
class FaultPlan:
    """A complete, serialisable fault-injection configuration."""

    seed: int = 0
    corrupt_drain: FaultSite = field(default_factory=_site_field)
    truncate_drain: FaultSite = field(default_factory=_site_field)
    drop_pmi: FaultSite = field(default_factory=_site_field)
    delay_pmi: FaultSite = field(default_factory=_site_field)
    worker_crash: FaultSite = field(default_factory=_site_field)
    worker_hang: FaultSite = field(default_factory=_site_field)
    fastpath_error: FaultSite = field(default_factory=_site_field)
    slowpath_error: FaultSite = field(default_factory=_site_field)
    #: fraction of a task's cost a crashing attempt burns before dying.
    crash_fraction: float = 0.5
    #: cycles a hung attempt wedges for when no task timeout cancels it.
    hang_cycles: float = 250_000.0

    def site(self, name: str) -> FaultSite:
        if name not in FAULT_SITES:
            raise KeyError(f"unknown fault site {name!r}")
        return getattr(self, name)

    @property
    def active(self) -> bool:
        return any(self.site(name).armed for name in FAULT_SITES)

    # -- serialisation -------------------------------------------------------

    def to_dict(self) -> dict:
        out: dict = {
            "seed": self.seed,
            "crash_fraction": self.crash_fraction,
            "hang_cycles": self.hang_cycles,
        }
        for name in FAULT_SITES:
            site = self.site(name)
            if site.armed:
                out[name] = site.to_dict()
        return out

    @classmethod
    def from_dict(cls, data: dict) -> "FaultPlan":
        known = {f.name for f in fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ValueError(
                f"unknown FaultPlan keys: {', '.join(sorted(unknown))}"
            )
        kwargs: dict = {}
        for key, value in data.items():
            if key in FAULT_SITES:
                kwargs[key] = FaultSite.from_dict(value)
            else:
                kwargs[key] = value
        return cls(**kwargs)

    @classmethod
    def load(cls, path) -> "FaultPlan":
        """Read a plan from a JSON file (the ``--faults`` CLI flag)."""
        with open(path) as handle:
            return cls.from_dict(json.load(handle))

    def with_seed(self, seed: int) -> "FaultPlan":
        return FaultPlan.from_dict({**self.to_dict(), "seed": seed})

    # -- canned mixes --------------------------------------------------------

    @classmethod
    def standard_mix(cls, seed: int = 0) -> "FaultPlan":
        """The BENCH_resilience fault mix: every subsystem under
        simultaneous low-rate failure, the regime the acceptance gates
        (100% detection, bounded p99 degradation) are checked in.
        Fast-path decode errors are kept an order of magnitude rarer
        than the transport faults: each one forces a full slow-path
        re-verification, the single most expensive recovery."""
        return cls(
            seed=seed,
            corrupt_drain=FaultSite(probability=0.04),
            truncate_drain=FaultSite(probability=0.03),
            drop_pmi=FaultSite(probability=0.05),
            delay_pmi=FaultSite(probability=0.05),
            worker_crash=FaultSite(probability=0.04),
            worker_hang=FaultSite(probability=0.02),
            fastpath_error=FaultSite(probability=0.004),
        )


class FaultInjector:
    """Executes a :class:`FaultPlan` with per-site RNG streams."""

    def __init__(self, plan: FaultPlan) -> None:
        self.plan = plan
        self._rngs: Dict[str, random.Random] = {
            name: random.Random(f"{plan.seed}:{name}")
            for name in FAULT_SITES
        }
        #: consultations per site (advances on every ``fire``).
        self.consulted: Dict[str, int] = {name: 0 for name in FAULT_SITES}
        #: firings per site.
        self.fired: Dict[str, int] = {name: 0 for name in FAULT_SITES}

    # -- core draw -----------------------------------------------------------

    def fire(self, site_name: str) -> bool:
        """Consult one site; True when its fault fires this time.

        Every consultation advances the site's sequence number and (for
        probabilistic sites) its RNG — even when capped by ``limit`` —
        so firing patterns are a pure function of (plan, consultation
        index).
        """
        site = self.plan.site(site_name)
        index = self.consulted[site_name]
        self.consulted[site_name] = index + 1
        if site.at is not None:
            hit = index in site.at
        else:
            if site.probability <= 0.0:
                return False
            hit = self._rngs[site_name].random() < site.probability
        if hit and site.limit is not None \
                and self.fired[site_name] >= site.limit:
            return False
        if hit:
            self.fired[site_name] += 1
        return hit

    # -- drain mangling ------------------------------------------------------

    def mangle(self, data: bytes) -> Tuple[bytes, List[str]]:
        """Apply drain-byte faults to one ToPA snapshot.

        Returns the (possibly) mangled bytes plus the list of fault
        kinds applied, in application order: truncation first (cut the
        tail), then corruption (stamp undecodable bytes), mirroring a
        short DMA followed by a scribble.
        """
        events: List[str] = []
        if not data:
            return data, events
        if self.fire("truncate_drain") and len(data) > 1:
            rng = self._rngs["truncate_drain"]
            cut = rng.randrange(1, max(2, len(data) // 2))
            data = data[:-cut] if cut < len(data) else data[:1]
            events.append("truncate-drain")
        if self.fire("corrupt_drain") and data:
            rng = self._rngs["corrupt_drain"]
            # The stamp must land whole: a tail fragment of 8 bytes or
            # fewer could hide inside a single IP payload and decode as
            # a garbage (but quiet) control transfer.
            span = max(1, len(data) - _CORRUPT_STAMP_LEN + 1)
            pos = rng.randrange(span)
            stamp = bytes([_CORRUPT_BYTE]) * _CORRUPT_STAMP_LEN
            data = data[:pos] + stamp[: len(data) - pos] \
                + data[pos + _CORRUPT_STAMP_LEN:]
            events.append("corrupt-drain")
        return data, events

    # -- worker faults -------------------------------------------------------

    def worker_fault(self) -> Optional[str]:
        """One checker-worker attempt: 'crash', 'hang', or None."""
        if self.fire("worker_crash"):
            return "crash"
        if self.fire("worker_hang"):
            return "hang"
        return None

    # -- reporting -----------------------------------------------------------

    def stats(self) -> dict:
        return {
            "seed": self.plan.seed,
            "consulted": dict(self.consulted),
            "fired": dict(self.fired),
        }
