"""Bounded retry with an exact exponential-backoff schedule.

The fleet dispatcher re-attempts a check whose worker crashed, hung, or
timed out; :class:`RetryPolicy` defines exactly when.  The schedule is
closed-form — ``delay(n) = min(cap, base * factor**(n-1))`` simulated
cycles after the *n*-th failed attempt — so tests can assert it to the
cycle rather than sampling it.  A check that exhausts its attempts
becomes a :class:`DeadLetter`: it is never silently dropped, and under
the default fail-closed policy the owning process is quarantined,
because an unverifiable trace window is indistinguishable from a
successful attack on the monitor itself (the availability-vs-security
trade-off Burow et al. make explicit).
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import List


@dataclass(frozen=True)
class RetryPolicy:
    """When and how the dispatcher re-attempts a failed check."""

    #: total attempts including the first (1 = no retries).
    max_attempts: int = 3
    #: backoff after the first failure, in simulated cycles.
    backoff_base: float = 500.0
    #: multiplier per subsequent failure.
    backoff_factor: float = 2.0
    #: ceiling on any single delay.
    backoff_cap: float = 60_000.0
    #: cancel an attempt still running after this many cycles
    #: (0 = no timeout; hung workers then burn ``hang_cycles``).
    task_timeout: float = 0.0
    #: hedge hung attempts: re-issue the check this many cycles after
    #: dispatch instead of waiting out the timeout (0 = off; the task
    #: then waits for the watchdog).  The wedged attempt still burns
    #: its timeout in the background — hedging trades spare worker
    #: capacity for tail latency, it never hides the waste.
    hedge_delay: float = 0.0
    #: dead-lettered checks quarantine their process (fail closed)
    #: rather than leaving the window unverified (fail open).
    dead_letter_quarantine: bool = True

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.backoff_base < 0 or self.backoff_cap < 0:
            raise ValueError("backoff must be non-negative")
        if self.backoff_factor < 1.0:
            raise ValueError("backoff_factor must be >= 1.0")
        if self.task_timeout < 0:
            raise ValueError("task_timeout must be non-negative")
        if self.hedge_delay < 0:
            raise ValueError("hedge_delay must be non-negative")

    def delay(self, attempt: int) -> float:
        """Backoff after the ``attempt``-th failed attempt (1-based)."""
        if attempt < 1:
            raise ValueError("attempt is 1-based")
        return min(
            self.backoff_cap,
            self.backoff_base * self.backoff_factor ** (attempt - 1),
        )

    def schedule(self, n: int = None) -> List[float]:
        """The full delay schedule: one entry per possible retry."""
        if n is None:
            n = self.max_attempts - 1
        return [self.delay(i) for i in range(1, n + 1)]

    # -- serialisation -------------------------------------------------------

    def to_dict(self) -> dict:
        return {
            "max_attempts": self.max_attempts,
            "backoff_base": self.backoff_base,
            "backoff_factor": self.backoff_factor,
            "backoff_cap": self.backoff_cap,
            "task_timeout": self.task_timeout,
            "hedge_delay": self.hedge_delay,
            "dead_letter_quarantine": self.dead_letter_quarantine,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "RetryPolicy":
        known = {f.name for f in fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ValueError(
                f"unknown RetryPolicy keys: {', '.join(sorted(unknown))}"
            )
        return cls(**data)


@dataclass(frozen=True)
class DeadLetter:
    """A check the dispatcher gave up on after exhausting retries."""

    task_id: int
    pid: int
    #: the final failure kind ('crash', 'hang', 'timeout').
    kind: str
    attempts: int
    #: fault history across attempts, oldest first.
    last_fault: str = ""
    #: fleet-clock time the check was abandoned.
    at: float = 0.0

    def to_dict(self) -> dict:
        return {
            "task_id": self.task_id,
            "pid": self.pid,
            "kind": self.kind,
            "attempts": self.attempts,
            "last_fault": self.last_fault,
            "at": self.at,
        }
