"""The degradation ledger: every downgrade the monitor takes, audited.

Graceful degradation is only trustworthy if it is *accounted*: a
monitor that silently falls back to weaker checking is indistinguishable
from one that was attacked into it.  Every recovery action therefore
records a :class:`DegradationEvent` here, and the ledger reconciles two
ways:

- **telemetry** — each recorded event (while telemetry is enabled) also
  increments the labeled counter ``resilience.events{kind=...}``;
  :meth:`DegradationLedger.reconcile` re-derives the per-kind counts
  from the counter and demands exact equality.
- **cycles** — events that waste checker-worker cycles (crashed/hung/
  timed-out attempts) carry the wasted amount; the total must equal the
  dispatcher's ``retry_cycles`` ledger entry, which
  :meth:`repro.telemetry.profiler.CycleProfiler.reconcile` in turn
  balances against ``MonitorStats`` (busy + intercept − retry ==
  stats).  One chain, no slack.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.telemetry import get_telemetry

#: canonical event kinds, grouped by the subsystem that records them.
EVENT_KINDS = (
    # drain-byte faults (monitor, per check)
    "corrupt-drain", "truncate-drain",
    # PMI faults (monitor / fleet rings)
    "pmi-drop", "pmi-delay",
    # fast-path degradation (checker)
    "corrupt-segment", "cache-bypass", "psb-resync",
    # path downgrades (monitor)
    "slowpath-fallback", "slowpath-error",
    # dispatcher recovery (fleet)
    "worker-crash", "worker-hang", "task-timeout",
    "retry", "hedge", "dead-letter", "drop-drain", "quarantine",
    # serving admission control (repro.service)
    "shed-load", "throttle",
)


@dataclass
class DegradationEvent:
    """One recorded downgrade."""

    kind: str
    pid: int = -1
    detail: str = ""
    #: fleet-clock timestamp (or check index solo; 0 when unknown).
    at: float = 0.0
    #: checker-worker cycles this event wasted (failed attempts only).
    cycles: float = 0.0
    #: serving tenant whose fault domain this event belongs to
    #: (None outside service mode).
    tenant: Optional[str] = None

    def to_dict(self) -> dict:
        return {
            "kind": self.kind,
            "pid": self.pid,
            "detail": self.detail,
            "at": self.at,
            "cycles": self.cycles,
            "tenant": self.tenant,
        }


class DegradationLedger:
    """Append-only downgrade log with exact reconciliation.

    ``tenant`` scopes the ledger to one serving fault domain: every
    event and every ``resilience.events`` series it emits carries the
    tenant label, and :meth:`reconcile` audits only that tenant's
    slice of the shared counter — so N tenant ledgers over one metrics
    registry each balance independently, and a noisy tenant's faults
    can never leak into a clean tenant's books.
    """

    def __init__(self, tenant: Optional[str] = None) -> None:
        self.tenant = tenant
        self.events: List[DegradationEvent] = []
        self._counts: Dict[str, int] = {}
        #: per-kind counts recorded while telemetry was enabled — the
        #: slice the ``resilience.events`` counter must match exactly.
        self._telemetry_counts: Dict[str, int] = {}
        #: total wasted checker cycles across recorded events.
        self.wasted_cycles: float = 0.0

    def __len__(self) -> int:
        return len(self.events)

    # -- recording -----------------------------------------------------------

    def record(
        self,
        kind: str,
        pid: int = -1,
        detail: str = "",
        at: float = 0.0,
        cycles: float = 0.0,
    ) -> DegradationEvent:
        if kind not in EVENT_KINDS:
            raise ValueError(f"unknown degradation kind {kind!r}")
        event = DegradationEvent(
            kind=kind, pid=pid, detail=detail, at=at, cycles=cycles,
            tenant=self.tenant,
        )
        self.events.append(event)
        self._counts[kind] = self._counts.get(kind, 0) + 1
        self.wasted_cycles += cycles
        tel = get_telemetry()
        if tel.enabled:
            self._telemetry_counts[kind] = (
                self._telemetry_counts.get(kind, 0) + 1
            )
            labels = self._labels()
            tel.metrics.counter("resilience.events").inc(
                kind=kind, **labels
            )
            if cycles:
                tel.metrics.counter("resilience.wasted_cycles").inc(
                    cycles, **labels
                )
            # The observability plane journals the same event into its
            # flight recorder (inside the enabled guard, so the plane's
            # per-kind tallies reconcile exactly with the counter).
            if tel.plane is not None:
                tel.plane.on_degradation(event)
        return event

    def _labels(self) -> Dict[str, str]:
        """Extra metric labels: the tenant fault-domain tag, if any."""
        return {} if self.tenant is None else {"tenant": self.tenant}

    # -- views ---------------------------------------------------------------

    def counts(self) -> Dict[str, int]:
        return dict(self._counts)

    def telemetry_counts(self) -> Dict[str, int]:
        """Per-kind counts recorded while telemetry was enabled — the
        slice the counter (and the plane's flight tallies) must match."""
        return dict(self._telemetry_counts)

    def count(self, kind: str) -> int:
        return self._counts.get(kind, 0)

    def events_of(self, kind: str) -> List[DegradationEvent]:
        return [e for e in self.events if e.kind == kind]

    def to_dict(self) -> dict:
        return {
            "events": len(self.events),
            "counts": {k: self._counts[k] for k in sorted(self._counts)},
            "wasted_cycles": self.wasted_cycles,
            "tenant": self.tenant,
        }

    # -- reconciliation ------------------------------------------------------

    def reconcile(
        self,
        metrics=None,
        retry_cycles: Optional[float] = None,
    ) -> dict:
        """Balance the ledger against its two mirrors.

        ``metrics`` is a :class:`~repro.telemetry.metrics.MetricsRegistry`
        (defaults to the process-wide one); the per-kind event counts it
        recorded must equal the ledger's telemetry-enabled counts.
        ``retry_cycles``, when given, is the dispatcher's wasted-cycle
        ledger entry and must equal the summed event cycles.
        """
        if metrics is None:
            metrics = get_telemetry().metrics
        counter = metrics.counter("resilience.events")
        labels = self._labels()
        kinds = set(self._telemetry_counts)
        report: dict = {"kinds": {}, "exact": True}
        if self.tenant is not None:
            report["tenant"] = self.tenant
        for kind in sorted(kinds):
            ledger_count = self._telemetry_counts.get(kind, 0)
            counter_count = int(counter.value(kind=kind, **labels))
            ok = ledger_count == counter_count
            report["kinds"][kind] = {
                "ledger": ledger_count,
                "counter": counter_count,
                "ok": ok,
            }
            report["exact"] = report["exact"] and ok
        # the counter must not know kinds the ledger never recorded —
        # for a tenanted ledger, only that tenant's slice is audited
        # (other tenants' series are their own ledgers' business).
        extra = counter.total(**labels) - sum(
            self._telemetry_counts.values()
        )
        report["counter_only"] = extra
        report["exact"] = report["exact"] and extra == 0
        if retry_cycles is not None:
            ok = abs(retry_cycles - self.wasted_cycles) <= max(
                1e-6, 1e-9 * abs(retry_cycles)
            )
            report["retry_cycles"] = {
                "ledger": self.wasted_cycles,
                "dispatcher": retry_cycles,
                "ok": ok,
            }
            report["exact"] = report["exact"] and ok
        return report
