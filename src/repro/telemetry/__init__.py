"""Unified telemetry: metrics registry + span tracing + cycle profiler.

One process-wide :class:`Telemetry` instance (``get_telemetry()``) wires
the three sinks together:

- :class:`~repro.telemetry.metrics.MetricsRegistry` — labeled counters,
  gauges and histograms (``monitor.checks{path="fast"}``),
- :class:`~repro.telemetry.tracing.Tracer` — nested wall-clock spans,
  exportable as JSON-lines or Chrome trace-event JSON,
- :class:`~repro.telemetry.profiler.CycleProfiler` — simulated-cycle
  attribution per phase/component, reconciling with ``MonitorStats``.

Telemetry is **disabled by default** and near-zero-overhead while
disabled: instrumented hot paths guard everything behind one
``tel.enabled`` attribute check (verified by
``benchmarks/test_telemetry_overhead.py``), so the instrumentation
stays wired in permanently.

Usage::

    from repro import telemetry

    tel = telemetry.get_telemetry()
    tel.enable()
    ... run a protected workload ...
    snap = tel.snapshot()            # metrics + cycle profile
    tel.tracer.export_chrome("trace.json")
    tel.disable()

or scoped::

    with telemetry.capture() as tel:
        ... run ...
        snap = tel.snapshot()
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Dict, Iterator

from repro.telemetry.metrics import (  # noqa: F401 (public re-exports)
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    series_name,
)
from repro.telemetry.profiler import PHASES, CycleProfiler  # noqa: F401
from repro.telemetry.tracing import Span, Tracer  # noqa: F401

# (the plane module is re-exported at the bottom of this file — it
# needs the Telemetry class defined first.)


class Telemetry:
    """The three sinks plus the single master enable switch.

    ``plane`` is the optional live observability plane
    (:class:`~repro.telemetry.plane.ObservabilityPlane`); hook sites
    guard on ``tel.plane is not None`` so runs without a plane pay one
    attribute read, nothing more.
    """

    __slots__ = ("metrics", "tracer", "profiler", "enabled", "plane")

    def __init__(self) -> None:
        self.metrics = MetricsRegistry()
        self.tracer = Tracer()
        self.profiler = CycleProfiler()
        self.enabled = False
        self.plane = None

    # -- switching -----------------------------------------------------------

    def enable(self) -> None:
        self.enabled = True
        self.metrics.enabled = True
        self.tracer.enabled = True

    def disable(self) -> None:
        self.enabled = False
        self.metrics.enabled = False
        self.tracer.enabled = False

    def attach_plane(self, plane) -> None:
        """Adopt ``plane`` and enable telemetry (the plane samples the
        registry, so the two must be on together — attach *after*
        ``reset()`` so sampled counters start from zero)."""
        self.plane = plane
        self.enable()

    def detach_plane(self):
        """Drop the plane (telemetry stays enabled); returns it."""
        plane, self.plane = self.plane, None
        return plane

    # -- lifecycle -----------------------------------------------------------

    def reset(self) -> None:
        """Clear every recorded series, span and cycle cell.  The plane
        is left alone: its samples already taken would no longer match
        a zeroed registry, so flows attach a *fresh* plane after reset."""
        self.metrics.reset()
        self.tracer.reset()
        self.profiler.reset()

    def snapshot(self) -> Dict[str, object]:
        """Combined JSON-compatible snapshot of metrics and cycles."""
        snap = {
            "enabled": self.enabled,
            "metrics": self.metrics.snapshot(),
            "profile": self.profiler.snapshot(),
            "spans": {
                "recorded": len(self.tracer.spans),
                "dropped": self.tracer.dropped,
            },
        }
        if self.plane is not None:
            snap["plane"] = {
                "samples": self.plane.sampler.taken,
                "flight_events": self.plane.flight.seq,
                "dumps": len(self.plane.flight.dumps),
            }
        return snap


#: The process-wide instance every instrumented module reports into.
_TELEMETRY = Telemetry()


def get_telemetry() -> Telemetry:
    return _TELEMETRY


def enable() -> None:
    _TELEMETRY.enable()


def disable() -> None:
    _TELEMETRY.disable()


def reset() -> None:
    _TELEMETRY.reset()


from repro.telemetry.plane import (  # noqa: E402,F401 (public re-exports)
    FlightRecorder,
    ObservabilityPlane,
    SLOConfig,
    SLOEngine,
    SLObjective,
    TimeseriesSampler,
)


@contextmanager
def capture(reset_first: bool = True) -> Iterator[Telemetry]:
    """Enable telemetry for a scope, restoring the previous state."""
    was_enabled = _TELEMETRY.enabled
    if reset_first:
        _TELEMETRY.reset()
    _TELEMETRY.enable()
    try:
        yield _TELEMETRY
    finally:
        if not was_enabled:
            _TELEMETRY.disable()
