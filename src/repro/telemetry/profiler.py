"""Cycle-attribution profiler: simulated cycles by phase and component.

The cost model (:mod:`repro.costs`) charges deterministic cycles; the
monitor aggregates them into :class:`repro.monitor.flowguard.MonitorStats`.
This profiler records the *same* charges a second time, attributed along
two axes — the Figure 5 **phase** (trace / decode / search /
shadow-stack / upcall / intercept) and the **component** that spent them
(``monitor.fastpath``, ``monitor.slowpath``, ``ipt.encoder.pid<n>``,
...) — so any slice of the pipeline can cite exactly where its cycles
went.

Because the monitor feeds both sinks from the same locals, the profiler
reconciles with ``MonitorStats`` exactly (up to float addition order;
:meth:`CycleProfiler.reconcile` checks with a 1e-9 relative tolerance):

- ``decode``                == sum of ``stats.decode_cycles``
- ``search + shadow-stack`` == sum of ``stats.check_cycles``
- ``upcall + intercept``    == sum of ``stats.other_cycles``
- ``trace``                 == sum of ``stats.trace_cycles``
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, Tuple

#: The canonical phase names, in Figure 5 presentation order.
PHASES = ("trace", "decode", "search", "shadow-stack", "upcall", "intercept")

#: Which phases fold into which MonitorStats accumulator.
_STATS_PHASE_MAP = {
    "trace_cycles": ("trace",),
    "decode_cycles": ("decode",),
    "check_cycles": ("search", "shadow-stack"),
    "other_cycles": ("upcall", "intercept"),
}


class CycleProfiler:
    """Accumulates simulated cycles in (component, phase) cells."""

    def __init__(self) -> None:
        self._cells: Dict[Tuple[str, str], float] = {}

    # -- recording -----------------------------------------------------------

    def record(self, component: str, phase: str, cycles: float) -> None:
        """Add ``cycles`` to one (component, phase) cell."""
        key = (component, phase)
        self._cells[key] = self._cells.get(key, 0.0) + cycles

    def set(self, component: str, phase: str, cycles: float) -> None:
        """Overwrite a cell — for cumulative sources (encoder totals)."""
        self._cells[(component, phase)] = cycles

    # -- views ---------------------------------------------------------------

    def per_phase(self) -> Dict[str, float]:
        out: Dict[str, float] = {}
        for (_, phase), cycles in self._cells.items():
            out[phase] = out.get(phase, 0.0) + cycles
        return out

    def per_component(self) -> Dict[str, float]:
        out: Dict[str, float] = {}
        for (component, _), cycles in self._cells.items():
            out[component] = out.get(component, 0.0) + cycles
        return out

    def component_phase(self, component: str, phase: str) -> float:
        return self._cells.get((component, phase), 0.0)

    def total(self) -> float:
        return sum(self._cells.values())

    def snapshot(self) -> Dict[str, object]:
        return {
            "total_cycles": self.total(),
            "phases": {
                phase: cycles
                for phase, cycles in sorted(self.per_phase().items())
            },
            "components": {
                component: cycles
                for component, cycles in sorted(self.per_component().items())
            },
            "cells": {
                f"{component}/{phase}": cycles
                for (component, phase), cycles in sorted(self._cells.items())
            },
        }

    # -- reconciliation ------------------------------------------------------

    def reconcile(
        self,
        stats_list: Iterable[object],
        fleet_workers: "Dict[str, float] | None" = None,
    ) -> Dict[str, object]:
        """Compare phase totals against summed ``MonitorStats``.

        ``stats_list`` is any iterable of objects with the four
        ``*_cycles`` accumulators (duck-typed to avoid importing the
        monitor).  Returns per-accumulator profiler/stats pairs plus an
        overall ``exact`` verdict.

        ``fleet_workers`` extends the contract to fleet mode: a mapping
        with ``busy_cycles`` (the worker pool's busy-cycle ledger),
        ``intercept_cycles`` (endpoint-interception cycles spent on the
        *protected* core, not a worker), and optional ``retry_cycles``
        (pool time wasted by crashed/hung/timed-out attempts under fault
        injection).  Every *productive* checking cycle a worker burned
        must appear in some process's ``MonitorStats`` — i.e.
        ``busy + intercept - retry == sum(decode + check + other)`` —
        so a drifting worker ledger fails the same ``exact`` verdict
        (``repro fleet`` exits 1 on it, like ``repro stats``).
        """
        stats_list = list(stats_list)
        phases = self.per_phase()
        report: Dict[str, object] = {}
        exact = True
        for attr, phase_names in _STATS_PHASE_MAP.items():
            expected = sum(getattr(s, attr) for s in stats_list)
            measured = sum(phases.get(p, 0.0) for p in phase_names)
            ok = math.isclose(
                measured, expected, rel_tol=1e-9, abs_tol=1e-6
            )
            exact = exact and ok
            report[attr] = {
                "profiler": measured,
                "stats": expected,
                "ok": ok,
            }
        total_stats = sum(
            sum(getattr(s, attr) for attr in _STATS_PHASE_MAP)
            for s in stats_list
        )
        report["total"] = {
            "profiler": self.total(),
            "stats": total_stats,
            "ok": math.isclose(
                self.total(), total_stats, rel_tol=1e-9, abs_tol=1e-6
            ),
        }
        if fleet_workers is not None:
            busy = float(fleet_workers.get("busy_cycles", 0.0))
            intercept = float(fleet_workers.get("intercept_cycles", 0.0))
            # Cycles workers burned on attempts that crashed, hung, or
            # timed out: real pool busy time, but no MonitorStats charge
            # (the check's cost was accounted on the attempt that
            # succeeded — or dead-lettered).
            retry = float(fleet_workers.get("retry_cycles", 0.0))
            # The inverse hole: dead-lettered checks were costed into
            # MonitorStats when submitted but never ran on any worker.
            dead = float(fleet_workers.get("dead_letter_cycles", 0.0))
            expected = sum(
                getattr(s, attr)
                for attr in ("decode_cycles", "check_cycles", "other_cycles")
                for s in stats_list
            )
            ok = math.isclose(
                busy + intercept - retry + dead, expected,
                rel_tol=1e-9, abs_tol=1e-6,
            )
            exact = exact and ok
            report["fleet_workers"] = {
                "busy_cycles": busy,
                "intercept_cycles": intercept,
                "retry_cycles": retry,
                "dead_letter_cycles": dead,
                "stats": expected,
                "ok": ok,
            }
        report["exact"] = exact and bool(report["total"]["ok"])
        return report

    # -- lifecycle -----------------------------------------------------------

    def reset(self) -> None:
        self._cells.clear()
